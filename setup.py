"""Setup shim: enables legacy editable installs in offline environments
(where the `wheel` package needed by PEP 517 editable builds is absent).
All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
