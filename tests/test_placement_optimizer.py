"""Tests for the fleet placement optimizer."""

import pytest

from repro.config import RMC1_SMALL, RMC2_SMALL, RMC3_SMALL
from repro.hw import BROADWELL
from repro.serving import JobSpec
from repro.serving.placement_optimizer import (
    greedy_placement,
    local_search,
    optimize_placement,
    round_robin_placement,
)


def job_bag():
    return (
        [JobSpec(RMC1_SMALL, 32)] * 4
        + [JobSpec(RMC2_SMALL, 32)] * 4
        + [JobSpec(RMC3_SMALL, 32)] * 4
    )


class TestGreedy:
    def test_all_jobs_placed(self):
        solution = greedy_placement(BROADWELL, job_bag(), num_machines=3)
        assert sum(solution.loads()) == 12

    def test_single_machine(self):
        solution = greedy_placement(BROADWELL, job_bag()[:4], num_machines=1)
        assert solution.loads() == [4]
        assert solution.total_items_per_s > 0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            greedy_placement(BROADWELL, [], 2)
        with pytest.raises(ValueError):
            greedy_placement(BROADWELL, job_bag(), 0)


class TestOptimization:
    def test_local_search_never_worse(self):
        greedy = greedy_placement(BROADWELL, job_bag(), num_machines=3)
        improved = local_search(BROADWELL, greedy)
        assert improved.total_items_per_s >= greedy.total_items_per_s - 1e-9

    def test_optimizer_beats_or_matches_round_robin(self):
        jobs = job_bag()
        optimized = optimize_placement(BROADWELL, jobs, num_machines=3)
        baseline = round_robin_placement(BROADWELL, jobs, num_machines=3)
        assert optimized.total_items_per_s >= baseline.total_items_per_s * 0.999

    def test_dominates_both_naive_layouts(self):
        """The optimizer must match or beat segregation AND interleaving —
        whichever the contention model favours for the bag at hand."""
        from repro.serving.placement_optimizer import _fleet_throughput

        jobs = [JobSpec(RMC2_SMALL, 32)] * 6 + [JobSpec(RMC1_SMALL, 32)] * 6
        optimized = optimize_placement(BROADWELL, jobs, num_machines=2)
        segregated = _fleet_throughput(
            BROADWELL,
            [[JobSpec(RMC2_SMALL, 32)] * 6, [JobSpec(RMC1_SMALL, 32)] * 6],
        )
        interleaved = _fleet_throughput(
            BROADWELL,
            [
                [JobSpec(RMC2_SMALL, 32)] * 3 + [JobSpec(RMC1_SMALL, 32)] * 3,
                [JobSpec(RMC2_SMALL, 32)] * 3 + [JobSpec(RMC1_SMALL, 32)] * 3,
            ],
        )
        assert optimized.total_items_per_s >= segregated * 0.999
        assert optimized.total_items_per_s >= interleaved * 0.999

    def test_solution_structure(self):
        solution = optimize_placement(BROADWELL, job_bag()[:6], num_machines=2)
        assert solution.num_machines == 2
        names = sorted(
            j.config.name for machine in solution.machines for j in machine
        )
        assert names == sorted(j.config.name for j in job_bag()[:6])
