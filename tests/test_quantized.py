"""Tests for int8 quantized embedding tables and quantized SLS."""

import numpy as np
import pytest

from repro.config import RMC2_SMALL
from repro.core.operators import (
    EmbeddingTable,
    QuantizedEmbeddingTable,
    QuantizedSparseLengthsSum,
    SparseBatch,
    SparseLengthsSum,
)
from repro.hw import BROADWELL, TimingModel


@pytest.fixture(scope="module")
def tables():
    fp32 = EmbeddingTable(rows=300, dim=16, rng=np.random.default_rng(3))
    return fp32, QuantizedEmbeddingTable.quantize(fp32)


class TestQuantizedTable:
    def test_storage_roughly_quarter(self, tables):
        fp32, q = tables
        # int8 payload + 8B/row metadata vs 64B/row fp32.
        assert q.storage_bytes() < 0.5 * fp32.storage_bytes()

    def test_reconstruction_error_small(self, tables):
        fp32, q = tables
        # Row range is ~0.1; 8-bit quantization error <= scale/2 ~= 2e-4.
        assert q.max_abs_error(fp32) < 5e-4

    def test_dequantize_shape(self, tables):
        _, q = tables
        out = q.dequantize_rows(np.array([0, 5, 299]))
        assert out.shape == (3, 16)
        assert out.dtype == np.float32


class TestQuantizedSls:
    def test_output_close_to_fp32(self, tables):
        fp32, q = tables
        sls = SparseLengthsSum("fp32", fp32, 4)
        qsls = QuantizedSparseLengthsSum("int8", q, 4)
        batch = SparseBatch.from_lists([[1, 2, 3, 4], [10, 20, 30, 40]])
        np.testing.assert_allclose(
            qsls.forward(batch), sls.forward(batch), atol=2e-3
        )

    def test_fewer_bytes_read(self, tables):
        fp32, q = tables
        sls = SparseLengthsSum("fp32", fp32, 4)
        qsls = QuantizedSparseLengthsSum("int8", q, 4)
        assert qsls.cost(8).bytes_read < 0.6 * sls.cost(8).bytes_read

    def test_out_of_range_raises(self, tables):
        _, q = tables
        qsls = QuantizedSparseLengthsSum("int8", q, 1)
        with pytest.raises(IndexError):
            qsls.forward(SparseBatch.from_lists([[300]]))

    def test_trace_uses_compressed_rows(self, tables):
        _, q = tables
        qsls = QuantizedSparseLengthsSum("int8", q, 2)
        access = next(iter(qsls.address_trace(1)))
        assert access.size == 16 + 8  # int8 row + scale/offset


class TestQuantizedTiming:
    def test_int8_config_cuts_storage_and_sls_bandwidth(self):
        from dataclasses import replace

        int8_cfg = replace(RMC2_SMALL, dtype="int8")
        assert (
            int8_cfg.embedding_storage_bytes()
            == RMC2_SMALL.embedding_storage_bytes() // 4
        )
        tm = TimingModel(BROADWELL)
        # At large batch the SLS path is bandwidth-bound: int8 rows quarter
        # the per-lookup DRAM traffic.
        fp32_ns = tm.sls_miss_ns(32, 256, dtype_bytes=4)
        int8_ns = tm.sls_miss_ns(32, 256, dtype_bytes=1)
        assert int8_ns <= fp32_ns
