"""Tests for the NCF (NeuMF) baseline model."""

import numpy as np
import pytest

from repro.core import NCFModel


@pytest.fixture(scope="module")
def ncf():
    return NCFModel(num_users=500, num_items=200, embedding_dim=8, mlp_layers=(16, 8))


class TestNcfForward:
    def test_output_probabilities(self, ncf):
        users = np.array([0, 1, 2, 499])
        items = np.array([0, 5, 10, 199])
        out = ncf.forward(users, items)
        assert out.shape == (4,)
        assert np.all((out >= 0) & (out <= 1))

    def test_rejects_mismatched_lengths(self, ncf):
        with pytest.raises(ValueError):
            ncf.forward(np.array([1, 2]), np.array([1]))

    def test_out_of_range_user_raises(self, ncf):
        with pytest.raises(IndexError):
            ncf.forward(np.array([500]), np.array([0]))

    def test_deterministic(self, ncf):
        users, items = np.array([3, 4]), np.array([7, 8])
        np.testing.assert_array_equal(
            ncf.forward(users, items), ncf.forward(users, items)
        )

    def test_profiled_matches_plain(self, ncf):
        users, items = np.array([3, 4]), np.array([7, 8])
        plain = ncf.forward(users, items)
        profiled, profile = ncf.forward_profiled(users, items)
        np.testing.assert_allclose(plain, profiled, rtol=1e-6)
        assert profile.total_seconds > 0


class TestNcfCharacterization:
    def test_fc_dominates_cost(self, ncf):
        """Section VII: NCF is FC-dominated, unlike production models."""
        by_type = {}
        for op in ncf.operators():
            cost = op.cost(16)
            by_type[op.op_type] = by_type.get(op.op_type, 0) + cost.flops
        assert by_type["FC"] > 10 * by_type["SLS"]

    def test_storage_dominated_by_embeddings(self, ncf):
        table_bytes = ncf.user_table.storage_bytes() + ncf.item_table.storage_bytes()
        assert table_bytes > 0.5 * ncf.storage_bytes()

    def test_cost_includes_gmf_term(self, ncf):
        op_total = sum(op.cost(4).flops for op in ncf.operators())
        assert ncf.cost(4).flops == op_total + 4 * ncf.embedding_dim

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            NCFModel(num_users=0)
        with pytest.raises(ValueError):
            NCFModel(mlp_layers=())
