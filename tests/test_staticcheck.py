"""Tier-2 tests for repro.tools.staticcheck: every rule must fire on its
fixture violation and stay silent on the idiomatic counterpart, the baseline
round-trips, the JSON reporter keeps its schema, and the preset graph
validator proves both directions."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.config.model_config import (
    EmbeddingTableConfig,
    MLPConfig,
    ModelConfig,
)
from repro.config.presets import PRODUCTION_PRESETS
from repro.tools.staticcheck import load_project, run_checks, validate_config, validate_presets
from repro.tools.staticcheck.__main__ import main
from repro.tools.staticcheck.baseline import (
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.tools.staticcheck.reporters import REPORT_SCHEMA_VERSION
from repro.tools.staticcheck.rules import ALL_RULES, select_rules


def check_snippet(tmp_path: Path, source: str, rule: str, relname: str = "snippet.py"):
    """Write ``source`` under ``tmp_path`` and run one rule over it."""
    target = tmp_path / relname
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    project = load_project([tmp_path], root=tmp_path)
    return run_checks(project, select_rules([rule]))


# --------------------------------------------------------------------- SC101


OPERATOR_PREAMBLE = """
    class Operator:
        pass

    class OperatorCost:
        def __init__(self, flops=0, bytes_read=0, bytes_written=0):
            pass
"""


class TestCostContract:
    def test_missing_cost_flagged(self, tmp_path):
        violations = check_snippet(
            tmp_path,
            OPERATOR_PREAMBLE
            + """
            class Broken(Operator):
                def forward(self, x):
                    return x
            """,
            "SC101",
        )
        assert len(violations) == 1
        assert "never implements cost()" in violations[0].message

    def test_product_without_batch_term_flagged(self, tmp_path):
        violations = check_snippet(
            tmp_path,
            OPERATOR_PREAMBLE
            + """
            class DroppedBatch(Operator):
                def forward(self, x):
                    return x

                def cost(self, batch_size):
                    read = batch_size * self.dim * 4
                    return OperatorCost(
                        flops=self.rows * self.dim * 2,
                        bytes_read=read,
                        bytes_written=read,
                    )
            """,
            "SC101",
        )
        assert len(violations) == 1
        assert "flops" in violations[0].message
        assert "batch term dropped" in violations[0].message

    def test_unused_batch_parameter_flagged(self, tmp_path):
        violations = check_snippet(
            tmp_path,
            OPERATOR_PREAMBLE
            + """
            class Fixed(Operator):
                def forward(self, x):
                    return x

                def cost(self, batch_size):
                    return OperatorCost(flops=100, bytes_read=10, bytes_written=10)
            """,
            "SC101",
        )
        assert len(violations) == 1
        assert "never uses its batch parameter" in violations[0].message

    def test_transitive_batch_flow_accepted(self, tmp_path):
        violations = check_snippet(
            tmp_path,
            OPERATOR_PREAMBLE
            + """
            class Good(Operator):
                def forward(self, x):
                    return x

                def cost(self, batch_size):
                    lookups = batch_size * self.lookups_per_sample
                    flops = lookups * self.dim
                    return OperatorCost(
                        flops=flops,
                        bytes_read=lookups * self.dim * 4,
                        bytes_written=batch_size * self.dim * 4,
                    )
            """,
            "SC101",
        )
        assert violations == []

    def test_test_modules_exempt(self, tmp_path):
        violations = check_snippet(
            tmp_path,
            OPERATOR_PREAMBLE
            + """
            class Stub(Operator):
                def forward(self, x):
                    return x
            """,
            "SC101",
            relname="test_stub.py",
        )
        assert violations == []

    def test_repo_operators_clean(self):
        repo_root = Path(__file__).resolve().parent.parent
        project = load_project([repo_root / "src"], root=repo_root)
        assert run_checks(project, select_rules(["SC101"])) == []


# --------------------------------------------------------------------- SC201


class TestUnitSuffix:
    def test_mixed_unit_addition_flagged(self, tmp_path):
        violations = check_snippet(
            tmp_path,
            """
            def total(queue_ns, service_s):
                return queue_ns + service_s
            """,
            "SC201",
        )
        assert len(violations) == 1
        assert "'_ns'" in violations[0].message and "'_s'" in violations[0].message

    def test_mixed_unit_comparison_flagged(self, tmp_path):
        violations = check_snippet(
            tmp_path,
            """
            def over(used_gb, limit_bytes):
                return used_gb > limit_bytes
            """,
            "SC201",
        )
        assert len(violations) == 1

    def test_bare_latency_assignment_flagged(self, tmp_path):
        violations = check_snippet(
            tmp_path,
            """
            def f(t0_s, t1_s):
                latency = t1_s - t0_s
                return latency
            """,
            "SC201",
        )
        assert len(violations) == 1
        assert "no unit suffix" in violations[0].message

    def test_bare_annotated_param_flagged(self, tmp_path):
        violations = check_snippet(
            tmp_path,
            """
            def serve(timeout: float) -> None:
                pass
            """,
            "SC201",
        )
        assert len(violations) == 1

    def test_consistent_units_accepted(self, tmp_path):
        violations = check_snippet(
            tmp_path,
            """
            def total(queue_ns, service_ns, payload_bytes, window_bytes):
                latency_ns = queue_ns + service_ns
                footprint_bytes = payload_bytes + window_bytes
                converted_s = latency_ns * 1e-9
                rate = payload_bytes / converted_s
                return latency_ns, footprint_bytes, rate
            """,
            "SC201",
        )
        assert violations == []

    def test_rates_are_not_units(self, tmp_path):
        violations = check_snippet(
            tmp_path,
            """
            def bw(dram_bw_bytes_per_s, nic_bytes_per_s):
                return dram_bw_bytes_per_s + nic_bytes_per_s
            """,
            "SC201",
        )
        assert violations == []


# --------------------------------------------------------------------- SC301


class TestDeterminism:
    def test_global_numpy_rng_flagged(self, tmp_path):
        violations = check_snippet(
            tmp_path,
            """
            import numpy as np

            def sample():
                return np.random.rand(4)
            """,
            "SC301",
        )
        assert len(violations) == 1
        assert "global RNG" in violations[0].message

    def test_unseeded_default_rng_flagged(self, tmp_path):
        violations = check_snippet(
            tmp_path,
            """
            import numpy as np

            rng = np.random.default_rng()
            """,
            "SC301",
        )
        assert len(violations) == 1
        assert "without a seed" in violations[0].message

    def test_default_rng_none_flagged(self, tmp_path):
        violations = check_snippet(
            tmp_path,
            """
            import numpy as np

            rng = np.random.default_rng(None)
            """,
            "SC301",
        )
        assert len(violations) == 1

    def test_stdlib_random_flagged(self, tmp_path):
        violations = check_snippet(
            tmp_path,
            """
            import random
            from random import shuffle

            def scramble(items):
                shuffle(items)
                return random.choice(items)
            """,
            "SC301",
        )
        assert len(violations) == 2

    def test_seeded_generator_accepted(self, tmp_path):
        violations = check_snippet(
            tmp_path,
            """
            import numpy as np

            def make(seed: int = 0):
                rng = np.random.default_rng(seed)
                return rng.integers(0, 10, size=4)
            """,
            "SC301",
        )
        assert violations == []

    def test_tests_are_exempt(self, tmp_path):
        violations = check_snippet(
            tmp_path,
            """
            import numpy as np

            def fuzz():
                return np.random.rand(4)
            """,
            "SC301",
            relname="test_fuzz.py",
        )
        assert violations == []

    def test_inline_suppression(self, tmp_path):
        violations = check_snippet(
            tmp_path,
            """
            import numpy as np

            entropy = np.random.default_rng()  # staticcheck: ignore[SC301]
            """,
            "SC301",
        )
        assert violations == []


# --------------------------------------------------------------------- SC401


class TestDtypeDiscipline:
    def test_allocator_without_dtype_flagged(self, tmp_path):
        violations = check_snippet(
            tmp_path,
            """
            import numpy as np

            def alloc(batch):
                return np.zeros((batch, 32))
            """,
            "SC401",
            relname="core/operators/kernel.py",
        )
        assert len(violations) == 1
        assert "dtype=" in violations[0].message

    def test_astype_float64_flagged(self, tmp_path):
        violations = check_snippet(
            tmp_path,
            """
            import numpy as np

            def widen(x):
                return x.astype(float)
            """,
            "SC401",
            relname="core/operators/kernel.py",
        )
        assert len(violations) == 1
        assert "float64" in violations[0].message

    def test_explicit_fp32_accepted(self, tmp_path):
        violations = check_snippet(
            tmp_path,
            """
            import numpy as np

            def alloc(batch):
                out = np.zeros((batch, 32), dtype=np.float32)
                idx = np.empty(0, dtype=np.int64)
                return out, idx, out.astype(np.float32, copy=False)
            """,
            "SC401",
            relname="core/operators/kernel.py",
        )
        assert violations == []

    def test_outside_hot_path_exempt(self, tmp_path):
        violations = check_snippet(
            tmp_path,
            """
            import numpy as np

            def analysis_buffer(n):
                return np.zeros(n)
            """,
            "SC401",
            relname="analysis/helper.py",
        )
        assert violations == []


# --------------------------------------------------------------------- SC501


_CONFIG_FIXTURE = """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class ModelConfig:
        used_knob: int
        dead_knob: int
"""


class TestConfigReachability:
    def test_dead_knob_flagged(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "config.py").write_text(textwrap.dedent(_CONFIG_FIXTURE))
        (tmp_path / "src" / "consumer.py").write_text(
            "def f(cfg):\n    return cfg.used_knob\n"
        )
        project = load_project([tmp_path], root=tmp_path)
        violations = run_checks(project, select_rules(["SC501"]))
        assert len(violations) == 1
        assert "ModelConfig.dead_knob" in violations[0].message

    def test_read_knob_accepted(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "config.py").write_text(textwrap.dedent(_CONFIG_FIXTURE))
        (tmp_path / "src" / "consumer.py").write_text(
            "def f(cfg):\n    return cfg.used_knob + cfg.dead_knob\n"
        )
        project = load_project([tmp_path], root=tmp_path)
        assert run_checks(project, select_rules(["SC501"])) == []


# --------------------------------------------------------------------- SC601


_GOOD_EXPERIMENT = """
    def run(batch_size: int = 16):
        return {"batch": batch_size}

    def render(result):
        return str(result)
"""


def _write_experiment(tmp_path: Path, body: str, registry: str) -> Path:
    exp = tmp_path / "experiments"
    exp.mkdir()
    (exp / "fig99_fixture.py").write_text(textwrap.dedent(body))
    (exp / "__init__.py").write_text(textwrap.dedent(registry))
    return tmp_path


class TestExperimentRegistry:
    def test_conforming_module_accepted(self, tmp_path):
        _write_experiment(
            tmp_path,
            _GOOD_EXPERIMENT,
            """
            from . import fig99_fixture

            REGISTRY = {"figure99": fig99_fixture}
            """,
        )
        project = load_project([tmp_path], root=tmp_path)
        assert run_checks(project, select_rules(["SC601"])) == []

    def test_missing_run_and_render_flagged(self, tmp_path):
        _write_experiment(
            tmp_path,
            "VALUE = 1\n",
            """
            from . import fig99_fixture

            REGISTRY = {"figure99": fig99_fixture}
            """,
        )
        project = load_project([tmp_path], root=tmp_path)
        messages = [v.message for v in run_checks(project, select_rules(["SC601"]))]
        assert any("no top-level run()" in m for m in messages)
        assert any("no top-level render" in m for m in messages)

    def test_required_parameter_flagged(self, tmp_path):
        _write_experiment(
            tmp_path,
            """
            def run(fleet):
                return fleet

            def render(result):
                return str(result)
            """,
            """
            from . import fig99_fixture

            REGISTRY = {"figure99": fig99_fixture}
            """,
        )
        project = load_project([tmp_path], root=tmp_path)
        violations = run_checks(project, select_rules(["SC601"]))
        assert len(violations) == 1
        assert "without defaults" in violations[0].message

    def test_unregistered_module_flagged(self, tmp_path):
        _write_experiment(tmp_path, _GOOD_EXPERIMENT, "REGISTRY = {}\n")
        project = load_project([tmp_path], root=tmp_path)
        violations = run_checks(project, select_rules(["SC601"]))
        assert len(violations) == 1
        assert "missing from" in violations[0].message


# --------------------------------------------------------------------- SC801


class TestObsNaming:
    def test_bad_span_name_flagged(self, tmp_path):
        violations = check_snippet(
            tmp_path,
            """
            def record(tracer, now_s):
                span_id = tracer.begin("bad-name", now_s)
                tracer.end(span_id, now_s)
            """,
            "SC801",
        )
        assert len(violations) == 1
        assert "layer.component.event" in violations[0].message

    def test_two_segment_name_flagged(self, tmp_path):
        violations = check_snippet(
            tmp_path,
            """
            def record(registry):
                registry.counter("serving.retries").inc()
            """,
            "SC801",
        )
        assert len(violations) == 1
        assert "'serving.retries'" in violations[0].message

    def test_good_names_pass(self, tmp_path):
        violations = check_snippet(
            tmp_path,
            """
            def record(tracer, registry, now_s):
                span_id = tracer.begin("serving.router.attempt", now_s)
                tracer.instant("serving.router.retry", now_s)
                tracer.end(span_id, now_s)
                registry.counter("serving.router.retries").inc()
                registry.histogram("serving.router.latency_s").observe(0.1)
            """,
            "SC801",
        )
        assert violations == []

    def test_discarded_begin_flagged(self, tmp_path):
        violations = check_snippet(
            tmp_path,
            """
            def record(tracer, now_s):
                tracer.begin("serving.router.request", now_s)
            """,
            "SC801",
        )
        assert len(violations) == 1
        assert "discarded" in violations[0].message

    def test_dynamic_name_trusted(self, tmp_path):
        violations = check_snippet(
            tmp_path,
            """
            def record(tracer, op_type, begin_s, end_s):
                tracer.complete(f"serving.op.{op_type}", begin_s, end_s)
            """,
            "SC801",
        )
        assert violations == []

    def test_tests_exempt(self, tmp_path):
        violations = check_snippet(
            tmp_path,
            """
            def test_rejects_bad_name(tracer):
                tracer.instant("not dotted", 0.0)
            """,
            "SC801",
            relname="tests/test_fixture.py",
        )
        assert violations == []


# ------------------------------------------------------------ graph validator


def _config(top=(128, 64, 1), final="sigmoid", interaction="concat", dims=(32, 32)):
    return ModelConfig(
        name="fixture",
        model_class="RMC1",
        dense_features=64,
        bottom_mlp=MLPConfig([128, 32]),
        embedding_tables=tuple(
            EmbeddingTableConfig(rows=1000, dim=d, lookups_per_sample=4) for d in dims
        ),
        top_mlp=MLPConfig(list(top), final_activation=final),
        interaction=interaction,
    )


class TestGraphValidator:
    def test_all_production_presets_valid(self):
        assert validate_presets() == []

    def test_explicit_preset_list(self):
        assert validate_presets(PRODUCTION_PRESETS.values()) == []

    def test_non_scalar_ctr_head_flagged(self):
        problems = validate_config(_config(top=(128, 7), final=None))
        stages = {p.stage for p in problems}
        assert "top-mlp" in stages
        assert any("width 1" in p.message for p in problems)

    def test_missing_sigmoid_flagged(self):
        problems = validate_config(_config(final=None))
        assert any("sigmoid" in p.message for p in problems)

    def test_top_input_drift_flagged(self):
        class Drifted(ModelConfig):
            @property
            def top_mlp_input_dim(self):  # simulates property/graph drift
                return 9999

        cfg = Drifted(
            name="drifted",
            model_class="RMC1",
            dense_features=64,
            bottom_mlp=MLPConfig([128, 32]),
            embedding_tables=(
                EmbeddingTableConfig(rows=1000, dim=32, lookups_per_sample=4),
            ),
            top_mlp=MLPConfig([64, 1], final_activation="sigmoid"),
        )
        problems = validate_config(cfg)
        assert any(p.stage == "concat" for p in problems)


# ------------------------------------------------------------------ baseline


_VIOLATING = """
    import numpy as np

    rng = np.random.default_rng()
"""


class TestBaseline:
    def test_round_trip_suppresses_everything(self, tmp_path):
        (tmp_path / "mod.py").write_text(textwrap.dedent(_VIOLATING))
        project = load_project([tmp_path], root=tmp_path)
        violations = run_checks(project, select_rules(["SC301"]))
        assert violations

        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline_path, violations)
        baseline = load_baseline(baseline_path)
        new, suppressed = apply_baseline(violations, baseline)
        assert new == []
        assert suppressed == len(violations)

    def test_new_violation_survives_baseline(self, tmp_path):
        (tmp_path / "mod.py").write_text(textwrap.dedent(_VIOLATING))
        project = load_project([tmp_path], root=tmp_path)
        violations = run_checks(project, select_rules(["SC301"]))
        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline_path, violations)

        (tmp_path / "other.py").write_text(textwrap.dedent(_VIOLATING))
        project = load_project([tmp_path], root=tmp_path)
        violations = run_checks(project, select_rules(["SC301"]))
        new, suppressed = apply_baseline(violations, load_baseline(baseline_path))
        assert len(new) == 1
        assert new[0].path == "other.py"
        assert suppressed == 1

    def test_baseline_is_a_multiset(self, tmp_path):
        source = textwrap.dedent(
            """
            import numpy as np

            a = np.random.default_rng()
            """
        )
        (tmp_path / "mod.py").write_text(source)
        project = load_project([tmp_path], root=tmp_path)
        violations = run_checks(project, select_rules(["SC301"]))
        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline_path, violations)

        # A second occurrence of the SAME fingerprint must still fail.
        (tmp_path / "mod.py").write_text(
            source + "b = np.random.default_rng()\n"
        )
        project = load_project([tmp_path], root=tmp_path)
        violations = run_checks(project, select_rules(["SC301"]))
        new, _ = apply_baseline(violations, load_baseline(baseline_path))
        assert len(new) == 1


# ----------------------------------------------------------------- CLI + JSON


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x_ns = 1\n")
        code = main([str(tmp_path), "--root", str(tmp_path), "--no-graphs"])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_violations_exit_nonzero_with_location(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(textwrap.dedent(_VIOLATING))
        code = main([str(tmp_path), "--root", str(tmp_path), "--no-graphs"])
        assert code == 1
        out = capsys.readouterr().out
        assert "bad.py:4:" in out  # file:line diagnostics
        assert "SC301" in out

    def test_parse_error_fails_the_run(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def f(:\n")
        code = main([str(tmp_path), "--root", str(tmp_path), "--no-graphs"])
        assert code == 1
        assert "SC001" in capsys.readouterr().out

    def test_write_then_check_with_baseline(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(textwrap.dedent(_VIOLATING))
        baseline = tmp_path / "accepted.json"
        assert (
            main(
                [
                    str(tmp_path),
                    "--root",
                    str(tmp_path),
                    "--no-graphs",
                    "--baseline",
                    str(baseline),
                    "--write-baseline",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                [
                    str(tmp_path),
                    "--root",
                    str(tmp_path),
                    "--no-graphs",
                    "--baseline",
                    str(baseline),
                ]
            )
            == 0
        )

    def test_json_report_schema(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(textwrap.dedent(_VIOLATING))
        code = main([str(tmp_path), "--root", str(tmp_path), "--no-graphs", "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == REPORT_SCHEMA_VERSION
        assert payload["exit_code"] == 1
        assert payload["checked_files"] == 1
        assert isinstance(payload["counts"], dict)
        violation = payload["violations"][0]
        assert set(violation) == {"rule", "name", "path", "line", "col", "message"}
        assert violation["rule"] == "SC301"

    def test_select_restricts_rules(self, tmp_path):
        (tmp_path / "bad.py").write_text(textwrap.dedent(_VIOLATING))
        assert (
            main(
                [
                    str(tmp_path),
                    "--root",
                    str(tmp_path),
                    "--no-graphs",
                    "--select",
                    "SC201",
                ]
            )
            == 0
        )

    def test_unknown_rule_token_is_an_error(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x_ns = 1\n")
        code = main([str(tmp_path), "--root", str(tmp_path), "--select", "SC999"])
        assert code == 2
        assert "SC999" in capsys.readouterr().err

    def test_missing_path_is_an_error(self, tmp_path, capsys):
        code = main([str(tmp_path / "no-such-dir"), "--root", str(tmp_path)])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.id in out
        assert "SC701" in out


# ------------------------------------------------------------ the real tree


def test_repository_is_clean():
    """The acceptance invariant: the checked-in tree passes its own linter."""
    repo_root = Path(__file__).resolve().parent.parent
    project = load_project(
        [
            repo_root / "src",
            repo_root / "tests",
            repo_root / "benchmarks",
            repo_root / "examples",
        ],
        root=repo_root,
    )
    violations = run_checks(project, list(ALL_RULES))
    assert violations == [], "\n".join(v.format() for v in violations)
    assert validate_presets() == []
