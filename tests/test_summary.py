"""Tests for model summaries and the Figure-3 diagram renderer."""

import pytest

from repro.config import RMC1_DOT, RMC1_SMALL, RMC2_SMALL, RMC3_SMALL
from repro.core.summary import architecture_diagram, model_summary


class TestModelSummary:
    def test_lists_every_operator(self):
        from repro.core.graph import config_ops

        text = model_summary(RMC1_SMALL)
        for spec in config_ops(RMC1_SMALL):
            assert spec.name in text

    def test_totals_match_config(self):
        text = model_summary(RMC2_SMALL)
        mb = RMC2_SMALL.total_storage_bytes() / 1e6
        assert f"{mb:,.1f} MB" in text

    def test_flops_scale_with_batch(self):
        b1 = model_summary(RMC3_SMALL, batch_size=1)
        b8 = model_summary(RMC3_SMALL, batch_size=8)
        assert "FLOPs @b1" in b1 and "FLOPs @b8" in b8

    def test_dot_model_includes_interaction(self):
        text = model_summary(RMC1_DOT)
        assert "interaction" in text and "BatchMM" in text

    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            model_summary(RMC1_SMALL, batch_size=0)


class TestArchitectureDiagram:
    def test_mentions_all_components(self):
        text = architecture_diagram(RMC2_SMALL)
        assert "Top-MLP" in text
        assert "Bottom-MLP" in text
        assert "SparseLengthsSum" in text
        assert "CTR" in text

    def test_uniform_tables_compact_line(self):
        text = architecture_diagram(RMC2_SMALL)
        assert "20 x [2,000,000 rows x 32]" in text

    def test_dot_interaction_labelled(self):
        assert "dot-interaction" in architecture_diagram(RMC1_DOT)
        assert "dot-interaction" not in architecture_diagram(RMC1_SMALL)

    def test_lookup_total(self):
        text = architecture_diagram(RMC3_SMALL)
        assert f"({RMC3_SMALL.total_lookups}/sample)" in text
