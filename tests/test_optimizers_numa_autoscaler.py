"""Tests for optimizers, NUMA placement, and the autoscaler."""

import numpy as np
import pytest

from repro.config import MLPConfig, ModelConfig, RMC2_SMALL, RMC3_SMALL, uniform_tables
from repro.core import RecommendationModel
from repro.data import SyntheticCtrDataset
from repro.hw import BROADWELL
from repro.hw.numa import PLACEMENTS, numa_latency, placement_comparison
from repro.serving.autoscaler import Autoscaler, DiurnalLoad, static_provisioning
from repro.train import Adagrad, MomentumSGD, SGD, TrainableDLRM, Trainer


def tiny_config():
    return ModelConfig(
        name="tiny",
        model_class="RMC1",
        dense_features=6,
        bottom_mlp=MLPConfig([12, 8]),
        embedding_tables=uniform_tables(2, 50, 8, 3),
        top_mlp=MLPConfig([8, 1], final_activation="sigmoid"),
    )


class TestOptimizers:
    @pytest.mark.parametrize("optimizer_factory", [
        lambda: SGD(0.3),
        lambda: MomentumSGD(0.05, momentum=0.9),
        lambda: Adagrad(0.3),
    ], ids=["sgd", "momentum", "adagrad"])
    def test_all_optimizers_reduce_loss(self, optimizer_factory):
        config = tiny_config()
        dataset = SyntheticCtrDataset(config, signal_scale=2.0, seed=8)
        trainer = Trainer(
            TrainableDLRM(RecommendationModel(config)),
            dataset,
            optimizer=optimizer_factory(),
        )
        report = trainer.fit(steps=200, batch_size=128, eval_samples=1000)
        assert report.final_loss < report.initial_loss - 0.03
        assert report.eval_auc > 0.6

    def test_adagrad_state_is_sparse(self):
        config = tiny_config()
        dataset = SyntheticCtrDataset(config, seed=8)
        adagrad = Adagrad(0.1)
        trainer = Trainer(
            TrainableDLRM(RecommendationModel(config)), dataset, optimizer=adagrad
        )
        trainer.fit(steps=3, batch_size=4, eval_samples=100)
        # Only rows touched by 3 tiny batches carry accumulator entries.
        assert 0 < adagrad.touched_rows(0) <= 3 * 4 * 3

    def test_adagrad_shrinks_effective_step(self):
        """Repeated identical gradients must shrink the applied update."""
        config = tiny_config()
        model = RecommendationModel(config)
        trainable = TrainableDLRM(model)
        dataset = SyntheticCtrDataset(config, seed=4)
        batch = dataset.batch(16)
        adagrad = Adagrad(0.5)
        from repro.train.losses import bce_with_logits_grad

        deltas = []
        for _ in range(3):
            logits, cache = trainable.forward_logits(batch.dense, batch.sparse)
            grads = trainable.backward(
                bce_with_logits_grad(logits, batch.labels), cache
            )
            before = model.bottom_ops[0].weight.copy()
            adagrad.apply(model, grads)
            deltas.append(np.abs(model.bottom_ops[0].weight - before).mean())
        assert deltas[2] < deltas[0]

    def test_rejects_bad_hyperparams(self):
        with pytest.raises(ValueError):
            SGD(0.0)
        with pytest.raises(ValueError):
            MomentumSGD(0.1, momentum=1.0)
        with pytest.raises(ValueError):
            Adagrad(0.1, eps=0.0)


class TestNuma:
    def test_local_fastest_remote_slowest(self):
        results = placement_comparison(BROADWELL, RMC2_SMALL, 32)
        assert (
            results["local"].total_seconds
            < results["interleave"].total_seconds
            < results["remote"].total_seconds
        )

    def test_compute_bound_model_insensitive(self):
        results = placement_comparison(BROADWELL, RMC3_SMALL, 32)
        spread = results["remote"].total_seconds / results["local"].total_seconds
        assert spread < 1.15  # RMC3 barely touches DRAM for embeddings

    def test_memory_bound_model_sensitive(self):
        results = placement_comparison(BROADWELL, RMC2_SMALL, 32)
        spread = results["remote"].total_seconds / results["local"].total_seconds
        assert spread > 1.3

    def test_all_placements_enumerated(self):
        assert set(PLACEMENTS) == {"local", "remote", "interleave"}

    def test_rejects_unknown_placement(self):
        with pytest.raises(ValueError):
            numa_latency(BROADWELL, RMC2_SMALL, 32, placement="far")


class TestAutoscaler:
    @pytest.fixture(scope="class")
    def setup(self):
        scaler = Autoscaler(BROADWELL, RMC2_SMALL, batch_size=32)
        load = DiurnalLoad(peak_items_per_s=20 * scaler.replica_capacity)
        return scaler, load

    def test_diurnal_load_shape(self):
        load = DiurnalLoad(peak_items_per_s=100.0, trough_ratio=0.5)
        assert load.at(0.0) == pytest.approx(50.0)
        assert load.at(12.0) == pytest.approx(100.0)

    def test_fleet_follows_demand(self, setup):
        scaler, load = setup
        result = scaler.run(load)
        replicas = [s.replicas for s in result.steps]
        assert max(replicas) > 1.5 * min(replicas)

    def test_autoscaling_cheaper_than_static(self, setup):
        scaler, load = setup
        dynamic = scaler.run(load)
        static = static_provisioning(scaler, load)
        assert dynamic.machine_hours < 0.85 * static.machine_hours

    def test_static_never_violates(self, setup):
        scaler, load = setup
        static = static_provisioning(scaler, load)
        assert static.violation_fraction == 0.0

    def test_dynamic_violations_bounded(self, setup):
        scaler, load = setup
        result = scaler.run(load)
        assert result.violation_fraction < 0.1

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            Autoscaler(BROADWELL, RMC2_SMALL, target_utilization=0.9,
                       sla_utilization=0.8)
        with pytest.raises(ValueError):
            DiurnalLoad(peak_items_per_s=0)
