"""Slower experiment integration tests (cache simulation, DES)."""

import pytest

from repro.experiments import fig05_intensity_mpki, fig09_colocation, fig11_tail_latency

pytestmark = pytest.mark.slow


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig05_intensity_mpki.run(trace_length=10_000, iterations=3)

    def test_sls_dominates_mpki(self, result):
        mpki = result.mpki_by_name()
        assert mpki["SLS"] > 5 * max(mpki["FC"], mpki["RNN"], mpki["CNN"])

    def test_sls_in_paper_band(self, result):
        """Paper: SLS LLC miss rate is 1-10 MPKI (≈8 typical)."""
        assert 1.0 <= result.mpki_by_name()["SLS"] <= 15.0

    def test_cnn_lowest_mpki(self, result):
        mpki = result.mpki_by_name()
        assert mpki["CNN"] <= min(mpki["FC"], mpki["RNN"])

    def test_dense_ops_below_one(self, result):
        mpki = result.mpki_by_name()
        assert mpki["FC"] < 1.5 and mpki["RNN"] < 1.5 and mpki["CNN"] < 0.5

    def test_intensity_anchor(self, result):
        assert result.intensity_by_name()["SLS"] == pytest.approx(0.25, abs=0.1)

    def test_render(self, result):
        assert "MPKI" in fig05_intensity_mpki.render(result)


class TestFigure9:
    @pytest.fixture(scope="class")
    def result(self):
        return fig09_colocation.run()

    def test_n8_degradations(self, result):
        assert result.degradation("RMC1-small", 8) == pytest.approx(1.3, rel=0.25)
        assert result.degradation("RMC2-small", 8) == pytest.approx(2.6, rel=0.25)
        assert result.degradation("RMC3-small", 8) == pytest.approx(1.6, rel=0.25)

    def test_rmc2_sls_and_fc(self, result):
        assert result.op_degradation("RMC2-small", 8, "SLS") == pytest.approx(
            3.0, rel=0.25
        )
        assert result.op_degradation("RMC2-small", 8, "FC") == pytest.approx(
            1.6, rel=0.25
        )

    def test_rmc1_sls_share_growth(self, result):
        assert result.sls_share("RMC1-small", 1) == pytest.approx(0.15, abs=0.07)
        assert result.sls_share("RMC1-small", 8) == pytest.approx(0.35, abs=0.10)


class TestFigure11:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11_tail_latency.run(duration_s=0.4)

    def test_broadwell_multimodal(self, result):
        assert result.servers["Broadwell"].modes >= 3

    def test_skylake_single_mode(self, result):
        assert result.servers["Skylake"].modes == 1

    def test_broadwell_p99_blows_up(self, result):
        bdw = result.servers["Broadwell"]
        skl = result.servers["Skylake"]
        assert bdw.p99_growth(bdw.curve_small) > 2.0
        assert skl.p99_growth(skl.curve_small) < 1.3

    def test_large_fc_degrades_on_both_but_worse_on_broadwell(self, result):
        bdw = result.servers["Broadwell"]
        skl = result.servers["Skylake"]
        assert skl.p99_growth(skl.curve_large) > 1.5
        assert bdw.p99_growth(bdw.curve_large) > skl.p99_growth(skl.curve_large)

    def test_mean_grows_with_colocation(self, result):
        curve = result.servers["Broadwell"].curve_small
        assert curve[-1].summary.mean > curve[0].summary.mean

    def test_render(self, result):
        text = fig11_tail_latency.render(result)
        assert "mode" in text
