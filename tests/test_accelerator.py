"""Tests for the FC-accelerator Amdahl analysis (Takeaway 2)."""

import pytest

from repro.config import RMC1_SMALL, RMC2_SMALL, RMC3_SMALL
from repro.hw import (
    AcceleratorConfig,
    BROADWELL,
    accelerate_fc,
    speedup_sweep,
)


class TestAccelerateFc:
    def test_rmc3_gains_most(self):
        """FC acceleration helps the compute-bound class..."""
        result = accelerate_fc(BROADWELL, RMC3_SMALL, 16)
        assert result.end_to_end_speedup > 3.0

    def test_rmc2_gains_little(self):
        """...but barely moves the embedding-dominated class — the paper's
        'limited benefits on end-to-end performance' argument."""
        result = accelerate_fc(BROADWELL, RMC2_SMALL, 16)
        assert result.end_to_end_speedup < 1.3

    def test_speedup_bounded_by_amdahl(self):
        for config in (RMC1_SMALL, RMC2_SMALL, RMC3_SMALL):
            result = accelerate_fc(
                BROADWELL, config, 16, AcceleratorConfig(fc_speedup=1e6)
            )
            assert result.end_to_end_speedup <= result.amdahl_limit + 1e-6

    def test_overhead_can_negate_gain(self):
        """A slow offload path makes acceleration a loss for small FCs."""
        heavy = AcceleratorConfig(fc_speedup=10, offload_overhead_s=1e-3)
        result = accelerate_fc(BROADWELL, RMC1_SMALL, 1, heavy)
        assert result.end_to_end_speedup < 1.0

    def test_fc_share_matches_timing_model(self):
        result = accelerate_fc(BROADWELL, RMC3_SMALL, 16)
        assert result.fc_share > 0.9

    def test_sweep_monotone_in_speedup(self):
        sweeps = speedup_sweep(
            BROADWELL, [RMC3_SMALL], 16, fc_speedups=[2, 5, 10, 50]
        )
        speedups = [r.end_to_end_speedup for r in sweeps[RMC3_SMALL.name]]
        assert speedups == sorted(speedups)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(fc_speedup=0.9)
        with pytest.raises(ValueError):
            AcceleratorConfig(offload_overhead_s=-1)
