"""Tests for the DLRM dot-interaction model variant (BatchMatMul path)."""

import numpy as np
import pytest

from repro.config import (
    ConfigError,
    MLPConfig,
    ModelConfig,
    RMC1_DOT,
    RMC1_SMALL,
    scaled_for_execution,
    uniform_tables,
)
from repro.core import RecommendationModel
from repro.core.graph import config_ops
from repro.data import generate_inputs
from repro.hw import BROADWELL, TimingModel


class TestDotConfig:
    def test_preset_valid(self):
        assert RMC1_DOT.interaction == "dot"
        assert RMC1_DOT.num_interaction_vectors == 3

    def test_top_input_dim_is_pairs_plus_dense(self):
        v = RMC1_DOT.num_interaction_vectors
        expected = RMC1_DOT.bottom_mlp.output_dim + v * (v - 1) // 2
        assert RMC1_DOT.top_mlp_input_dim == expected

    def test_interaction_flops_counted(self):
        assert RMC1_DOT.interaction_flops_per_sample() > 0
        assert RMC1_SMALL.interaction_flops_per_sample() == 0
        assert RMC1_DOT.flops_per_sample() > 0

    def test_rejects_mismatched_dims(self):
        with pytest.raises(ConfigError):
            ModelConfig(
                name="bad",
                model_class="RMC1",
                dense_features=8,
                bottom_mlp=MLPConfig([16]),  # 16 != table dim 8
                embedding_tables=uniform_tables(2, 100, 8, 2),
                top_mlp=MLPConfig([4, 1]),
                interaction="dot",
            )

    def test_rejects_unknown_interaction(self):
        with pytest.raises(ConfigError):
            ModelConfig(
                name="bad",
                model_class="RMC1",
                dense_features=8,
                bottom_mlp=MLPConfig([8]),
                embedding_tables=uniform_tables(2, 100, 8, 2),
                top_mlp=MLPConfig([4, 1]),
                interaction="sum",
            )

    def test_scaled_preserves_interaction(self):
        assert scaled_for_execution(RMC1_DOT, 1000).interaction == "dot"


class TestDotExecution:
    @pytest.fixture(scope="class")
    def model(self):
        return RecommendationModel(scaled_for_execution(RMC1_DOT, max_rows=2000))

    def test_forward_produces_probabilities(self, model):
        dense, sparse = generate_inputs(model.config, 8)
        out = model.forward(dense, sparse)
        assert out.shape == (8,)
        assert np.all((out >= 0) & (out <= 1))

    def test_batchmm_appears_in_profile(self, model):
        dense, sparse = generate_inputs(model.config, 8)
        _, profile = model.forward_profiled(dense, sparse)
        assert "BatchMM" in profile.fraction_by_op_type()

    def test_interaction_output_feeds_top_mlp(self, model):
        assert model.interaction_op is not None
        assert (
            model.concat_op.output_dim
            == model.config.top_mlp_input_dim
        )


class TestDotGraphAndTiming:
    def test_graph_contains_batchmm(self):
        types = [s.op_type for s in config_ops(RMC1_DOT)]
        assert "BatchMM" in types

    def test_graph_matches_model_operators(self):
        model = RecommendationModel(scaled_for_execution(RMC1_DOT, max_rows=500))
        assert [s.name for s in config_ops(RMC1_DOT)] == [
            op.name for op in model.operators()
        ]

    def test_timing_model_handles_dot(self):
        latency = TimingModel(BROADWELL).model_latency(RMC1_DOT, 16)
        assert latency.total_seconds > 0
        assert "BatchMM" in latency.seconds_by_op_type()

    def test_fc_plus_batchmm_dominates(self):
        """The paper's RMC1 statement covers BatchMatMul *or* FC."""
        frac = TimingModel(BROADWELL).model_latency(RMC1_DOT, 1).fraction_by_op_type()
        assert frac.get("FC", 0) + frac.get("BatchMM", 0) > 0.5
