"""Tests for the reference CNN/RNN operators and cost comparisons."""

import numpy as np
import pytest

from repro.core.operators import Conv2D, FullyConnected, RecurrentCell
from repro.core.operators.base import sum_costs, ZERO_COST


class TestConv2D:
    def test_forward_matches_direct_convolution(self):
        conv = Conv2D("c", in_channels=2, out_channels=3, kernel_size=3, spatial=5)
        x = np.random.default_rng(0).standard_normal((1, 2, 5, 5)).astype(np.float32)
        out = conv.forward(x)
        # Direct computation for one output position.
        w = conv.weight.reshape(3, 2, 3, 3)
        expected = (x[0, :, 0:3, 0:3] * w[1]).sum()
        assert out[0, 1, 0, 0] == pytest.approx(expected, rel=1e-4)

    def test_output_spatial_with_stride(self):
        conv = Conv2D("c", 2, 2, 3, 9, stride=2)
        assert conv.out_spatial == 4
        out = conv.forward(np.zeros((1, 2, 9, 9), dtype=np.float32))
        assert out.shape == (1, 2, 4, 4)

    def test_rejects_kernel_bigger_than_input(self):
        with pytest.raises(ValueError):
            Conv2D("c", 2, 2, 7, 5)

    def test_high_operational_intensity(self):
        conv = Conv2D("c", 64, 64, 3, 56)
        assert conv.cost(1).operational_intensity > 50

    def test_trace_reuses_activation_region(self):
        conv = Conv2D("c", 4, 4, 3, 8)
        a = [m.address for m in conv.address_trace(1)]
        b = [m.address for m in conv.address_trace(1)]
        assert a == b  # inputs come hot from the previous layer


class TestRecurrentCell:
    def test_forward_shape(self):
        rnn = RecurrentCell("r", input_dim=4, hidden_dim=6, timesteps=3)
        out = rnn.forward(np.zeros((2, 3, 4), dtype=np.float32))
        assert out.shape == (2, 6)

    def test_forward_matches_manual_unroll(self):
        rnn = RecurrentCell("r", 2, 3, 2, rng=np.random.default_rng(5))
        x = np.random.default_rng(6).standard_normal((1, 2, 2)).astype(np.float32)
        h = np.tanh(x[:, 0, :] @ rnn.w_input)
        h = np.tanh(x[:, 1, :] @ rnn.w_input + h @ rnn.w_hidden)
        np.testing.assert_allclose(rnn.forward(x), h, rtol=1e-5)

    def test_rejects_wrong_timesteps(self):
        rnn = RecurrentCell("r", 4, 6, 3)
        with pytest.raises(ValueError):
            rnn.forward(np.zeros((2, 4, 4), dtype=np.float32))

    def test_weights_restreamed_per_timestep(self):
        rnn = RecurrentCell("r", 4, 6, timesteps=5)
        weight_reads = [m for m in rnn.address_trace(1) if m.address == 0]
        assert len(weight_reads) == 5

    def test_intensity_between_sls_and_fc(self):
        """The Figure 5 ordering: SLS << RNN < FC-at-batch < CNN."""
        rnn = RecurrentCell("r", 1024, 1024, 50)
        fc = FullyConnected("fc", 2048, 1000)
        conv = Conv2D("c", 64, 64, 3, 56)
        rnn_oi = rnn.cost(8).operational_intensity
        fc_oi = fc.cost(32).operational_intensity
        conv_oi = conv.cost(1).operational_intensity
        assert 1 < rnn_oi < fc_oi < conv_oi


class TestCostAlgebra:
    def test_sum_costs(self):
        fc = FullyConnected("fc", 4, 4)
        total = sum_costs([fc.cost(1), fc.cost(1)])
        assert total.flops == 2 * fc.cost(1).flops

    def test_sum_costs_empty(self):
        assert sum_costs([]) == ZERO_COST

    def test_total_bytes(self):
        cost = FullyConnected("fc", 4, 4).cost(1)
        assert cost.total_bytes == cost.bytes_read + cost.bytes_written
