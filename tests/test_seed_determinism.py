"""Seed-determinism regression tests across the serving stack.

Every stochastic component must be a pure function of its explicit seed:
identical seeds give byte-identical results, different seeds differ, and
no RNG is derived from process-dependent state (``hash()`` salting was the
one offender — pinned here via :func:`repro.serving.stable_fc_seed`).
"""

import json

import numpy as np

from repro.config import RMC1_SMALL, RMC2_SMALL
from repro.hw import BROADWELL
from repro.serving import (
    ResiliencePolicy,
    ResilientRouter,
    ServingSimulator,
    SpikeLoadGenerator,
    LoadSpike,
    fault_storm,
    stable_fc_seed,
)


def _summary_bytes(seed: int) -> bytes:
    """Canonical byte serialization of one seeded simulation summary."""
    sim = ServingSimulator(
        BROADWELL, RMC2_SMALL, 16, num_instances=2, per_instance_qps=800,
        seed=seed,
    )
    result = sim.run(0.25)
    summary = result.summary()
    payload = {
        "count": summary.count,
        "mean": summary.mean,
        "p50": summary.p50,
        "p99": summary.p99,
        "p999": summary.p999,
        "offered": result.offered,
    }
    return json.dumps(payload, sort_keys=True).encode()


class TestSimulatorSeeds:
    def test_identical_seeds_byte_identical_summaries(self):
        assert _summary_bytes(5) == _summary_bytes(5)

    def test_different_seeds_differ(self):
        assert _summary_bytes(5) != _summary_bytes(6)


class TestRouterSeeds:
    def _run(self, seed: int, fault_seed: int) -> np.ndarray:
        router = ResilientRouter(
            BROADWELL, RMC1_SMALL, 8, 4,
            policy=ResiliencePolicy(timeout_s=0.002, max_retries=1,
                                    hedge_delay_s=0.0005),
            seed=seed,
        )
        storm = fault_storm(4, 0.2, seed=fault_seed)
        return router.run(15000.0, 0.2, faults=storm).latencies_s

    def test_identical_seeds_identical_latencies(self):
        np.testing.assert_array_equal(self._run(9, 2), self._run(9, 2))

    def test_router_seed_changes_latencies(self):
        assert not np.array_equal(self._run(9, 2), self._run(10, 2))

    def test_fault_seed_changes_latencies(self):
        assert not np.array_equal(self._run(9, 2), self._run(9, 3))


class TestLoadGeneratorSeeds:
    def test_spike_generator_reproducible(self):
        spikes = (LoadSpike(start_s=0.05, duration_s=0.1, multiplier=3.0),)

        def arrivals(seed):
            gen = SpikeLoadGenerator(2000.0, spikes=spikes, seed=seed)
            return [q.arrival_s for q in gen.generate(0.3)]

        assert arrivals(4) == arrivals(4)
        assert arrivals(4) != arrivals(5)


class TestStableFcSeed:
    """Pin the hash()-free seed derivation for FC latency sampling.

    The previous derivation used ``hash((input_dim, output_dim))``, whose
    value is only stable by accident of CPython's int hashing; these pins
    fail loudly if anyone reintroduces interpreter-dependent seeding.
    """

    def test_pinned_values(self):
        assert stable_fc_seed(512, 512) == 2204730368
        assert stable_fc_seed(256, 64) == 790919872
        assert stable_fc_seed(64, 256) == 1056802880

    def test_fits_in_uint32(self):
        for input_dim in (1, 7, 512, 65536):
            for output_dim in (1, 13, 1024):
                seed = stable_fc_seed(input_dim, output_dim)
                assert 0 <= seed < 2**32

    def test_asymmetric_in_layout(self):
        assert stable_fc_seed(256, 64) != stable_fc_seed(64, 256)

    def test_fc_latency_samples_use_stable_seed(self):
        sim = ServingSimulator(
            BROADWELL, RMC2_SMALL, 16, num_instances=1,
            per_instance_qps=500, seed=0,
        )
        result = sim.run(0.1)
        a = sim.fc_latency_samples(result, 512, 512)
        b = sim.fc_latency_samples(result, 512, 512)
        np.testing.assert_array_equal(a, b)
