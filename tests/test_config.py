"""Unit tests for repro.config.model_config."""

import pytest

from repro.config import (
    ConfigError,
    EmbeddingTableConfig,
    MLPConfig,
    ModelConfig,
    uniform_tables,
)


def make_config(**overrides):
    defaults = dict(
        name="test",
        model_class="RMC1",
        dense_features=16,
        bottom_mlp=MLPConfig([32, 16]),
        embedding_tables=uniform_tables(2, 100, 8, 4),
        top_mlp=MLPConfig([8, 1], final_activation="sigmoid"),
    )
    defaults.update(overrides)
    return ModelConfig(**defaults)


class TestEmbeddingTableConfig:
    def test_storage_bytes_fp32(self):
        table = EmbeddingTableConfig(rows=1000, dim=32, lookups_per_sample=4)
        assert table.storage_bytes() == 1000 * 32 * 4

    def test_storage_bytes_fp16(self):
        table = EmbeddingTableConfig(rows=1000, dim=32, lookups_per_sample=4)
        assert table.storage_bytes("fp16") == 1000 * 32 * 2

    def test_bytes_read_per_sample(self):
        table = EmbeddingTableConfig(rows=1000, dim=32, lookups_per_sample=4)
        assert table.bytes_read_per_sample() == 4 * 32 * 4

    def test_flops_per_sample(self):
        table = EmbeddingTableConfig(rows=1000, dim=32, lookups_per_sample=4)
        assert table.flops_per_sample() == 4 * 32

    @pytest.mark.parametrize("field", ["rows", "dim", "lookups_per_sample"])
    def test_rejects_non_positive(self, field):
        kwargs = dict(rows=10, dim=8, lookups_per_sample=2)
        kwargs[field] = 0
        with pytest.raises(ConfigError):
            EmbeddingTableConfig(**kwargs)


class TestMLPConfig:
    def test_depth_and_output_dim(self):
        mlp = MLPConfig([128, 64, 32])
        assert mlp.depth == 3
        assert mlp.output_dim == 32

    def test_parameter_count(self):
        mlp = MLPConfig([4, 2])
        # 3*4 + 4 (layer 1) + 4*2 + 2 (layer 2)
        assert mlp.parameter_count(3) == 16 + 10

    def test_flops_per_sample(self):
        mlp = MLPConfig([4, 2])
        assert mlp.flops_per_sample(3) == 2 * (3 * 4 + 4 * 2)

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            MLPConfig([])

    def test_rejects_bad_activation(self):
        with pytest.raises(ConfigError):
            MLPConfig([4], activation="tanh")

    def test_rejects_zero_width(self):
        with pytest.raises(ConfigError):
            MLPConfig([4, 0])


class TestModelConfig:
    def test_shape_properties(self):
        config = make_config()
        assert config.num_tables == 2
        assert config.embedding_output_dim == 16
        assert config.top_mlp_input_dim == 16 + 16
        assert config.total_lookups == 8

    def test_storage_is_embeddings_plus_mlps(self):
        config = make_config()
        assert (
            config.total_storage_bytes()
            == config.embedding_storage_bytes() + config.mlp_storage_bytes()
        )

    def test_flops_accounts_all_components(self):
        config = make_config()
        expected = (
            config.bottom_mlp.flops_per_sample(16)
            + config.top_mlp.flops_per_sample(32)
            + 2 * 4 * 8
        )
        assert config.flops_per_sample() == expected

    def test_operational_intensity_positive(self):
        assert make_config().operational_intensity() > 0

    def test_rejects_no_tables(self):
        with pytest.raises(ConfigError):
            make_config(embedding_tables=())

    def test_rejects_bad_dtype(self):
        with pytest.raises(ConfigError):
            make_config(dtype="bf16")

    def test_scaled_shrinks_rows_only(self):
        config = make_config()
        scaled = config.scaled(table_rows=0.1)
        assert all(t.rows == 10 for t in scaled.embedding_tables)
        assert scaled.flops_per_sample() == config.flops_per_sample()
        assert scaled.bytes_read_per_sample() == config.bytes_read_per_sample()

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ConfigError):
            make_config().scaled(table_rows=0)

    def test_scaled_never_drops_below_one_row(self):
        scaled = make_config().scaled(table_rows=1e-9)
        assert all(t.rows >= 1 for t in scaled.embedding_tables)

    def test_describe_round_trips_key_fields(self):
        desc = make_config().describe()
        assert desc["num_tables"] == 2
        assert desc["bottom_mlp"] == [32, 16]
        assert desc["flops_per_sample"] == make_config().flops_per_sample()


class TestUniformTables:
    def test_builds_identical_tables(self):
        tables = uniform_tables(3, 50, 8, 2)
        assert len(tables) == 3
        assert all(t.rows == 50 and t.dim == 8 for t in tables)

    def test_rejects_zero_tables(self):
        with pytest.raises(ConfigError):
            uniform_tables(0, 50, 8, 2)
