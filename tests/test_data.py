"""Tests for input generation, sparse generators and embedding traces."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import MLPConfig, ModelConfig, uniform_tables
from repro.data import (
    EmbeddingTrace,
    InputGenerator,
    TemporalReuseGenerator,
    UniformSparseGenerator,
    ZipfSparseGenerator,
    dense_features,
    generate_inputs,
    random_trace,
    synthetic_production_traces,
)


@pytest.fixture(scope="module")
def config():
    return ModelConfig(
        name="t",
        model_class="RMC1",
        dense_features=6,
        bottom_mlp=MLPConfig([8, 4]),
        embedding_tables=uniform_tables(2, 100, 4, 3),
        top_mlp=MLPConfig([4, 1], final_activation="sigmoid"),
    )


class TestDense:
    def test_shape_and_dtype(self):
        x = dense_features(4, 7)
        assert x.shape == (4, 7)
        assert x.dtype == np.float32

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            dense_features(0, 7)


class TestSparseGenerators:
    def test_uniform_ids_in_range(self):
        gen = UniformSparseGenerator(rows=50, lookups_per_sample=4)
        batch = gen.batch(8, np.random.default_rng(0))
        assert batch.batch_size == 8
        assert batch.total_lookups == 32
        assert batch.ids.min() >= 0 and batch.ids.max() < 50

    def test_zipf_skews_to_popular_ids(self):
        rng = np.random.default_rng(0)
        gen = ZipfSparseGenerator(rows=1000, lookups_per_sample=1, alpha=1.5)
        ids = gen.ids(5000, rng)
        top_share = np.mean(ids < 10)
        assert top_share > 0.3  # heavy head

    def test_zipf_alpha_zero_near_uniform(self):
        rng = np.random.default_rng(0)
        gen = ZipfSparseGenerator(rows=1000, lookups_per_sample=1, alpha=0.0)
        ids = gen.ids(5000, rng)
        assert np.mean(ids < 10) < 0.05

    def test_temporal_reuse_controls_unique_fraction(self):
        rng = np.random.default_rng(0)
        low = TemporalReuseGenerator(10**6, 1, reuse_probability=0.1)
        high = TemporalReuseGenerator(10**6, 1, reuse_probability=0.9)
        low_ids = low.ids(3000, rng)
        high_ids = high.ids(3000, rng)
        low_unique = np.unique(low_ids).size / low_ids.size
        high_unique = np.unique(high_ids).size / high_ids.size
        assert low_unique > 0.8
        assert high_unique < 0.3

    def test_reuse_probability_validated(self):
        with pytest.raises(ValueError):
            TemporalReuseGenerator(100, 1, reuse_probability=1.0)

    @settings(max_examples=20, deadline=None)
    @given(
        rows=st.integers(min_value=1, max_value=10_000),
        lookups=st.integers(min_value=1, max_value=8),
        batch=st.integers(min_value=1, max_value=16),
    )
    def test_property_batch_well_formed(self, rows, lookups, batch):
        gen = UniformSparseGenerator(rows, lookups)
        sb = gen.batch(batch, np.random.default_rng(1))
        assert sb.lengths.sum() == sb.ids.size
        assert np.all(sb.lengths == lookups)
        assert np.all((sb.ids >= 0) & (sb.ids < rows))


class TestInputGenerator:
    def test_matches_config(self, config):
        dense, sparse = generate_inputs(config, 5)
        assert dense.shape == (5, 6)
        assert len(sparse) == 2
        assert all(sp.batch_size == 5 for sp in sparse)

    def test_reproducible_by_seed(self, config):
        a_dense, a_sparse = generate_inputs(config, 3, seed=42)
        b_dense, b_sparse = generate_inputs(config, 3, seed=42)
        np.testing.assert_array_equal(a_dense, b_dense)
        np.testing.assert_array_equal(a_sparse[0].ids, b_sparse[0].ids)

    def test_rejects_wrong_generator_count(self, config):
        with pytest.raises(ValueError):
            InputGenerator(config, sparse_generators=[UniformSparseGenerator(100, 3)])

    def test_rejects_oversized_generator_domain(self, config):
        gens = [UniformSparseGenerator(1000, 3), UniformSparseGenerator(100, 3)]
        with pytest.raises(ValueError):
            InputGenerator(config, sparse_generators=gens)


class TestTraces:
    def test_unique_fraction_bounds(self):
        trace = random_trace(1_000_000, 2000)
        assert 0.9 < trace.unique_fraction() <= 1.0

    def test_unique_fraction_repeated_ids(self):
        trace = EmbeddingTrace("x", 10, np.array([1, 1, 1, 2], dtype=np.int64))
        assert trace.unique_fraction() == pytest.approx(0.5)

    def test_rejects_out_of_range_ids(self):
        with pytest.raises(ValueError):
            EmbeddingTrace("x", 10, np.array([10], dtype=np.int64))

    def test_save_load_round_trip(self, tmp_path):
        trace = random_trace(1000, 100)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = EmbeddingTrace.load(path)
        assert loaded.name == trace.name
        assert loaded.table_rows == trace.table_rows
        np.testing.assert_array_equal(loaded.ids, trace.ids)

    def test_synthetic_suite_spans_locality_axis(self):
        """Figure 14: traces range from near-random to heavily reusing."""
        traces = synthetic_production_traces(table_rows=500_000, length=4000)
        assert len(traces) == 10
        fractions = [t.unique_fraction() for t in traces]
        assert max(fractions) > 0.8
        assert min(fractions) < 0.15

    def test_synthetic_suite_deterministic(self):
        a = synthetic_production_traces(table_rows=10_000, length=500, seed=5)
        b = synthetic_production_traces(table_rows=10_000, length=500, seed=5)
        for ta, tb in zip(a, b):
            np.testing.assert_array_equal(ta.ids, tb.ids)
