"""Tests for config serialization, the energy model, and weighted SLS."""

import numpy as np
import pytest

from repro.config import (
    ConfigError,
    PRODUCTION_PRESETS,
    RMC1_DOT,
    RMC1_SMALL,
    RMC2_SMALL,
    RMC3_SMALL,
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)
from repro.core.operators import (
    EmbeddingTable,
    SparseBatch,
    SparseLengthsSum,
    SparseLengthsWeightedSum,
)
from repro.hw import BROADWELL, SKYLAKE, efficiency_comparison, inference_energy


class TestSerialization:
    @pytest.mark.parametrize("name", sorted(PRODUCTION_PRESETS))
    def test_round_trip_every_preset(self, name):
        config = PRODUCTION_PRESETS[name]
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt.describe() == config.describe()
        assert rebuilt.interaction == config.interaction
        assert rebuilt.dtype == config.dtype

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "model.json"
        save_config(RMC1_DOT, path)
        rebuilt = load_config(path)
        assert rebuilt.name == RMC1_DOT.name
        assert rebuilt.interaction == "dot"
        assert rebuilt.flops_per_sample() == RMC1_DOT.flops_per_sample()

    def test_rejects_wrong_schema_version(self):
        data = config_to_dict(RMC1_SMALL)
        data["schema_version"] = 99
        with pytest.raises(ConfigError):
            config_from_dict(data)

    def test_rejects_missing_fields(self):
        data = config_to_dict(RMC1_SMALL)
        del data["bottom_mlp"]
        with pytest.raises(ConfigError):
            config_from_dict(data)

    def test_invalid_payload_fails_validation(self):
        data = config_to_dict(RMC1_SMALL)
        data["embedding_tables"] = []
        with pytest.raises(ConfigError):
            config_from_dict(data)


class TestEnergyModel:
    def test_components_positive(self):
        estimate = inference_energy(BROADWELL, RMC2_SMALL, 16)
        assert estimate.core_joules > 0
        assert estimate.dram_joules > 0
        assert estimate.total_joules == pytest.approx(
            estimate.core_joules + estimate.dram_joules
        )

    def test_efficiency_improves_with_batch(self):
        low = inference_energy(BROADWELL, RMC3_SMALL, 1)
        high = inference_energy(BROADWELL, RMC3_SMALL, 128)
        assert high.items_per_joule > low.items_per_joule

    def test_broadwell_most_efficient_at_batch16(self):
        """Lowest latency at moderate batch -> least energy burned."""
        estimates = efficiency_comparison(RMC2_SMALL, 16)
        best = max(estimates.values(), key=lambda e: e.items_per_joule)
        assert best.server_name == "Broadwell"

    def test_dram_energy_tracks_embedding_traffic(self):
        rmc2 = inference_energy(BROADWELL, RMC2_SMALL, 16)
        rmc1 = inference_energy(BROADWELL, RMC1_SMALL, 16)
        # RMC1's LLC-resident tables move almost nothing over the bus.
        assert rmc2.dram_joules > 10 * rmc1.dram_joules

    def test_skylake_efficient_at_large_batch_compute(self):
        skl = inference_energy(SKYLAKE, RMC3_SMALL, 256)
        bdw = inference_energy(BROADWELL, RMC3_SMALL, 256)
        # Skylake finishes faster at large batch; energy is competitive
        # despite higher active power.
        assert skl.latency_s < bdw.latency_s


class TestWeightedSls:
    @pytest.fixture(scope="class")
    def ops(self):
        table = EmbeddingTable(100, 8, rng=np.random.default_rng(5))
        return (
            SparseLengthsSum("plain", table, 3),
            SparseLengthsWeightedSum("weighted", table, 3),
            table,
        )

    def test_unit_weights_match_plain_sls(self, ops):
        plain, weighted, _ = ops
        batch = SparseBatch.from_lists([[1, 2, 3], [4, 5, 6]])
        ones = np.ones(6, dtype=np.float32)
        np.testing.assert_allclose(
            weighted.forward(batch, ones), plain.forward(batch), rtol=1e-6
        )

    def test_weights_scale_rows(self, ops):
        _, weighted, table = ops
        batch = SparseBatch.from_lists([[7]])
        out = weighted.forward(batch, np.array([2.5], dtype=np.float32))
        np.testing.assert_allclose(out[0], 2.5 * table.data[7], rtol=1e-6)

    def test_rejects_weight_mismatch(self, ops):
        _, weighted, _ = ops
        batch = SparseBatch.from_lists([[1, 2]])
        with pytest.raises(ValueError):
            weighted.forward(batch, np.array([1.0]))

    def test_out_of_range_raises(self, ops):
        _, weighted, _ = ops
        batch = SparseBatch.from_lists([[100]])
        with pytest.raises(IndexError):
            weighted.forward(batch, np.array([1.0]))

    def test_cost_includes_weight_reads(self, ops):
        plain, weighted, _ = ops
        assert weighted.cost(4).bytes_read > plain.cost(4).bytes_read
        assert weighted.cost(4).flops == 2 * plain.cost(4).flops
