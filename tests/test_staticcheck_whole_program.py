"""Tier-2 tests for the whole-program staticcheck layer: the project index,
the dataflow summaries and their cache, the SC9xx interprocedural rules
(both directions each), the SC002 docs-drift meta rule, the --stats/--json
CLI surface, and a hypothesis suite proving the analyzer never raises on
parseable python."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.tools.staticcheck import load_project, run_checks
from repro.tools.staticcheck.__main__ import main
from repro.tools.staticcheck.dataflow import (
    SummaryCache,
    analyze_project,
)
from repro.tools.staticcheck.index import ProjectIndex, module_dotted_name
from repro.tools.staticcheck.rules import ALL_RULES, select_rules

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships in the test extras
    HAVE_HYPOTHESIS = False


def write_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    """Write ``{relpath: source}`` under ``tmp_path`` and return it."""
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return tmp_path


def check_tree(tmp_path: Path, files: dict[str, str], rule: str):
    """Write a multi-file tree and run one rule over the whole project."""
    write_tree(tmp_path, files)
    project = load_project([tmp_path], root=tmp_path)
    return run_checks(project, select_rules([rule]))


# --------------------------------------------------------------------- index


class TestProjectIndex:
    def test_module_dotted_name_strips_src_and_init(self):
        assert module_dotted_name("src/repro/hw/cache.py") == "repro.hw.cache"
        assert module_dotted_name("src/repro/hw/__init__.py") == "repro.hw"
        assert module_dotted_name("tools/helper.py") == "tools.helper"

    def test_symbol_table_records_params_and_defaults(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/pkg/mod.py": """
                def f(a, b_ms, c=None, *, d=3):
                    return a
                """
            },
        )
        project = load_project([tmp_path], root=tmp_path)
        index = ProjectIndex.build(project)
        f = index.functions[("src/pkg/mod.py", "f")]
        names = [p.name for p in f.params]
        assert names == ["a", "b_ms", "c", "d"]
        assert f.params[1].unit == "ms"
        assert "c" in f.none_default_params
        assert f.params[3].kwonly

    def test_resolve_call_exact_via_import(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/pkg/util.py": "def helper(x_s):\n    return x_s\n",
                "src/pkg/app.py": (
                    "from pkg.util import helper\n"
                    "def go():\n"
                    "    return helper(1.0)\n"
                ),
            },
        )
        project = load_project([tmp_path], root=tmp_path)
        index = ProjectIndex.build(project)
        module = next(m for m in project.modules if m.relpath.endswith("app.py"))
        candidates, exact = index.resolve_call(module, "helper")
        assert exact
        assert [c.qualname for c in candidates] == ["helper"]

    def test_resolve_call_falls_back_by_name(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/pkg/a.py": "def frob(x):\n    return x\n",
                "src/pkg/b.py": "def go(obj):\n    return obj.frob(1)\n",
            },
        )
        project = load_project([tmp_path], root=tmp_path)
        index = ProjectIndex.build(project)
        module = next(m for m in project.modules if m.relpath.endswith("b.py"))
        candidates, exact = index.resolve_call(module, "obj.frob")
        assert not exact
        assert [c.qualname for c in candidates] == ["frob"]


# ------------------------------------------------------------------ dataflow


class TestDataflowSummaries:
    def summarize(self, tmp_path, source, relname="src/pkg/mod.py"):
        write_tree(tmp_path, {relname: source})
        project = load_project([tmp_path], root=tmp_path)
        analysis = analyze_project(project)
        return [fn for _, fn in analysis.iter_summaries()]

    def test_return_units_and_param_units(self, tmp_path):
        summaries = self.summarize(
            tmp_path,
            """
            def latency_s(base_ms):
                x_ms = base_ms * 2
                return x_ms
            """,
        )
        fn = next(s for s in summaries if s.qualname == "latency_s")
        assert fn.param_units == {"base_ms": "ms"}
        assert [u for u, _, _ in fn.return_units] == ["ms"]

    def test_guarded_use_is_marked_guarded(self, tmp_path):
        summaries = self.summarize(
            tmp_path,
            """
            def f(tracer=None):
                if tracer is not None:
                    tracer.begin("a.b.c")
            """,
        )
        fn = next(s for s in summaries if s.qualname == "f")
        assert [u.guarded for u in fn.maybe_none_uses] == [True]

    def test_early_return_guard_dominates(self, tmp_path):
        summaries = self.summarize(
            tmp_path,
            """
            def f(faults=None):
                if faults is None:
                    return 0
                return faults.rate
            """,
        )
        fn = next(s for s in summaries if s.qualname == "f")
        assert [u.guarded for u in fn.maybe_none_uses] == [True]

    def test_unguarded_use_is_not_guarded(self, tmp_path):
        summaries = self.summarize(
            tmp_path,
            """
            def f(faults=None):
                return faults.rate
            """,
        )
        fn = next(s for s in summaries if s.qualname == "f")
        assert [u.guarded for u in fn.maybe_none_uses] == [False]


class TestSummaryCache:
    def test_warm_run_hits_for_unchanged_files(self, tmp_path):
        write_tree(tmp_path, {"src/pkg/mod.py": "def f(x_s):\n    return x_s\n"})
        cache_path = tmp_path / "cache" / "summaries.json"

        project = load_project([tmp_path / "src"], root=tmp_path)
        cache = SummaryCache(cache_path)
        analysis = analyze_project(project, cache=cache)
        assert analysis.cache_misses == 1 and analysis.cache_hits == 0
        cache.save()
        assert cache_path.exists()

        project = load_project([tmp_path / "src"], root=tmp_path)
        warm = SummaryCache(cache_path)
        analysis = analyze_project(project, cache=warm)
        assert analysis.cache_hits == 1 and analysis.cache_misses == 0

    def test_edited_file_misses(self, tmp_path):
        write_tree(tmp_path, {"src/pkg/mod.py": "def f(x_s):\n    return x_s\n"})
        cache_path = tmp_path / "cache" / "summaries.json"
        project = load_project([tmp_path / "src"], root=tmp_path)
        cache = SummaryCache(cache_path)
        analyze_project(project, cache=cache)
        cache.save()

        (tmp_path / "src/pkg/mod.py").write_text("def f(x_ms):\n    return x_ms\n")
        project = load_project([tmp_path / "src"], root=tmp_path)
        warm = SummaryCache(cache_path)
        analysis = analyze_project(project, cache=warm)
        assert analysis.cache_misses == 1 and analysis.cache_hits == 0
        # And the summary reflects the edit, not the stale cache entry.
        fn = next(s for _, s in analysis.iter_summaries() if s.qualname == "f")
        assert fn.param_units == {"x_ms": "ms"}

    def test_corrupt_cache_file_is_ignored(self, tmp_path):
        write_tree(tmp_path, {"src/pkg/mod.py": "def f():\n    return 1\n"})
        cache_path = tmp_path / "cache" / "summaries.json"
        cache_path.parent.mkdir(parents=True)
        cache_path.write_text("{not json")
        project = load_project([tmp_path / "src"], root=tmp_path)
        analysis = analyze_project(project, cache=SummaryCache(cache_path))
        assert analysis.cache_misses == 1


# --------------------------------------------------------------------- SC901


class TestUnitFlow:
    def test_keyword_unit_mismatch_flagged(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "src/pkg/mod.py": """
                def wait(timeout_s):
                    return timeout_s

                def go(budget_ms):
                    return wait(timeout_s=budget_ms)
                """
            },
            "SC901",
        )
        assert len(violations) == 1
        assert "timeout_s" in violations[0].message
        assert "ms" in violations[0].message

    def test_positional_unit_mismatch_across_modules_flagged(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "src/pkg/util.py": """
                def wait(timeout_s):
                    return timeout_s
                """,
                "src/pkg/app.py": """
                from pkg.util import wait

                def go(budget_ms):
                    return wait(budget_ms)
                """,
            },
            "SC901",
        )
        assert len(violations) == 1
        assert violations[0].path.endswith("app.py")

    def test_return_unit_mismatch_flagged(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "src/pkg/mod.py": """
                def latency_s(x_ms):
                    return x_ms
                """
            },
            "SC901",
        )
        assert len(violations) == 1
        assert "return" in violations[0].message

    def test_matching_units_clean(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "src/pkg/mod.py": """
                def wait(timeout_s):
                    return timeout_s

                def go(budget_s):
                    return wait(budget_s)
                """
            },
            "SC901",
        )
        assert violations == []

    def test_division_is_a_conversion(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "src/pkg/mod.py": """
                def wait(timeout_s):
                    return timeout_s

                def go(budget_ms):
                    return wait(budget_ms / 1e3)
                """
            },
            "SC901",
        )
        assert violations == []

    def test_seconds_alias_not_a_mismatch(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "src/pkg/mod.py": """
                def wait(timeout_s):
                    return timeout_s

                def go(total_seconds):
                    return wait(total_seconds)
                """
            },
            "SC901",
        )
        assert violations == []

    def test_ambiguous_candidates_not_flagged(self, tmp_path):
        # Two same-named callees with *different* parameter units: the
        # conservative rule must stay silent rather than guess.
        violations = check_tree(
            tmp_path,
            {
                "src/pkg/a.py": "def wait(timeout_s):\n    return timeout_s\n",
                "src/pkg/b.py": "def wait(timeout_ms):\n    return timeout_ms\n",
                "src/pkg/app.py": """
                def go(obj, budget_ms):
                    return obj.wait(budget_ms)
                """,
            },
            "SC901",
        )
        assert violations == []

    def test_tests_are_exempt(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "tests/test_mod.py": """
                def wait(timeout_s):
                    return timeout_s

                def test_go(budget_ms):
                    return wait(timeout_s=budget_ms)
                """
            },
            "SC901",
        )
        assert violations == []


# --------------------------------------------------------------------- SC902


class TestRngPlumbing:
    def test_own_seeded_generator_with_rng_holding_caller_flagged(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "src/pkg/mod.py": """
                import numpy as np

                def sample(n):
                    rng = np.random.default_rng(42)
                    return rng.random(n)

                def driver(n, rng):
                    return sample(n)
                """
            },
            "SC902",
        )
        assert len(violations) == 1
        assert "sample" in violations[0].message
        assert "driver" in violations[0].message

    def test_no_rng_holding_caller_clean(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "src/pkg/mod.py": """
                import numpy as np

                def sample(n):
                    rng = np.random.default_rng(42)
                    return rng.random(n)

                def driver(n):
                    return sample(n)
                """
            },
            "SC902",
        )
        assert violations == []

    def test_plumbed_rng_clean(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "src/pkg/mod.py": """
                def sample(n, rng):
                    return rng.random(n)

                def driver(n, rng):
                    return sample(n, rng)
                """
            },
            "SC902",
        )
        assert violations == []

    def test_stable_seed_helper_clean(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "src/pkg/mod.py": """
                import numpy as np

                def stable_table_seed(name):
                    return 7

                def sample(n, name):
                    rng = np.random.default_rng(stable_table_seed(name))
                    return rng.random(n)

                def driver(n, rng):
                    return sample(n, "t0")
                """
            },
            "SC902",
        )
        assert violations == []

    def test_outside_src_clean(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "benchmarks/bench.py": """
                import numpy as np

                def sample(n):
                    rng = np.random.default_rng(42)
                    return rng.random(n)

                def driver(n, rng):
                    return sample(n)
                """
            },
            "SC902",
        )
        assert violations == []


# --------------------------------------------------------------------- SC903


class TestOffSwitchPurity:
    def test_unguarded_param_use_flagged(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "src/pkg/mod.py": """
                def step(faults=None):
                    return faults.rate
                """
            },
            "SC903",
        )
        assert len(violations) == 1
        assert "faults" in violations[0].message
        assert "None" in violations[0].message

    def test_is_not_none_guard_clean(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "src/pkg/mod.py": """
                def step(faults=None):
                    if faults is not None:
                        return faults.rate
                    return 0.0
                """
            },
            "SC903",
        )
        assert violations == []

    def test_early_return_guard_clean(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "src/pkg/mod.py": """
                def step(faults=None):
                    if faults is None:
                        return 0.0
                    return faults.rate
                """
            },
            "SC903",
        )
        assert violations == []

    def test_null_object_rebind_clean(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "src/pkg/mod.py": """
                NULL_TRACER = object()

                def step(tracer=None):
                    tracer = tracer or NULL_TRACER
                    return tracer.begin("a.b.c")
                """
            },
            "SC903",
        )
        assert violations == []

    def test_unguarded_none_field_flagged(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "src/pkg/mod.py": """
                from dataclasses import dataclass

                @dataclass
                class Sim:
                    overload: object = None

                    def tick(self):
                        return self.overload.admit()
                """
            },
            "SC903",
        )
        assert len(violations) == 1
        assert "self.overload" in violations[0].message

    def test_guarded_none_field_clean(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "src/pkg/mod.py": """
                from dataclasses import dataclass

                @dataclass
                class Sim:
                    overload: object = None

                    def tick(self):
                        if self.overload is not None:
                            return self.overload.admit()
                        return True
                """
            },
            "SC903",
        )
        assert violations == []

    def test_tests_are_exempt(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "tests/test_mod.py": """
                def step(faults=None):
                    return faults.rate
                """
            },
            "SC903",
        )
        assert violations == []


# --------------------------------------------------------------------- SC904


class TestWallClock:
    def test_time_call_in_src_flagged(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "src/pkg/mod.py": """
                import time

                def measure():
                    return time.perf_counter()
                """
            },
            "SC904",
        )
        assert len(violations) == 1
        assert "perf_counter" in violations[0].message

    def test_aliased_import_flagged(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "src/pkg/mod.py": """
                from time import perf_counter as pc

                def measure():
                    return pc()
                """
            },
            "SC904",
        )
        assert len(violations) == 1

    def test_datetime_now_flagged(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "src/pkg/mod.py": """
                import datetime

                def stamp():
                    return datetime.datetime.now()
                """
            },
            "SC904",
        )
        assert len(violations) == 1

    def test_module_level_call_flagged(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "src/pkg/mod.py": """
                import time

                STARTED = time.time()
                """
            },
            "SC904",
        )
        assert len(violations) == 1
        assert "import time" in violations[0].message or "at import" in violations[0].message

    def test_benchmarks_and_tools_exempt(self, tmp_path):
        for relname in ("benchmarks/bench.py", "src/pkg/tools/cli.py"):
            violations = check_tree(
                tmp_path,
                {
                    relname: """
                    import time

                    def measure():
                        return time.perf_counter()
                    """
                },
                "SC904",
            )
            assert violations == [], relname

    def test_simulated_clock_clean(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "src/pkg/mod.py": """
                def advance(clock, dt_s):
                    clock.now_s += dt_s
                    return clock.now_s
                """
            },
            "SC904",
        )
        assert violations == []

    def test_inline_ignore_respected(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "src/pkg/mod.py": (
                    "import time\n\n"
                    "def measure():\n"
                    "    return time.perf_counter()  # staticcheck: ignore[SC904]\n"
                )
            },
            "SC904",
        )
        assert violations == []


# --------------------------------------------------------------------- SC002


class TestRuleDocsDrift:
    DOCS = "docs/STATIC_ANALYSIS.md"

    def docs_for(self, ids):
        return "\n\n".join(f"### {rule_id} `x`\nWords." for rule_id in ids)

    def all_ids(self):
        ids = {rule.id for rule in ALL_RULES}
        ids.update({"SC001", "SC701"})
        return sorted(ids)

    def test_in_sync_docs_clean(self, tmp_path):
        write_tree(tmp_path, {self.DOCS: self.docs_for(self.all_ids())})
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "mod.py").write_text("x_s = 1\n")
        project = load_project([tmp_path / "src"], root=tmp_path)
        assert run_checks(project, select_rules(["SC002"])) == []

    def test_undocumented_rule_flagged(self, tmp_path):
        ids = [i for i in self.all_ids() if i != "SC301"]
        write_tree(tmp_path, {self.DOCS: self.docs_for(ids)})
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "mod.py").write_text("x_s = 1\n")
        project = load_project([tmp_path / "src"], root=tmp_path)
        violations = run_checks(project, select_rules(["SC002"]))
        assert len(violations) == 1
        assert "SC301" in violations[0].message

    def test_stale_doc_section_flagged(self, tmp_path):
        write_tree(
            tmp_path, {self.DOCS: self.docs_for(self.all_ids() + ["SC999"])}
        )
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "mod.py").write_text("x_s = 1\n")
        project = load_project([tmp_path / "src"], root=tmp_path)
        violations = run_checks(project, select_rules(["SC002"]))
        assert len(violations) == 1
        assert "SC999" in violations[0].message

    def test_missing_docs_file_silent(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "mod.py").write_text("x_s = 1\n")
        project = load_project([tmp_path / "src"], root=tmp_path)
        assert run_checks(project, select_rules(["SC002"])) == []


# ----------------------------------------------------------------- CLI layer


class TestCliStats:
    def test_stats_block_printed(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x_ns = 1\n")
        code = main(
            [str(tmp_path), "--root", str(tmp_path), "--no-graphs", "--stats"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "staticcheck stats:" in out
        assert "summary cache:" in out
        assert "violations by rule:" in out

    def test_stats_in_json_report(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x_ns = 1\n")
        code = main(
            [str(tmp_path), "--root", str(tmp_path), "--no-graphs", "--stats", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        stats = payload["stats"]
        assert stats["files"] == 1
        assert stats["cache_hits"] + stats["cache_misses"] == 1
        for key in ("parse_seconds", "index_seconds", "dataflow_seconds", "rules_seconds"):
            assert stats[key] >= 0.0
        assert set(stats["rule_counts"]) >= {rule.id for rule in ALL_RULES}

    def test_stats_counts_violations_per_rule(self, tmp_path, capsys):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "bad.py").write_text(
            "import time\n\ndef f():\n    return time.time()\n"
        )
        code = main(
            [
                str(tmp_path / "src"),
                "--root", str(tmp_path),
                "--no-graphs", "--no-baseline", "--stats", "--json",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["rule_counts"]["SC904"] == 1
        assert payload["stats"]["rule_counts"]["SC201"] == 0

    def test_json_to_path_writes_file_and_prints_text(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x_ns = 1\n")
        report_path = tmp_path / "out" / "report.json"
        code = main(
            [
                str(tmp_path),
                "--root", str(tmp_path),
                "--no-graphs", "--json", str(report_path),
            ]
        )
        assert code == 0
        assert "clean" in capsys.readouterr().out
        payload = json.loads(report_path.read_text())
        assert payload["exit_code"] == 0

    def test_warm_cache_hits_via_cli(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x_ns = 1\n")
        argv = [str(tmp_path), "--root", str(tmp_path), "--no-graphs", "--stats", "--json"]
        main(argv)
        cold = json.loads(capsys.readouterr().out)["stats"]
        assert cold["cache_misses"] == 1
        main(argv)
        warm = json.loads(capsys.readouterr().out)["stats"]
        assert warm["cache_hits"] == 1 and warm["cache_misses"] == 0
        assert (tmp_path / ".staticcheck-cache" / "summaries.json").exists()

    def test_no_cache_skips_persistence(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x_ns = 1\n")
        code = main(
            [str(tmp_path), "--root", str(tmp_path), "--no-graphs", "--no-cache"]
        )
        assert code == 0
        assert not (tmp_path / ".staticcheck-cache").exists()


# ------------------------------------------------------------- robustness


def assert_analyzer_survives(tmp_path: Path, source: str) -> None:
    """The full pipeline must never raise on syntactically valid python."""
    target = tmp_path / "src" / "gen.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    project = load_project([tmp_path], root=tmp_path)
    run_checks(project, list(ALL_RULES))


HAND_PICKED_NASTIES = [
    "",
    "async def f():\n    async with a() as b:\n        await b.c\n",
    "def f(faults=None):\n    return (lambda: faults.rate)()\n",
    "class A:\n    class B:\n        def m(self, x=None):\n            return x.y\n",
    "def f():\n    global g\n    g = 1\n",
    "match p:\n    case {'a': x} if x is not None:\n        x.y\n",
    "def f(*args, **kw):\n    return f(*args, **kw)\n",
    "x: int\ndef f(x_s=...):\n    return x_s\n",
    "from __future__ import annotations\ndef f(a: 'Missing') -> 'Missing':\n    return a\n",
    "def f():\n    yield from (x.y for x in [] if x is not None)\n",
    "try:\n    import nope\nexcept ImportError:\n    nope = None\nif nope is not None:\n    nope.go()\n",
    "def f(x=None):\n    del x\n",
    "def outer():\n    def inner(t=None):\n        return t.u if t else None\n    return inner\n",
    "(a := 1)\nprint(a)\n",
    "def f(x=None):\n    with x:\n        pass\n",
]


@pytest.mark.parametrize("source", HAND_PICKED_NASTIES)
def test_analyzer_survives_nasty_snippets(tmp_path, source):
    assert_analyzer_survives(tmp_path, source)


if HAVE_HYPOTHESIS:

    IDENT = st.sampled_from(
        ["x", "x_s", "x_ms", "faults", "rng", "seed", "tracer", "obj", "time"]
    )

    @st.composite
    def expressions(draw, depth=0):
        if depth > 2:
            return draw(IDENT)
        kind = draw(st.integers(0, 5))
        if kind == 0:
            return draw(IDENT)
        if kind == 1:
            return str(draw(st.integers(0, 99)))
        if kind == 2:
            return f"({draw(expressions(depth + 1))}).{draw(IDENT)}"
        if kind == 3:
            return f"({draw(expressions(depth + 1))})({draw(expressions(depth + 1))})"
        if kind == 4:
            op = draw(st.sampled_from(["+", "-", "*", "/", "or", "and"]))
            return f"({draw(expressions(depth + 1))} {op} {draw(expressions(depth + 1))})"
        return f"({draw(expressions(depth + 1))} if {draw(expressions(depth + 1))} is not None else {draw(expressions(depth + 1))})"

    @st.composite
    def statements(draw, depth=0):
        indent = "    " * depth
        kind = draw(st.integers(0, 4 if depth < 2 else 2))
        if kind == 0:
            return f"{indent}{draw(IDENT)} = {draw(expressions())}\n"
        if kind == 1:
            return f"{indent}return {draw(expressions())}\n"
        if kind == 2:
            return f"{indent}{draw(expressions())}\n"
        if kind == 3:
            body = "".join(
                draw(st.lists(statements(depth + 1), min_size=1, max_size=2))
            )
            return f"{indent}if {draw(expressions())}:\n{body}"
        body = "".join(draw(st.lists(statements(depth + 1), min_size=1, max_size=2)))
        return f"{indent}for {draw(IDENT)} in {draw(expressions())}:\n{body}"

    @st.composite
    def modules(draw):
        params = draw(
            st.sampled_from(["", "x", "x_ms, y=None", "rng, *a, **k", "faults=None"])
        )
        body = "".join(draw(st.lists(statements(1), min_size=1, max_size=4)))
        return f"import time\n\ndef f({params}):\n{body}"

    class TestHypothesisRobustness:
        @settings(
            max_examples=60,
            deadline=None,
            suppress_health_check=[HealthCheck.function_scoped_fixture],
        )
        @given(source=modules())
        def test_analyzer_never_raises_on_parseable_python(self, tmp_path, source):
            compile(source, "<gen>", "exec")  # precondition: valid python
            assert_analyzer_survives(tmp_path, source)

        @settings(
            max_examples=30,
            deadline=None,
            suppress_health_check=[HealthCheck.function_scoped_fixture],
        )
        @given(text=st.text(max_size=200))
        def test_arbitrary_text_never_crashes_checker(self, tmp_path, text):
            # Unparseable text must surface as SC001, not an exception.
            target = tmp_path / "src" / "gen.py"
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(text, encoding="utf-8", errors="replace")
            project = load_project([tmp_path], root=tmp_path)
            run_checks(project, list(ALL_RULES))
