"""Chaos smoke: random overload + fault sweeps must conserve requests.

Short hypothesis-driven runs of the protected serving stack under
randomly drawn load, protection policies, and fault schedules. Whatever
the draw, the books must balance:

* request level — offered = completed + failed + unresolved (router),
  offered = completed + shed + killed + in-flight (simulator);
* rate level — goodput <= throughput <= offered rate.

Every example also draws which DES engine (``reference`` or
``vectorized``) runs it, so the invariants are exercised on both engines
in the same sweep. CI runs this as a dedicated "chaos smoke" step with
``CHAOS_EXAMPLES=40``; crank the sweep with ``CHAOS_EXAMPLES=200``
locally when touching the overload or DES layers.
"""

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import RMC1_SMALL, RMC2_SMALL, RMC3_SMALL
from repro.hw import BROADWELL, SKYLAKE
from repro.serving import (
    SLA,
    AdmissionPolicy,
    BreakerPolicy,
    BrownoutPolicy,
    FaultSchedule,
    FleetTopology,
    MultiModelPool,
    MultiModelRouter,
    NetworkConfig,
    OverloadConfig,
    ReplicaCrash,
    ResiliencePolicy,
    ResilientRouter,
    ServingSimulator,
    Straggler,
    check_conservation,
    default_brownout_tiers,
    domain_storm,
    fault_storm,
    recovery_timeline,
    replicate_shards,
    shard_tables,
)

NUM_MACHINES = 3
DURATION_S = 0.05
SERVICE_S = ResilientRouter(
    BROADWELL, RMC1_SMALL, 8, NUM_MACHINES, seed=0
)._base_service_s

CHAOS = settings(
    max_examples=int(os.environ.get("CHAOS_EXAMPLES", "15")),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def admission_policies(draw) -> AdmissionPolicy:
    shed_policy = draw(
        st.sampled_from(["reject_newest", "reject_oldest", "deadline_aware"])
    )
    deadline = st.floats(5.0 * SERVICE_S, 50.0 * SERVICE_S)
    if shed_policy != "deadline_aware":  # deadline_aware requires a deadline
        deadline = st.one_of(st.none(), deadline)
    return AdmissionPolicy(
        queue_capacity=draw(st.integers(min_value=1, max_value=32)),
        shed_policy=shed_policy,
        deadline_s=draw(deadline),
        codel_target_s=draw(
            st.one_of(
                st.none(), st.floats(2.0 * SERVICE_S, 20.0 * SERVICE_S)
            )
        ),
    )


def overload_configs() -> st.SearchStrategy[OverloadConfig | None]:
    admission = admission_policies()
    breaker = st.builds(
        BreakerPolicy,
        failure_threshold=st.integers(min_value=1, max_value=8),
        window_s=st.floats(10.0 * SERVICE_S, 100.0 * SERVICE_S),
        open_duration_s=st.floats(10.0 * SERVICE_S, 200.0 * SERVICE_S),
        half_open_probes=st.integers(min_value=1, max_value=3),
    )
    brownout = st.builds(
        BrownoutPolicy,
        tiers=st.just(default_brownout_tiers(RMC1_SMALL)),
        step_up_depth=st.floats(2.0, 10.0),
        step_down_depth=st.floats(0.5, 1.5),
        dwell_s=st.floats(0.0, 30.0 * SERVICE_S),
    )
    config = st.builds(
        OverloadConfig,
        admission=st.one_of(st.none(), admission),
        breaker=st.one_of(st.none(), breaker),
        brownout=st.one_of(st.none(), brownout),
    )
    return st.one_of(st.none(), config)


def fault_schedules() -> st.SearchStrategy[FaultSchedule | None]:
    crash = st.builds(
        ReplicaCrash,
        replica_id=st.integers(0, NUM_MACHINES - 1),
        at_s=st.floats(0.0, 0.8 * DURATION_S),
        downtime_s=st.floats(0.05 * DURATION_S, 0.5 * DURATION_S),
    )
    straggler = st.builds(
        Straggler,
        replica_id=st.integers(0, NUM_MACHINES - 1),
        start_s=st.floats(0.0, 0.8 * DURATION_S),
        duration_s=st.floats(0.05 * DURATION_S, 0.5 * DURATION_S),
        slowdown=st.floats(2.0, 20.0),
    )
    schedule = st.builds(
        FaultSchedule,
        crashes=st.lists(crash, max_size=2),
        stragglers=st.lists(straggler, max_size=2),
    )
    return st.one_of(st.none(), schedule)


class TestRouterChaos:
    @CHAOS
    @given(
        overload=overload_configs(),
        faults=fault_schedules(),
        load_factor=st.floats(0.3, 6.0),
        timeout_factor=st.one_of(st.none(), st.floats(10.0, 60.0)),
        seed=st.integers(0, 2**16),
        engine=st.sampled_from(("reference", "vectorized")),
    )
    def test_conservation_and_rate_ordering(
        self, overload, faults, load_factor, timeout_factor, seed, engine
    ):
        policy = (
            ResiliencePolicy.none()
            if timeout_factor is None
            else ResiliencePolicy(
                timeout_s=timeout_factor * SERVICE_S,
                max_retries=1,
                backoff_base_s=SERVICE_S,
            )
        )
        router = ResilientRouter(
            BROADWELL,
            RMC1_SMALL,
            8,
            NUM_MACHINES,
            policy=policy,
            overload=overload,
            seed=seed,
            engine=engine,
        )
        result = router.run(
            offered_qps=load_factor * NUM_MACHINES / SERVICE_S,
            duration_s=DURATION_S,
            faults=faults,
            sla=SLA(deadline_s=25.0 * SERVICE_S),
        )
        # Request conservation: every offered request is accounted for.
        assert result.unresolved >= 0
        assert result.offered == (
            result.completed + result.failed + result.unresolved
        )
        stats = result.stats()
        assert stats.completed == len(result.latencies_s)
        # Rate ordering: goodput <= throughput <= offered rate.
        offered_qps = result.offered / DURATION_S
        assert 0.0 <= stats.goodput_qps <= stats.throughput_qps
        assert stats.throughput_qps <= offered_qps + 1e-9
        # Overload books balance against the request-level tallies.
        if result.overload is not None:
            ovl = result.overload
            assert ovl.offered >= result.offered  # retries re-offer
            # Door-time outcomes partition the offered attempts; evictions
            # (reject_oldest) and CoDel drops shed *admitted* work, so
            # they sit on the other side of the ledger.
            door_shed = ovl.shed_by_reason.get(
                "queue_full", 0
            ) + ovl.shed_by_reason.get("deadline_hopeless", 0)
            post_admit_shed = ovl.shed_by_reason.get(
                "oldest_dropped", 0
            ) + ovl.shed_by_reason.get("codel_sojourn", 0)
            assert ovl.admitted + door_shed + ovl.breaker_rejections == (
                ovl.offered
            )
            assert post_admit_shed <= ovl.admitted
            assert ovl.shed == sum(ovl.shed_by_reason.values())
            if ovl.completions_by_tier:  # tracked only under brownout
                assert sum(ovl.completions_by_tier) == result.completed
            if ovl.time_in_tier_s:
                assert sum(ovl.time_in_tier_s) <= DURATION_S * 1.001

    @CHAOS
    @given(
        overload=overload_configs(),
        faults=fault_schedules(),
        load_factor=st.floats(0.3, 6.0),
        seed=st.integers(0, 2**16),
        engine=st.sampled_from(("reference", "vectorized")),
    )
    def test_runs_are_deterministic(
        self, overload, faults, load_factor, seed, engine
    ):
        def once():
            return ResilientRouter(
                BROADWELL,
                RMC1_SMALL,
                8,
                NUM_MACHINES,
                overload=overload,
                seed=seed,
                engine=engine,
            ).run(
                offered_qps=load_factor * NUM_MACHINES / SERVICE_S,
                duration_s=DURATION_S,
                faults=faults,
                sla=SLA(deadline_s=25.0 * SERVICE_S),
            )

        a, b = once(), once()
        assert a.offered == b.offered
        assert a.completed == b.completed
        assert list(a.latencies_s) == list(b.latencies_s)


class TestSimulatorChaos:
    @CHAOS
    @given(
        capacity=st.one_of(st.none(), st.integers(1, 32)),
        shed_policy=st.sampled_from(
            ["reject_newest", "reject_oldest", "deadline_aware"]
        ),
        load_factor=st.floats(0.3, 5.0),
        faults=fault_schedules(),
        seed=st.integers(0, 2**16),
        engine=st.sampled_from(("reference", "vectorized")),
    )
    def test_conservation(
        self, capacity, shed_policy, load_factor, faults, seed, engine
    ):
        overload = (
            None
            if capacity is None
            else OverloadConfig(
                admission=AdmissionPolicy(
                    queue_capacity=capacity,
                    shed_policy=shed_policy,
                    deadline_s=25.0 * SERVICE_S,
                )
            )
        )
        sim = ServingSimulator(
            BROADWELL,
            RMC1_SMALL,
            batch_size=8,
            num_instances=NUM_MACHINES,
            per_instance_qps=load_factor / SERVICE_S,
            seed=seed,
            overload=overload,
            faults=faults,
            engine=engine,
        )
        result = sim.run(duration_s=DURATION_S)
        in_flight = check_conservation(
            result.offered,
            len(result.records),
            shed=result.shed,
            killed=result.killed,
        )
        assert in_flight >= 0
        if capacity is not None:
            assert result.max_queue_depth <= capacity
        else:
            assert result.shed == 0


#: Every replica its own host/rack/zone: any replication factor ≤ 3 is
#: feasible and every domain kind has several domains to storm.
DOMAIN_TOPOLOGY = FleetTopology(
    num_replicas=NUM_MACHINES,
    replicas_per_host=1,
    hosts_per_rack=1,
    racks_per_zone=1,
)


def correlated_schedules() -> st.SearchStrategy[FaultSchedule]:
    """Correlated storms lowered to plain schedules, both generators."""
    expanded = st.integers(0, 2**16).map(
        lambda s: domain_storm(
            DOMAIN_TOPOLOGY, DURATION_S, seed=s
        ).expand_to_schedule(DOMAIN_TOPOLOGY)
    )
    escalated = st.tuples(
        st.integers(0, 2**16), st.floats(0.0, 1.0)
    ).map(
        lambda args: fault_storm(
            NUM_MACHINES,
            DURATION_S,
            seed=args[0],
            topology=DOMAIN_TOPOLOGY,
            correlation=args[1],
            correlation_kind="zone",
        )
    )
    return st.one_of(expanded, escalated)


class TestDomainChaos:
    @CHAOS
    @given(
        faults=correlated_schedules(),
        overload=overload_configs(),
        load_factor=st.floats(0.3, 6.0),
        seed=st.integers(0, 2**16),
        engine=st.sampled_from(("reference", "vectorized")),
    )
    def test_correlated_schedules_conserve_requests(
        self, faults, overload, load_factor, seed, engine
    ):
        router = ResilientRouter(
            BROADWELL,
            RMC1_SMALL,
            8,
            NUM_MACHINES,
            policy=ResiliencePolicy(
                timeout_s=30.0 * SERVICE_S,
                max_retries=1,
                backoff_base_s=SERVICE_S,
            ),
            overload=overload,
            seed=seed,
            engine=engine,
        )
        result = router.run(
            offered_qps=load_factor * NUM_MACHINES / SERVICE_S,
            duration_s=DURATION_S,
            faults=faults,
            sla=SLA(deadline_s=25.0 * SERVICE_S),
        )
        assert result.unresolved >= 0
        assert result.offered == (
            result.completed + result.failed + result.unresolved
        )

    @CHAOS
    @given(
        storm_seed=st.integers(0, 2**16),
        replication_factor=st.integers(1, 3),
        num_shards=st.integers(1, 2),
        load_factor=st.floats(0.3, 4.0),
        seed=st.integers(0, 2**16),
        engine=st.sampled_from(("reference", "vectorized")),
    )
    def test_replicated_shard_recovery_books_balance(
        self,
        storm_seed,
        replication_factor,
        num_shards,
        load_factor,
        seed,
        engine,
    ):
        """Whatever the storm, the recovery timeline stays consistent and
        the compiled schedule still conserves requests on either engine."""
        from repro.experiments.fig11z_domains import _compile_schedule

        events = domain_storm(DOMAIN_TOPOLOGY, DURATION_S, seed=storm_seed)
        plan = shard_tables(RMC1_SMALL, num_shards)
        replication = replicate_shards(
            plan, DOMAIN_TOPOLOGY, replication_factor
        )
        timeline = recovery_timeline(
            BROADWELL, RMC1_SMALL, replication, DOMAIN_TOPOLOGY, events
        )
        # Timeline books: transfers ordered, down-intervals disjoint,
        # segments tile the horizon.
        for transfer in timeline.transfers:
            assert transfer.lost_at_s <= transfer.start_s < transfer.done_s
        assert timeline.time_to_full_redundancy_s == max(
            (t.done_s for t in timeline.transfers), default=0.0
        )
        for per_copy in timeline.copy_down_intervals:
            for intervals in per_copy:
                for (a0, b0), (a1, _) in zip(intervals, intervals[1:]):
                    assert a0 < b0 <= a1
        horizon_s = max(
            (t.done_s for t in timeline.transfers), default=DURATION_S
        ) + DURATION_S
        segments = timeline.service_segments(horizon_s)
        assert segments[0].start_s == 0.0
        assert segments[-1].end_s == horizon_s
        for left, right in zip(segments, segments[1:]):
            assert left.end_s == right.start_s
        assert 0.0 <= timeline.blackout_s(horizon_s) <= horizon_s
        # The compiled schedule conserves requests like any other.
        schedule, blackout_s, failover_s, _, _ = _compile_schedule(
            events,
            DOMAIN_TOPOLOGY,
            timeline,
            DURATION_S,
            SERVICE_S,
            NetworkConfig(),
        )
        assert blackout_s >= 0.0 and failover_s >= 0.0
        result = ResilientRouter(
            BROADWELL,
            RMC1_SMALL,
            8,
            NUM_MACHINES,
            seed=seed,
            engine=engine,
        ).run(
            offered_qps=load_factor * NUM_MACHINES / SERVICE_S,
            duration_s=DURATION_S,
            faults=schedule,
            sla=SLA(deadline_s=25.0 * SERVICE_S),
        )
        assert result.offered == (
            result.completed + result.failed + result.unresolved
        )


MM_REPLICAS = (BROADWELL, SKYLAKE)
MM_MODELS = (RMC1_SMALL, RMC2_SMALL, RMC3_SMALL)


def multimodel_pools() -> st.SearchStrategy[MultiModelPool]:
    """Small heterogeneous pools; sometimes slot-starved to force swaps."""
    return st.builds(
        MultiModelPool,
        st.just(MM_REPLICAS),
        st.just(MM_MODELS),
        slots_per_replica=st.integers(1, 3),
        thrash_window_s=st.floats(0.01, 0.2),
    )


class TestMultiModelChaos:
    @CHAOS
    @given(
        pool=multimodel_pools(),
        admission=st.one_of(st.none(), admission_policies()),
        faults=fault_schedules(),
        load_factor=st.floats(0.3, 6.0),
        weight=st.floats(0.05, 0.95),
        seed=st.integers(0, 2**16),
        engine=st.sampled_from(("reference", "vectorized")),
    )
    def test_per_model_conservation(
        self, pool, admission, faults, load_factor, weight, seed, engine
    ):
        overload = (
            None if admission is None else OverloadConfig(admission=admission)
        )
        router = MultiModelRouter(
            pool, overload=overload, seed=seed, engine=engine
        )
        result = router.run(
            DURATION_S,
            offered_qps=load_factor * len(MM_REPLICAS) / SERVICE_S,
            mix=(weight, 1.0 - weight, weight / 2),
            faults=faults,
        )
        # Per-model books: every request reaches a terminal state.
        for i in range(len(MM_MODELS)):
            assert result.offered_by_model[i] == (
                result.completed_by_model[i]
                + result.shed_by_model[i]
                + result.killed_by_model[i]
            )
            assert len(result.latencies_by_model[i]) == (
                result.completed_by_model[i]
            )
        pool.verify_occupancy()
        resident, loading, draining, slots = pool.occupancy()
        assert resident + loading + draining <= slots
        # Overload ledger (admission-only): door outcomes partition the
        # offered attempts; evictions and CoDel shed admitted work.
        if result.overload is not None:
            ovl = result.overload
            door_shed = ovl.shed_by_reason.get(
                "queue_full", 0
            ) + ovl.shed_by_reason.get("deadline_hopeless", 0)
            assert ovl.admitted + door_shed == ovl.offered
            assert ovl.shed == sum(ovl.shed_by_reason.values())

    @CHAOS
    @given(
        faults=fault_schedules(),
        load_factor=st.floats(0.3, 6.0),
        seed=st.integers(0, 2**16),
        engine=st.sampled_from(("reference", "vectorized")),
    )
    def test_single_model_pool_is_observationally_inert(
        self, faults, load_factor, seed, engine
    ):
        """``pool=`` must leave single-model runs record-for-record equal."""
        pool = MultiModelPool(MM_REPLICAS, (RMC1_SMALL,), slots_per_replica=1)

        def run_router(pool_arg):
            return ResilientRouter(
                BROADWELL,
                RMC1_SMALL,
                8,
                NUM_MACHINES,
                seed=seed,
                engine=engine,
                pool=pool_arg,
            ).run(
                offered_qps=load_factor * NUM_MACHINES / SERVICE_S,
                duration_s=DURATION_S,
                faults=faults,
                sla=SLA(deadline_s=25.0 * SERVICE_S),
            )

        with_pool, without = run_router(pool), run_router(None)
        assert with_pool.offered == without.offered
        assert with_pool.completed == without.completed
        assert list(with_pool.latencies_s) == list(without.latencies_s)

        def run_sim(pool_arg):
            return ServingSimulator(
                BROADWELL,
                RMC1_SMALL,
                batch_size=8,
                num_instances=NUM_MACHINES,
                per_instance_qps=load_factor / SERVICE_S,
                seed=seed,
                faults=faults,
                engine=engine,
                pool=pool_arg,
            ).run(duration_s=DURATION_S)

        sim_with, sim_without = run_sim(pool), run_sim(None)
        assert sim_with.offered == sim_without.offered
        # RecordBatch (vectorized) and list[InferenceRecord] (reference)
        # are duck-compatible: indexing yields comparable records.
        assert list(sim_with.records) == list(sim_without.records)
        assert list(sim_with.latencies_s()) == list(sim_without.latencies_s())
