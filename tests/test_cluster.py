"""Tests for cluster-level heterogeneous scheduling."""

import pytest

from repro.config import RMC1_SMALL, RMC2_SMALL, RMC3_SMALL
from repro.hw import BROADWELL, HASWELL, SKYLAKE
from repro.serving import SLA
from repro.serving.cluster import (
    MachinePool,
    WorkloadDemand,
    aware_capacity,
    blind_capacity,
    heterogeneity_gain,
)


@pytest.fixture(scope="module")
def pools():
    return [
        MachinePool(HASWELL, 10),
        MachinePool(BROADWELL, 10),
        MachinePool(SKYLAKE, 10),
    ]


@pytest.fixture(scope="module")
def demands():
    return [
        WorkloadDemand(RMC1_SMALL, batch_size=4, sla=SLA(0.001), weight=0.4),
        WorkloadDemand(RMC2_SMALL, batch_size=32, sla=SLA(0.050), weight=0.4),
        WorkloadDemand(RMC3_SMALL, batch_size=32, sla=SLA(0.050), weight=0.2),
    ]


class TestBlind:
    def test_positive_scale(self, pools, demands):
        plan = blind_capacity(pools, demands)
        assert plan.served_scale > 0

    def test_assignment_is_the_mix(self, pools, demands):
        plan = blind_capacity(pools, demands)
        for row in plan.assignment:
            assert sum(row) == pytest.approx(1.0)
            assert row[0] == pytest.approx(0.4)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            blind_capacity([], [])


class TestAware:
    def test_beats_or_matches_blind(self, pools, demands):
        gain = heterogeneity_gain(pools, demands)
        assert gain >= 1.0 - 1e-6

    def test_strict_gain_on_mixed_demand(self, pools, demands):
        """With diverse demands and diverse machines, awareness must pay."""
        assert heterogeneity_gain(pools, demands) > 1.05

    def test_pool_budgets_respected(self, pools, demands):
        plan = aware_capacity(pools, demands)
        for row in plan.assignment:
            assert sum(row) <= 1.0 + 1e-6

    def test_demands_served_proportionally(self, pools, demands):
        from repro.serving.cluster import _normalized_weights, _rate_matrix
        import numpy as np

        plan = aware_capacity(pools, demands)
        rates = _rate_matrix(pools, demands)
        weights = _normalized_weights(demands)
        counts = np.array([p.count for p in pools], dtype=float)
        x = np.array(plan.assignment)
        served = (counts[:, None] * x * rates).sum(axis=0)
        assert np.all(served + 1e-6 >= plan.served_scale * weights)

    def test_aware_routes_strict_latency_away_from_skylake(self, pools):
        """A tight low-batch SLA is Broadwell's regime; Skylake machines
        should carry the throughput-oriented work instead."""
        demands = [
            WorkloadDemand(RMC3_SMALL, batch_size=4, sla=SLA(0.0011), weight=0.5),
            WorkloadDemand(RMC2_SMALL, batch_size=32, sla=SLA(0.050), weight=0.5),
        ]
        plan = aware_capacity(pools, demands)
        skylake_row = plan.assignment[2]
        # Skylake's time goes predominantly to the RMC2 throughput demand.
        assert skylake_row[1] > skylake_row[0]

    def test_infeasible_demand_gives_zero_scale(self, pools):
        impossible = [
            WorkloadDemand(RMC2_SMALL, batch_size=32, sla=SLA(1e-6), weight=1.0)
        ]
        assert aware_capacity(pools, impossible).served_scale == pytest.approx(0.0)

    def test_single_pool_single_demand(self):
        pools = [MachinePool(BROADWELL, 4)]
        demands = [
            WorkloadDemand(RMC1_SMALL, batch_size=16, sla=SLA(0.010), weight=1.0)
        ]
        blind = blind_capacity(pools, demands).served_scale
        aware = aware_capacity(pools, demands).served_scale
        assert aware == pytest.approx(blind, rel=0.01)


class TestValidation:
    def test_pool_rejects_zero_machines(self):
        with pytest.raises(ValueError):
            MachinePool(BROADWELL, 0)

    def test_demand_rejects_zero_weight(self):
        with pytest.raises(ValueError):
            WorkloadDemand(RMC1_SMALL, 1, SLA(0.1), weight=0.0)
