"""Engine equivalence: vectorized replay vs the reference hierarchy.

The vectorized engine's whole contract is **bit-identical stats** to the
reference OrderedDict implementation — both inclusion policies, multi-line
accesses, prefetching (degrees 0-4) and ``external_llc_pressure``
interleavings. These tests drive random programs through both engines and
compare every counter after every step (record-for-record, not just final
totals), plus regression-test the ``_prefetched_lines`` leak the
vectorized engine's per-copy flags were designed against.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.operators.base import MemoryAccess
from repro.core.operators.sls import EmbeddingTable, SparseLengthsSum
from repro.hw._native import native_available
from repro.hw.hierarchy import CacheHierarchy
from repro.hw.server import BROADWELL, SKYLAKE
from repro.hw.vectorized import VectorizedSetAssociativeCache, expand_spans

# Tiny hierarchies make evictions, back-invalidations and prefetch
# pollution dense enough for short hypothesis programs to reach them.
TINY_BROADWELL = dataclasses.replace(
    BROADWELL, l1_bytes=1024, l2_bytes=4096, l3_bytes=16384
)
TINY_SKYLAKE = dataclasses.replace(
    SKYLAKE, l1_bytes=1024, l2_bytes=4096, l3_bytes=16384
)

BACKENDS = ["python"] + (["native"] if native_available() else [])


def snapshot(h: CacheHierarchy) -> dict:
    """Every counter the two engines must agree on."""
    state = dataclasses.asdict(h.stats)
    for name, level in (("l1", h.l1), ("l2", h.l2), ("l3", h.l3)):
        stats = level.stats
        state[name] = (stats.hits, stats.misses, stats.evictions, stats.invalidations)
        state[name + "_resident"] = level.resident_lines()
    return state


def run_program(h: CacheHierarchy, program) -> list[dict]:
    """Apply a step list to a hierarchy, snapshotting after every step."""
    states = []
    for op, payload in program:
        if op == "lines":
            h.access_lines(np.asarray(payload, dtype=np.int64))
        elif op == "access":
            address, size = payload
            h.access(MemoryAccess(address=address, size=size))
        else:
            h.external_llc_pressure(payload)
        states.append(snapshot(h))
    return states


# One step: a batch of line indices, a (possibly multi-line) MemoryAccess,
# or a pressure burst. Mixed id ranges give both uniform and skewed reuse.
_STEP = st.one_of(
    st.tuples(
        st.just("lines"),
        st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=60),
    ),
    st.tuples(
        st.just("lines"),
        st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=60),
    ),
    st.tuples(
        st.just("access"),
        st.tuples(
            st.integers(min_value=0, max_value=3000 * 64),
            st.integers(min_value=1, max_value=6 * 64),
        ),
    ),
    st.tuples(st.just("pressure"), st.integers(min_value=1, max_value=120)),
)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("server", [TINY_BROADWELL, TINY_SKYLAKE])
@settings(max_examples=40, deadline=None)
@given(
    program=st.lists(_STEP, min_size=1, max_size=12),
    degree=st.integers(min_value=0, max_value=4),
)
def test_property_engines_bit_identical(server, backend, program, degree):
    reference = CacheHierarchy(server, l3_share=0.5, prefetch_degree=degree)
    vectorized = CacheHierarchy(
        server,
        l3_share=0.5,
        prefetch_degree=degree,
        engine="vectorized",
        backend=backend,
    )
    assert run_program(reference, program) == run_program(vectorized, program)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("server", [BROADWELL, SKYLAKE])
@pytest.mark.parametrize("degree", [0, 2])
def test_full_size_servers_bit_identical(server, backend, degree):
    """Table-II geometries, skewed + uniform ids, pressure interleaved."""
    rng = np.random.default_rng(1234)
    uniform = rng.integers(0, 200_000, size=6000)
    skewed = (rng.zipf(1.3, size=6000) - 1) % 200_000
    lines = np.where(rng.random(6000) < 0.5, uniform, skewed).astype(np.int64)
    engines = [
        CacheHierarchy(server, l3_share=0.25, prefetch_degree=degree),
        CacheHierarchy(
            server,
            l3_share=0.25,
            prefetch_degree=degree,
            engine="vectorized",
            backend=backend,
        ),
    ]
    states = []
    for h in engines:
        per_step = []
        for chunk in np.array_split(lines, 4):
            h.access_lines(chunk)
            h.external_llc_pressure(500)
            per_step.append(snapshot(h))
        states.append(per_step)
    assert states[0] == states[1]


@pytest.mark.parametrize("backend", BACKENDS)
def test_sls_trace_path_bit_identical(backend):
    """line_trace_for_rows + access_lines == trace_for_rows + access_trace."""
    rng = np.random.default_rng(5)
    table = EmbeddingTable(50_000, 48)  # 192B rows straddle line boundaries
    sls = SparseLengthsSum("sls", table, lookups_per_sample=4)
    rows = rng.integers(0, table.rows, size=3000)

    reference = CacheHierarchy(BROADWELL, l3_share=0.1)
    reference.access_trace(sls.trace_for_rows(rows))

    vectorized = CacheHierarchy(
        BROADWELL, l3_share=0.1, engine="vectorized", backend=backend
    )
    vectorized.access_lines(sls.line_trace_for_rows(rows))
    assert snapshot(reference) == snapshot(vectorized)


def test_reset_stats_keeps_contents_on_both_engines():
    for kwargs in ({}, {"engine": "vectorized"}):
        h = CacheHierarchy(TINY_BROADWELL, **kwargs)
        h.access_lines(np.arange(40, dtype=np.int64))
        finished = h.reset_stats()
        assert finished.dram_accesses == 40
        assert h.stats.dram_accesses == 0
        h.access_lines(np.arange(40, dtype=np.int64))
        assert h.stats.dram_accesses == 0  # contents survived the reset


def test_engine_and_backend_validation():
    with pytest.raises(ValueError):
        CacheHierarchy(BROADWELL, engine="turbo")
    with pytest.raises(ValueError):
        CacheHierarchy(BROADWELL, engine="vectorized", backend="rust")


def test_native_backend_errors_when_disabled(monkeypatch):
    monkeypatch.setenv("REPRO_DISABLE_NATIVE", "1")
    import repro.hw._native as native

    monkeypatch.setattr(native, "_CACHED", None)
    try:
        with pytest.raises(RuntimeError):
            CacheHierarchy(BROADWELL, engine="vectorized", backend="native")
    finally:
        native._CACHED = None  # let later tests re-probe the compiler


class TestPrefetchLeakRegression:
    """`_prefetched_lines` must drop entries whose line left L2 and L3."""

    def test_bookkeeping_is_bounded_by_residency(self):
        h = CacheHierarchy(TINY_BROADWELL, l3_share=0.5, prefetch_degree=4)
        rng = np.random.default_rng(0)
        capacity = (
            h.l2.num_sets * h.l2.associativity
            + h.l3.num_sets * h.l3.associativity
        )
        for _ in range(30):
            h.access_lines(rng.integers(0, 4000, size=500).astype(np.int64))
            h.external_llc_pressure(100)
            assert len(h._prefetched_lines) <= capacity

    def test_stale_prefetch_is_not_a_hit(self):
        """A prefetched-then-evicted line must not count as a prefetch hit."""
        h = CacheHierarchy(TINY_BROADWELL, l3_share=0.5, prefetch_degree=1)
        h.access_lines(np.array([0], dtype=np.int64))  # prefetches line 1
        assert h.stats.prefetches_issued == 1
        # Thrash until the prefetched line is gone from both L2 and L3.
        h.external_llc_pressure(4096)
        rng = np.random.default_rng(1)
        h.access_lines(rng.integers(10_000, 40_000, size=4000).astype(np.int64))
        assert not h.l2.probe(1) and not h.l3.probe(1)
        assert 1 not in h._prefetched_lines
        before = h.stats.prefetch_hits
        h.access_lines(np.array([1], dtype=np.int64))
        assert h.stats.prefetch_hits == before

    def test_prefetched_line_in_both_l2_and_l3_still_hits(self):
        """Non-inclusive corner: the flag survives while an L2 copy lives,
        even if the L3 copy is evicted first."""
        h = CacheHierarchy(TINY_SKYLAKE, l3_share=0.5, prefetch_degree=1)
        # Demand-miss line 10 -> prefetch line 11 into L2 (victim L3 has
        # no copy); a later L3 eviction of anything must not kill it.
        h.access_lines(np.array([10], dtype=np.int64))
        h.external_llc_pressure(2048)
        assert h.l2.probe(11)
        h.access_lines(np.array([11], dtype=np.int64))
        assert h.stats.prefetch_hits == 1


class TestReplayObservability:
    """Tracer/profiler hooks on the batch replay path: off == bit-identical."""

    def _stats(self, tracer, profiler):
        from repro.hw.trace_integration import replay_line_trace

        rng = np.random.default_rng(3)
        h = CacheHierarchy(TINY_BROADWELL, l3_share=0.5, engine="vectorized")
        lines = rng.integers(0, 2000, size=3000).astype(np.int64)
        delta = replay_line_trace(h, lines, tracer=tracer, profiler=profiler)
        return delta, snapshot(h)

    def test_tracing_off_is_bit_identical(self):
        from repro.obs.profile import OpProfiler
        from repro.obs.tracer import Tracer

        tracer, profiler = Tracer(), OpProfiler()
        plain = self._stats(None, None)
        traced = self._stats(tracer, profiler)
        assert plain == traced

    def test_replay_spans_and_attribution(self):
        from repro.core.operators.base import OP_SLS
        from repro.obs.profile import OpProfiler
        from repro.obs.tracer import Tracer

        tracer, profiler = Tracer(), OpProfiler()
        delta, _ = self._stats(tracer, profiler)
        names = {span.name for span in tracer.spans}
        assert "hw.replay.trace" in names and "hw.replay.dram" in names
        assert not tracer.open_spans()
        parent = next(s for s in tracer.spans if s.name == "hw.replay.trace")
        assert parent.args["dram_accesses"] == delta.dram_accesses
        children = [s for s in tracer.spans if s.parent_id == parent.span_id]
        assert children and all(
            s.begin_s >= parent.begin_s and s.end_s <= parent.end_s + 1e-12
            for s in children
        )
        assert profiler.by_op_type[OP_SLS].invocations == 1
        assert profiler.by_op_type[OP_SLS].cycles > 0

    def test_measure_functions_accept_engine_and_match_reference(self):
        from repro.analysis.mpki import measure_sls_trace_mpki
        from repro.hw.trace_integration import measure_trace_hit_ratio

        rng = np.random.default_rng(8)
        rows = rng.integers(0, 30_000, size=2000)
        table = EmbeddingTable(30_000, 32)
        sls = SparseLengthsSum("sls", table, lookups_per_sample=4)
        by_engine = [
            measure_sls_trace_mpki(sls, BROADWELL, rows, engine=engine)
            for engine in ("reference", "vectorized")
        ]
        assert by_engine[0] == by_engine[1]
        ratios = [
            measure_trace_hit_ratio(
                BROADWELL, 30_000, 32, rows, l3_share=0.5, engine=engine
            )[0]
            for engine in ("reference", "vectorized")
        ]
        assert ratios[0] == ratios[1]


class TestVectorizedCacheUnit:
    def test_geometry_validation_matches_reference(self):
        with pytest.raises(ValueError):
            VectorizedSetAssociativeCache("bad", 1000, 8, 64)
        with pytest.raises(ValueError):
            VectorizedSetAssociativeCache("bad", 0)

    def test_probe_and_ages(self):
        cache = VectorizedSetAssociativeCache("L", 4096, 4, 64)
        h = CacheHierarchy(TINY_BROADWELL, engine="vectorized")
        h.access_lines(np.array([3, 7, 3], dtype=np.int64))
        assert h.l1.probe(3) and h.l1.probe(7) and not h.l1.probe(99)
        ages = h.l1.age_matrix()
        set3, set7 = 3 % h.l1.num_sets, 7 % h.l1.num_sets
        # 3 was re-touched after 7, so it is the MRU (age 0) of its set.
        assert ages[set3][np.where(h.l1.tags[set3] == 3)[0][0]] == 0
        assert (cache.age_matrix() == -1).all()  # empty cache: all empty

    def test_probe_lines_matches_scalar_probe(self):
        h = CacheHierarchy(TINY_BROADWELL, engine="vectorized")
        h.access_lines(np.arange(0, 200, 3, dtype=np.int64))
        queries = np.arange(0, 250, dtype=np.int64)
        batched = h.l2.probe_lines(queries)
        assert batched.tolist() == [h.l2.probe(int(q)) for q in queries]

    def test_expand_spans_matches_lines_spanned(self):
        cache = VectorizedSetAssociativeCache("L", 4096, 4, 64)
        rng = np.random.default_rng(2)
        addresses = rng.integers(0, 100_000, size=200)
        sizes = rng.integers(1, 400, size=200)
        expected = [
            line
            for addr, size in zip(addresses, sizes)
            for line in cache.lines_spanned(int(addr), int(size))
        ]
        got = expand_spans(addresses, sizes, 64)
        assert got.tolist() == expected
        assert expand_spans(np.empty(0), np.empty(0), 64).size == 0
