"""Unit tests for the server timing model (mechanics, not calibration)."""

import pytest

from repro.config import MLPConfig, ModelConfig, RMC1, RMC2, RMC3, uniform_tables
from repro.hw import (
    BROADWELL,
    ColocationState,
    HASWELL,
    RUN_ALONE,
    SKYLAKE,
    TimingModel,
    get_server,
)
from repro.hw.simd import (
    effective_gflops,
    packed_simd_fraction_of_theoretical,
    packed_simd_throughput_ratio,
    utilization,
)


class TestServerSpecs:
    def test_lookup_by_name(self):
        assert get_server("broadwell") is BROADWELL
        with pytest.raises(KeyError):
            get_server("icelake")

    def test_table2_values(self):
        assert HASWELL.ddr_type == "DDR3"
        assert BROADWELL.inclusive_llc and HASWELL.inclusive_llc
        assert not SKYLAKE.inclusive_llc
        assert SKYLAKE.simd.name == "AVX-512"
        assert SKYLAKE.l2_bytes == 4 * BROADWELL.l2_bytes

    def test_peak_flops(self):
        assert SKYLAKE.simd.peak_flops_per_cycle == 2 * BROADWELL.simd.peak_flops_per_cycle
        assert SKYLAKE.peak_gflops_per_core > BROADWELL.peak_gflops_per_core


class TestSimdModel:
    def test_utilization_monotone_in_batch(self):
        for server in (HASWELL, BROADWELL, SKYLAKE):
            values = [utilization(server, b) for b in (1, 4, 16, 64, 256)]
            assert values == sorted(values)

    def test_utilization_bounded(self):
        for server in (HASWELL, BROADWELL, SKYLAKE):
            for b in (1, 3, 10, 100, 1000):
                assert 0 < utilization(server, b) < 1

    def test_effective_gflops_below_peak(self):
        assert effective_gflops(BROADWELL, 64) < BROADWELL.peak_gflops_per_core

    def test_packed_ratio_anchors(self):
        """Paper Section V: 2.9x at batch 4 (74%), 14.5x at batch 16 (91%)."""
        assert packed_simd_throughput_ratio(4) == pytest.approx(2.9)
        assert packed_simd_throughput_ratio(16) == pytest.approx(14.5)
        assert packed_simd_fraction_of_theoretical(4) == pytest.approx(0.725)
        assert packed_simd_fraction_of_theoretical(16) == pytest.approx(0.906, rel=0.01)

    def test_rejects_zero_batch(self):
        with pytest.raises(ValueError):
            utilization(BROADWELL, 0)


class TestFcTiming:
    def test_latency_increases_with_flops(self):
        tm = TimingModel(BROADWELL)
        small = tm.fc_time("a", 10_000, 1000, 100, batch=1)
        big = tm.fc_time("b", 10_000_000, 1000, 100, batch=1)
        assert big.seconds > small.seconds

    def test_per_sample_latency_improves_with_batch(self):
        tm = TimingModel(BROADWELL)
        b1 = tm.fc_time("a", 1_000_000, 4000, 100, batch=1).seconds
        b64 = tm.fc_time("a", 64_000_000, 4000, 6400, batch=64).seconds / 64
        assert b64 < b1

    def test_hyperthreading_slows_fc(self):
        tm = TimingModel(BROADWELL)
        plain = tm.fc_time("a", 10_000_000, 1000, 100, batch=16)
        ht = tm.fc_time(
            "a", 10_000_000, 1000, 100, batch=16,
            state=ColocationState(num_jobs=1, hyperthreading=True),
        )
        assert ht.seconds == pytest.approx(1.6 * plain.seconds, rel=0.05)

    def test_dram_resident_weights_slower_than_cached(self):
        tm = TimingModel(BROADWELL)
        # 100 MB of weights cannot live in any cache.
        huge = tm.fc_time("a", 1_000_000, 100_000_000, 100, batch=1)
        small = tm.fc_time("a", 1_000_000, 100_000, 100, batch=1)
        assert huge.seconds > small.seconds


class TestSlsTiming:
    def test_miss_path_slower_than_hit_path(self):
        tm = TimingModel(BROADWELL)
        assert tm.sls_miss_ns(32, 1) > tm.sls_hit_ns(32, 1)

    def test_lookup_blends_hit_ratio(self):
        tm = TimingModel(BROADWELL)
        all_miss = tm.sls_lookup_ns(32, 16, hit_ratio=0.0)
        all_hit = tm.sls_lookup_ns(32, 16, hit_ratio=1.0)
        half = tm.sls_lookup_ns(32, 16, hit_ratio=0.5)
        assert all_hit < half < all_miss

    def test_rejects_bad_hit_ratio(self):
        with pytest.raises(ValueError):
            TimingModel(BROADWELL).sls_lookup_ns(32, 1, hit_ratio=1.5)

    def test_table_hit_ratio_capacity(self):
        tm = TimingModel(BROADWELL)
        assert tm.table_hit_ratio(1024) == pytest.approx(1.0)
        assert tm.table_hit_ratio(10 * 1024**3) < 0.01

    def test_table_hit_ratio_locality_floor(self):
        tm = TimingModel(BROADWELL)
        assert tm.table_hit_ratio(10 * 1024**3, locality_hit_ratio=0.6) >= 0.6

    def test_haswell_slowest_dram(self):
        hsw = TimingModel(HASWELL).sls_miss_ns(32, 1)
        bdw = TimingModel(BROADWELL).sls_miss_ns(32, 1)
        assert hsw > bdw


class TestModelLatency:
    def test_production_config_timed_without_allocation(self):
        latency = TimingModel(BROADWELL).model_latency(RMC2, 16)
        assert latency.total_seconds > 0
        assert latency.batch_size == 16

    def test_fractions_sum_to_one(self):
        latency = TimingModel(SKYLAKE).model_latency(RMC1, 8)
        assert sum(latency.fraction_by_op_type().values()) == pytest.approx(1.0)

    def test_latency_monotone_in_batch(self):
        tm = TimingModel(BROADWELL)
        for cfg in (RMC1, RMC2, RMC3):
            lats = [tm.model_latency(cfg, b).total_seconds for b in (1, 8, 64, 256)]
            assert lats == sorted(lats)

    def test_locality_reduces_latency_for_dram_bound(self):
        tm = TimingModel(BROADWELL)
        base = tm.model_latency(RMC2, 16).total_seconds
        local = tm.model_latency(RMC2, 16, locality_hit_ratio=0.8).total_seconds
        assert local < base

    def test_explicit_hit_ratio_overrides_auto(self):
        tm = TimingModel(BROADWELL)
        forced = tm.model_latency(RMC2, 16, sls_hit_ratio=1.0).total_seconds
        auto = tm.model_latency(RMC2, 16).total_seconds
        assert forced < auto

    def test_rejects_zero_batch(self):
        with pytest.raises(ValueError):
            TimingModel(BROADWELL).model_latency(RMC1, 0)

    def test_seconds_per_sample(self):
        latency = TimingModel(BROADWELL).model_latency(RMC1, 10)
        assert latency.seconds_per_sample == pytest.approx(latency.total_seconds / 10)


class TestColocationHelpers:
    def test_resident_bytes_grow_with_fc_size(self):
        tm = TimingModel(BROADWELL)
        assert tm.resident_bytes(RMC3) > tm.resident_bytes(RMC1)

    def test_traffic_rmc2_near_paper_value(self):
        """Paper: ~1 GB/s of DRAM traffic per memory-intensive job."""
        traffic = TimingModel(BROADWELL).estimate_random_traffic_gbps(RMC2, 32)
        assert 0.5 < traffic < 4.0

    def test_traffic_rmc1_negligible(self):
        """RMC1's LLC-resident tables produce almost no DRAM traffic."""
        traffic = TimingModel(BROADWELL).estimate_random_traffic_gbps(RMC1, 32)
        assert traffic < 0.1

    def test_colocation_state_composition(self):
        tm = TimingModel(BROADWELL)
        state = tm.colocation_state(RMC2, 32, num_jobs=8)
        assert state.num_jobs == 8
        assert state.corunner_random_gbps > 0.5
        assert state.resident_bytes_per_job > 0

    def test_run_alone_is_neutral(self):
        tm = TimingModel(BROADWELL)
        assert tm.model_latency(RMC2, 16, RUN_ALONE).total_seconds == pytest.approx(
            tm.model_latency(RMC2, 16).total_seconds
        )
