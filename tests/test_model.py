"""Tests for RecommendationModel assembly and execution."""

import numpy as np
import pytest

from repro.config import (
    MLPConfig,
    ModelConfig,
    RMC1,
    scaled_for_execution,
    uniform_tables,
)
from repro.core import RecommendationModel
from repro.core.graph import config_ops, fc_weight_bytes
from repro.data import generate_inputs


@pytest.fixture(scope="module")
def small_config():
    return ModelConfig(
        name="tiny",
        model_class="RMC1",
        dense_features=8,
        bottom_mlp=MLPConfig([16, 8]),
        embedding_tables=uniform_tables(3, 200, 4, 5),
        top_mlp=MLPConfig([8, 1], final_activation="sigmoid"),
    )


@pytest.fixture(scope="module")
def model(small_config):
    return RecommendationModel(small_config)


class TestForward:
    def test_output_is_probability(self, model, small_config):
        dense, sparse = generate_inputs(small_config, 16)
        out = model.forward(dense, sparse)
        assert out.shape == (16,)
        assert np.all((out >= 0) & (out <= 1))

    def test_deterministic_given_inputs(self, model, small_config):
        dense, sparse = generate_inputs(small_config, 4, seed=9)
        np.testing.assert_array_equal(
            model.forward(dense, sparse), model.forward(dense, sparse)
        )

    def test_batch_consistency(self, model, small_config):
        """Scoring a batch equals scoring samples individually."""
        dense, sparse = generate_inputs(small_config, 3, seed=2)
        full = model.forward(dense, sparse)
        for k in range(3):
            ids = [
                sp.ids[k * 5 : (k + 1) * 5] for sp in sparse
            ]
            single_sparse = [
                type(sp)(ids=i, lengths=np.array([5])) for sp, i in zip(sparse, ids)
            ]
            single = model.forward(dense[k : k + 1], single_sparse)
            assert single[0] == pytest.approx(full[k], rel=1e-5)

    def test_rejects_wrong_dense_width(self, model):
        dense, sparse = generate_inputs(model.config, 2)
        with pytest.raises(ValueError):
            model.forward(dense[:, :-1], sparse)

    def test_rejects_wrong_table_count(self, model, small_config):
        dense, sparse = generate_inputs(small_config, 2)
        with pytest.raises(ValueError):
            model.forward(dense, sparse[:-1])

    def test_rejects_mismatched_batch(self, model, small_config):
        dense, sparse = generate_inputs(small_config, 2)
        dense3, _ = generate_inputs(small_config, 3)
        with pytest.raises(ValueError):
            model.forward(dense3, sparse)


class TestProfiledForward:
    def test_profile_covers_all_operators(self, model, small_config):
        dense, sparse = generate_inputs(small_config, 4)
        out, profile = model.forward_profiled(dense, sparse)
        assert len(profile.records) == len(model.operators())
        assert out.shape == (4,)

    def test_profile_matches_plain_forward(self, model, small_config):
        dense, sparse = generate_inputs(small_config, 4, seed=5)
        plain = model.forward(dense, sparse)
        profiled, _ = model.forward_profiled(dense, sparse)
        np.testing.assert_allclose(plain, profiled, rtol=1e-6)

    def test_fractions_sum_to_one(self, model, small_config):
        dense, sparse = generate_inputs(small_config, 4)
        _, profile = model.forward_profiled(dense, sparse)
        assert sum(profile.fraction_by_op_type().values()) == pytest.approx(1.0)

    def test_sls_dominates_memory_heavy_config(self):
        config = scaled_for_execution(
            ModelConfig(
                name="memheavy",
                model_class="RMC2",
                dense_features=8,
                bottom_mlp=MLPConfig([8]),
                embedding_tables=uniform_tables(10, 5000, 32, 40),
                top_mlp=MLPConfig([4, 1], final_activation="sigmoid"),
            )
        )
        model = RecommendationModel(config)
        dense, sparse = generate_inputs(config, 8)
        _, profile = model.forward_profiled(dense, sparse)
        frac = profile.fraction_by_op_type()
        assert frac["SLS"] > frac.get("FC", 0.0)


class TestModelStructure:
    def test_storage_matches_config(self, model, small_config):
        assert model.storage_bytes() == pytest.approx(
            small_config.total_storage_bytes(), rel=0.01
        )

    def test_cost_matches_config_flops(self, model, small_config):
        # Model-level analytic cost includes activations; FLOPs should cover
        # at least the config-level MLP+embedding FLOPs.
        assert model.cost(1).flops >= small_config.flops_per_sample()

    def test_operator_order(self, model):
        names = [op.name for op in model.operators()]
        assert names.index("concat") > names.index("emb0:sls")
        assert names.index("top:fc0") > names.index("concat")


class TestGraph:
    def test_graph_matches_model_operators(self, small_config):
        model = RecommendationModel(small_config)
        specs = config_ops(small_config)
        assert [s.name for s in specs] == [op.name for op in model.operators()]

    def test_graph_weight_bytes_match(self, small_config):
        model = RecommendationModel(small_config)
        spec_weights = sum(s.weight_bytes for s in config_ops(small_config))
        assert spec_weights == model.storage_bytes()

    def test_graph_flops_match_config(self, small_config):
        total = sum(s.flops_per_sample for s in config_ops(small_config))
        # config-level FLOPs exclude activation FLOPs
        act = sum(
            s.flops_per_sample
            for s in config_ops(small_config)
            if s.op_type == "Activation"
        )
        assert total - act == small_config.flops_per_sample()

    def test_fc_weight_bytes_subset_of_total(self, small_config):
        assert 0 < fc_weight_bytes(small_config) < small_config.total_storage_bytes()

    def test_production_config_needs_no_allocation(self):
        # Production RMC1 graph materializes instantly (no table allocation).
        specs = config_ops(RMC1)
        assert any(s.op_type == "SLS" for s in specs)
