"""Tests for heterogeneous co-location placement analysis."""

import pytest

from repro.config import RMC1_SMALL, RMC2_SMALL, RMC3_SMALL
from repro.hw import BROADWELL
from repro.serving.mixed_colocation import (
    JobSpec,
    compare_groupings,
    machine_latencies,
    machine_throughput,
)


def jobs(config, n, batch=32):
    return [JobSpec(config, batch)] * n


def latency_of(placed, config_name):
    for p in placed:
        if p.job.config.name == config_name:
            return p.latency.total_seconds
    raise KeyError(config_name)


class TestMachineLatencies:
    def test_single_job_runs_alone(self):
        placed = machine_latencies(BROADWELL, jobs(RMC2_SMALL, 1))
        from repro.hw import TimingModel

        alone = TimingModel(BROADWELL).model_latency(RMC2_SMALL, 32).total_seconds
        assert placed[0].latency.total_seconds == pytest.approx(alone)

    def test_quiet_corunners_help_rmc2(self):
        """RMC2 surrounded by LLC-resident RMC1s suffers far less than
        surrounded by other RMC2s — contention is traffic, not job count."""
        noisy = machine_latencies(BROADWELL, jobs(RMC2_SMALL, 8))
        quiet = machine_latencies(
            BROADWELL, jobs(RMC2_SMALL, 1) + jobs(RMC1_SMALL, 7)
        )
        assert (
            latency_of(quiet, "RMC2-small")
            < 0.8 * latency_of(noisy, "RMC2-small")
        )

    def test_noisy_corunners_hurt_rmc1(self):
        calm = machine_latencies(BROADWELL, jobs(RMC1_SMALL, 8))
        stormy = machine_latencies(
            BROADWELL, jobs(RMC1_SMALL, 1) + jobs(RMC2_SMALL, 7)
        )
        assert latency_of(stormy, "RMC1-small") > latency_of(calm, "RMC1-small")

    def test_rmc3_footprint_pressures_corunners(self):
        """RMC3's multi-MB FC weights occupy the LLC: an RMC2 co-located
        with RMC3s loses capacity even though they are traffic-quiet."""
        with_rmc1 = machine_latencies(
            BROADWELL, jobs(RMC2_SMALL, 1) + jobs(RMC1_SMALL, 7)
        )
        with_rmc3 = machine_latencies(
            BROADWELL, jobs(RMC2_SMALL, 1) + jobs(RMC3_SMALL, 7)
        )
        assert (
            latency_of(with_rmc3, "RMC2-small")
            > latency_of(with_rmc1, "RMC2-small")
        )

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            machine_latencies(BROADWELL, [])


class TestGroupings:
    def test_throughput_is_sum_of_jobs(self):
        mix = jobs(RMC2_SMALL, 2) + jobs(RMC3_SMALL, 2)
        placed = machine_latencies(BROADWELL, mix)
        assert machine_throughput(BROADWELL, mix) == pytest.approx(
            sum(p.items_per_s for p in placed)
        )

    def test_comparison_totals_consistent(self):
        cmp = compare_groupings(
            BROADWELL, jobs(RMC1_SMALL, 4), jobs(RMC2_SMALL, 4)
        )
        assert cmp.segregated_items_per_s > 0
        assert cmp.interleaved_items_per_s > 0
        assert cmp.interleaving_gain == pytest.approx(
            cmp.interleaved_items_per_s / cmp.segregated_items_per_s
        )

    def test_rejects_odd_groups(self):
        with pytest.raises(ValueError):
            compare_groupings(BROADWELL, jobs(RMC1_SMALL, 3), jobs(RMC2_SMALL, 4))

    def test_identical_groups_gain_one(self):
        cmp = compare_groupings(
            BROADWELL, jobs(RMC2_SMALL, 4), jobs(RMC2_SMALL, 4)
        )
        assert cmp.interleaving_gain == pytest.approx(1.0)
