"""Edge cases and failure injection across subsystems."""

import numpy as np
import pytest
from dataclasses import replace

from repro.config import MLPConfig, ModelConfig, RMC2_SMALL, uniform_tables
from repro.core import Profiler, RecommendationModel
from repro.core.operators import FullyConnected, relu
from repro.core.operators.base import MemoryAccess
from repro.core.workload_stats import resnet50_point, rnn_translation_point
from repro.data import generate_inputs
from repro.hw import BROADWELL, CacheHierarchy, ColocationState, TimingModel


class TestDegenerateConfigs:
    def test_single_everything_model(self):
        """The minimal possible DLRM still runs end to end."""
        config = ModelConfig(
            name="min",
            model_class="RMC1",
            dense_features=1,
            bottom_mlp=MLPConfig([1]),
            embedding_tables=uniform_tables(1, 1, 1, 1),
            top_mlp=MLPConfig([1], final_activation="sigmoid"),
        )
        model = RecommendationModel(config)
        dense, sparse = generate_inputs(config, 1)
        out = model.forward(dense, sparse)
        assert out.shape == (1,)
        assert TimingModel(BROADWELL).model_latency(config, 1).total_seconds > 0

    def test_enormous_batch_timing(self):
        latency = TimingModel(BROADWELL).model_latency(RMC2_SMALL, 100_000)
        assert np.isfinite(latency.total_seconds)
        assert latency.total_seconds > 0

    def test_extreme_colocation_counts(self):
        tm = TimingModel(BROADWELL)
        state = ColocationState(num_jobs=1000, corunner_random_gbps=2.0)
        latency = tm.model_latency(RMC2_SMALL, 16, state)
        assert np.isfinite(latency.total_seconds)


class TestHostileCachePatterns:
    def test_set_aliasing_thrash(self):
        """Accesses striding by the set-aliasing distance defeat one set
        but never corrupt the structure."""
        h = CacheHierarchy(BROADWELL)
        stride = h.l1.num_sets * 64
        for i in range(100):
            h.access(MemoryAccess(address=(i % 20) * stride, size=64))
        assert h.l1.resident_lines() <= h.l1.size_bytes // 64
        assert h.stats.total_line_accesses == 100

    def test_giant_single_access(self):
        h = CacheHierarchy(BROADWELL)
        h.access(MemoryAccess(address=0, size=64 * 1024 * 1024))
        assert h.stats.dram_accesses == 1024 * 1024

    def test_same_line_hammer(self):
        h = CacheHierarchy(BROADWELL)
        for _ in range(1000):
            h.access(MemoryAccess(address=4096, size=8))
        assert h.stats.l1_hits == 999
        assert h.stats.dram_accesses == 1


class TestDegenerateServers:
    def test_absurdly_slow_clock_still_finite(self):
        slow = replace(BROADWELL, name="Slowwell", frequency_ghz=0.1)
        latency = TimingModel(slow).model_latency(RMC2_SMALL, 16)
        baseline = TimingModel(BROADWELL).model_latency(RMC2_SMALL, 16)
        assert np.isfinite(latency.total_seconds)
        assert latency.total_seconds > baseline.total_seconds

    def test_tiny_llc_kills_rmc1_residency(self):
        from repro.config import RMC1_SMALL

        tiny_llc = replace(BROADWELL, name="Cacheless", l3_bytes=1 << 20)
        tiny = TimingModel(tiny_llc).model_latency(RMC1_SMALL, 32)
        normal = TimingModel(BROADWELL).model_latency(RMC1_SMALL, 32)
        assert tiny.total_seconds > 1.5 * normal.total_seconds


class TestProfilerAndStats:
    def test_profiler_accumulates_and_resets(self):
        profiler = Profiler()
        fc = FullyConnected("fc", 8, 8)
        act = relu("r", 8)
        x = np.zeros((2, 8), dtype=np.float32)
        profiler.run(act, 2, profiler.run(fc, 2, x))
        profile = profiler.reset()
        assert len(profile.records) == 2
        assert profiler.profile.records == []
        assert profile.total_cost.flops > 0

    def test_profile_merge(self):
        profiler = Profiler()
        fc = FullyConnected("fc", 4, 4)
        profiler.run(fc, 1, np.zeros((1, 4), dtype=np.float32))
        a = profiler.reset()
        profiler.run(fc, 1, np.zeros((1, 4), dtype=np.float32))
        b = profiler.reset()
        merged = a.merged(b)
        assert len(merged.records) == 2

    def test_empty_profile_fractions(self):
        from repro.core.profiler import Profile

        assert Profile().fraction_by_op_type() == {}

    def test_reference_network_points(self):
        resnet = resnet50_point()
        rnn = rnn_translation_point()
        # ResNet50-scale: a few GFLOPs, tens of MB of weights.
        assert 1e9 < resnet.flops < 2e10
        assert 1e7 < resnet.storage_bytes < 2e8
        assert rnn.flops > 1e8
