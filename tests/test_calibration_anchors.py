"""Paper-anchor tests: the timing model must reproduce the paper's *shape*.

Every assertion here corresponds to a quantitative claim in the paper
(Sections V-VI). Absolute tolerances are loose (we model, not measure), but
orderings, crossovers and rough factors must hold — these are the takeaway
messages of the paper.
"""

import pytest

from repro.config import RMC1_LARGE, RMC1_SMALL, RMC2_SMALL, RMC3_SMALL
from repro.hw import BROADWELL, ColocationState, HASWELL, SKYLAKE, TimingModel

RMC1, RMC2, RMC3 = RMC1_SMALL, RMC2_SMALL, RMC3_SMALL


def latency_ms(server, config, batch, state=None, **kw):
    tm = TimingModel(server)
    if state is None:
        return tm.model_latency(config, batch, **kw).total_seconds * 1e3
    return tm.model_latency(config, batch, state, **kw).total_seconds * 1e3


def homogeneous_state(server, config, batch, n):
    return TimingModel(server).colocation_state(config, batch, n)


class TestTakeaway1BatchOneLatency:
    """Fig 7 left: 0.04 / 0.30 / 0.60 ms on Broadwell; 15x spread."""

    def test_absolute_anchors_within_35_percent(self):
        assert latency_ms(BROADWELL, RMC1, 1) == pytest.approx(0.04, rel=0.35)
        assert latency_ms(BROADWELL, RMC2, 1) == pytest.approx(0.30, rel=0.35)
        assert latency_ms(BROADWELL, RMC3, 1) == pytest.approx(0.60, rel=0.35)

    def test_order_of_magnitude_spread(self):
        spread = latency_ms(BROADWELL, RMC3, 1) / latency_ms(BROADWELL, RMC1, 1)
        assert 8 < spread < 25  # paper: 15x

    def test_large_rmc1_roughly_2x_small(self):
        ratio = latency_ms(BROADWELL, RMC1_LARGE, 1) / latency_ms(BROADWELL, RMC1, 1)
        assert 1.5 < ratio < 5.0


class TestTakeaway2OperatorBreakdown:
    """Fig 7 right: no single operator dominates across all classes."""

    def test_rmc1_fc_dominated_with_visible_sls(self):
        frac = TimingModel(BROADWELL).model_latency(RMC1, 1).fraction_by_op_type()
        assert 0.45 < frac["FC"] < 0.85  # paper: ~61%
        assert 0.10 < frac["SLS"] < 0.35  # paper: ~20%

    def test_rmc2_sls_dominated(self):
        frac = TimingModel(BROADWELL).model_latency(RMC2, 1).fraction_by_op_type()
        assert frac["SLS"] > 0.7  # paper: ~80%

    def test_rmc3_fc_dominated(self):
        frac = TimingModel(BROADWELL).model_latency(RMC3, 1).fraction_by_op_type()
        assert frac["FC"] > 0.9  # paper: >96% incl. BatchMM

    def test_breakdowns_hold_across_servers(self):
        for server in (HASWELL, SKYLAKE):
            frac = TimingModel(server).model_latency(RMC2, 1).fraction_by_op_type()
            assert frac["SLS"] > 0.6


class TestTakeaway3BroadwellBestLowBatch:
    """Fig 8: Broadwell optimal at small batch on every model class."""

    @pytest.mark.parametrize("config", [RMC1, RMC2, RMC3])
    @pytest.mark.parametrize("batch", [1, 4, 16])
    def test_broadwell_wins_small_batch(self, config, batch):
        bdw = latency_ms(BROADWELL, config, batch)
        assert bdw < latency_ms(HASWELL, config, batch)
        assert bdw < latency_ms(SKYLAKE, config, batch)

    def test_batch16_speedup_factors(self):
        """Paper: BDW beats (HSW, SKL) by (1.4,1.5) RMC1, (1.3,1.4) RMC2,
        (1.32,1.65) RMC3. Allow +-30%."""
        anchors = {
            RMC1.name: (1.4, 1.5),
            RMC2.name: (1.3, 1.4),
            RMC3.name: (1.32, 1.65),
        }
        for config in (RMC1, RMC2, RMC3):
            bdw = latency_ms(BROADWELL, config, 16)
            hsw_ratio = latency_ms(HASWELL, config, 16) / bdw
            skl_ratio = latency_ms(SKYLAKE, config, 16) / bdw
            exp_hsw, exp_skl = anchors[config.name]
            assert hsw_ratio == pytest.approx(exp_hsw, rel=0.30)
            assert skl_ratio == pytest.approx(exp_skl, rel=0.30)


class TestTakeaway4SkylakeWinsLargeBatch:
    """Fig 8: AVX-512 pays off at large batch — crossover at ~64 for the
    compute-bound RMC3 and ~128-256 for the memory-bound classes."""

    def test_rmc3_crossover_at_64(self):
        assert latency_ms(SKYLAKE, RMC3, 64) < latency_ms(BROADWELL, RMC3, 64)
        assert latency_ms(SKYLAKE, RMC3, 16) > latency_ms(BROADWELL, RMC3, 16)

    @pytest.mark.parametrize("config", [RMC1, RMC2])
    def test_memory_models_crossover_by_256(self, config):
        assert latency_ms(SKYLAKE, config, 256) < latency_ms(BROADWELL, config, 256)
        assert latency_ms(SKYLAKE, config, 16) > latency_ms(BROADWELL, config, 16)

    def test_haswell_never_best(self):
        for config in (RMC1, RMC2, RMC3):
            for batch in (1, 16, 128):
                hsw = latency_ms(HASWELL, config, batch)
                assert hsw > min(
                    latency_ms(BROADWELL, config, batch),
                    latency_ms(SKYLAKE, config, batch),
                )


class TestTakeaway6ColocationDegradation:
    """Fig 9 on Broadwell, batch 32, 8 co-located jobs: RMC1 1.3x,
    RMC2 2.6x, RMC3 1.6x; RMC2's SLS 3x and FC 1.6x; RMC1's SLS share
    grows ~15% -> ~35%."""

    def degradation(self, config, n, batch=32):
        tm = TimingModel(BROADWELL)
        alone = tm.model_latency(config, batch).total_seconds
        state = homogeneous_state(BROADWELL, config, batch, n)
        return tm.model_latency(config, batch, state).total_seconds / alone

    def test_model_level_factors(self):
        assert self.degradation(RMC1, 8) == pytest.approx(1.3, rel=0.25)
        assert self.degradation(RMC2, 8) == pytest.approx(2.6, rel=0.25)
        assert self.degradation(RMC3, 8) == pytest.approx(1.6, rel=0.25)

    def test_rmc2_degrades_most(self):
        assert self.degradation(RMC2, 8) > self.degradation(RMC3, 8)
        assert self.degradation(RMC2, 8) > self.degradation(RMC1, 8)

    def test_degradation_monotone_in_jobs(self):
        values = [self.degradation(RMC2, n) for n in (1, 2, 4, 8)]
        assert values == sorted(values)
        assert values[0] == pytest.approx(1.0)

    def test_rmc2_operator_degradation(self):
        tm = TimingModel(BROADWELL)
        alone = tm.model_latency(RMC2, 32).seconds_by_op_type()
        state = homogeneous_state(BROADWELL, RMC2, 32, 8)
        loaded = tm.model_latency(RMC2, 32, state).seconds_by_op_type()
        assert loaded["SLS"] / alone["SLS"] == pytest.approx(3.0, rel=0.25)
        assert loaded["FC"] / alone["FC"] == pytest.approx(1.6, rel=0.25)

    def test_rmc1_sls_share_growth(self):
        tm = TimingModel(BROADWELL)
        alone = tm.model_latency(RMC1, 32).fraction_by_op_type()["SLS"]
        state = homogeneous_state(BROADWELL, RMC1, 32, 8)
        loaded = tm.model_latency(RMC1, 32, state).fraction_by_op_type()["SLS"]
        assert alone == pytest.approx(0.15, abs=0.07)
        assert loaded == pytest.approx(0.35, abs=0.10)


class TestTakeaway7InclusiveVsExclusive:
    """Fig 10: Broadwell best at low co-location; Skylake at high; Skylake
    shows a latency jump near ~18 jobs; Haswell trails."""

    def frontier(self, server, n):
        tm = TimingModel(server)
        state = homogeneous_state(server, RMC2, 32, n)
        return tm.model_latency(RMC2, 32, state).total_seconds

    def test_broadwell_best_at_low_colocation(self):
        for n in (1, 2):
            assert self.frontier(BROADWELL, n) < self.frontier(SKYLAKE, n)
            assert self.frontier(BROADWELL, n) < self.frontier(HASWELL, n)

    def test_skylake_best_at_high_colocation(self):
        for n in (12, 16):
            assert self.frontier(SKYLAKE, n) < self.frontier(BROADWELL, n)
            assert self.frontier(SKYLAKE, n) < self.frontier(HASWELL, n)

    def test_skylake_cliff_near_18(self):
        """Relative latency jump 18 -> 21 jobs much larger on Skylake."""
        skl_jump = self.frontier(SKYLAKE, 21) / self.frontier(SKYLAKE, 18)
        bdw_jump = self.frontier(BROADWELL, 21) / self.frontier(BROADWELL, 18)
        assert skl_jump > bdw_jump + 0.05

    def test_inclusive_servers_degrade_faster_early(self):
        bdw = self.frontier(BROADWELL, 8) / self.frontier(BROADWELL, 1)
        skl = self.frontier(SKYLAKE, 8) / self.frontier(SKYLAKE, 1)
        assert bdw > skl


class TestHyperthreading:
    """Section VI: HT degrades FC ~1.6x and SLS ~1.3x."""

    def test_operator_factors(self):
        tm = TimingModel(BROADWELL)
        plain = tm.model_latency(RMC2, 32).seconds_by_op_type()
        ht = tm.model_latency(
            RMC2, 32, ColocationState(num_jobs=1, hyperthreading=True)
        ).seconds_by_op_type()
        assert ht["FC"] / plain["FC"] == pytest.approx(1.6, rel=0.05)
        assert ht["SLS"] / plain["SLS"] == pytest.approx(1.3, rel=0.05)

    def test_compute_intensive_models_suffer_more(self):
        tm = TimingModel(BROADWELL)
        state = ColocationState(num_jobs=1, hyperthreading=True)

        def degradation(config):
            return (
                tm.model_latency(config, 32, state).total_seconds
                / tm.model_latency(config, 32).total_seconds
            )

        assert degradation(RMC3) > degradation(RMC2)
