"""Unit tests for the contention model."""

import pytest

from repro.hw import BROADWELL, ColocationState, ContentionModel, HASWELL, SKYLAKE


class TestColocationState:
    def test_defaults(self):
        state = ColocationState()
        assert state.num_jobs == 1
        assert not state.hyperthreading

    def test_rejects_zero_jobs(self):
        with pytest.raises(ValueError):
            ColocationState(num_jobs=0)

    def test_rejects_negative_traffic(self):
        with pytest.raises(ValueError):
            ColocationState(corunner_random_gbps=-1.0)

    def test_rejects_negative_resident(self):
        with pytest.raises(ValueError):
            ColocationState(resident_bytes_per_job=-1)


class TestChurn:
    def test_zero_when_alone(self):
        cm = ContentionModel(BROADWELL)
        assert cm.llc_churn(ColocationState(num_jobs=1)) == 0.0

    def test_zero_when_corunners_quiet(self):
        cm = ContentionModel(BROADWELL)
        state = ColocationState(num_jobs=8, corunner_random_gbps=0.0)
        assert cm.llc_churn(state) == 0.0

    def test_saturates_at_one(self):
        cm = ContentionModel(BROADWELL)
        state = ColocationState(num_jobs=24, corunner_random_gbps=5.0)
        assert cm.llc_churn(state) == 1.0

    def test_monotone_in_jobs(self):
        cm = ContentionModel(BROADWELL)
        values = [
            cm.llc_churn(ColocationState(num_jobs=n, corunner_random_gbps=1.0))
            for n in (1, 2, 4, 8)
        ]
        assert values == sorted(values)


class TestInclusivePenalties:
    def test_exclusive_hierarchy_has_no_back_invalidation(self):
        cm = ContentionModel(SKYLAKE)
        state = ColocationState(num_jobs=16, corunner_random_gbps=2.0)
        assert cm.l2_back_invalidation_penalty(state) == 0.0
        assert cm.inclusive_dram_penalty(state) == 0.0

    def test_inclusive_hierarchy_penalized(self):
        cm = ContentionModel(BROADWELL)
        state = ColocationState(num_jobs=16, corunner_random_gbps=2.0)
        assert cm.l2_back_invalidation_penalty(state) > 0
        assert cm.inclusive_dram_penalty(state) > 0


class TestOverflow:
    def test_no_overflow_when_fitting(self):
        cm = ContentionModel(SKYLAKE)
        state = ColocationState(num_jobs=4, resident_bytes_per_job=1024)
        assert cm.llc_overflow(state) == 0.0

    def test_skylake_overflows_before_broadwell(self):
        """Skylake's LLC (27.5 MB) is the smallest: the Figure-10 cliff."""
        mb = 1024 * 1024
        state = ColocationState(num_jobs=20, resident_bytes_per_job=int(1.5 * mb))
        assert ContentionModel(SKYLAKE).llc_overflow(state) > 0
        assert ContentionModel(BROADWELL).llc_overflow(state) == 0.0


class TestBandwidth:
    def test_random_capacity_ordering(self):
        caps = {
            s.name: ContentionModel(s).random_access_capacity()
            for s in (HASWELL, BROADWELL, SKYLAKE)
        }
        assert caps["Haswell"] < caps["Broadwell"] < caps["Skylake"]

    def test_share_full_capacity_when_unsaturated(self):
        cm = ContentionModel(BROADWELL)
        share = cm.random_bandwidth_share(ColocationState(num_jobs=1), 1e9)
        assert share == pytest.approx(cm.random_access_capacity())

    def test_share_proportional_when_saturated(self):
        cm = ContentionModel(BROADWELL)
        state = ColocationState(num_jobs=30, corunner_random_gbps=2.0)
        share = cm.random_bandwidth_share(state, 2e9)
        assert share == pytest.approx(cm.random_access_capacity() / 30, rel=0.01)

    def test_stream_bandwidth_divided(self):
        cm = ContentionModel(BROADWELL)
        alone = cm.stream_bandwidth_share(ColocationState(num_jobs=1))
        shared = cm.stream_bandwidth_share(ColocationState(num_jobs=4))
        assert shared == pytest.approx(alone / 4)

    def test_llc_gather_share_caps_per_core(self):
        cm = ContentionModel(BROADWELL)
        alone = cm.llc_gather_bandwidth_share(ColocationState(num_jobs=1))
        shared = cm.llc_gather_bandwidth_share(ColocationState(num_jobs=8))
        assert shared < alone


class TestMlp:
    def test_batch_mlp_monotone(self):
        cm = ContentionModel(BROADWELL)
        alone = ColocationState(num_jobs=1)
        values = [cm.memory_level_parallelism(alone, b) for b in (1, 16, 64, 256)]
        assert values == sorted(values)

    def test_skylake_mlp_ramps_later(self):
        """Skylake's gather path amortizes later (its Figure-8 deficit)."""
        alone = ColocationState(num_jobs=1)
        bdw = ContentionModel(BROADWELL).memory_level_parallelism(alone, 16)
        skl = ContentionModel(SKYLAKE).memory_level_parallelism(alone, 16)
        assert skl < bdw

    def test_mlp_collapses_under_churn(self):
        cm = ContentionModel(BROADWELL)
        alone = cm.memory_level_parallelism(ColocationState(num_jobs=1), 32)
        loaded = cm.memory_level_parallelism(
            ColocationState(num_jobs=8, corunner_random_gbps=2.0), 32
        )
        assert loaded < alone
        assert loaded >= 1.0


class TestFcContentionFactor:
    MB = 1024 * 1024

    def busy(self, server, n):
        return ColocationState(num_jobs=n, corunner_random_gbps=2.0)

    def test_l2_resident_weights_protected(self):
        cm = ContentionModel(SKYLAKE)
        factor = cm.fc_contention_factor(self.busy(SKYLAKE, 16), 1024 * 1024)
        assert factor == pytest.approx(1.0)

    def test_512x512_fc_fits_skylake_l2_not_broadwell(self):
        """The Figure 11a annotation."""
        weights = (512 * 512 + 512) * 4
        state_s = self.busy(SKYLAKE, 16)
        state_b = self.busy(BROADWELL, 16)
        skl = ContentionModel(SKYLAKE).fc_contention_factor(state_s, weights)
        bdw = ContentionModel(BROADWELL).fc_contention_factor(state_b, weights)
        assert skl == pytest.approx(1.0)
        assert bdw > 1.4

    def test_llc_resident_worse_on_inclusive(self):
        weights = 4 * self.MB
        skl = ContentionModel(SKYLAKE).fc_contention_factor(self.busy(SKYLAKE, 4), weights)
        bdw = ContentionModel(BROADWELL).fc_contention_factor(self.busy(BROADWELL, 4), weights)
        assert bdw > skl > 1.0

    def test_factor_is_one_alone(self):
        cm = ContentionModel(BROADWELL)
        assert cm.fc_contention_factor(ColocationState(num_jobs=1), 4 * self.MB) == 1.0
