"""Tests for the request-routing simulator."""

import numpy as np
import pytest

from repro.config import RMC1_SMALL
from repro.hw import BROADWELL
from repro.serving.router import POLICIES, RequestRouter, compare_policies


def make_router(policy="jsq2", machines=8, seed=0):
    return RequestRouter(
        BROADWELL, RMC1_SMALL, batch_size=16, num_machines=machines,
        policy=policy, seed=seed,
    )


class TestRequestRouter:
    def test_all_queries_complete(self):
        router = make_router()
        qps = 0.5 * router.max_stable_qps()
        result = router.run(qps, duration_s=1.0)
        assert result.throughput_qps() == pytest.approx(qps, rel=0.2)

    def test_latency_at_least_service(self):
        router = make_router()
        result = router.run(0.3 * router.max_stable_qps(), duration_s=1.0)
        assert result.latencies_s.min() >= 0.5 * router.mean_service_s()

    def test_light_load_latency_near_service_time(self):
        router = make_router()
        result = router.run(0.05 * router.max_stable_qps(), duration_s=2.0)
        assert result.summary().p50 == pytest.approx(
            router.mean_service_s(), rel=0.25
        )

    def test_heavy_load_builds_queues(self):
        router = make_router(machines=4)
        light = make_router(machines=4, seed=1).run(
            0.2 * router.max_stable_qps(), duration_s=1.5
        )
        heavy = make_router(machines=4, seed=1).run(
            0.95 * router.max_stable_qps(), duration_s=1.5
        )
        assert heavy.summary().p99 > 2 * light.summary().p99

    def test_reproducible(self):
        a = make_router(seed=3).run(1000, duration_s=0.5)
        b = make_router(seed=3).run(1000, duration_s=0.5)
        np.testing.assert_array_equal(a.latencies_s, b.latencies_s)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            make_router(policy="magic")
        with pytest.raises(ValueError):
            RequestRouter(BROADWELL, RMC1_SMALL, 16, 0)
        with pytest.raises(ValueError):
            make_router().run(0)

    def test_single_machine_all_policies_equal_stream(self):
        for policy in POLICIES:
            router = make_router(policy=policy, machines=1, seed=7)
            result = router.run(0.5 * router.max_stable_qps(), duration_s=0.5)
            assert len(result.latencies_s) > 0


class TestPolicyComparison:
    @pytest.fixture(scope="class")
    def results(self):
        return compare_policies(
            BROADWELL, RMC1_SMALL, batch_size=16, num_machines=10,
            utilization=0.85, duration_s=2.0, seed=5,
        )

    def test_all_policies_present(self, results):
        assert set(results) == set(POLICIES)

    def test_jsq2_beats_random_tail(self, results):
        """The power of two choices: sampled-shortest-queue cuts the tail."""
        assert results["jsq2"].summary().p99 < results["random"].summary().p99

    def test_round_robin_beats_random_tail(self, results):
        """Deterministic spreading avoids random's collision bursts."""
        assert (
            results["round_robin"].summary().p99
            <= results["random"].summary().p99 * 1.05
        )

    def test_rejects_bad_utilization(self):
        with pytest.raises(ValueError):
            compare_policies(BROADWELL, RMC1_SMALL, 16, 4, utilization=1.5)
