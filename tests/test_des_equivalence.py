"""Two-engine DES equivalence: vectorized must be bit-identical to reference.

The reference per-event loops in ``ServingSimulator._run_reference`` and
``ResilientRouter._run_reference`` are the executable specification; the
vectorized engine (and its self-compiled C backend) re-derives the same
event order from batched arrays. This suite drives both engines through
random policy x fault x load x tier compositions and asserts *byte*
equality of every observable — record arrays, counters, overload books,
downtime — plus RNG stream-position parity (a second run from the same
objects must also match) and request conservation.

``DES_EXAMPLES`` scales the hypothesis sweep (CI uses the default).
"""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import RMC1_SMALL
from repro.hw import BROADWELL
from repro.serving import (
    SLA,
    AdmissionPolicy,
    BreakerPolicy,
    BrownoutPolicy,
    FaultSchedule,
    FleetTopology,
    OverloadConfig,
    ReplicaCrash,
    ResiliencePolicy,
    ResilientRouter,
    ServingSimulator,
    Straggler,
    check_conservation,
    default_brownout_tiers,
    domain_storm,
    fault_storm,
)
from repro.serving._des_native import native_available

NUM_MACHINES = 4
DURATION_S = 0.04
SERVICE_S = ResilientRouter(
    BROADWELL, RMC1_SMALL, 8, NUM_MACHINES, seed=0
)._base_service_s

EQUIV = settings(
    max_examples=int(os.environ.get("DES_EXAMPLES", "15")),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ------------------------------------------------------------- strategies


@st.composite
def admission_policies(draw) -> AdmissionPolicy:
    shed_policy = draw(
        st.sampled_from(["reject_newest", "reject_oldest", "deadline_aware"])
    )
    deadline = st.floats(5.0 * SERVICE_S, 50.0 * SERVICE_S)
    if shed_policy != "deadline_aware":
        deadline = st.one_of(st.none(), deadline)
    return AdmissionPolicy(
        queue_capacity=draw(st.integers(min_value=1, max_value=16)),
        shed_policy=shed_policy,
        deadline_s=draw(deadline),
        codel_target_s=draw(
            st.one_of(st.none(), st.floats(2.0 * SERVICE_S, 20.0 * SERVICE_S))
        ),
    )


def overload_configs() -> st.SearchStrategy[OverloadConfig | None]:
    breaker = st.builds(
        BreakerPolicy,
        failure_threshold=st.integers(min_value=1, max_value=6),
        window_s=st.floats(10.0 * SERVICE_S, 100.0 * SERVICE_S),
        open_duration_s=st.floats(10.0 * SERVICE_S, 200.0 * SERVICE_S),
        half_open_probes=st.integers(min_value=1, max_value=3),
    )
    brownout = st.builds(
        BrownoutPolicy,
        tiers=st.just(default_brownout_tiers(RMC1_SMALL)),
        step_up_depth=st.floats(2.0, 10.0),
        step_down_depth=st.floats(0.5, 1.5),
        dwell_s=st.floats(0.0, 30.0 * SERVICE_S),
    )
    config = st.builds(
        OverloadConfig,
        admission=st.one_of(st.none(), admission_policies()),
        breaker=st.one_of(st.none(), breaker),
        brownout=st.one_of(st.none(), brownout),
    )
    return st.one_of(st.none(), config)


def fault_schedules(
    num_replicas: int = NUM_MACHINES,
) -> st.SearchStrategy[FaultSchedule | None]:
    crash = st.builds(
        ReplicaCrash,
        replica_id=st.integers(0, num_replicas - 1),
        at_s=st.floats(0.0, 0.8 * DURATION_S),
        downtime_s=st.floats(0.05 * DURATION_S, 0.5 * DURATION_S),
    )
    straggler = st.builds(
        Straggler,
        replica_id=st.integers(0, num_replicas - 1),
        start_s=st.floats(0.0, 0.8 * DURATION_S),
        duration_s=st.floats(0.05 * DURATION_S, 0.5 * DURATION_S),
        slowdown=st.floats(2.0, 20.0),
    )
    schedule = st.builds(
        FaultSchedule,
        crashes=st.lists(crash, max_size=2),
        stragglers=st.lists(straggler, max_size=2),
    )
    return st.one_of(st.none(), schedule)


# -------------------------------------------------------------- run keys


def sim_key(result) -> tuple:
    """Every observable of a simulator run, bytes-exact."""
    return (
        result.offered,
        result.killed,
        result.shed,
        result.max_queue_depth,
        result.downtime_s,
        len(result.records),
        np.asarray(result.latencies_s()).tobytes(),
        np.asarray(result.service_times_s()).tobytes(),
        np.asarray(result.active_job_counts()).tobytes(),
    )


def router_key(result) -> tuple:
    """Every observable of a router run, bytes-exact."""
    ovl = result.overload
    return (
        result.offered,
        result.failed,
        result.retries,
        result.hedges,
        result.wasted_attempts,
        result.fail_fasts,
        result.ejections,
        result.degraded_completions,
        result.time_in_degraded_s,
        result.quality,
        result.brownout_quality,
        np.asarray(result.latencies_s).tobytes(),
        None
        if ovl is None
        else (
            ovl.offered,
            ovl.admitted,
            tuple(sorted(ovl.shed_by_reason.items())),
            ovl.breaker_rejections,
            ovl.breaker_opens,
            ovl.brownout_switches,
            ovl.max_brownout_tier,
            tuple(ovl.time_in_tier_s),
            tuple(ovl.completions_by_tier),
            ovl.max_queue_depth,
        ),
    )


def sim_overloads() -> st.SearchStrategy[OverloadConfig | None]:
    # The simulator composes admission control only (breakers/brownout
    # live in the router).
    return st.one_of(
        st.none(), st.builds(OverloadConfig, admission=admission_policies())
    )


def run_sim(engine, backend, load_factor, overload, faults, seed):
    sim = ServingSimulator(
        BROADWELL,
        RMC1_SMALL,
        batch_size=8,
        num_instances=NUM_MACHINES,
        per_instance_qps=(
            None if load_factor is None else load_factor / SERVICE_S
        ),
        seed=seed,
        overload=overload,
        faults=faults,
        engine=engine,
        backend=backend,
    )
    first = sim.run(DURATION_S)
    # Second run from the same simulator: equal keys here prove the RNG
    # stream position after the first run matched bitwise.
    second = sim.run(DURATION_S / 2)
    return sim, sim_key(first) + sim_key(second), first


def run_router(engine, routing, load_factor, policy, overload, faults, seed):
    router = ResilientRouter(
        BROADWELL,
        RMC1_SMALL,
        8,
        NUM_MACHINES,
        routing=routing,
        policy=policy,
        overload=overload,
        seed=seed,
        engine=engine,
    )
    sla = SLA(deadline_s=25.0 * SERVICE_S)
    first = router.run(
        offered_qps=load_factor * NUM_MACHINES / SERVICE_S,
        duration_s=DURATION_S,
        faults=faults,
        sla=sla,
    )
    second = router.run(
        offered_qps=load_factor * NUM_MACHINES / SERVICE_S,
        duration_s=DURATION_S / 2,
        faults=faults,
        sla=sla,
    )
    return router_key(first) + router_key(second), first


class TestSimulatorEquivalence:
    @EQUIV
    @given(
        load_factor=st.one_of(st.none(), st.floats(0.3, 5.0)),
        overload=sim_overloads(),
        faults=fault_schedules(),
        seed=st.integers(0, 2**16),
    )
    def test_engines_bit_identical(self, load_factor, overload, faults, seed):
        _, ref_key, ref = run_sim(
            "reference", "auto", load_factor, overload, faults, seed
        )
        sim, vec_key, vec = run_sim(
            "vectorized", "python", load_factor, overload, faults, seed
        )
        assert sim.last_backend == "python"
        assert ref_key == vec_key
        check_conservation(
            vec.offered, len(vec.records), shed=vec.shed, killed=vec.killed
        )
        # Record-for-record equality through the SoA container.
        for i in (0, len(ref.records) // 2, len(ref.records) - 1):
            assert ref.records[i] == vec.records[i]

    @pytest.mark.skipif(not native_available(), reason="no C compiler")
    @EQUIV
    @given(
        load_factor=st.one_of(st.none(), st.floats(0.3, 5.0)),
        overload=sim_overloads(),
        faults=fault_schedules(),
        seed=st.integers(0, 2**16),
    )
    def test_native_backend_bit_identical(
        self, load_factor, overload, faults, seed
    ):
        _, ref_key, _ = run_sim(
            "reference", "auto", load_factor, overload, faults, seed
        )
        sim, nat_key, _ = run_sim(
            "vectorized", "native", load_factor, overload, faults, seed
        )
        assert sim.last_backend == "native"
        assert ref_key == nat_key

    def test_tracing_does_not_perturb_results(self):
        from repro.obs import Tracer

        for engine in ("reference", "vectorized"):
            baseline = None
            for tracer in (None, Tracer()):
                sim = ServingSimulator(
                    BROADWELL,
                    RMC1_SMALL,
                    8,
                    num_instances=3,
                    per_instance_qps=2.0 / SERVICE_S,
                    seed=5,
                    tracer=tracer,
                    engine=engine,
                )
                key = sim_key(sim.run(DURATION_S))
                if baseline is None:
                    baseline = key
                else:
                    assert key == baseline, engine

    def test_native_backend_request_fails_loudly_when_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_NATIVE", "1")
        import repro.serving._des_native as dn

        monkeypatch.setattr(dn, "_CACHED", None)
        sim = ServingSimulator(
            BROADWELL, RMC1_SMALL, 8, 2, seed=1, engine="vectorized",
            backend="native",
        )
        with pytest.raises(RuntimeError, match="native DES backend"):
            sim.run(0.01)
        monkeypatch.setattr(dn, "_CACHED", None)


class TestRouterEquivalence:
    @EQUIV
    @given(
        routing=st.sampled_from(["round_robin", "random", "jsq2"]),
        load_factor=st.floats(0.3, 6.0),
        timeout_factor=st.one_of(st.none(), st.floats(10.0, 60.0)),
        hedge=st.booleans(),
        overload=overload_configs(),
        faults=fault_schedules(),
        seed=st.integers(0, 2**16),
    )
    def test_engines_bit_identical(
        self, routing, load_factor, timeout_factor, hedge, overload, faults,
        seed,
    ):
        policy = (
            ResiliencePolicy.none()
            if timeout_factor is None
            else ResiliencePolicy(
                timeout_s=timeout_factor * SERVICE_S,
                max_retries=1,
                backoff_base_s=SERVICE_S,
                hedge_delay_s=(20.0 * SERVICE_S if hedge else None),
            )
        )
        ref_key, ref = run_router(
            "reference", routing, load_factor, policy, overload, faults, seed
        )
        vec_key, vec = run_router(
            "vectorized", routing, load_factor, policy, overload, faults, seed
        )
        assert ref_key == vec_key
        check_conservation(
            vec.offered, vec.completed, failed=vec.failed
        )
        assert vec.unresolved >= 0

    @EQUIV
    @given(
        load_factor=st.floats(0.5, 4.0),
        overload=overload_configs(),
        seed=st.integers(0, 2**16),
        jitter=st.lists(
            st.floats(0.0, 0.9 * DURATION_S), min_size=1, max_size=40
        ),
    )
    def test_explicit_arrival_traces_match(
        self, load_factor, overload, seed, jitter
    ):
        # Out-of-order (and possibly tied) explicit arrival times take the
        # trace-driven path in both engines.
        arrivals = sorted(jitter, reverse=True)
        keys = []
        for engine in ("reference", "vectorized"):
            router = ResilientRouter(
                BROADWELL,
                RMC1_SMALL,
                8,
                NUM_MACHINES,
                overload=overload,
                seed=seed,
                engine=engine,
            )
            result = router.run(
                offered_qps=load_factor * NUM_MACHINES / SERVICE_S,
                duration_s=DURATION_S,
                arrival_times_s=arrivals,
                sla=SLA(deadline_s=25.0 * SERVICE_S),
            )
            keys.append(router_key(result))
        assert keys[0] == keys[1]

    def test_traced_runs_identical_across_engines(self):
        from repro.obs import Tracer, dumps_chrome
        from repro.serving import fault_storm

        dumps = []
        for engine in ("reference", "vectorized"):
            tracer = Tracer()
            router = ResilientRouter(
                BROADWELL,
                RMC1_SMALL,
                8,
                NUM_MACHINES,
                policy=ResiliencePolicy(
                    timeout_s=30.0 * SERVICE_S,
                    max_retries=1,
                    backoff_base_s=SERVICE_S,
                ),
                overload=OverloadConfig(
                    admission=AdmissionPolicy(queue_capacity=4)
                ),
                seed=9,
                tracer=tracer,
                engine=engine,
            )
            router.run(
                offered_qps=3.0 * NUM_MACHINES / SERVICE_S,
                duration_s=DURATION_S,
                faults=fault_storm(NUM_MACHINES, DURATION_S, seed=3),
                sla=SLA(deadline_s=25.0 * SERVICE_S),
            )
            dumps.append(dumps_chrome(tracer))
        assert dumps[0] == dumps[1]


class TestCorrelatedScheduleEquivalence:
    """Domain schedules lower to plain fault primitives, so the two-engine
    bit-identity proof must keep holding on correlated storms too."""

    TOPOLOGY = FleetTopology(
        num_replicas=NUM_MACHINES,
        replicas_per_host=1,
        hosts_per_rack=2,
        racks_per_zone=1,
    )

    @EQUIV
    @given(
        storm_seed=st.integers(0, 2**16),
        load_factor=st.floats(0.3, 6.0),
        timeout_factor=st.one_of(st.none(), st.floats(10.0, 60.0)),
        seed=st.integers(0, 2**16),
    )
    def test_expanded_domain_storms_bit_identical(
        self, storm_seed, load_factor, timeout_factor, seed
    ):
        storm = domain_storm(self.TOPOLOGY, DURATION_S, seed=storm_seed)
        faults = storm.expand_to_schedule(self.TOPOLOGY)
        policy = (
            ResiliencePolicy.none()
            if timeout_factor is None
            else ResiliencePolicy(
                timeout_s=timeout_factor * SERVICE_S,
                max_retries=1,
                backoff_base_s=SERVICE_S,
            )
        )
        ref_key, ref = run_router(
            "reference", "round_robin", load_factor, policy, None, faults,
            seed,
        )
        vec_key, vec = run_router(
            "vectorized", "round_robin", load_factor, policy, None, faults,
            seed,
        )
        assert ref_key == vec_key
        check_conservation(vec.offered, vec.completed, failed=vec.failed)

    @EQUIV
    @given(
        storm_seed=st.integers(0, 2**16),
        correlation=st.floats(0.0, 1.0),
        load_factor=st.floats(0.3, 6.0),
        seed=st.integers(0, 2**16),
    )
    def test_correlated_fault_storms_bit_identical(
        self, storm_seed, correlation, load_factor, seed
    ):
        faults = fault_storm(
            NUM_MACHINES,
            DURATION_S,
            seed=storm_seed,
            topology=self.TOPOLOGY,
            correlation=correlation,
        )
        keys = [
            run_router(
                engine, "round_robin", load_factor,
                ResiliencePolicy.none(), None, faults, seed,
            )[0]
            for engine in ("reference", "vectorized")
        ]
        assert keys[0] == keys[1]


class TestFleetDayEquivalence:
    def test_small_fleet_day_engine_invariant(self):
        from repro.experiments import fleet_day

        results = {
            engine: fleet_day.run(
                peak_replicas=12,
                windows=4,
                window_sim_s=0.01,
                seed=11,
                engine=engine,
            )
            for engine in ("reference", "vectorized")
        }
        ref, vec = results["reference"], results["vectorized"]
        assert ref.windows == vec.windows
        assert ref.peak_replicas == vec.peak_replicas
        assert ref.total_offered == vec.total_offered
        assert vec.total_offered > 0


# ----------------------------------------------------------- multi-model


def multimodel_key(result) -> tuple:
    """Every observable of a multi-model run, bytes-exact."""
    ovl = result.overload
    return (
        result.offered_by_model,
        result.completed_by_model,
        result.shed_by_model,
        result.killed_by_model,
        tuple(
            np.asarray(lats, dtype=np.float64).tobytes()
            for lats in result.latencies_by_model
        ),
        result.loads,
        result.swaps,
        result.thrash,
        result.swaps_by_model,
        result.resident_slots_by_model,
        result.residency_utilization,
        result.busy_utilization,
        result.max_queue_depth,
        result.hol_bypasses,
        result.drain_claims,
        None
        if ovl is None
        else (
            ovl.offered,
            ovl.admitted,
            tuple(sorted(ovl.shed_by_reason.items())),
            ovl.max_queue_depth,
        ),
    )


class TestMultiModelEquivalence:
    def make_router(self, engine, slots, admission, seed):
        from repro.config import RMC2_SMALL, RMC3_SMALL
        from repro.hw import SKYLAKE
        from repro.serving import MultiModelPool, MultiModelRouter

        pool = MultiModelPool(
            (BROADWELL, SKYLAKE),
            (RMC1_SMALL, RMC2_SMALL, RMC3_SMALL),
            slots_per_replica=slots,
            thrash_window_s=0.05,
        )
        overload = (
            None if admission is None else OverloadConfig(admission=admission)
        )
        return MultiModelRouter(
            pool, overload=overload, seed=seed, engine=engine
        )

    @EQUIV
    @given(
        load_factor=st.floats(0.3, 6.0),
        slots=st.integers(1, 3),
        admission=st.one_of(st.none(), admission_policies()),
        faults=fault_schedules(num_replicas=2),
        weight=st.floats(0.05, 0.95),
        seed=st.integers(0, 2**16),
    )
    def test_engines_bit_identical(
        self, load_factor, slots, admission, faults, weight, seed
    ):
        keys = {}
        for engine in ("reference", "vectorized"):
            router = self.make_router(engine, slots, admission, seed)
            first = router.run(
                DURATION_S,
                offered_qps=load_factor * 2 / SERVICE_S,
                mix=(weight, 1.0 - weight, weight / 2),
                faults=faults,
            )
            # Second run from the same router proves RNG stream-position
            # parity after the first.
            second = router.run(
                DURATION_S / 2,
                offered_qps=load_factor * 2 / SERVICE_S,
                mix=(weight, 1.0 - weight, weight / 2),
            )
            keys[engine] = multimodel_key(first) + multimodel_key(second)
            assert first.offered == (
                first.completed + first.shed + first.killed
            )
        assert keys["reference"] == keys["vectorized"]

    def test_traced_runs_identical_across_engines(self):
        from repro.obs import Tracer, dumps_chrome
        from repro.serving import fault_storm

        dumps = []
        for engine in ("reference", "vectorized"):
            tracer = Tracer()
            router = self.make_router(
                engine,
                slots=2,
                admission=AdmissionPolicy(
                    queue_capacity=8,
                    shed_policy="reject_oldest",
                    codel_target_s=4.0 * SERVICE_S,
                ),
                seed=9,
            )
            router.tracer = tracer
            router.run(
                DURATION_S,
                offered_qps=4.0 * 2 / SERVICE_S,
                mix=(0.5, 0.3, 0.2),
                faults=fault_storm(2, DURATION_S, seed=3),
            )
            dumps.append(dumps_chrome(tracer))
        assert dumps[0] == dumps[1]

    def test_explicit_query_traces_match(self):
        from repro.serving import (
            MixedModelLoadGenerator,
            ModelClassRate,
        )
        from repro.config import RMC2_SMALL, RMC3_SMALL

        classes = (
            ModelClassRate(RMC1_SMALL.name, 1200.0),
            ModelClassRate(RMC2_SMALL.name, 700.0, phase_s=0.01),
            ModelClassRate(RMC3_SMALL.name, 400.0, amplitude=0.2),
        )
        load = MixedModelLoadGenerator(classes, period_s=0.04, seed=5)
        keys = {}
        for engine in ("reference", "vectorized"):
            router = self.make_router(engine, slots=2, admission=None, seed=5)
            keys[engine] = multimodel_key(router.run(DURATION_S, load=load))
        assert keys["reference"] == keys["vectorized"]
