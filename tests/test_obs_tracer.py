"""Tier-1 tests for repro.obs.tracer and the Chrome trace export."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    as_tracer,
    dumps_chrome,
    flight_report,
    stage_stats,
    to_chrome,
    top_spans,
    validate_chrome,
    waterfall,
)


class TestSpanLifecycle:
    def test_begin_end_records_interval(self):
        tracer = Tracer()
        span_id = tracer.begin("serving.test.request", 1.0, track=3, seed=7)
        tracer.end(span_id, 1.5, outcome="ok")
        (span,) = tracer.spans
        assert span.begin_s == 1.0
        assert span.end_s == 1.5
        assert span.duration_s == pytest.approx(0.5)
        assert span.track == 3
        assert span.args == {"seed": 7, "outcome": "ok"}

    def test_parent_child_links(self):
        tracer = Tracer()
        parent = tracer.begin("serving.test.request", 0.0)
        child = tracer.complete("serving.test.service", 0.1, 0.2, parent_id=parent)
        assert tracer.spans[child].parent_id == parent
        tracer.end(parent, 0.3)

    def test_unknown_parent_rejected(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="unknown parent"):
            tracer.begin("serving.test.request", 0.0, parent_id=99)

    def test_end_before_begin_rejected(self):
        tracer = Tracer()
        span_id = tracer.begin("serving.test.request", 5.0)
        with pytest.raises(ValueError, match="before it began"):
            tracer.end(span_id, 4.0)

    def test_double_end_rejected(self):
        tracer = Tracer()
        span_id = tracer.begin("serving.test.request", 0.0)
        tracer.end(span_id, 1.0)
        with pytest.raises(ValueError, match="not open"):
            tracer.end(span_id, 2.0)

    def test_open_duration_raises(self):
        tracer = Tracer()
        span_id = tracer.begin("serving.test.request", 0.0)
        with pytest.raises(ValueError, match="still open"):
            _ = tracer.spans[span_id].duration_s

    def test_close_all_drains_open_spans(self):
        tracer = Tracer()
        tracer.begin("serving.test.request", 0.0)
        late = tracer.begin("serving.test.straggler", 9.0)
        assert tracer.close_all(2.0, outcome="unresolved") == 2
        assert tracer.open_spans() == []
        # A span that began after the horizon closes at its own begin time.
        assert tracer.spans[late].end_s == 9.0
        assert tracer.spans[0].args["outcome"] == "unresolved"


class TestNaming:
    @pytest.mark.parametrize(
        "bad",
        ["", "request", "serving.request", "Serving.test.request", "a.b.", "a b.c.d"],
    )
    def test_invalid_names_rejected(self, bad):
        tracer = Tracer()
        with pytest.raises(ValueError, match="layer.component.event"):
            tracer.begin(bad, 0.0)
        with pytest.raises(ValueError, match="layer.component.event"):
            tracer.instant(bad, 0.0)

    def test_three_segment_name_accepted(self):
        tracer = Tracer()
        tracer.instant("serving.router.retry", 0.0)
        assert tracer.instants[0].name == "serving.router.retry"


class TestContextManager:
    def test_span_uses_clock_and_nests(self):
        times = iter([0.0, 1.0, 2.0, 3.0])
        tracer = Tracer(clock=lambda: next(times))
        with tracer.span("serving.test.outer"):
            with tracer.span("serving.test.inner"):
                pass
        outer, inner = tracer.spans
        assert inner.parent_id == outer.span_id
        assert (inner.begin_s, inner.end_s) == (1.0, 2.0)
        assert (outer.begin_s, outer.end_s) == (0.0, 3.0)

    def test_span_without_clock_raises(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="needs a clock"):
            with tracer.span("serving.test.region"):
                pass


class TestNullTracer:
    def test_as_tracer_normalizes_none(self):
        assert as_tracer(None) is NULL_TRACER
        tracer = Tracer()
        assert as_tracer(tracer) is tracer

    def test_null_tracer_is_inert(self):
        null = NullTracer()
        assert not null.enabled
        span_id = null.begin("not even a valid name", 0.0)
        null.end(span_id, 1.0)
        null.instant("also bad", 0.0)
        with null.span("still.not.checked"):
            pass
        assert null.open_spans() == []
        assert null.close_all(1.0) == 0


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    tracer.set_track_name(0, "client")
    req = tracer.begin("serving.test.request", 0.001, track=0)
    tracer.complete("serving.test.queue", 0.0015, 0.002, parent_id=req, track=0)
    tracer.complete("serving.test.service", 0.002, 0.005, parent_id=req, track=0)
    tracer.end(req, 0.005, outcome="ok")
    tracer.instant("serving.test.mark", 0.003, track=0)
    return tracer


class TestChromeExport:
    def test_open_span_blocks_export(self):
        tracer = Tracer()
        tracer.begin("serving.test.request", 0.0)
        with pytest.raises(ValueError, match="still open"):
            to_chrome(tracer)

    def test_payload_shape(self):
        payload = to_chrome(_sample_tracer())
        events = payload["traceEvents"]
        phases = [e["ph"] for e in events]
        assert phases.count("M") == 1
        assert phases.count("X") == 3
        assert phases.count("i") == 1
        request = next(e for e in events if e["name"] == "serving.test.request")
        assert request["ts"] == pytest.approx(1000.0)  # 0.001 s in us
        assert request["dur"] == pytest.approx(4000.0)
        assert request["cat"] == "serving"

    def test_export_is_byte_stable(self):
        assert dumps_chrome(_sample_tracer()) == dumps_chrome(_sample_tracer())

    def test_validate_accepts_good_trace(self):
        assert validate_chrome(to_chrome(_sample_tracer())) == []

    def test_validate_catches_corruption(self):
        payload = to_chrome(_sample_tracer())
        events = json.loads(json.dumps(payload))["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        spans[0]["dur"] = -1.0
        spans[1]["args"]["span_id"] = spans[2]["args"]["span_id"]
        problems = validate_chrome({"traceEvents": events})
        assert any("bad dur" in p for p in problems)
        assert any("duplicate span_id" in p for p in problems)

    def test_validate_catches_dangling_parent(self):
        payload = to_chrome(_sample_tracer())
        events = [
            e
            for e in payload["traceEvents"]
            if e.get("args", {}).get("span_id") != 0
        ]
        problems = validate_chrome({"traceEvents": events})
        assert any("refers to no span" in p for p in problems)

    def test_validate_rejects_non_payload(self):
        assert validate_chrome({}) == ["payload has no traceEvents list"]


class TestFlightReport:
    def test_stage_stats_orders_by_first_begin(self):
        stats = stage_stats(_sample_tracer())
        assert [s.name for s in stats] == [
            "serving.test.request",
            "serving.test.queue",
            "serving.test.service",
        ]
        request = stats[0]
        assert request.count == 1
        assert request.total_s == pytest.approx(0.004)

    def test_waterfall_and_top_spans_render(self):
        tracer = _sample_tracer()
        text = waterfall(tracer)
        assert "serving.test.service" in text
        top = top_spans(tracer, k=2)
        assert "serving.test.request" in top

    def test_empty_tracer_renders_placeholder(self):
        tracer = Tracer()
        assert "no closed spans" in waterfall(tracer)
        assert "no closed spans" in top_spans(tracer)

    def test_flight_report_combines_sections(self):
        report = flight_report(_sample_tracer(), top_k=3)
        assert "flight recorder: 3 span(s)" in report
        assert "per-stage waterfall" in report
        assert "top 3 spans" in report
