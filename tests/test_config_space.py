"""Tests for the configuration-space exploration experiment (Figure 13)."""

import pytest

from repro.experiments import config_space


@pytest.fixture(scope="module")
def result():
    return config_space.run()


class TestSweeps:
    def test_all_three_sweeps_present(self, result):
        assert {p.sweep for p in result.points} == {
            "tables",
            "lookups",
            "bottom_width",
        }

    def test_latency_monotone_in_tables(self, result):
        latencies = [p.latency_ms for p in result.sweep("tables")]
        assert latencies == sorted(latencies)

    def test_latency_monotone_in_lookups(self, result):
        latencies = [p.latency_ms for p in result.sweep("lookups")]
        assert latencies == sorted(latencies)

    def test_tables_drive_model_into_sls_regime(self, result):
        """Growing the table count turns an RMC1 into an RMC2 profile."""
        sweep = result.sweep("tables")
        assert sweep[-1].sls_share > 0.85
        assert sweep[-1].sls_share > sweep[0].sls_share

    def test_lookups_cross_fc_to_sls(self, result):
        """Somewhere along the lookup sweep the dominant operator flips."""
        dominants = [p.dominant_op for p in result.sweep("lookups")]
        assert dominants[0] == "FC"
        assert dominants[-1] == "SLS"

    def test_width_drives_model_into_fc_regime(self, result):
        """Widening the Bottom-MLP turns an RMC1 into an RMC3 profile."""
        sweep = result.sweep("bottom_width")
        assert sweep[-1].fc_share > 0.9
        assert sweep[-1].dominant_op == "FC"

    def test_render(self, result):
        text = config_space.render(result)
        assert "sweep: number of embedding tables" in text
        assert "sweep: Bottom-MLP width" in text
