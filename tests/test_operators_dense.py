"""Tests for FC, Concat, activations, and the dot interaction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.operators import (
    Activation,
    Concat,
    DotInteraction,
    FullyConnected,
    relu,
    sigmoid,
)


class TestFullyConnected:
    def test_forward_matches_numpy(self):
        fc = FullyConnected("fc", 4, 3, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((5, 4)).astype(np.float32)
        np.testing.assert_allclose(fc.forward(x), x @ fc.weight + fc.bias, rtol=1e-5)

    def test_rejects_wrong_input_shape(self):
        fc = FullyConnected("fc", 4, 3)
        with pytest.raises(ValueError):
            fc.forward(np.zeros((2, 5), dtype=np.float32))

    def test_cost_flops(self):
        fc = FullyConnected("fc", 4, 3)
        assert fc.cost(2).flops == 2 * 2 * 4 * 3

    def test_parameter_count(self):
        fc = FullyConnected("fc", 4, 3)
        assert fc.parameter_count() == 4 * 3 + 3

    def test_weight_stream_emitted_once_per_invocation(self):
        fc = FullyConnected("fc", 64, 64)
        trace = list(fc.address_trace(batch_size=8))
        weight_reads = [a for a in trace if a.address == 0]
        assert len(weight_reads) == 1

    def test_fresh_activations_per_invocation(self):
        fc = FullyConnected("fc", 8, 8)
        first = list(fc.address_trace(1))
        second = list(fc.address_trace(1))
        assert first[1].address != second[1].address

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            FullyConnected("fc", 0, 3)

    @settings(max_examples=20, deadline=None)
    @given(
        batch=st.integers(min_value=1, max_value=8),
        in_dim=st.integers(min_value=1, max_value=16),
        out_dim=st.integers(min_value=1, max_value=16),
    )
    def test_property_output_shape(self, batch, in_dim, out_dim):
        fc = FullyConnected("fc", in_dim, out_dim)
        out = fc.forward(np.zeros((batch, in_dim), dtype=np.float32))
        assert out.shape == (batch, out_dim)


class TestConcat:
    def test_concatenates_in_order(self):
        op = Concat("c", [2, 3])
        a = np.ones((2, 2), dtype=np.float32)
        b = 2 * np.ones((2, 3), dtype=np.float32)
        out = op.forward(a, b)
        assert out.shape == (2, 5)
        np.testing.assert_array_equal(out[:, :2], a)
        np.testing.assert_array_equal(out[:, 2:], b)

    def test_rejects_wrong_arity(self):
        op = Concat("c", [2, 3])
        with pytest.raises(ValueError):
            op.forward(np.ones((2, 2), dtype=np.float32))

    def test_rejects_wrong_width(self):
        op = Concat("c", [2, 3])
        with pytest.raises(ValueError):
            op.forward(np.ones((2, 2)), np.ones((2, 4)))

    def test_zero_flops(self):
        assert Concat("c", [2, 3]).cost(4).flops == 0


class TestActivations:
    def test_relu_clamps_negatives(self):
        op = relu("r", 4)
        out = op.forward(np.array([[-1.0, 0.0, 2.0, -3.0]], dtype=np.float32))
        np.testing.assert_array_equal(out, [[0.0, 0.0, 2.0, 0.0]])

    def test_sigmoid_range_and_midpoint(self):
        op = sigmoid("s", 3)
        out = op.forward(np.array([[-100.0, 0.0, 100.0]], dtype=np.float32))
        assert out[0, 0] == pytest.approx(0.0, abs=1e-6)
        assert out[0, 1] == pytest.approx(0.5, abs=1e-6)
        assert out[0, 2] == pytest.approx(1.0, abs=1e-6)

    def test_sigmoid_numerically_stable_extremes(self):
        op = sigmoid("s", 2)
        out = op.forward(np.array([[-1e4, 1e4]], dtype=np.float32))
        assert np.all(np.isfinite(out))

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Activation("a", "tanh", 4)

    def test_sigmoid_costs_more_flops_than_relu(self):
        assert sigmoid("s", 4).cost(1).flops > relu("r", 4).cost(1).flops


class TestDotInteraction:
    def test_pairwise_dot_products(self):
        op = DotInteraction("d", num_vectors=3, dim=2)
        x = np.array(
            [[[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]]], dtype=np.float32
        )
        out = op.forward(x)
        # pairs in lower-triangle order: (1,0), (2,0), (2,1)
        np.testing.assert_allclose(out, [[0.0, 1.0, 1.0]])

    def test_output_dim(self):
        op = DotInteraction("d", num_vectors=5, dim=4)
        assert op.output_dim == 10
        x = np.zeros((3, 5, 4), dtype=np.float32)
        assert op.forward(x).shape == (3, 10)

    def test_rejects_single_vector(self):
        with pytest.raises(ValueError):
            DotInteraction("d", num_vectors=1, dim=4)

    def test_cost_is_batched_matmul(self):
        op = DotInteraction("d", num_vectors=3, dim=2)
        assert op.cost(4).flops == 2 * 4 * 3 * 3 * 2
        assert op.op_type == "BatchMM"
