"""NMP engine equivalence: vectorized replay vs the reference system.

The vectorized engine's whole contract is **bit-identical observables** to
the per-access reference loop — pool latencies, per-rank busy times,
per-DIMM hit/miss counts, and the persistent hot-row cache state — across
geometries (rank counts that do and don't divide pool sizes, power-of-two
and odd shapes), hot-cache capacities including zero, skewed pooling
distributions, degenerate traces (empty, zero-length pools), and
multi-replay state persistence. These tests drive random pooled traces
through both engines (and both vectorized backends when a compiler is
available) and compare every replay record for record.

Also covers the two off-switches promised by the ISSUE: ``nmp=None`` on
:class:`~repro.hw.timing.TimingModel` is byte-identical to not passing it,
and the Amdahl/engine/analytic cross-check agrees in the uniform limit and
diverges in the documented direction under skew.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config.presets import RMC1_SMALL, RMC2_SMALL
from repro.hw.server import BROADWELL
from repro.hw.timing import OP_OVERHEAD_S, TimingModel
from repro.memory.near_memory import (
    NearMemorySystem,
    NmpGeometry,
    amdahl_crosscheck,
)
from repro.memory.nmp_native import nmp_native_available

BACKENDS = ["python"] + (["native"] if nmp_native_available() else [])

# Geometry corpus: the default shape, a single-rank degenerate, odd
# (non-power-of-two) shapes, a rank count that does not divide the common
# pool sizes, and a zero-capacity hot cache.
GEOMETRIES = [
    NmpGeometry(),
    NmpGeometry(channels=1, dimms_per_channel=1, ranks_per_dimm=1),
    NmpGeometry(channels=3, dimms_per_channel=1, ranks_per_dimm=2,
                hot_rows_per_dimm=4),
    NmpGeometry(channels=2, dimms_per_channel=3, ranks_per_dimm=1,
                hot_rows_per_dimm=1),
    NmpGeometry(channels=2, dimms_per_channel=2, ranks_per_dimm=2,
                hot_rows_per_dimm=0),
]


def _pools(draw_rows, lengths):
    rows = np.asarray(draw_rows, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    return rows[: int(lengths.sum())], lengths


@st.composite
def pooled_trace(draw):
    """A pooled trace: per-pool lengths (zeros allowed) plus row ids."""
    lengths = draw(
        st.lists(st.integers(min_value=0, max_value=24), min_size=0, max_size=12)
    )
    total = sum(lengths)
    # Narrow id range → dense reuse; wide → mostly compulsory misses.
    high = draw(st.sampled_from([7, 64, 4096]))
    rows = draw(
        st.lists(
            st.integers(min_value=0, max_value=high),
            min_size=total,
            max_size=total,
        )
    )
    return rows, lengths


@st.composite
def trace_batches(draw):
    """1-4 consecutive pooled traces (state persists between replays)."""
    return draw(st.lists(pooled_trace(), min_size=1, max_size=4))


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("geometry", GEOMETRIES)
@settings(max_examples=40, deadline=None)
@given(batches=trace_batches())
def test_engines_bit_identical(geometry, backend, batches):
    reference = NearMemorySystem(geometry, engine="reference")
    vectorized = NearMemorySystem(geometry, engine="vectorized", backend=backend)
    assert vectorized.backend == backend
    for draw_rows, lengths in batches:
        rows, lengths = _pools(draw_rows, lengths)
        got = vectorized.replay(rows, lengths)
        want = reference.replay(rows, lengths)
        assert got.digest() == want.digest()
        # Persistent cache state must agree too, not just the observables.
        assert (
            vectorized.resident_hot_rows() == reference.resident_hot_rows()
        )


@pytest.mark.skipif(len(BACKENDS) < 2, reason="no C compiler")
@settings(max_examples=25, deadline=None)
@given(batches=trace_batches())
def test_native_and_python_backends_identical(batches):
    geometry = NmpGeometry(channels=2, dimms_per_channel=2, ranks_per_dimm=2,
                           hot_rows_per_dimm=8)
    native = NearMemorySystem(geometry, engine="vectorized", backend="native")
    python = NearMemorySystem(geometry, engine="vectorized", backend="python")
    for draw_rows, lengths in batches:
        rows, lengths = _pools(draw_rows, lengths)
        assert native.replay(rows, lengths).digest() == python.replay(
            rows, lengths
        ).digest()


@pytest.mark.parametrize("backend", BACKENDS)
def test_degenerate_traces(backend):
    system = NearMemorySystem(NmpGeometry(), engine="vectorized", backend=backend)
    empty = system.replay(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
    assert empty.num_pools == 0
    assert empty.num_lookups == 0
    assert empty.elapsed_ns == 0
    # Zero-length pools still pay the pool launch overhead.
    zeros = system.replay(
        np.zeros(0, dtype=np.int64), np.zeros(3, dtype=np.int64)
    )
    assert zeros.num_pools == 3
    assert zeros.elapsed_ns == 3 * NmpGeometry().pool_overhead_ns
    reference = NearMemorySystem(NmpGeometry(), engine="reference")
    assert zeros.digest() == reference.replay(
        np.zeros(0, dtype=np.int64), np.zeros(3, dtype=np.int64)
    ).digest()


def test_replay_validates_trace():
    system = NearMemorySystem()
    with pytest.raises(ValueError, match="non-negative"):
        system.replay(np.array([-1], dtype=np.int64))
    with pytest.raises(ValueError, match="lengths sum"):
        system.replay(np.array([1, 2], dtype=np.int64), np.array([3]))


def test_hot_cache_catches_reuse():
    geometry = NmpGeometry()
    system = NearMemorySystem(geometry)
    rows = np.tile(np.arange(64, dtype=np.int64), 10)
    result = system.replay(rows)
    assert result.hot_misses == 64  # compulsory only
    assert result.hot_hits == 64 * 9
    # Disabling the cache turns every lookup into a rank gather.
    cold = NearMemorySystem(
        NmpGeometry(hot_rows_per_dimm=0)
    ).replay(rows)
    assert cold.hot_hits == 0
    assert cold.hot_misses == rows.size


def test_skew_shows_up_as_rank_contention():
    geometry = NmpGeometry(hot_rows_per_dimm=0)
    uniform = NearMemorySystem(geometry).replay(
        np.arange(160, dtype=np.int64), np.full(2, 80, dtype=np.int64)
    )
    # All lookups collide on one rank: same work, one critical path.
    skewed = NearMemorySystem(geometry).replay(
        np.full(160, 5, dtype=np.int64), np.full(2, 80, dtype=np.int64)
    )
    assert skewed.num_lookups == uniform.num_lookups
    assert skewed.elapsed_ns > uniform.elapsed_ns
    assert skewed.rank_imbalance == pytest.approx(geometry.num_ranks)
    assert uniform.rank_imbalance == 1.0


# --- TimingModel off-switch -------------------------------------------------


def test_nmp_none_is_byte_identical():
    model_off = TimingModel(BROADWELL, nmp=None)
    model_default = TimingModel(BROADWELL)
    for config in (RMC1_SMALL, RMC2_SMALL):
        for batch in (1, 16):
            off = model_off.model_latency(config, batch)
            base = model_default.model_latency(config, batch)
            assert off.total_seconds == base.total_seconds
            assert [op.seconds for op in off.per_op] == [
                op.seconds for op in base.per_op
            ]


def test_nmp_geometry_changes_sls_only():
    base = TimingModel(BROADWELL).model_latency(RMC2_SMALL, 16)
    nmp = TimingModel(BROADWELL, nmp=NmpGeometry()).model_latency(
        RMC2_SMALL, 16, sls_hit_ratio=0.0
    )
    for op_base, op_nmp in zip(base.per_op, nmp.per_op):
        if op_base.op_type == "SLS":
            assert op_nmp.seconds < op_base.seconds
        else:
            assert op_nmp.seconds == op_base.seconds


# --- Amdahl / engine / analytic cross-check ---------------------------------


@pytest.mark.parametrize("config", [RMC1_SMALL, RMC2_SMALL], ids=lambda c: c.name)
def test_crosscheck_agrees_in_uniform_limit(config):
    # Default geometry: 16 ranks divide the 80-lookup pools exactly, so the
    # analytic TimingModel path must match the engine *exactly*, and the
    # Amdahl path within its documented OP_OVERHEAD_S-per-SLS-op residual.
    check = amdahl_crosscheck(BROADWELL, config, batch_size=16)
    assert check.model_vs_engine_rel < 1e-12
    num_sls = sum(
        1
        for op in TimingModel(BROADWELL).model_latency(config, 16).per_op
        if op.op_type == "SLS"
    )
    bound = num_sls * OP_OVERHEAD_S / check.engine_seconds
    assert check.amdahl_vs_engine_rel <= bound + 1e-12
    assert check.engine_seconds < check.baseline_seconds


def test_amdahl_is_optimistic_under_skew():
    # All lookups on one rank: the engine sees the serialized critical
    # path; the flat Amdahl factor still assumes perfect rank spreading.
    geometry = NmpGeometry(hot_rows_per_dimm=0)
    config, batch = RMC2_SMALL, 16
    baseline = TimingModel(BROADWELL).model_latency(config, batch)
    system = NearMemorySystem(geometry)
    engine_seconds = 0.0
    from repro.core.graph import config_ops

    for spec, op in zip(config_ops(config), baseline.per_op):
        if spec.op_type != "SLS":
            engine_seconds += op.seconds
            continue
        lookups = batch * spec.lookups_per_sample
        rows = np.full(lookups, geometry.num_ranks, dtype=np.int64)  # one rank
        lengths = np.full(batch, spec.lookups_per_sample, dtype=np.int64)
        engine_seconds += system.replay(rows, lengths).elapsed_s + OP_OVERHEAD_S
    uniform = amdahl_crosscheck(BROADWELL, config, batch, geometry)
    assert engine_seconds > uniform.engine_seconds  # contention costs time


def test_engine_beats_amdahl_under_hot_locality():
    # A trace that re-references a tiny working set: hot-row hits beat the
    # flat factor, which only knows the uniform gather cost.
    config, batch = RMC2_SMALL, 16
    geometry = NmpGeometry()
    baseline = TimingModel(BROADWELL).model_latency(config, batch)
    system = NearMemorySystem(geometry)
    engine_seconds = 0.0
    from repro.core.graph import config_ops

    for spec, op in zip(config_ops(config), baseline.per_op):
        if spec.op_type != "SLS":
            engine_seconds += op.seconds
            continue
        lookups = batch * spec.lookups_per_sample
        rows = np.arange(lookups, dtype=np.int64) % (
            geometry.num_ranks * 4
        )  # 64-row working set, spread over every rank
        lengths = np.full(batch, spec.lookups_per_sample, dtype=np.int64)
        engine_seconds += system.replay(rows, lengths).elapsed_s + OP_OVERHEAD_S
    uniform = amdahl_crosscheck(BROADWELL, config, batch, geometry)
    assert engine_seconds < uniform.engine_seconds  # locality saves time


# -------------------------------------------------------- validation edges


def test_geometry_validation():
    with pytest.raises(ValueError):
        NmpGeometry(channels=0)
    with pytest.raises(ValueError):
        NmpGeometry(ranks_per_dimm=0)
    with pytest.raises(ValueError):
        NmpGeometry(hot_rows_per_dimm=-1)
    with pytest.raises(ValueError):
        NmpGeometry(rank_gather_ns=40.5)  # costs must be integer ns
    with pytest.raises(ValueError):
        NmpGeometry(hot_hit_ns=-1)


def test_placement_helpers_follow_low_order_interleave():
    geometry = NmpGeometry(channels=3, dimms_per_channel=2, ranks_per_dimm=2)
    assert geometry.num_dimms == 6
    assert geometry.num_ranks == 12
    for row in (0, 1, 11, 12, 9973):
        rank = row % geometry.num_ranks
        assert geometry.rank_of(row) == rank
        assert geometry.dimm_of(row) == rank // geometry.ranks_per_dimm
        assert geometry.channel_of(row) == (
            geometry.dimm_of(row) // geometry.dimms_per_channel
        )


def test_nmp_config_validation():
    from repro.memory.near_memory import NmpConfig

    with pytest.raises(ValueError):
        NmpConfig(sls_speedup=0.5)
    with pytest.raises(ValueError):
        NmpConfig(offload_overhead_s=-1e-9)


def test_from_geometry_degenerates_to_identity_without_gather_cost():
    # rank_gather_ns == 0 makes the uniform gather free; the derived flat
    # factor collapses to the identity config instead of dividing by zero.
    from repro.memory.near_memory import NmpConfig, nmp_speedup

    geometry = NmpGeometry(rank_gather_ns=0)
    derived = NmpConfig.from_geometry(BROADWELL, geometry, RMC2_SMALL, 16)
    assert derived.sls_speedup == 1.0
    assert derived.offload_overhead_s == 0.0
    result = nmp_speedup(BROADWELL, RMC2_SMALL, 16, derived)
    assert result.accelerated_seconds == pytest.approx(result.baseline_seconds)
    assert result.end_to_end_speedup == pytest.approx(1.0)


def test_replay_result_empty_and_idle_properties():
    system = NearMemorySystem(NmpGeometry())
    empty = system.replay(np.array([], dtype=np.int64))
    assert empty.num_lookups == 0
    assert empty.hot_hit_ratio == 0.0
    assert empty.elapsed_s == pytest.approx(empty.elapsed_ns * 1e-9)
    # Pools exist but no rank ever works: utilization 0, imbalance neutral.
    idle = NearMemorySystem(NmpGeometry()).replay(
        np.array([], dtype=np.int64), np.zeros(3, dtype=np.int64)
    )
    assert idle.num_pools == 3
    assert idle.rank_utilization == 0.0
    assert idle.rank_imbalance == 1.0


def test_invalid_engine_and_backend_rejected():
    with pytest.raises(ValueError):
        NearMemorySystem(NmpGeometry(), engine="turbo")
    with pytest.raises(ValueError):
        NearMemorySystem(NmpGeometry(), backend="cuda")


def test_native_backend_requires_kernel(monkeypatch):
    import repro.memory.near_memory as nm

    monkeypatch.setattr(nm, "load_nmp_kernel", lambda: None)
    with pytest.raises(RuntimeError, match="native"):
        NearMemorySystem(NmpGeometry(), backend="native")
    # auto silently falls back to the python batch kernel.
    fallback = NearMemorySystem(NmpGeometry(), backend="auto")
    assert fallback.backend == "python"


def test_observability_hooks_record_replay():
    from repro.obs import MetricsRegistry, Tracer

    tracer = Tracer()
    metrics = MetricsRegistry()
    system = NearMemorySystem(
        NmpGeometry(), tracer=tracer, metrics=metrics, track=3
    )
    rows = np.arange(32, dtype=np.int64)
    system.replay(rows, np.full(4, 8, dtype=np.int64))
    (span,) = tracer.spans
    assert span.name == "memory.nmp.replay"
    assert span.track == 3
    assert span.args["lookups"] == 32
    engine = system.engine
    assert metrics.counter("memory.nmp.lookups", engine=engine).value == 32
    hits = metrics.counter("memory.nmp.hot_hits", engine=engine).value
    misses = metrics.counter("memory.nmp.hot_misses", engine=engine).value
    assert hits + misses == 32


@pytest.mark.skipif(not nmp_native_available(), reason="no C compiler")
def test_native_hot_flags_facade_matches_python_kernel():
    # The full-C replay path bypasses the hot_flags facade; exercise it
    # directly against the pure-Python batch kernel on shared state.
    from repro.memory.nmp_native import load_nmp_kernel
    from repro.memory.nmp_vectorized import (
        VectorizedHotRowState,
        python_hot_flags,
    )

    geometry = NmpGeometry(hot_rows_per_dimm=4)
    rows = np.array([0, 1, 0, 17, 33, 1, 0, 49, 17], dtype=np.int64)
    native_state = VectorizedHotRowState(geometry.num_dimms, 4)
    python_state = VectorizedHotRowState(geometry.num_dimms, 4)
    kernel = load_nmp_kernel()
    native_hits = kernel.hot_flags(
        rows, native_state.tags, native_state.occupancy, 4,
        geometry.ranks_per_dimm, geometry.num_ranks,
    )
    python_hits = python_hot_flags(
        rows, python_state, geometry.ranks_per_dimm, geometry.num_ranks
    )
    assert np.array_equal(native_hits, python_hits)
    assert np.array_equal(native_state.tags, python_state.tags)
    assert np.array_equal(native_state.occupancy, python_state.occupancy)


def test_vectorized_state_validation_and_probe():
    from repro.memory.nmp_vectorized import VectorizedHotRowState

    with pytest.raises(ValueError):
        VectorizedHotRowState(0, 4)
    with pytest.raises(ValueError):
        VectorizedHotRowState(4, -1)
    state = VectorizedHotRowState(2, 2)
    state.tags[1, 0] = 42
    state.occupancy[1] = 1
    assert state.probe(1, 42)
    assert not state.probe(1, 7)
    assert not state.probe(0, 42)
    assert state.resident_rows() == 1
