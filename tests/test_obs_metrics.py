"""Tier-1 tests for repro.obs.metrics and the shared quantile helper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import (
    SUMMARY_QUANTILES,
    HistogramStats,
    MetricsRegistry,
    quantile,
    quantiles,
    series_key,
)


class TestSeriesKey:
    def test_unlabeled(self):
        assert series_key("serving.router.offered", {}) == "serving.router.offered"

    def test_labels_sorted(self):
        key = series_key("serving.router.latency_s", {"policy": "retry", "a": "1"})
        assert key == "serving.router.latency_s{a=1,policy=retry}"


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("serving.test.offered")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_inc_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("serving.test.offered")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_labels_create_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("serving.test.offered", policy="none").inc()
        registry.counter("serving.test.offered", policy="retry").inc(2)
        assert registry.counter("serving.test.offered", policy="none").value == 1
        assert registry.counter("serving.test.offered", policy="retry").value == 2


class TestGauge:
    def test_set_overwrites(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("serving.test.degraded_s")
        gauge.set(1.5)
        gauge.set(0.25)
        assert gauge.value == 0.25


class TestHistogram:
    def test_observe_and_quantile(self):
        registry = MetricsRegistry()
        hist = registry.histogram("serving.test.latency_s")
        for v in range(1, 101):
            hist.observe(float(v))
        assert hist.count == 100
        assert hist.quantile(0.5) == quantile(np.arange(1.0, 101.0), 0.5)

    def test_stats_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("serving.test.latency_s")
        for v in (1.0, 2.0, 3.0, 4.0):
            hist.observe(v)
        stats = hist.stats()
        assert isinstance(stats, HistogramStats)
        assert stats.count == 4
        assert stats.total == pytest.approx(10.0)
        assert stats.mean == pytest.approx(2.5)
        assert stats.min == 1.0
        assert stats.max == 4.0
        assert SUMMARY_QUANTILES == (0.5, 0.95, 0.99, 0.999)
        assert stats.p50 == quantile([1.0, 2.0, 3.0, 4.0], 0.5)
        assert stats.p999 == quantile([1.0, 2.0, 3.0, 4.0], 0.999)

    def test_empty_histogram_stats(self):
        registry = MetricsRegistry()
        stats = registry.histogram("serving.test.latency_s").stats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.p50 == 0.0


class TestRegistry:
    def test_naming_convention_enforced(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="layer.component.event"):
            registry.counter("offered")

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("serving.test.offered")
        with pytest.raises(TypeError, match="serving.test.offered"):
            registry.gauge("serving.test.offered")

    def test_same_series_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("serving.test.offered", policy="retry")
        b = registry.counter("serving.test.offered", policy="retry")
        assert a is b


class TestSnapshot:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("serving.test.offered").inc(10)
        registry.gauge("serving.test.degraded_s").set(2.0)
        hist = registry.histogram("serving.test.latency_s")
        for v in (0.1, 0.2, 0.3):
            hist.observe(v)
        return registry

    def test_snapshot_is_stable_and_jsonable(self):
        registry = self._populated()
        snap = registry.snapshot()
        payload = snap.to_jsonable()
        assert payload["counters"]["serving.test.offered"] == 10
        assert payload["gauges"]["serving.test.degraded_s"] == 2.0
        assert payload["histograms"]["serving.test.latency_s"]["count"] == 3

    def test_diff_subtracts_counters_and_keeps_gauges(self):
        registry = self._populated()
        before = registry.snapshot()
        registry.counter("serving.test.offered").inc(5)
        registry.gauge("serving.test.degraded_s").set(7.0)
        registry.histogram("serving.test.latency_s").observe(0.4)
        after = registry.snapshot()
        delta = after.diff(before)
        payload = delta.to_jsonable()
        assert payload["counters"]["serving.test.offered"] == 5
        assert payload["gauges"]["serving.test.degraded_s"] == 7.0
        assert payload["histograms"]["serving.test.latency_s"]["count"] == 1


class TestQuantileHelper:
    def test_matches_numpy_percentile(self):
        rng = np.random.default_rng(7)
        samples = rng.exponential(scale=3.0, size=1000)
        for q in (0.05, 0.5, 0.95, 0.99, 0.999):
            assert quantile(samples, q) == float(np.percentile(samples, 100.0 * q))

    def test_accepts_plain_lists(self):
        assert quantile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_quantiles_plural(self):
        values = quantiles([1.0, 2.0, 3.0, 4.0], (0.5, 1.0))
        assert values == (2.5, 4.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            quantile([], 0.5)
