"""Property tests for the fault-injection and resilience layer.

Whatever storm is injected and whatever policy responds, the accounting
must stay honest: completions never exceed arrivals, per-record timestamps
are ordered, availability lives in [0, 1], goodput never exceeds
throughput, and the zero-fault schedule reproduces the fault-free
simulation record for record.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import RMC1_SMALL
from repro.hw import BROADWELL
from repro.serving import (
    BandwidthFault,
    DegradationPolicy,
    FaultSchedule,
    ReplicaCrash,
    ResiliencePolicy,
    ResilientRouter,
    ServingSimulator,
    Straggler,
    fault_storm,
)

NUM_REPLICAS = 4
DURATION_S = 0.25


@st.composite
def fault_schedules(draw):
    """Random valid fault schedules over a small replica set."""
    crashes = [
        ReplicaCrash(
            replica_id=draw(st.integers(0, NUM_REPLICAS - 1)),
            at_s=draw(st.floats(0.0, DURATION_S, allow_nan=False)),
            downtime_s=draw(st.floats(0.01, DURATION_S, allow_nan=False)),
        )
        for _ in range(draw(st.integers(0, 2)))
    ]
    stragglers = [
        Straggler(
            replica_id=draw(st.integers(0, NUM_REPLICAS - 1)),
            start_s=draw(st.floats(0.0, DURATION_S, allow_nan=False)),
            duration_s=draw(st.floats(0.01, DURATION_S, allow_nan=False)),
            slowdown=draw(st.floats(1.5, 20.0, allow_nan=False)),
        )
        for _ in range(draw(st.integers(0, 2)))
    ]
    bandwidth = [
        BandwidthFault(
            start_s=draw(st.floats(0.0, DURATION_S, allow_nan=False)),
            duration_s=draw(st.floats(0.01, DURATION_S, allow_nan=False)),
            bandwidth_fraction=draw(st.floats(0.1, 0.9, allow_nan=False)),
            replica_id=draw(
                st.one_of(st.none(), st.integers(0, NUM_REPLICAS - 1))
            ),
        )
        for _ in range(draw(st.integers(0, 1)))
    ]
    return FaultSchedule(
        crashes=crashes, stragglers=stragglers, bandwidth_faults=bandwidth
    )


class TestScheduleProperties:
    @settings(max_examples=60, deadline=None)
    @given(schedule=fault_schedules(), t=st.floats(0.0, 2 * DURATION_S))
    def test_service_multiplier_at_least_one(self, schedule, t):
        for replica in range(NUM_REPLICAS):
            for frac in (0.0, 0.5, 1.0):
                assert schedule.service_multiplier(replica, t, frac) >= 1.0

    @settings(max_examples=60, deadline=None)
    @given(schedule=fault_schedules(), t=st.floats(0.0, 2 * DURATION_S))
    def test_healthy_fraction_bounded(self, schedule, t):
        frac = schedule.healthy_fraction(t, NUM_REPLICAS)
        assert 0.0 <= frac <= 1.0

    @settings(max_examples=60, deadline=None)
    @given(schedule=fault_schedules())
    def test_down_intervals_merged_and_ordered(self, schedule):
        for replica in range(NUM_REPLICAS):
            intervals = schedule.down_intervals(replica)
            for start_s, end_s in intervals:
                assert start_s < end_s
            for (_, prev_end), (nxt_start, _) in zip(intervals, intervals[1:]):
                assert nxt_start > prev_end  # disjoint, sorted

    @settings(max_examples=60, deadline=None)
    @given(schedule=fault_schedules())
    def test_downtime_bounded_by_horizon(self, schedule):
        horizon_s = 2 * DURATION_S
        for replica in range(NUM_REPLICAS):
            down_s = schedule.downtime_s(replica, horizon_s)
            assert 0.0 <= down_s <= horizon_s + 1e-12

    @settings(max_examples=30, deadline=None)
    @given(schedule=fault_schedules())
    def test_transition_events_pair_up(self, schedule):
        events = schedule.transition_events(NUM_REPLICAS)
        downs = sum(1 for _, _, goes_down in events if goes_down)
        ups = sum(1 for _, _, goes_down in events if not goes_down)
        assert downs == ups == sum(
            len(schedule.down_intervals(r)) for r in range(NUM_REPLICAS)
        )

    def test_zero_schedule_is_inert(self):
        zero = FaultSchedule.zero()
        assert zero.is_zero
        assert zero.service_multiplier(0, 0.1) == 1.0
        assert not zero.is_down(0, 0.1)
        assert zero.healthy_fraction(0.1, NUM_REPLICAS) == 1.0
        assert zero.transition_events(NUM_REPLICAS) == []

    def test_storm_is_reproducible(self):
        a = fault_storm(NUM_REPLICAS, DURATION_S, seed=3)
        b = fault_storm(NUM_REPLICAS, DURATION_S, seed=3)
        assert a.crashes == b.crashes
        assert a.stragglers == b.stragglers
        assert a.bandwidth_faults == b.bandwidth_faults
        c = fault_storm(NUM_REPLICAS, DURATION_S, seed=4)
        assert (a.crashes, a.stragglers) != (c.crashes, c.stragglers)


@pytest.fixture(scope="module")
def stormy_simulation():
    storm = fault_storm(NUM_REPLICAS, DURATION_S, seed=7)
    sim = ServingSimulator(
        BROADWELL,
        RMC1_SMALL,
        8,
        num_instances=NUM_REPLICAS,
        per_instance_qps=2000,
        seed=7,
        faults=storm,
    )
    return sim.run(DURATION_S)


class TestSimulatorUnderFaults:
    def test_completions_bounded_by_arrivals(self, stormy_simulation):
        result = stormy_simulation
        assert len(result.records) + result.killed <= result.offered

    def test_record_timestamps_ordered(self, stormy_simulation):
        for record in stormy_simulation.records:
            assert record.arrival_s <= record.start_s + 1e-12
            assert record.start_s <= record.end_s + 1e-12

    def test_availability_in_unit_interval(self, stormy_simulation):
        assert 0.0 <= stormy_simulation.availability() <= 1.0

    def test_downtime_accounted(self, stormy_simulation):
        assert stormy_simulation.downtime_s > 0.0

    def test_zero_fault_schedule_matches_baseline_record_for_record(self):
        def run(faults):
            sim = ServingSimulator(
                BROADWELL,
                RMC1_SMALL,
                8,
                num_instances=NUM_REPLICAS,
                per_instance_qps=2000,
                seed=13,
                faults=faults,
            )
            return sim.run(DURATION_S)

        baseline = run(None)
        zero = run(FaultSchedule.zero())
        assert baseline.records == zero.records
        assert baseline.offered == zero.offered
        assert zero.killed == 0
        assert zero.downtime_s == 0.0


@pytest.fixture(scope="module")
def storm_and_router_args():
    storm = fault_storm(NUM_REPLICAS, DURATION_S, seed=21)
    args = (BROADWELL, RMC1_SMALL, 8, NUM_REPLICAS)
    probe = ResilientRouter(*args, seed=21)
    qps = 0.6 * probe.max_stable_qps()
    return storm, args, qps


POLICY_CASES = {
    "none": ResiliencePolicy.none(),
    "retry": ResiliencePolicy(timeout_s=0.002, max_retries=2),
    "hedge": ResiliencePolicy(
        timeout_s=0.002,
        max_retries=2,
        hedge_delay_s=0.0004,
        health_check_interval_s=0.003,
    ),
}


class TestRouterInvariants:
    @pytest.mark.parametrize("policy_name", sorted(POLICY_CASES))
    def test_accounting_invariants(self, storm_and_router_args, policy_name):
        storm, args, qps = storm_and_router_args
        router = ResilientRouter(
            *args, policy=POLICY_CASES[policy_name], seed=21
        )
        result = router.run(qps, DURATION_S, faults=storm)
        assert result.completed + result.failed <= result.offered
        assert 0.0 <= result.availability() <= 1.0
        assert result.goodput_qps() <= result.throughput_qps() + 1e-9
        stats = result.stats()
        assert 0.0 <= stats.availability <= 1.0
        assert 0.0 <= stats.degraded_fraction <= 1.0
        assert np.all(result.latencies_s >= 0.0)

    def test_degradation_accounting(self, storm_and_router_args):
        storm, args, qps = storm_and_router_args
        router = ResilientRouter(
            *args,
            policy=POLICY_CASES["hedge"],
            degradation=DegradationPolicy(
                max_lookups_per_table=4, min_healthy_fraction=0.95
            ),
            seed=21,
        )
        result = router.run(qps, DURATION_S, faults=storm)
        assert result.degraded_completions <= result.completed
        assert 0.0 <= result.time_in_degraded_s <= DURATION_S + 1e-9
        assert result.quality is not None
        assert 0.0 < result.quality["recall_at_k"] <= 1.0
        assert 0.0 < result.quality["ndcg_at_k"] <= 1.0

    def test_no_policy_no_faults_matches_plain_router_arrivals(self):
        router = ResilientRouter(
            BROADWELL, RMC1_SMALL, 8, NUM_REPLICAS, seed=3
        )
        a = router.run(5000.0, DURATION_S)
        b = ResilientRouter(
            BROADWELL, RMC1_SMALL, 8, NUM_REPLICAS, seed=3
        ).run(5000.0, DURATION_S)
        np.testing.assert_array_equal(a.latencies_s, b.latencies_s)
        assert a.failed == 0
        assert a.stats().retries == 0


class TestPoliciesImproveTails:
    """The acceptance-criterion assertion: under one seeded storm, bounded
    retry + hedged requests cut p999 and raise goodput vs no policy."""

    def test_retry_and_hedge_beat_no_policy(self):
        from repro.experiments import fig11x_faults

        result = fig11x_faults.run(duration_s=0.8)
        none = result.outcomes["none"]
        hedged = result.outcomes["retry+hedge"]
        assert hedged.summary.p999 < none.summary.p999
        assert hedged.stats.goodput_qps > none.stats.goodput_qps
        assert hedged.stats.hedges > 0
        assert result.p999_reduction() > 1.5
