"""Tests for the Criteo-format data pipeline."""

import numpy as np
import pytest

from repro.core import RecommendationModel
from repro.data.criteo import (
    CriteoPreprocessor,
    NUM_CATEGORICAL,
    NUM_DENSE,
    criteo_model_config,
    parse_criteo_line,
    read_criteo,
    write_synthetic_criteo,
)
from repro.train import TrainableDLRM
from repro.train.losses import bce_with_logits


@pytest.fixture(scope="module")
def criteo_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("criteo") / "day_0.tsv"
    write_synthetic_criteo(path, num_records=200, seed=1)
    return path


class TestFormat:
    def test_write_and_read_round_trip(self, criteo_file):
        records = read_criteo(criteo_file)
        assert len(records) == 200
        for record in records:
            assert record.label in (0, 1)
            assert len(record.dense) == NUM_DENSE
            assert len(record.categorical) == NUM_CATEGORICAL

    def test_missing_fields_become_none(self, criteo_file):
        records = read_criteo(criteo_file)
        has_missing_dense = any(None in r.dense for r in records)
        has_missing_cat = any(None in r.categorical for r in records)
        assert has_missing_dense and has_missing_cat

    def test_parse_rejects_wrong_arity(self):
        with pytest.raises(ValueError):
            parse_criteo_line("1\t2\t3")

    def test_parse_rejects_bad_label(self):
        fields = ["5"] + ["1"] * NUM_DENSE + ["ab"] * NUM_CATEGORICAL
        with pytest.raises(ValueError):
            parse_criteo_line("\t".join(fields))

    def test_click_rate_respected(self, tmp_path):
        path = tmp_path / "clicks.tsv"
        write_synthetic_criteo(path, num_records=2000, seed=3, click_rate=0.5)
        records = read_criteo(path)
        rate = sum(r.label for r in records) / len(records)
        assert rate == pytest.approx(0.5, abs=0.05)


class TestPreprocessing:
    @pytest.fixture(scope="class")
    def prep(self):
        return CriteoPreprocessor(criteo_model_config(rows_per_table=1000))

    def test_dense_log_transform(self, prep):
        line = "\t".join(
            ["1"] + ["99"] * NUM_DENSE + ["deadbeef"] * NUM_CATEGORICAL
        )
        dense = prep.dense_matrix([parse_criteo_line(line)])
        assert dense[0, 0] == pytest.approx(np.log1p(99))

    def test_missing_dense_is_zero(self, prep):
        line = "\t".join(["0"] + [""] * NUM_DENSE + ["aa"] * NUM_CATEGORICAL)
        dense = prep.dense_matrix([parse_criteo_line(line)])
        assert np.all(dense == 0)

    def test_hashing_stable_and_in_domain(self, prep, criteo_file):
        records = read_criteo(criteo_file)
        first = prep.sparse_batches(records)
        second = prep.sparse_batches(records)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.ids, b.ids)
            assert a.ids.min() >= 0
            assert a.ids.max() < 1000

    def test_rejects_wrong_table_count(self):
        from repro.config import RMC1_SMALL

        with pytest.raises(ValueError):
            CriteoPreprocessor(RMC1_SMALL)

    def test_batch_assembles_everything(self, prep, criteo_file):
        records = read_criteo(criteo_file)[:32]
        dense, sparse, labels = prep.batch(records)
        assert dense.shape == (32, NUM_DENSE)
        assert len(sparse) == NUM_CATEGORICAL
        assert labels.shape == (32,)


class TestEndToEnd:
    def test_model_runs_and_trains_on_criteo(self, criteo_file):
        config = criteo_model_config(rows_per_table=1000)
        model = RecommendationModel(config)
        prep = CriteoPreprocessor(config)
        records = read_criteo(criteo_file)
        dense, sparse, labels = prep.batch(records[:64])

        probs = model.forward(dense, sparse)
        assert probs.shape == (64,)

        trainable = TrainableDLRM(model)
        losses = []
        for _ in range(30):
            loss = trainable.train_step(dense, sparse, labels, lr=0.2)
            losses.append(loss)
        # Overfitting one batch must drive the loss down.
        assert losses[-1] < losses[0] - 0.05

        logits, _ = trainable.forward_logits(dense, sparse)
        assert bce_with_logits(logits, labels) == pytest.approx(
            losses[-1], rel=0.5
        )
