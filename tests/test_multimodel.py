"""Multi-model pool and router: unit tests plus slot-accounting properties.

The property suite drives random mixed-traffic runs through an audited
pool subclass that re-verifies the residency books at every state
transition: occupancy conservation (resident + loading + draining <=
slots, incremental counters match a fresh slot scan), swap determinism
under a fixed seed, and the drain guard's core promise — a slot is never
dispatched a model other than the one resident in it.
"""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config.presets import RMC1_SMALL, RMC2_SMALL, RMC3_SMALL
from repro.hw.server import BROADWELL, SKYLAKE
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.serving import (
    AdmissionPolicy,
    BreakerPolicy,
    MixedModelLoadGenerator,
    MixedQuery,
    ModelClassRate,
    MultiModelPool,
    MultiModelRouter,
    OverloadConfig,
    ResilientRouter,
    ServingSimulator,
    fault_storm,
)

REPLICAS = (BROADWELL, SKYLAKE)
MODELS = (RMC1_SMALL, RMC2_SMALL, RMC3_SMALL)

PROPERTY = settings(
    max_examples=int(os.environ.get("CHAOS_EXAMPLES", "15")),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_pool(**kwargs) -> MultiModelPool:
    kwargs.setdefault("slots_per_replica", 2)
    kwargs.setdefault("thrash_window_s", 0.05)
    return MultiModelPool(REPLICAS, MODELS, **kwargs)


class AuditedPool(MultiModelPool):
    """Pool that re-verifies the occupancy books at every transition.

    ``_integrate`` runs before every state mutation, so hooking it audits
    the counters exactly when they must be consistent. ``begin_service``
    additionally records that the drain guard only ever admits a
    matching, idle, resident slot.
    """

    def _integrate(self, now_s: float) -> None:
        super()._integrate(now_s)
        self.verify_occupancy()
        resident, loading, draining, slots = self.occupancy()
        assert resident + loading + draining <= slots

    def begin_service(self, replica, idx, model, now_s) -> None:
        s = self.slot(replica, idx)
        assert s.model == model and not s.busy and not s.draining
        super().begin_service(replica, idx, model, now_s)


class TestPoolConstruction:
    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            MultiModelPool((), MODELS)
        with pytest.raises(ValueError):
            MultiModelPool(REPLICAS, ())

    def test_rejects_duplicate_model_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            MultiModelPool(REPLICAS, (RMC1_SMALL, RMC1_SMALL))

    def test_rejects_model_that_needs_sharding(self):
        # At 1% headroom RMC2's 5.12 GB of tables no longer fits a
        # replica whole, so the residency pool must refuse it.
        with pytest.raises(ValueError, match="shards"):
            MultiModelPool(REPLICAS, (RMC2_SMALL,), dram_headroom=0.01)

    def test_rejects_bad_headroom(self):
        with pytest.raises(ValueError, match="dram_headroom"):
            MultiModelPool(REPLICAS, MODELS, dram_headroom=-0.5)
        with pytest.raises(ValueError, match="dram_headroom"):
            MultiModelPool(REPLICAS, MODELS, dram_headroom=1.5)

    def test_rejects_bad_slot_counts(self):
        with pytest.raises(ValueError, match="positive"):
            make_pool(slots_per_replica=0)
        with pytest.raises(ValueError, match="capacity"):
            make_pool(slots_per_replica=10_000)

    def test_rejects_bad_thrash_window(self):
        with pytest.raises(ValueError, match="thrash"):
            make_pool(thrash_window_s=0.0)

    def test_slots_derived_from_capacity(self):
        pool = MultiModelPool(REPLICAS, MODELS)
        # Uniform slots sized to the largest model (RMC2's tables).
        assert pool.slot_bytes == RMC2_SMALL.embedding_storage_bytes()
        budget = int(BROADWELL.dram_capacity_bytes * 0.8)
        assert pool.num_slots[0] == budget // pool.slot_bytes
        assert pool.total_slots == sum(pool.num_slots)

    def test_swap_cost_is_tables_at_dram_bandwidth(self):
        pool = make_pool()
        for r, spec in enumerate(REPLICAS):
            for m, config in enumerate(MODELS):
                expected = (
                    config.embedding_storage_bytes() / spec.dram_bw_bytes_per_s
                )
                assert pool.swap_base_s[r][m] == pytest.approx(expected)


class TestPoolTransitions:
    def test_load_then_hit_then_release(self):
        pool = make_pool()
        kind, idx, swap_s = pool.find_and_acquire(0, 0, 0.0)
        assert kind == "load"
        assert swap_s == pool.swap_base_s[0][0]
        pool.finish_load(0, idx, 0.001)
        kind, idx2, _ = pool.find_and_acquire(0, 0, 0.002)
        assert (kind, idx2) == ("hit", idx)
        pool.release(0, idx, 0.003)
        pool.verify_occupancy()

    def test_acquire_refuses_when_all_slots_busy(self):
        pool = make_pool()
        for m in (0, 1):
            _, idx, _ = pool.find_and_acquire(0, m, 0.0)
            pool.finish_load(0, idx, 0.001)
            pool.begin_service(0, idx, m, 0.002)
        # Both slots busy with models 0/1: model 2 gets nothing.
        assert pool.find_and_acquire(0, 2, 0.003) is None

    def test_lru_eviction_counts_swap_and_thrash(self):
        pool = make_pool(thrash_window_s=10.0)
        for m in (0, 1):
            _, idx, _ = pool.find_and_acquire(0, m, 0.0)
            pool.finish_load(0, idx, 0.001 + m * 0.001)
        # Slots full but idle: loading model 2 evicts the LRU (model 0),
        # and well inside the thrash window.
        kind, idx, swap_s = pool.find_and_acquire(0, 2, 0.01)
        assert kind == "load"
        assert swap_s == pool.swap_base_s[0][2]
        assert (pool.swaps, pool.thrash) == (1, 1)
        assert pool.swaps_by_model[2] == 1

    def test_drain_guard_rejects_mismatched_dispatch(self):
        pool = make_pool()
        _, idx, _ = pool.find_and_acquire(0, 0, 0.0)
        pool.finish_load(0, idx, 0.001)
        with pytest.raises(RuntimeError, match="drain guard"):
            pool.begin_service(0, idx, 1, 0.002)

    def test_drain_guard_rejects_busy_and_draining_slots(self):
        pool = make_pool()
        _, idx, _ = pool.find_and_acquire(0, 0, 0.0)
        pool.finish_load(0, idx, 0.001)
        pool.begin_service(0, idx, 0, 0.002)
        with pytest.raises(RuntimeError, match="drain guard"):
            pool.begin_service(0, idx, 0, 0.003)
        assert pool.claim_drain(0, 1, 0.004) == idx
        pool.release(0, idx, 0.005)
        start = pool.start_pending_load(0, idx, 0.005)
        assert start.evicted_model == 0
        with pytest.raises(RuntimeError, match="drain guard"):
            pool.begin_service(0, idx, 1, 0.006)  # still loading
        pool.finish_load(0, idx, 0.01)
        pool.begin_service(0, idx, 1, 0.011)
        pool.verify_occupancy()

    def test_claim_drain_needs_a_busy_mismatch(self):
        pool = make_pool()
        assert pool.claim_drain(0, 1, 0.0) == -1
        _, idx, _ = pool.find_and_acquire(0, 1, 0.0)
        pool.finish_load(0, idx, 0.001)
        pool.begin_service(0, idx, 1, 0.002)
        assert pool.claim_drain(0, 1, 0.003) == -1  # already the model
        assert pool.claim_drain(0, 0, 0.003) == idx
        assert pool.claim_drain(0, 0, 0.004) == -1  # already claimed

    def test_start_pending_load_requires_drained_claim(self):
        pool = make_pool()
        with pytest.raises(RuntimeError, match="claim"):
            pool.start_pending_load(0, 0, 0.0)

    def test_crash_clears_residency(self):
        pool = make_pool()
        _, idx, _ = pool.find_and_acquire(0, 0, 0.0)
        pool.finish_load(0, idx, 0.001)
        pool.begin_service(0, idx, 0, 0.002)
        pool.crash(0, 0.003)
        pool.verify_occupancy()
        assert pool.occupancy(0) == (0, 0, 0, 2)

    def test_occupancy_time_integral(self):
        pool = make_pool()
        _, idx, _ = pool.find_and_acquire(0, 0, 0.0)
        pool.finish_load(0, idx, 1.0)
        pool.finalize(3.0)
        assert pool.loading_slot_s == pytest.approx(1.0)
        assert pool.resident_slot_s == pytest.approx(2.0)
        assert pool.residency_utilization(3.0) == pytest.approx(
            2.0 / (pool.total_slots * 3.0)
        )
        with pytest.raises(ValueError):
            pool.residency_utilization(0.0)


class TestRouterValidation:
    def test_pool_or_specs_not_both(self):
        pool = make_pool()
        with pytest.raises(ValueError, match="not both"):
            MultiModelRouter(pool, replicas=REPLICAS, models=MODELS)
        with pytest.raises(ValueError, match="need a pool"):
            MultiModelRouter()

    def test_rejects_breaker_and_brownout(self):
        with pytest.raises(ValueError, match="admission control"):
            MultiModelRouter(
                make_pool(),
                overload=OverloadConfig(
                    breaker=BreakerPolicy(
                        failure_threshold=3,
                        window_s=1.0,
                        open_duration_s=1.0,
                    )
                ),
            )

    def test_rejects_bad_parameters(self):
        pool = make_pool()
        with pytest.raises(ValueError, match="batch_size"):
            MultiModelRouter(pool, batch_size=0)
        with pytest.raises(ValueError, match="hol_skip_cap"):
            MultiModelRouter(pool, hol_skip_cap=-1)
        with pytest.raises(ValueError, match="hol_scan_window"):
            MultiModelRouter(pool, hol_scan_window=0)

    def test_run_needs_exactly_one_source(self):
        router = MultiModelRouter(make_pool())
        with pytest.raises(ValueError, match="exactly one"):
            router.run(0.1)
        with pytest.raises(ValueError, match="exactly one"):
            router.run(0.1, offered_qps=100.0, queries=[])
        with pytest.raises(ValueError, match="duration"):
            router.run(0.0, offered_qps=100.0)
        with pytest.raises(ValueError, match="offered_qps"):
            router.run(0.1, offered_qps=0.0)

    def test_mix_validation(self):
        router = MultiModelRouter(make_pool())
        with pytest.raises(ValueError, match="mix"):
            router.run(0.1, offered_qps=100.0, mix=(1.0,))
        with pytest.raises(ValueError, match="mix"):
            router.run(0.1, offered_qps=100.0, mix=(0.0, 0.0, 0.0))

    def test_query_validation(self):
        router = MultiModelRouter(make_pool())
        bad = [MixedQuery(0, 0.01, 1, model="nope")]
        with pytest.raises(ValueError, match="not in pool"):
            router.run(0.1, queries=bad)
        unsorted = [
            MixedQuery(0, 0.02, 1, model=RMC1_SMALL.name),
            MixedQuery(1, 0.01, 1, model=RMC1_SMALL.name),
        ]
        with pytest.raises(ValueError, match="sorted"):
            router.run(0.1, queries=unsorted)


class TestRouterRuns:
    def test_conservation_and_summary(self):
        router = MultiModelRouter(make_pool(), seed=3)
        result = router.run(0.1, offered_qps=3000.0, mix=(0.5, 0.3, 0.2))
        for i in range(len(MODELS)):
            assert result.offered_by_model[i] == (
                result.completed_by_model[i]
                + result.shed_by_model[i]
                + result.killed_by_model[i]
            )
        assert result.offered == sum(result.offered_by_model)
        assert result.throughput_qps == result.completed / result.duration_s
        assert len(result.latencies_s()) == result.completed
        summary = result.summary()
        assert summary["per_model"][RMC1_SMALL.name]["offered"] > 0
        assert 0.0 <= result.residency_utilization <= 1.0

    def test_rerun_is_deterministic(self):
        router = MultiModelRouter(make_pool(), seed=5)
        first = router.run(0.05, offered_qps=2000.0)
        second = router.run(0.05, offered_qps=2000.0)
        assert first.latencies_by_model == second.latencies_by_model
        assert first.summary() == second.summary()

    def test_crash_kills_and_cold_restarts(self):
        storm = fault_storm(len(REPLICAS), 0.1, seed=12)
        router = MultiModelRouter(make_pool(), seed=7)
        result = router.run(0.1, offered_qps=4000.0, faults=storm)
        assert result.offered == (
            result.completed + result.shed + result.killed
        )

    def test_admission_sheds(self):
        overload = OverloadConfig(
            admission=AdmissionPolicy(queue_capacity=2, shed_policy="reject_newest")
        )
        router = MultiModelRouter(make_pool(), overload=overload, seed=9)
        result = router.run(0.05, offered_qps=20_000.0)
        assert result.shed > 0
        assert result.overload is not None
        assert result.overload.offered == result.offered
        assert result.overload.admitted + result.overload.shed == result.offered

    def test_loadgen_and_trace_paths(self):
        classes = (
            ModelClassRate(RMC1_SMALL.name, 1500.0),
            ModelClassRate(RMC2_SMALL.name, 800.0, phase_s=0.05),
            ModelClassRate(RMC3_SMALL.name, 500.0, amplitude=0.2),
        )
        load = MixedModelLoadGenerator(classes, period_s=0.1, seed=11)
        tracer = Tracer()
        metrics = MetricsRegistry()
        router = MultiModelRouter(
            make_pool(), seed=11, tracer=tracer, metrics=metrics
        )
        result = router.run(0.1, load=load)
        assert result.offered == len(load.generate(0.1))
        names = {span.name for span in tracer.spans}
        assert "serving.multimodel.request" in names
        assert "serving.multimodel.swap" in names
        snap = metrics.snapshot()
        assert snap.counters["serving.multimodel.loads"] == result.loads
        assert snap.gauges["serving.multimodel.residency"] == pytest.approx(
            result.residency_utilization
        )


class TestMixedLoadgen:
    CLASSES = (
        ModelClassRate("a", 1000.0),
        ModelClassRate("b", 500.0, amplitude=0.3, phase_s=0.02),
    )

    def test_query_needs_model(self):
        with pytest.raises(ValueError, match="model"):
            MixedQuery(0, 0.0, 1)

    def test_class_validation(self):
        with pytest.raises(ValueError, match="name"):
            ModelClassRate("", 10.0)
        with pytest.raises(ValueError, match="rate"):
            ModelClassRate("a", 0.0)
        with pytest.raises(ValueError, match="amplitude"):
            ModelClassRate("a", 10.0, amplitude=1.5)

    def test_generator_validation(self):
        with pytest.raises(ValueError, match="class"):
            MixedModelLoadGenerator(())
        with pytest.raises(ValueError, match="duplicate"):
            MixedModelLoadGenerator(
                (ModelClassRate("a", 1.0), ModelClassRate("a", 2.0))
            )
        with pytest.raises(ValueError, match="period"):
            MixedModelLoadGenerator(self.CLASSES, period_s=0.0)
        with pytest.raises(ValueError, match="num_items"):
            MixedModelLoadGenerator(self.CLASSES, num_items=0)

    def test_generate_is_repeatable_and_sorted(self):
        gen = MixedModelLoadGenerator(self.CLASSES, period_s=0.1, seed=4)
        first = gen.generate(0.1)
        second = gen.generate(0.1)
        assert first == second
        times = [q.arrival_s for q in first]
        assert times == sorted(times)
        assert [q.query_id for q in first] == list(range(len(first)))

    def test_substreams_partition_the_merged_trace(self):
        gen = MixedModelLoadGenerator(self.CLASSES, period_s=0.1, seed=4)
        merged = gen.generate(0.1)
        by_class = gen.generate_by_class(0.1)
        for name in ("a", "b"):
            merged_times = [q.arrival_s for q in merged if q.model == name]
            assert merged_times == by_class[name]

    def test_diurnal_rate_shape(self):
        gen = MixedModelLoadGenerator(self.CLASSES, period_s=0.1, seed=4)
        assert gen.rate_at(0.025, 0) == pytest.approx(1500.0)  # peak
        assert gen.rate_at(0.075, 0) == pytest.approx(500.0)  # trough
        assert gen.max_rate_qps(0) == pytest.approx(1500.0)


class TestSingleModelPoolParam:
    """The observational ``pool=`` hook on the single-model layers."""

    def test_rejects_unregistered_model(self):
        pool = MultiModelPool(REPLICAS, (RMC1_SMALL,))
        with pytest.raises(ValueError, match="not registered"):
            ServingSimulator(BROADWELL, RMC2_SMALL, 8, 2, pool=pool)
        with pytest.raises(ValueError, match="not registered"):
            ResilientRouter(BROADWELL, RMC2_SMALL, 8, 2, pool=pool)

    def test_simulator_results_unchanged_by_pool(self):
        pool = make_pool()
        with_pool = ServingSimulator(
            BROADWELL, RMC1_SMALL, 8, 2, seed=3, pool=pool
        ).run(0.05)
        without = ServingSimulator(BROADWELL, RMC1_SMALL, 8, 2, seed=3).run(0.05)
        assert np.array_equal(with_pool.latencies_s(), without.latencies_s())
        assert with_pool.offered == without.offered

    def test_router_results_unchanged_by_pool(self):
        pool = make_pool()
        metrics = MetricsRegistry()
        with_pool = ResilientRouter(
            BROADWELL, RMC1_SMALL, 8, 2, seed=3, pool=pool, metrics=metrics
        ).run(800.0, 0.05)
        without = ResilientRouter(BROADWELL, RMC1_SMALL, 8, 2, seed=3).run(
            800.0, 0.05
        )
        assert np.array_equal(with_pool.latencies_s, without.latencies_s)
        gauge = "serving.multimodel.capacity_slots{model=%s}" % RMC1_SMALL.name
        assert metrics.snapshot().gauges[gauge] == pool.total_slots


class TestSlotAccountingProperties:
    """The satellite property suite over the audited pool."""

    @PROPERTY
    @given(
        seed=st.integers(0, 2**16),
        offered_qps=st.floats(500.0, 8000.0),
        weight=st.floats(0.1, 0.9),
        engine=st.sampled_from(["reference", "vectorized"]),
        with_faults=st.booleans(),
    )
    def test_occupancy_conservation(
        self, seed, offered_qps, weight, engine, with_faults
    ):
        pool = AuditedPool(
            REPLICAS, MODELS, slots_per_replica=2, thrash_window_s=0.05
        )
        router = MultiModelRouter(pool, seed=seed, engine=engine)
        faults = (
            fault_storm(len(REPLICAS), 0.05, seed=seed + 1)
            if with_faults
            else None
        )
        result = router.run(
            0.05,
            offered_qps=offered_qps,
            mix=(weight, 1.0 - weight, weight / 2),
            faults=faults,
        )
        pool.verify_occupancy()
        assert result.offered == result.completed + result.shed + result.killed

    @PROPERTY
    @given(
        seed=st.integers(0, 2**16),
        engine=st.sampled_from(["reference", "vectorized"]),
    )
    def test_swap_determinism_under_fixed_seed(self, seed, engine):
        runs = [
            MultiModelRouter(
                make_pool(), seed=seed, engine=engine
            ).run(0.05, offered_qps=4000.0)
            for _ in range(2)
        ]
        assert runs[0].swaps == runs[1].swaps
        assert runs[0].loads == runs[1].loads
        assert runs[0].thrash == runs[1].thrash
        assert runs[0].latencies_by_model == runs[1].latencies_by_model

    @PROPERTY
    @given(
        seed=st.integers(0, 2**16),
        offered_qps=st.floats(1000.0, 10_000.0),
        engine=st.sampled_from(["reference", "vectorized"]),
    )
    def test_drain_guard_never_dispatches_mismatch(
        self, seed, offered_qps, engine
    ):
        # AuditedPool.begin_service asserts slot.model == model before
        # every dispatch; a single-slot pool maximizes swap pressure.
        pool = AuditedPool(
            REPLICAS, MODELS, slots_per_replica=1, thrash_window_s=0.05
        )
        router = MultiModelRouter(pool, seed=seed, engine=engine)
        result = router.run(0.05, offered_qps=offered_qps)
        assert result.swaps >= 0
