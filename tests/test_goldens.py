"""Golden-output regression tests for key experiments.

Each test reduces an experiment to a canonical JSON payload (floats rounded
to 6 significant digits) and compares it against a checked-in golden.
Refresh after intentional model changes with::

    PYTHONPATH=src python -m pytest tests/test_goldens.py --update-goldens
"""

from repro.experiments import (
    fig09_colocation,
    fig10_latency_throughput,
    fig11_tail_latency,
    fig11x_faults,
    fig11y_overload,
    fig11z_domains,
    fig14_trace_locality,
    figmm_multimodel,
    fignmp_near_memory,
    fleet_day,
)


def test_fig10_latency_throughput_golden(golden):
    result = fig10_latency_throughput.run()
    payload = {
        "model": result.model_name,
        "batch_size": result.batch_size,
        "sla_deadline_s": result.sla.deadline_s,
        "frontiers": {
            server: [
                {
                    "num_jobs": p.num_jobs,
                    "latency_s": p.latency_s,
                    "items_per_s": p.items_per_s,
                    "meets_sla": p.meets_sla,
                }
                for p in points
            ]
            for server, points in sorted(result.frontiers.items())
        },
    }
    golden("fig10_latency_throughput", payload)


def test_fig14_trace_locality_golden(golden):
    result = fig14_trace_locality.run(table_rows=200_000, trace_length=8_000)
    payload = {
        "rows": [
            {
                "name": row.name,
                "unique_fraction": row.unique_fraction,
                "llc_mpki": row.llc_mpki,
            }
            for row in result.rows
        ],
    }
    golden("fig14_trace_locality", payload)


def test_fig09_colocation_golden(golden):
    result = fig09_colocation.run()
    models = sorted({c.model_name for c in result.cells})
    jobs = sorted({c.num_jobs for c in result.cells})
    payload = {
        "server": result.server_name,
        "batch_size": result.batch_size,
        "cells": {
            model: {
                str(n): {
                    "latency_ms": result.latency(model, n).total_seconds * 1e3,
                    "degradation": result.degradation(model, n),
                    "sls_share": result.sls_share(model, n),
                }
                for n in jobs
            }
            for model in models
        },
    }
    golden("fig09_colocation", payload)


def _fig11_payload(result):
    payload = {}
    for server_name, server in sorted(result.servers.items()):
        payload[server_name] = {
            "modes": server.modes,
            "pooled_count": int(server.pooled_samples_us.size),
            "p99_growth_small": server.p99_growth(server.curve_small),
            "p99_growth_large": server.p99_growth(server.curve_large),
            "curve_small_p99_us": [
                p.summary.p99 for p in server.curve_small
            ],
            "curve_large_p99_us": [
                p.summary.p99 for p in server.curve_large
            ],
        }
    return payload


def test_fig11_tail_latency_golden(golden):
    result = fig11_tail_latency.run(
        regimes=(1, 8),
        curve_jobs=(1, 8, 16),
        duration_s=0.15,
        seed=11,
    )
    golden("fig11_tail_latency", _fig11_payload(result))


def _fig11x_payload(result):
    return {
        "server": result.server_name,
        "model": result.model_name,
        "offered_qps": result.offered_qps,
        "sla_deadline_s": result.sla_deadline_s,
        "storm": {
            "crashes": len(result.storm.crashes),
            "stragglers": len(result.storm.stragglers),
            "bandwidth_faults": len(result.storm.bandwidth_faults),
        },
        "policies": {
            name: {
                "p50_s": outcome.summary.p50,
                "p99_s": outcome.summary.p99,
                "p999_s": outcome.summary.p999,
                "offered": outcome.stats.offered,
                "completed": outcome.stats.completed,
                "failed": outcome.stats.failed,
                "retries": outcome.stats.retries,
                "hedges": outcome.stats.hedges,
                "goodput_qps": outcome.stats.goodput_qps,
                "availability": outcome.stats.availability,
            }
            for name, outcome in sorted(result.outcomes.items())
        },
    }


def test_fig11x_faults_golden(golden):
    result = fig11x_faults.run(num_machines=4, duration_s=0.4, seed=11)
    golden("fig11x_faults", _fig11x_payload(result))


def _fig11y_payload(result):
    return {
        "server": result.server_name,
        "model": result.model_name,
        "capacity_qps": result.capacity_qps,
        "offered": result.offered,
        "sla_deadline_s": result.sla_deadline_s,
        "crowd_multiplier": result.crowd_multiplier,
        "policies": {
            name: {
                "p50_s": outcome.summary.p50,
                "p99_s": outcome.summary.p99,
                "completed": outcome.stats.completed,
                "failed": outcome.stats.failed,
                "goodput_qps": outcome.stats.goodput_qps,
                "shed": (
                    outcome.overload.shed
                    if outcome.overload is not None
                    else 0
                ),
                "breaker_opens": (
                    outcome.overload.breaker_opens
                    if outcome.overload is not None
                    else 0
                ),
                "brownout_switches": (
                    outcome.overload.brownout_switches
                    if outcome.overload is not None
                    else 0
                ),
                "max_queue_depth": (
                    outcome.overload.max_queue_depth
                    if outcome.overload is not None
                    else 0
                ),
            }
            for name, outcome in sorted(result.outcomes.items())
        },
    }


def test_fig11y_overload_golden(golden):
    result = fig11y_overload.run(duration_s=0.25, seed=11)
    golden("fig11y_overload", _fig11y_payload(result))


def _fig11z_payload(result):
    return {
        "server": result.server_name,
        "model": result.model_name,
        "num_machines": result.num_machines,
        "num_shards": result.num_shards,
        "offered_qps": result.offered_qps,
        "duration_s": result.duration_s,
        "sla_deadline_s": result.sla_deadline_s,
        "cells": {
            key: {
                "spread": cell.spread,
                "availability": cell.stats.availability,
                "p50_s": cell.summary.p50,
                "p99_s": cell.summary.p99,
                "offered": cell.stats.offered,
                "completed": cell.stats.completed,
                "failed": cell.stats.failed,
                "unresolved": cell.unresolved,
                "blackout_s": cell.blackout_s,
                "failover_s": cell.failover_s,
                "max_failover_hops": cell.max_failover_hops,
                "lost_tables": list(cell.lost_tables),
                "ndcg_at_k": cell.quality["ndcg_at_k"],
                "time_to_full_redundancy_s": cell.time_to_full_redundancy_s,
                "recovery_transfers": cell.recovery_transfers,
                "cold_reloads": cell.cold_reloads,
            }
            for key, cell in sorted(result.cells.items())
        },
    }


def test_fig11z_domains_golden(golden):
    result = fig11z_domains.run(duration_s=0.4, seed=11)
    golden("fig11z_domains", _fig11z_payload(result))


# --- Engine byte-identity against the checked-in goldens -------------------
#
# The goldens above were recorded with the reference DES engine. Re-running
# each DES-backed figure with ``engine="vectorized"`` must reproduce the
# same golden byte for byte — the two engines are one model. Figures 9, 10
# and 14 contain no DES (analytic roofline sweeps and a cache trace), so
# the reference goldens already cover every engine for them.


def test_fig11_vectorized_engine_matches_golden(golden):
    result = fig11_tail_latency.run(
        regimes=(1, 8),
        curve_jobs=(1, 8, 16),
        duration_s=0.15,
        seed=11,
        engine="vectorized",
    )
    golden("fig11_tail_latency", _fig11_payload(result))


def test_fig11x_vectorized_engine_matches_golden(golden):
    result = fig11x_faults.run(
        num_machines=4, duration_s=0.4, seed=11, engine="vectorized"
    )
    golden("fig11x_faults", _fig11x_payload(result))


def test_fig11y_vectorized_engine_matches_golden(golden):
    result = fig11y_overload.run(
        duration_s=0.25, seed=11, engine="vectorized"
    )
    golden("fig11y_overload", _fig11y_payload(result))


def test_fig11z_vectorized_engine_matches_golden(golden):
    result = fig11z_domains.run(duration_s=0.4, seed=11, engine="vectorized")
    golden("fig11z_domains", _fig11z_payload(result))


def test_fleet_day_golden(golden):
    # Scaled-down day (24-replica peak, 6 windows) so the golden runs in
    # seconds; the full-scale day lives in benchmarks/bench_des_replay.py.
    result = fleet_day.run(
        peak_replicas=24, windows=6, window_sim_s=0.02, seed=11
    )
    payload = {
        "server": result.server_name,
        "model": result.model_name,
        "batch_size": result.batch_size,
        "peak_replicas": result.peak_replicas,
        "machine_hours": result.machine_hours,
        "sla_deadline_s": result.sla_deadline_s,
        "incident": {
            "start_hour": result.incident.start_hour,
            "duration_hours": result.incident.duration_hours,
            "capacity_loss": result.incident.capacity_loss,
        },
        "totals": {
            "offered": result.total_offered,
            "completed": result.total_completed,
            "shed": result.total_shed,
            "failed": result.total_failed,
            "availability": result.availability,
        },
        "windows": [
            {
                "hour": w.hour,
                "replicas": w.replicas,
                "demand_items_per_s": w.demand_items_per_s,
                "offered": w.offered,
                "completed": w.completed,
                "failed": w.failed,
                "shed": w.shed,
                "breaker_opens": w.breaker_opens,
                "p50_s": w.summary.p50,
                "p99_s": w.summary.p99,
                "goodput_qps": w.goodput_qps,
            }
            for w in result.windows
        ],
    }
    golden("fleet_day", payload)


def _multimodel_payload(result):
    mixed = result.mixed.summary()
    mixed.pop("engine")  # engine-invariant by contract
    return {
        "replicas": list(result.replica_names),
        "models": list(result.model_names),
        "partition": list(result.partition),
        "mixed": mixed,
        "mixed_extras": {
            "hol_bypasses": result.mixed.hol_bypasses,
            "drain_claims": result.mixed.drain_claims,
            "busy_utilization": result.mixed.busy_utilization,
        },
        "static": {
            name: {
                key: value
                for key, value in result.static_by_model[i].summary().items()
                if key != "engine"
            }
            for i, name in enumerate(result.model_names)
        },
        "static_throughput_qps": result.static_throughput_qps,
        "static_residency_utilization": result.static_residency_utilization,
    }


def test_multimodel_golden(golden):
    golden("multimodel", _multimodel_payload(figmm_multimodel.run()))


def _fignmp_payload(result):
    return {
        "server": result.server_name,
        "batch_size": result.batch_size,
        "num_ranks": result.geometry.num_ranks,
        "cells": {
            f"{cell.model_name}/{cell.trace_name}": {
                "unique_fraction": cell.unique_fraction,
                "sls_share": cell.sls_share,
                "baseline_seconds": cell.baseline_seconds,
                "nmp_seconds": cell.nmp_seconds,
                "amdahl_seconds": cell.amdahl_seconds,
                "hot_hit_ratio": cell.hot_hit_ratio,
                "rank_imbalance": cell.rank_imbalance,
                "engine_speedup": cell.engine_speedup,
                "amdahl_speedup": cell.amdahl_speedup,
            }
            for cell in result.cells
        },
        "fleet": {
            "projection_trace": result.fleet.projection_trace,
            "class_shares": dict(sorted(result.fleet.class_shares.items())),
            "class_speedups": dict(sorted(result.fleet.class_speedups.items())),
            "fleet_speedup": result.fleet.fleet_speedup,
            "cycles_returned": result.fleet.cycles_returned,
        },
    }


def test_fignmp_golden(golden):
    result = fignmp_near_memory.run(table_rows=100_000, trace_length=10_000)
    golden("fignmp", _fignmp_payload(result))


def test_fignmp_golden_engine_invariant(golden):
    # The NMP engines are bit-identical by contract, so the reference
    # engine must reproduce the vectorized golden byte for byte.
    result = fignmp_near_memory.run(
        table_rows=100_000, trace_length=10_000, engine="reference"
    )
    golden("fignmp", _fignmp_payload(result))


def test_multimodel_golden_engine_invariant(golden):
    # The same golden must hold for the reference engine: the figure is
    # bit-identical across engines by the DES contract.
    golden(
        "multimodel",
        _multimodel_payload(figmm_multimodel.run(engine="reference")),
    )
