"""Integration tests: every experiment module reproduces its paper claims."""

import pytest

from repro.experiments import (
    REGISTRY,
    fig01_cycles,
    fig02_flops_bytes,
    fig04_operator_cycles,
    fig07_single_model,
    fig08_batch_sweep,
    fig10_latency_throughput,
    fig12_ncf_comparison,
    fig14_trace_locality,
    micro_takeaways,
    table1_model_params,
    table2_servers,
    table3_bottlenecks,
)


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {
            "figure1", "figure2", "figure4", "figure5", "figure7", "figure8",
            "figure9", "figure10", "figure11", "figure11x", "figure11y",
            "figure11z", "figure12", "figure14", "fignmp", "fleet",
            "multimodel",
            "table1", "table2", "table3", "micro", "configspace", "whatif",
        }
        assert set(REGISTRY) == expected

    def test_every_module_has_run_and_render(self):
        for module in REGISTRY.values():
            assert callable(module.run)
            assert callable(module.render)


class TestFigure1:
    def test_shares(self):
        result = fig01_cycles.run()
        assert result.rmc_core_share == pytest.approx(0.65, abs=0.02)
        assert result.recommendation_share >= 0.78
        assert sum(result.by_class.values()) == pytest.approx(1.0)

    def test_render_mentions_anchors(self):
        text = fig01_cycles.render(fig01_cycles.run())
        assert "65%" in text and "79%" in text


class TestFigure2:
    def test_rmc_models_low_intensity(self):
        points = fig02_flops_bytes.run().by_name()
        for name in ("RMC1-small", "RMC2-small", "RMC3-small"):
            assert points[name].operational_intensity < 1.0

    def test_cnn_highest_intensity(self):
        points = fig02_flops_bytes.run().by_name()
        assert points["ResNet50"].operational_intensity > 10

    def test_cnn_rnn_far_more_flops_than_rmcs(self):
        points = fig02_flops_bytes.run().by_name()
        for dense in ("ResNet50", "GNMT-RNN"):
            assert points[dense].flops > 50 * points["RMC3-small"].flops

    def test_rmc2_reads_most_bytes_of_rmcs_at_batch1_storage(self):
        points = fig02_flops_bytes.run().by_name()
        assert points["RMC2-small"].storage_bytes > points["RMC3-small"].storage_bytes


class TestFigure4:
    def test_sls_exclusive_to_recommendation(self):
        result = fig04_operator_cycles.run()
        assert result.non_recommendation.get("SLS", 0.0) == 0.0
        assert result.recommendation["SLS"] > 0.1

    def test_totals_sum_to_one(self):
        result = fig04_operator_cycles.run()
        assert sum(result.total.values()) == pytest.approx(1.0, abs=0.01)


class TestFigure7:
    def test_paper_latency_ordering(self):
        result = fig07_single_model.run()
        assert (
            result.latency_ms("RMC1-small")
            < result.latency_ms("RMC2-small")
            < result.latency_ms("RMC3-small")
        )

    def test_large_rmc1_slower(self):
        result = fig07_single_model.run()
        assert result.latency_ms("RMC1-large") > 1.5 * result.latency_ms("RMC1-small")

    def test_breakdown_signatures(self):
        result = fig07_single_model.run()
        assert result.breakdown("RMC2-small")["SLS"] > 0.7
        assert result.breakdown("RMC3-small")["FC"] > 0.9


class TestFigure8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig08_batch_sweep.run()

    def test_broadwell_best_small_batches(self, result):
        for model in ("RMC1-small", "RMC2-small", "RMC3-small"):
            for batch in (1, 4, 16):
                assert result.best_server(model, batch) == "Broadwell"

    def test_skylake_best_large_batches(self, result):
        assert result.best_server("RMC3-small", 64) == "Skylake"
        for model in ("RMC1-small", "RMC2-small", "RMC3-small"):
            assert result.best_server(model, 256) == "Skylake"

    def test_grid_complete(self, result):
        assert len(result.cells) == 3 * 3 * 6


class TestFigure10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10_latency_throughput.run()

    def test_broadwell_lowest_latency_alone(self, result):
        assert (
            result.point("Broadwell", 1).latency_s
            < result.point("Skylake", 1).latency_s
        )

    def test_skylake_highest_throughput_high_colocation(self, result):
        assert (
            result.point("Skylake", 16).items_per_s
            > result.point("Broadwell", 16).items_per_s
            > result.point("Haswell", 16).items_per_s
        )

    def test_latency_degrades_then_plateaus(self, result):
        frontier = result.frontiers["Broadwell"]
        early_growth = frontier[3].latency_s / frontier[0].latency_s
        late_growth = frontier[11].latency_s / frontier[7].latency_s
        assert early_growth > late_growth

    def test_render_includes_sla_summary(self, result):
        assert "Under SLA" in fig10_latency_throughput.render(result)


class TestFigure12:
    def test_rmc_latency_orders_of_magnitude_above_ncf(self):
        rows = fig12_ncf_comparison.run().by_name()
        assert rows["RMC2-small"].latency_vs_ncf > 20
        assert rows["RMC3-small"].latency_vs_ncf > 20

    def test_embedding_and_fc_gaps(self):
        rows = fig12_ncf_comparison.run().by_name()
        assert rows["RMC2-small"].embedding_vs_ncf > 50
        assert rows["RMC3-small"].fc_params_vs_ncf > 10

    def test_operator_mix_contrast(self):
        """NCF is FC-dominated; batched RMC2 is SLS-dominated (Section VII)."""
        rows = fig12_ncf_comparison.run().by_name()
        assert rows["MLPerf-NCF"].fc_time_share > 0.7
        assert rows["RMC2-small"].sls_time_share > 0.7

    def test_requires_ncf_in_set(self):
        from repro.config import RMC1_SMALL

        with pytest.raises(ValueError):
            fig12_ncf_comparison.run(configs=[RMC1_SMALL])


class TestFigure14:
    @pytest.fixture(scope="class")
    def result(self):
        return fig14_trace_locality.run(trace_length=8000)

    def test_random_trace_near_fully_unique(self, result):
        assert result.unique_fractions()["random"] > 0.9

    def test_spread_covers_paper_range(self, result):
        fractions = list(result.unique_fractions().values())
        assert max(fractions) > 0.9
        assert min(fractions) < 0.15

    def test_locality_reduces_mpki(self, result):
        by_unique = sorted(result.rows, key=lambda r: r.unique_fraction)
        assert by_unique[0].llc_mpki < 0.5 * by_unique[-1].llc_mpki


class TestTables:
    def test_table1_ratios(self):
        rows = table1_model_params.run().by_class()
        assert rows["RMC3"].bottom_fc[0] == pytest.approx(80)
        assert rows["RMC2"].num_tables == pytest.approx(10)

    def test_table2_lists_three_generations(self):
        result = table2_servers.run()
        assert [s.name for s in result.servers] == ["Haswell", "Broadwell", "Skylake"]

    def test_table3_classifications(self):
        rows = table3_bottlenecks.run().by_class()
        assert rows["RMC2"].classification == "Embedding dominated"
        assert rows["RMC1"].classification == "MLP dominated"
        assert rows["RMC3"].classification == "MLP dominated"

    def test_table3_sensitivities(self):
        """MLP models gain from clock; embedding models from DRAM."""
        rows = table3_bottlenecks.run().by_class()
        assert rows["RMC3"].frequency_sensitivity > rows["RMC3"].dram_sensitivity
        assert rows["RMC2"].dram_sensitivity > rows["RMC2"].frequency_sensitivity


class TestMicroTakeaways:
    def test_simd_anchors(self):
        result = micro_takeaways.run()
        by_batch = {r.batch_size: r for r in result.simd_scaling}
        assert by_batch[4].throughput_ratio == pytest.approx(2.9)
        assert by_batch[16].throughput_ratio == pytest.approx(14.5)

    def test_hyperthreading_factors(self):
        result = micro_takeaways.run()
        for row in result.hyperthreading:
            assert row.fc_degradation == pytest.approx(1.6, rel=0.05)
            assert row.sls_degradation == pytest.approx(1.3, rel=0.05)

    def test_rmc3_suffers_most_from_ht(self):
        result = micro_takeaways.run()
        by_model = {r.model_name: r for r in result.hyperthreading}
        assert (
            by_model["RMC3-small"].total_degradation
            > by_model["RMC2-small"].total_degradation
        )


class TestRenderAll:
    @pytest.mark.parametrize(
        "exp_id",
        ["figure1", "figure2", "figure4", "figure7", "figure8", "figure9",
         "figure10", "figure12", "table1", "table2", "table3", "micro"],
    )
    def test_render_produces_text(self, exp_id):
        module = REGISTRY[exp_id]
        text = module.render(module.run())
        assert isinstance(text, str)
        assert len(text) > 50
