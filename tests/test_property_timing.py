"""Property-based fuzzing of the timing model over the config space.

Whatever configuration a user writes, the timing model must behave sanely:
positive latencies, shares that sum to one, monotonicity in batch and
co-location, and consistency between execution and the abstract graph.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import MLPConfig, ModelConfig, uniform_tables
from repro.core import RecommendationModel
from repro.core.graph import config_ops
from repro.data import generate_inputs
from repro.hw import ALL_SERVERS, BROADWELL, ColocationState, TimingModel


@st.composite
def model_configs(draw):
    """Random valid recommendation-model configurations."""
    dim = draw(st.sampled_from([8, 16, 32, 64]))
    interaction = draw(st.sampled_from(["concat", "dot"]))
    bottom_widths = draw(
        st.lists(st.integers(8, 256), min_size=1, max_size=3)
    )
    if interaction == "dot":
        bottom_widths[-1] = dim
    return ModelConfig(
        name="fuzz",
        model_class="RMC1",
        dense_features=draw(st.integers(1, 128)),
        bottom_mlp=MLPConfig(bottom_widths),
        embedding_tables=uniform_tables(
            draw(st.integers(1, 12)),
            draw(st.integers(100, 5_000_000)),
            dim,
            draw(st.integers(1, 128)),
        ),
        top_mlp=MLPConfig(
            draw(st.lists(st.integers(1, 128), min_size=1, max_size=2)) + [1],
            final_activation="sigmoid",
        ),
        interaction=interaction,
    )


class TestTimingProperties:
    @settings(max_examples=40, deadline=None)
    @given(config=model_configs(), batch=st.sampled_from([1, 7, 32, 200]))
    def test_latency_positive_and_shares_normalized(self, config, batch):
        for server in ALL_SERVERS:
            latency = TimingModel(server).model_latency(config, batch)
            assert latency.total_seconds > 0
            assert sum(latency.fraction_by_op_type().values()) == pytest.approx(1.0)

    @settings(max_examples=25, deadline=None)
    @given(config=model_configs())
    def test_latency_monotone_in_batch(self, config):
        tm = TimingModel(BROADWELL)
        latencies = [
            tm.model_latency(config, b).total_seconds for b in (1, 4, 16, 64, 256)
        ]
        assert latencies == sorted(latencies)

    @settings(max_examples=25, deadline=None)
    @given(config=model_configs(), jobs=st.integers(2, 24))
    def test_colocation_never_speeds_up(self, config, jobs):
        tm = TimingModel(BROADWELL)
        alone = tm.model_latency(config, 16).total_seconds
        state = tm.colocation_state(config, 16, jobs)
        loaded = tm.model_latency(config, 16, state).total_seconds
        assert loaded >= alone * 0.999

    @settings(max_examples=25, deadline=None)
    @given(config=model_configs())
    def test_hyperthreading_never_speeds_up(self, config):
        tm = TimingModel(BROADWELL)
        plain = tm.model_latency(config, 16).total_seconds
        ht = tm.model_latency(
            config, 16, ColocationState(num_jobs=1, hyperthreading=True)
        ).total_seconds
        assert ht >= plain

    @settings(max_examples=25, deadline=None)
    @given(config=model_configs(), hit=st.floats(0.0, 1.0))
    def test_locality_never_hurts(self, config, hit):
        tm = TimingModel(BROADWELL)
        base = tm.model_latency(config, 16).total_seconds
        local = tm.model_latency(config, 16, locality_hit_ratio=hit).total_seconds
        assert local <= base * 1.001


class TestGraphExecutionConsistency:
    @settings(max_examples=15, deadline=None)
    @given(config=model_configs())
    def test_graph_matches_instantiated_model(self, config):
        scaled = config.scaled(
            table_rows=min(1.0, 2000 / max(t.rows for t in config.embedding_tables))
        )
        model = RecommendationModel(scaled)
        assert [s.name for s in config_ops(scaled)] == [
            op.name for op in model.operators()
        ]

    @settings(max_examples=10, deadline=None)
    @given(config=model_configs(), batch=st.integers(1, 8))
    def test_forward_always_valid_probabilities(self, config, batch):
        scaled = config.scaled(
            table_rows=min(1.0, 1000 / max(t.rows for t in config.embedding_tables))
        )
        model = RecommendationModel(scaled)
        dense, sparse = generate_inputs(scaled, batch)
        out = model.forward(dense, sparse)
        assert out.shape == (batch,)
        assert np.all(np.isfinite(out))
        assert np.all((out >= 0) & (out <= 1))
