"""Tests for the scheduler, the filtering/ranking pipeline, and the fleet."""

import pytest

from repro.config import (
    RMC1_SMALL,
    RMC2_SMALL,
    RMC3_SMALL,
    scaled_for_execution,
)
from repro.core import RecommendationModel
from repro.hw import ALL_SERVERS, BROADWELL, SKYLAKE
from repro.serving import (
    FilterRankPipeline,
    Fleet,
    FleetService,
    SLA,
    best_placement,
    colocation_sweep,
    estimate_pipeline_latency,
    production_fleet,
    route_to_best_server,
)


class TestScheduler:
    def test_sweep_monotone_throughput_until_saturation(self):
        points = colocation_sweep(BROADWELL, RMC2_SMALL, 32, SLA(1.0), max_jobs=8)
        assert [p.num_jobs for p in points] == list(range(1, 9))
        assert points[-1].items_per_s > points[0].items_per_s

    def test_best_placement_feasible(self):
        decision = best_placement(SKYLAKE, RMC2_SMALL, 32, SLA(0.020), max_jobs=24)
        assert decision is not None
        assert decision.latency_s <= 0.020

    def test_best_placement_none_when_sla_impossible(self):
        assert best_placement(BROADWELL, RMC2_SMALL, 32, SLA(1e-6)) is None

    def test_route_prefers_skylake_for_high_throughput(self):
        """Heterogeneity-aware routing: under a throughput-oriented SLA the
        memory-intensive model lands on Skylake (Figure 10's conclusion)."""
        decision = route_to_best_server(list(ALL_SERVERS), RMC2_SMALL, 32, SLA(0.050))
        assert decision.server_name == "Skylake"

    def test_route_prefers_broadwell_for_strict_latency_low_batch(self):
        """With a tight SLA at small batch, high-frequency Broadwell wins."""
        decision = route_to_best_server(list(ALL_SERVERS), RMC3_SMALL, 4, SLA(0.0011))
        assert decision.server_name == "Broadwell"


class TestPipelineEstimate:
    def test_filter_stage_scales_with_candidates(self):
        small = estimate_pipeline_latency(BROADWELL, RMC1_SMALL, RMC3_SMALL, 512)
        large = estimate_pipeline_latency(BROADWELL, RMC1_SMALL, RMC3_SMALL, 4096)
        assert large.filter_seconds > 4 * small.filter_seconds
        assert large.rank_seconds == pytest.approx(small.rank_seconds)

    def test_heavy_ranker_dominates_at_small_candidate_counts(self):
        est = estimate_pipeline_latency(
            BROADWELL, RMC1_SMALL, RMC3_SMALL, candidate_count=128, filter_keep=64
        )
        assert est.rank_seconds > est.filter_seconds

    def test_rejects_fewer_candidates_than_keep(self):
        with pytest.raises(ValueError):
            estimate_pipeline_latency(BROADWELL, RMC1_SMALL, RMC3_SMALL, 32, 64)


class TestPipelineExecution:
    @pytest.fixture(scope="class")
    def pipeline(self):
        filter_model = RecommendationModel(
            scaled_for_execution(RMC1_SMALL, max_rows=2000)
        )
        rank_model = RecommendationModel(
            scaled_for_execution(RMC3_SMALL, max_rows=2000)
        )
        return FilterRankPipeline(
            filter_model, rank_model, filter_keep=16, final_keep=5, batch_size=32
        )

    def test_returns_requested_count(self, pipeline):
        result = pipeline.recommend(candidate_count=64)
        assert result.returned_count == 5
        assert len(result.selected_indices) == 5
        assert result.candidate_count == 64

    def test_scores_sorted_descending(self, pipeline):
        result = pipeline.recommend(candidate_count=64)
        assert list(result.scores) == sorted(result.scores, reverse=True)

    def test_selected_indices_within_candidates(self, pipeline):
        result = pipeline.recommend(candidate_count=64)
        assert all(0 <= i < 64 for i in result.selected_indices)

    def test_timing_components_positive(self, pipeline):
        result = pipeline.recommend(candidate_count=64)
        assert result.filter_seconds > 0
        assert result.rank_seconds > 0
        assert result.total_seconds == pytest.approx(
            result.filter_seconds + result.rank_seconds
        )

    def test_rejects_invalid_keep(self, pipeline):
        with pytest.raises(ValueError):
            FilterRankPipeline(
                pipeline.filter_model, pipeline.rank_model,
                filter_keep=4, final_keep=8,
            )


class TestFleet:
    def test_production_fleet_matches_figure1(self):
        fleet = production_fleet()
        assert fleet.rmc_core_share() == pytest.approx(0.65, abs=0.02)
        assert fleet.recommendation_share() == pytest.approx(0.79, abs=0.02)

    def test_figure4_sls_share(self):
        """SLS ~15% of all AI cycles, >=4x Conv and >=15x Recurrent."""
        ops = production_fleet().cycles_by_operator()
        assert 0.10 < ops["SLS"] < 0.30
        assert ops["SLS"] > 4 * ops["Conv"]
        assert ops["SLS"] > 15 * ops["Recurrent"]

    def test_fc_is_largest_model_operator(self):
        ops = production_fleet().cycles_by_operator()
        model_ops = {k: v for k, v in ops.items() if k != "Other"}
        assert max(model_ops, key=model_ops.get) == "FC"

    def test_sls_only_in_recommendation(self):
        fleet = production_fleet()
        non_rec = fleet.cycles_by_operator(recommendation_only=False)
        assert non_rec.get("SLS", 0.0) == 0.0

    def test_shares_must_sum_to_one(self):
        with pytest.raises(ValueError):
            Fleet([FleetService("a", "RMC1", 0.5, {"FC": 1.0})])

    def test_split_views_sum_to_total(self):
        fleet = production_fleet()
        rec = sum(fleet.cycles_by_operator(True).values())
        non = sum(fleet.cycles_by_operator(False).values())
        assert rec + non == pytest.approx(1.0, abs=0.01)
