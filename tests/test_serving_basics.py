"""Tests for SLA metrics, load generation and batching."""

import numpy as np
import pytest

from repro.serving import (
    Batcher,
    ClosedLoopLoadGenerator,
    PoissonLoadGenerator,
    Query,
    SLA,
    ThroughputPoint,
    batch_stream,
    latency_bounded_throughput,
)


class TestSLA:
    def test_met_when_under_deadline(self):
        assert SLA(0.1, percentile=0.99).is_met([0.01] * 100)

    def test_violated_by_tail(self):
        latencies = [0.01] * 90 + [1.0] * 10
        assert not SLA(0.1, percentile=0.99).is_met(latencies)
        assert SLA(0.1, percentile=0.50).is_met(latencies)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            SLA(0.0)
        with pytest.raises(ValueError):
            SLA(0.1, percentile=0.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SLA(0.1).is_met([])


class TestLatencyBoundedThroughput:
    def test_picks_highest_feasible(self):
        points = [
            ThroughputPoint(1, 0.01, 100, True),
            ThroughputPoint(2, 0.02, 180, True),
            ThroughputPoint(4, 0.5, 300, False),
        ]
        best = latency_bounded_throughput(points)
        assert best.num_jobs == 2

    def test_none_when_infeasible(self):
        points = [ThroughputPoint(1, 0.5, 100, False)]
        assert latency_bounded_throughput(points) is None


class TestPoissonLoadGenerator:
    def test_rate_approximates_target(self):
        gen = PoissonLoadGenerator(rate_qps=1000, seed=3)
        queries = gen.generate(duration_s=2.0)
        assert len(queries) == pytest.approx(2000, rel=0.15)

    def test_arrivals_sorted_and_bounded(self):
        queries = PoissonLoadGenerator(rate_qps=500, seed=1).generate(1.0)
        times = [q.arrival_s for q in queries]
        assert times == sorted(times)
        assert all(0 <= t < 1.0 for t in times)

    def test_unique_ids(self):
        queries = PoissonLoadGenerator(rate_qps=200, seed=2).generate(1.0)
        ids = [q.query_id for q in queries]
        assert len(set(ids)) == len(ids)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            PoissonLoadGenerator(rate_qps=0)


class TestClosedLoop:
    def test_one_query_per_client(self):
        gen = ClosedLoopLoadGenerator(num_clients=5)
        queries = gen.initial_queries()
        assert len(queries) == 5

    def test_rejects_zero_clients(self):
        with pytest.raises(ValueError):
            ClosedLoopLoadGenerator(num_clients=0)


class TestQuery:
    def test_rejects_negative_arrival(self):
        with pytest.raises(ValueError):
            Query(query_id=0, arrival_s=-1.0, num_items=1)

    def test_rejects_zero_items(self):
        with pytest.raises(ValueError):
            Query(query_id=0, arrival_s=0.0, num_items=0)


class TestBatcher:
    def q(self, qid, t, items=1):
        return Query(query_id=qid, arrival_s=t, num_items=items)

    def test_dispatch_on_size(self):
        batcher = Batcher(max_items=2, max_wait_s=10)
        assert batcher.offer(self.q(0, 0.0)) is None
        batch = batcher.offer(self.q(1, 0.001))
        assert batch is not None
        assert batch.num_items == 2

    def test_dispatch_on_timeout(self):
        batcher = Batcher(max_items=100, max_wait_s=0.005)
        batcher.offer(self.q(0, 0.0))
        assert batcher.poll(0.001) is None
        batch = batcher.poll(0.006)
        assert batch is not None
        assert batch.queries[0].query_id == 0

    def test_flush_drains_pending(self):
        batcher = Batcher(max_items=100, max_wait_s=10)
        batcher.offer(self.q(0, 0.0))
        batch = batcher.flush(1.0)
        assert batch.num_items == 1
        assert batcher.flush(2.0) is None

    def test_multi_item_queries_count_items(self):
        batcher = Batcher(max_items=4, max_wait_s=10)
        batch = batcher.offer(self.q(0, 0.0, items=4))
        assert batch is not None

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            Batcher(max_items=0)

    def test_batch_stream_covers_all_queries(self):
        queries = PoissonLoadGenerator(rate_qps=2000, seed=0).generate(0.2)
        batches = batch_stream(queries, max_items=8, max_wait_s=0.002)
        total = sum(b.num_items for b in batches)
        assert total == len(queries)
        assert all(b.num_items <= 8 for b in batches)

    def test_batch_stream_respects_timeout(self):
        queries = [self.q(0, 0.0), self.q(1, 1.0)]
        batches = batch_stream(queries, max_items=10, max_wait_s=0.01)
        assert len(batches) == 2

    def test_oldest_arrival(self):
        batcher = Batcher(max_items=2, max_wait_s=10)
        batcher.offer(self.q(0, 0.5))
        batch = batcher.offer(self.q(1, 0.7))
        assert batch.oldest_arrival_s == 0.5

    def test_poll_at_exact_max_wait_dispatches(self):
        """The timeout bound is inclusive: wait == max_wait_s fires."""
        batcher = Batcher(max_items=100, max_wait_s=0.005)
        batcher.offer(self.q(0, 0.0))
        batch = batcher.poll(0.005)
        assert batch is not None
        assert batch.formed_at_s == 0.005
        assert batcher.poll(0.005) is None  # queue drained by dispatch

    def test_empty_flush_returns_none(self):
        batcher = Batcher(max_items=4, max_wait_s=0.001)
        assert batcher.flush(0.0) is None
        assert batcher.poll(10.0) is None
        assert batcher.pending_items == 0

    def test_single_request_batch_under_backpressure(self):
        """A capacity-1 batcher still forms batches, one query at a time."""
        batcher = Batcher(max_items=8, max_wait_s=10, max_pending_items=1)
        assert not batcher.at_capacity
        assert batcher.offer(self.q(0, 0.0)) is None
        assert batcher.at_capacity
        with pytest.raises(ValueError):
            batcher.offer(self.q(1, 0.001))
        batch = batcher.flush(0.002)
        assert batch.num_items == 1
        assert not batcher.at_capacity  # dispatch releases the bound
        assert batcher.offer(self.q(2, 0.003)) is None

    def test_multi_item_query_consumes_capacity(self):
        batcher = Batcher(max_items=16, max_wait_s=10, max_pending_items=4)
        batcher.offer(self.q(0, 0.0, items=4))
        assert batcher.at_capacity

    def test_rejects_bad_pending_bound(self):
        with pytest.raises(ValueError):
            Batcher(max_items=4, max_pending_items=0)
