"""DES edge cases both engines (and the C backend) must agree on.

Satellites of the two-engine equivalence suite: degenerate compositions
where event ordering is most fragile — multiple event kinds landing on
one timestamp, zero-duration backoffs, empty arrival streams, one-replica
fleets, capacity-1 queues — plus the event-ordering regression tests for
the explicit ``(time, seq)`` heap tie-breakers (permuted construction of
the same fault schedule must replay identically).
"""

import heapq

import numpy as np
import pytest

from repro.config import RMC1_SMALL
from repro.hw import BROADWELL
from repro.serving import (
    SLA,
    AdmissionPolicy,
    BatchedServer,
    FaultSchedule,
    OverloadConfig,
    ReplicaCrash,
    ResiliencePolicy,
    ResilientRouter,
    ServingSimulator,
    Straggler,
)
from repro.serving._des_native import native_available
from tests.test_des_equivalence import SERVICE_S, router_key, sim_key

ENGINES = ("reference", "vectorized")
SIM_BACKENDS = (
    ("reference", "auto"),
    ("vectorized", "python"),
) + ((("vectorized", "native"),) if native_available() else ())


def sim_keys(**kwargs):
    duration_s = kwargs.pop("duration_s", 0.03)
    keys = []
    for engine, backend in SIM_BACKENDS:
        sim = ServingSimulator(
            BROADWELL, RMC1_SMALL, 8, engine=engine, backend=backend, **kwargs
        )
        keys.append(sim_key(sim.run(duration_s)))
    return keys


def router_keys(run_kwargs=None, **kwargs):
    run_kwargs = dict(run_kwargs or {})
    run_kwargs.setdefault("offered_qps", 2.0 * 2 / SERVICE_S)
    run_kwargs.setdefault("duration_s", 0.03)
    run_kwargs.setdefault("sla", SLA(deadline_s=25.0 * SERVICE_S))
    keys = []
    for engine in ENGINES:
        router = ResilientRouter(
            BROADWELL, RMC1_SMALL, 8, engine=engine, **kwargs
        )
        keys.append(router_key(router.run(**run_kwargs)))
    return keys


def assert_all_equal(keys):
    for key in keys[1:]:
        assert key == keys[0]


class TestSimultaneousEvents:
    def test_arrival_crash_restart_share_one_timestamp(self):
        # A crash, a restart of another replica, and explicit arrivals all
        # at t=0.01 — the (time, seq) tie-break must order them the same
        # way in every engine.
        t = 0.01
        faults = FaultSchedule(
            crashes=(
                ReplicaCrash(replica_id=0, at_s=t, downtime_s=0.005),
                ReplicaCrash(replica_id=1, at_s=t - 0.005, downtime_s=0.005),
            )
        )
        arrivals = [0.0, t, t, t, 0.02]
        assert_all_equal(
            router_keys(
                num_machines=2,
                seed=3,
                policy=ResiliencePolicy(
                    timeout_s=30.0 * SERVICE_S,
                    max_retries=1,
                    backoff_base_s=0.0,  # zero-duration backoff: retry
                    # lands on the failure's own timestamp
                ),
                run_kwargs={
                    "arrival_times_s": arrivals,
                    "faults": faults,
                },
            )
        )

    def test_simulator_crash_on_arrival_timestamp(self):
        faults = FaultSchedule(
            crashes=(ReplicaCrash(replica_id=0, at_s=0.01, downtime_s=0.004),),
            stragglers=(
                Straggler(
                    replica_id=0, start_s=0.01, duration_s=0.01, slowdown=5.0
                ),
            ),
        )
        assert_all_equal(
            sim_keys(
                num_instances=2,
                per_instance_qps=3.0 / SERVICE_S,
                seed=5,
                faults=faults,
            )
        )

    def test_breaker_transition_with_simultaneous_arrivals(self):
        # Timeouts trip breakers; tied arrival bursts then race the
        # breaker's open/half-open transitions on shared timestamps.
        faults = FaultSchedule(
            stragglers=(
                Straggler(
                    replica_id=0, start_s=0.0, duration_s=0.03, slowdown=50.0
                ),
            )
        )
        burst = sorted([0.0, 0.005, 0.005, 0.005, 0.01, 0.01, 0.02] * 3)
        from repro.serving import BreakerPolicy

        assert_all_equal(
            router_keys(
                num_machines=2,
                seed=7,
                policy=ResiliencePolicy(
                    timeout_s=5.0 * SERVICE_S,
                    max_retries=1,
                    backoff_base_s=0.0,
                ),
                overload=OverloadConfig(
                    breaker=BreakerPolicy(
                        failure_threshold=1,
                        window_s=20.0 * SERVICE_S,
                        open_duration_s=10.0 * SERVICE_S,
                        half_open_probes=1,
                    )
                ),
                run_kwargs={"arrival_times_s": burst, "faults": faults},
            )
        )


class TestDegenerateStreams:
    def test_empty_arrival_stream(self):
        keys = router_keys(
            num_machines=2, seed=1, run_kwargs={"arrival_times_s": []}
        )
        assert_all_equal(keys)
        assert keys[0][0] == 0  # offered

    def test_near_empty_open_loop(self):
        # An arrival rate so low most seeds produce zero arrivals.
        assert_all_equal(
            sim_keys(num_instances=2, per_instance_qps=1e-6, seed=13)
        )

    def test_single_replica_fleet(self):
        assert_all_equal(
            router_keys(
                num_machines=1,
                seed=2,
                policy=ResiliencePolicy(
                    timeout_s=30.0 * SERVICE_S, max_retries=2
                ),
                run_kwargs={
                    "offered_qps": 3.0 / SERVICE_S,
                    "faults": FaultSchedule(
                        crashes=(
                            ReplicaCrash(
                                replica_id=0, at_s=0.01, downtime_s=0.005
                            ),
                        )
                    ),
                },
            )
        )
        assert_all_equal(
            sim_keys(num_instances=1, per_instance_qps=2.0 / SERVICE_S, seed=4)
        )

    @pytest.mark.parametrize(
        "shed_policy", ["reject_newest", "reject_oldest", "deadline_aware"]
    )
    def test_capacity_one_queues(self, shed_policy):
        admission = AdmissionPolicy(
            queue_capacity=1,
            shed_policy=shed_policy,
            deadline_s=10.0 * SERVICE_S,
            codel_target_s=2.0 * SERVICE_S,
            codel_interval_s=8.0 * SERVICE_S,
        )
        assert_all_equal(
            sim_keys(
                num_instances=2,
                per_instance_qps=5.0 / SERVICE_S,
                seed=6,
                overload=OverloadConfig(admission=admission),
            )
        )
        assert_all_equal(
            router_keys(
                num_machines=2,
                seed=6,
                overload=OverloadConfig(admission=admission),
                run_kwargs={"offered_qps": 8.0 * 2 / SERVICE_S},
            )
        )


class TestEventOrderingDeterminism:
    def test_permuted_fault_schedule_replays_identically(self):
        # The same faults listed in a different tuple order must yield
        # byte-identical runs: event seqs come from the schedule's sorted
        # transition edges, never from construction order.
        crashes = (
            ReplicaCrash(replica_id=0, at_s=0.01, downtime_s=0.004),
            ReplicaCrash(replica_id=1, at_s=0.01, downtime_s=0.004),
            ReplicaCrash(replica_id=2, at_s=0.005, downtime_s=0.009),
        )
        stragglers = (
            Straggler(replica_id=0, start_s=0.0, duration_s=0.02, slowdown=4.0),
            Straggler(replica_id=1, start_s=0.0, duration_s=0.02, slowdown=6.0),
        )
        forward = FaultSchedule(crashes=crashes, stragglers=stragglers)
        permuted = FaultSchedule(
            crashes=crashes[::-1], stragglers=stragglers[::-1]
        )
        for engine, backend in SIM_BACKENDS:
            runs = []
            for schedule in (forward, permuted):
                sim = ServingSimulator(
                    BROADWELL,
                    RMC1_SMALL,
                    8,
                    num_instances=3,
                    per_instance_qps=3.0 / SERVICE_S,
                    seed=8,
                    faults=schedule,
                    engine=engine,
                    backend=backend,
                )
                runs.append(sim_key(sim.run(0.03)))
            assert runs[0] == runs[1], (engine, backend)
        for engine in ENGINES:
            runs = []
            for schedule in (forward, permuted):
                router = ResilientRouter(
                    BROADWELL, RMC1_SMALL, 8, 3, seed=8, engine=engine
                )
                runs.append(
                    router_key(
                        router.run(
                            offered_qps=2.0 * 3 / SERVICE_S,
                            duration_s=0.03,
                            faults=schedule,
                            sla=SLA(deadline_s=25.0 * SERVICE_S),
                        )
                    )
                )
            assert runs[0] == runs[1], engine

    def test_batched_server_inflight_heap_orders_ties_by_push(self):
        # The backpressure path's completion heap carries (time, seq):
        # pushes with tied completion times must pop in push order, not
        # in heapq's internal layout order.
        entries = [(0.5, 0), (0.5, 1), (0.25, 2), (0.5, 3), (0.25, 4)]
        for rotation in range(len(entries)):
            heap: list[tuple[float, int]] = []
            for entry in entries[rotation:] + entries[:rotation]:
                heapq.heappush(heap, entry)
            popped = [heapq.heappop(heap) for _ in range(len(heap))]
            assert popped == sorted(entries)
        # End-to-end: the bounded-queue server still runs and sheds
        # deterministically with the tuple-keyed heap.
        server = BatchedServer(
            BROADWELL, RMC1_SMALL, max_batch=4, max_wait_s=0.001,
            queue_capacity=1,
        )
        a = server.simulate(offered_qps=5000.0, duration_s=0.05, seed=3)
        b = server.simulate(offered_qps=5000.0, duration_s=0.05, seed=3)
        assert a.shed == b.shed
        assert np.array_equal(a.query_latencies_s, b.query_latencies_s)
