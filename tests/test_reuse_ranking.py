"""Tests for stack-distance analysis and ranking-quality metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.reuse import reuse_profile, stack_distances
from repro.memory import LruRowCache
from repro.serving.ranking_quality import ndcg_at_k, pipeline_quality, recall_at_k


class TestStackDistances:
    def test_first_touches_marked(self):
        distances = stack_distances(np.array([1, 2, 3]))
        assert list(distances) == [-1, -1, -1]

    def test_immediate_reuse_distance_zero(self):
        distances = stack_distances(np.array([5, 5]))
        assert list(distances) == [-1, 0]

    def test_classic_example(self):
        # a b c b a : a's re-reference sees {b, c} distinct -> distance 2.
        distances = stack_distances(np.array([1, 2, 3, 2, 1]))
        assert list(distances) == [-1, -1, -1, 1, 2]

    def test_duplicates_between_do_not_double_count(self):
        # a b b a: distinct between the two a's is just {b}.
        distances = stack_distances(np.array([1, 2, 2, 1]))
        assert distances[3] == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            stack_distances(np.array([], dtype=np.int64))

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            stack_distances(np.array([1]), method="magic")

    @settings(max_examples=60, deadline=None)
    @given(
        ids=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=200)
    )
    def test_property_sorting_matches_fenwick(self, ids):
        """The vectorized merge-count path is exactly the Fenwick walk."""
        trace = np.asarray(ids, dtype=np.int64)
        fenwick = stack_distances(trace, method="fenwick")
        sorting = stack_distances(trace, method="sorting")
        assert fenwick.tolist() == sorting.tolist()

    @pytest.mark.parametrize("skew", [False, True])
    def test_sorting_matches_fenwick_long_traces(self, skew):
        rng = np.random.default_rng(9)
        if skew:
            ids = (rng.zipf(1.3, size=5000) - 1) % 10_000
        else:
            ids = rng.integers(0, 400, size=5000)
        fenwick = stack_distances(ids, method="fenwick")
        sorting = stack_distances(ids, method="sorting")
        assert fenwick.tolist() == sorting.tolist()


class TestReuseProfile:
    def test_compulsory_fraction_is_unique_fraction(self):
        rng = np.random.default_rng(0)
        ids = rng.integers(0, 200, size=3000)
        profile = reuse_profile(ids)
        assert profile.compulsory_fraction == pytest.approx(
            np.unique(ids).size / ids.size
        )

    def test_hit_ratio_monotone_in_capacity(self):
        rng = np.random.default_rng(1)
        ids = rng.integers(0, 500, size=4000)
        profile = reuse_profile(ids)
        ratios = [profile.hit_ratio(c) for c in (1, 10, 100, 1000)]
        assert ratios == sorted(ratios)

    def test_infinite_cache_hits_all_reuses(self):
        ids = np.array([1, 2, 1, 2, 3, 1])
        profile = reuse_profile(ids)
        assert profile.hit_ratio(10**6) == pytest.approx(1 - 3 / 6)

    def test_zero_capacity_no_hits(self):
        assert reuse_profile(np.array([1, 1, 1])).hit_ratio(0) == 0.0

    def test_working_set_size(self):
        # Cyclic scan of 3 IDs: need capacity 3 for any hits.
        ids = np.array([1, 2, 3] * 50)
        profile = reuse_profile(ids)
        assert profile.hit_ratio(2) == 0.0
        assert profile.hit_ratio(3) > 0.9
        assert profile.working_set_size(0.5) == 3

    def test_working_set_none_when_unreachable(self):
        profile = reuse_profile(np.array([1, 2, 3]))  # all compulsory
        assert profile.working_set_size(0.5) is None

    @settings(max_examples=25, deadline=None)
    @given(
        ids=st.lists(st.integers(0, 30), min_size=1, max_size=250),
        capacity=st.integers(1, 40),
    )
    def test_property_matches_lru_replay(self, ids, capacity):
        """The one-pass curve must equal an actual LRU replay, any size."""
        trace = np.array(ids)
        predicted = reuse_profile(trace).hit_ratio(capacity)
        replayed = LruRowCache(capacity).replay(trace).hit_ratio
        assert predicted == pytest.approx(replayed)


class TestRankingQuality:
    def test_recall_perfect(self):
        assert recall_at_k([3, 1, 2], [3, 1, 2, 0], k=3) == 1.0

    def test_recall_partial(self):
        assert recall_at_k([3, 9], [3, 1], k=2) == 0.5

    def test_recall_validates(self):
        with pytest.raises(ValueError):
            recall_at_k([1], [1], k=0)
        with pytest.raises(ValueError):
            recall_at_k([1], [1], k=5)

    def test_ndcg_perfect_order(self):
        relevance = {0: 3.0, 1: 2.0, 2: 1.0}
        assert ndcg_at_k([0, 1, 2], relevance, k=3) == pytest.approx(1.0)

    def test_ndcg_worst_order_below_one(self):
        relevance = {0: 3.0, 1: 2.0, 2: 1.0}
        assert ndcg_at_k([2, 1, 0], relevance, k=3) < 1.0

    def test_ndcg_rejects_negative_gain(self):
        with pytest.raises(ValueError):
            ndcg_at_k([0], {0: -1.0}, k=1)

    def test_pipeline_quality_combines(self):
        scores = np.array([0.1, 0.9, 0.5, 0.7])
        quality = pipeline_quality([1, 3], scores, k=2)
        assert quality["recall_at_k"] == 1.0
        assert quality["ndcg_at_k"] == pytest.approx(1.0)

    def test_random_selection_scores_low(self):
        rng = np.random.default_rng(2)
        scores = rng.random(500)
        random_pick = list(rng.choice(500, size=10, replace=False))
        quality = pipeline_quality(random_pick, scores, k=10)
        assert quality["recall_at_k"] < 0.4
