"""Tests for the validation report and the CLI entry point."""

import pytest

from repro.__main__ import main as cli_main
from repro.validation import Check, render_report, validate


class TestValidation:
    @pytest.fixture(scope="class")
    def checks(self):
        return validate()

    def test_all_checks_pass(self, checks):
        failing = [c.claim for c in checks if not c.passed]
        assert not failing

    def test_covers_every_source(self, checks):
        sources = {c.source for c in checks}
        assert {"Fig 7", "Fig 8", "Fig 9", "Fig 1", "Fig 4", "Sec V", "Sec VI"} <= sources

    def test_report_counts(self, checks):
        report = render_report(checks)
        assert f"{len(checks)}/{len(checks)} checks passed" in report

    def test_check_tolerance_logic(self):
        assert Check("c", "s", 1.0, 1.05, 0.1).passed
        assert not Check("c", "s", 1.0, 1.5, 0.1).passed
        assert Check("c", "s", 0.0, 0.0, 0.1).passed
        assert not Check("c", "s", 0.0, 0.1, 0.1).passed


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure8" in out and "table2" in out

    def test_single_experiment(self, capsys):
        assert cli_main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Broadwell" in out

    def test_unknown_experiment(self, capsys):
        assert cli_main(["figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_validate_exit_code(self, capsys):
        assert cli_main(["validate"]) == 0
        assert "checks passed" in capsys.readouterr().out
