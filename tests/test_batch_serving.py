"""Tests for the batched-serving simulation."""

import pytest

from repro.config import RMC1_SMALL, RMC3_SMALL
from repro.hw import BROADWELL, SKYLAKE
from repro.serving import (
    BatchedServer,
    SLA,
    batching_sweep,
    best_max_batch,
)


class TestBatchedServer:
    def test_all_queries_served(self):
        server = BatchedServer(BROADWELL, RMC1_SMALL, max_batch=16)
        result = server.simulate(offered_qps=2000, duration_s=0.5, seed=1)
        assert result.items_served == len(result.query_latencies_s)
        assert result.items_served > 500

    def test_latencies_positive(self):
        server = BatchedServer(BROADWELL, RMC1_SMALL, max_batch=16)
        result = server.simulate(offered_qps=1000, duration_s=0.3)
        assert result.query_latencies_s.min() > 0

    def test_batching_amortizes_throughput(self):
        """Bigger batches raise sustainable throughput (Figure 8's point)."""
        def utilized(max_batch):
            server = BatchedServer(
                BROADWELL, RMC3_SMALL, max_batch=max_batch, max_wait_s=0.005
            )
            result = server.simulate(offered_qps=3000, duration_s=0.4, seed=2)
            return result.summary().p99

        assert utilized(64) < utilized(1)

    def test_mean_batch_bounded(self):
        server = BatchedServer(BROADWELL, RMC1_SMALL, max_batch=8)
        result = server.simulate(offered_qps=5000, duration_s=0.2)
        assert 1 <= result.mean_batch_size <= 8

    def test_reproducible(self):
        server = BatchedServer(BROADWELL, RMC1_SMALL, max_batch=8)
        a = server.simulate(offered_qps=500, duration_s=0.3, seed=4)
        b = server.simulate(offered_qps=500, duration_s=0.3, seed=4)
        assert (a.query_latencies_s == b.query_latencies_s).all()

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BatchedServer(BROADWELL, RMC1_SMALL, max_batch=0)
        server = BatchedServer(BROADWELL, RMC1_SMALL)
        with pytest.raises(ValueError):
            server.simulate(offered_qps=0)


class TestBatchingSweep:
    def test_best_max_batch_meets_sla(self):
        sla = SLA(deadline_s=0.020)
        results = batching_sweep(
            SKYLAKE, RMC3_SMALL, offered_qps=2000,
            max_batches=[1, 8, 32, 128], sla=sla, duration_s=0.4,
        )
        best = best_max_batch(results, sla)
        assert best is not None
        assert best.meets(sla)

    def test_none_when_overloaded(self):
        sla = SLA(deadline_s=1e-5)
        results = batching_sweep(
            BROADWELL, RMC3_SMALL, offered_qps=5000,
            max_batches=[1, 32], sla=sla, duration_s=0.2,
        )
        assert best_max_batch(results, sla) is None

    def test_sweep_returns_one_result_per_batch_limit(self):
        sla = SLA(deadline_s=0.1)
        results = batching_sweep(
            BROADWELL, RMC1_SMALL, offered_qps=1000,
            max_batches=[1, 4, 16], sla=sla, duration_s=0.2,
        )
        assert [r.max_batch for r in results] == [1, 4, 16]
