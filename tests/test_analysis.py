"""Tests for the analysis helpers: roofline, MPKI, distributions, tables."""

import numpy as np
import pytest

from repro.analysis import (
    count_modes,
    figure5_intensity_points,
    format_bar_chart,
    format_table,
    instruction_estimate,
    intensity_point,
    measure_mpki,
    measure_sls_trace_mpki,
    summarize,
)
from repro.core.operators import EmbeddingTable, FullyConnected, SparseLengthsSum
from repro.hw import BROADWELL


class TestRoofline:
    def test_intensity_point_matches_cost(self):
        fc = FullyConnected("fc", 64, 64)
        point = intensity_point(fc, 4)
        cost = fc.cost(4)
        assert point.operational_intensity == pytest.approx(
            cost.flops / cost.bytes_read
        )

    def test_figure5_ordering(self):
        """SLS << RNN < FC < CNN (Figure 5 left)."""
        by_name = {p.name: p.operational_intensity for p in figure5_intensity_points()}
        assert by_name["SLS"] < 1 < by_name["RNN"] < by_name["FC"] < by_name["CNN"]

    def test_sls_intensity_near_quarter(self):
        by_name = {p.name: p.operational_intensity for p in figure5_intensity_points()}
        assert by_name["SLS"] == pytest.approx(0.25, abs=0.1)

    def test_rejects_zero_batch(self):
        with pytest.raises(ValueError):
            intensity_point(FullyConnected("fc", 4, 4), 0)


class TestMpki:
    def test_instruction_estimate_positive(self):
        fc = FullyConnected("fc", 64, 64)
        assert instruction_estimate(fc, 1) > 0

    def test_sls_charged_loop_overhead(self):
        table = EmbeddingTable(1000, 32)
        sls = SparseLengthsSum("s", table, lookups_per_sample=10)
        fc_like = instruction_estimate(FullyConnected("fc", 10, 32), 1)
        assert instruction_estimate(sls, 1) > fc_like

    def test_warm_fc_low_mpki(self):
        result = measure_mpki(
            FullyConnected("fc", 2048, 1000), BROADWELL, batch_size=32,
            iterations=4, warmup=1,
        )
        assert result.mpki < 2.0

    def test_random_sls_high_mpki(self):
        table = EmbeddingTable(1_000_000, 32)
        sls = SparseLengthsSum("s", table, lookups_per_sample=80)
        rows = np.random.default_rng(0).integers(0, table.rows, size=10_000)
        result = measure_sls_trace_mpki(sls, BROADWELL, rows)
        assert result.mpki > 5.0

    def test_local_trace_lower_mpki_than_random(self):
        table = EmbeddingTable(1_000_000, 32)
        sls = SparseLengthsSum("s", table, lookups_per_sample=80)
        rng = np.random.default_rng(0)
        random_rows = rng.integers(0, table.rows, size=8000)
        hot_rows = rng.integers(0, 1000, size=8000)  # small hot set
        random_mpki = measure_sls_trace_mpki(sls, BROADWELL, random_rows).mpki
        hot_mpki = measure_sls_trace_mpki(sls, BROADWELL, hot_rows).mpki
        assert hot_mpki < 0.3 * random_mpki

    def test_rejects_empty_trace(self):
        table = EmbeddingTable(100, 32)
        sls = SparseLengthsSum("s", table, 1)
        with pytest.raises(ValueError):
            measure_sls_trace_mpki(sls, BROADWELL, np.array([], dtype=np.int64))

    def test_rejects_bad_iterations(self):
        with pytest.raises(ValueError):
            measure_mpki(FullyConnected("fc", 8, 8), BROADWELL, iterations=1, warmup=1)


class TestDistributions:
    def test_summary_percentile_order(self):
        s = summarize(np.random.default_rng(0).exponential(1.0, 1000))
        assert s.p5 <= s.p50 <= s.p95 <= s.p99
        assert s.count == 1000

    def test_summary_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_summary_rejects_negative(self):
        with pytest.raises(ValueError):
            summarize([-1.0])

    def test_tail_spread(self):
        s = summarize([1.0] * 99 + [10.0])
        assert s.tail_spread >= 1.0

    def test_single_mode_detected(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(100, 5, 3000)
        assert count_modes(samples) == 1

    def test_three_modes_detected(self):
        rng = np.random.default_rng(2)
        samples = np.concatenate(
            [rng.normal(40, 2, 1000), rng.normal(58, 2, 1000), rng.normal(75, 2, 1000)]
        )
        assert count_modes(samples) == 3

    def test_rejects_tiny_sample(self):
        with pytest.raises(ValueError):
            count_modes([1.0, 2.0])


class TestTables:
    def test_format_table_aligned(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", 0.001]])
        lines = text.split("\n")
        assert len({len(line) for line in lines}) == 1  # equal widths

    def test_format_table_rejects_ragged(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_bar_chart_scales(self):
        text = format_bar_chart(["x", "y"], [1.0, 2.0])
        x_line, y_line = text.split("\n")
        assert y_line.count("#") > x_line.count("#")

    def test_bar_chart_rejects_negative(self):
        with pytest.raises(ValueError):
            format_bar_chart(["x"], [-1.0])

    def test_bar_chart_rejects_mismatch(self):
        with pytest.raises(ValueError):
            format_bar_chart(["x"], [1.0, 2.0])
