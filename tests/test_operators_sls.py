"""Tests for EmbeddingTable / SparseLengthsSum, including Algorithm 1 parity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.operators import (
    EmbeddingTable,
    SparseBatch,
    SparseLengthsSum,
    sls_reference,
)


@pytest.fixture
def table():
    return EmbeddingTable(rows=50, dim=8, rng=np.random.default_rng(1))


@pytest.fixture
def sls(table):
    return SparseLengthsSum("sls", table, lookups_per_sample=4)


class TestSparseBatch:
    def test_from_lists(self):
        batch = SparseBatch.from_lists([[1, 2], [3], [4, 5, 6]])
        assert batch.batch_size == 3
        assert batch.total_lookups == 6
        assert list(batch.lengths) == [2, 1, 3]

    def test_from_lists_empty_sample(self):
        batch = SparseBatch.from_lists([[], [1]])
        assert batch.batch_size == 2
        assert batch.total_lookups == 1

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            SparseBatch(ids=np.array([1, 2]), lengths=np.array([3]))

    def test_rejects_negative_lengths(self):
        with pytest.raises(ValueError):
            SparseBatch(ids=np.array([1]), lengths=np.array([2, -1]))


class TestSlsForward:
    def test_matches_algorithm1_reference(self, sls, table):
        batch = SparseBatch.from_lists([[0, 1, 1, 2], [10, 20, 30, 40]])
        out = sls.forward(batch)
        ref = sls_reference(table.data, [4, 4], [0, 1, 1, 2, 10, 20, 30, 40])
        np.testing.assert_allclose(out, ref, rtol=1e-5)

    def test_single_lookup_returns_row(self, sls, table):
        batch = SparseBatch.from_lists([[7]])
        np.testing.assert_allclose(sls.forward(batch)[0], table.data[7])

    def test_duplicate_ids_double_count(self, sls, table):
        batch = SparseBatch.from_lists([[3, 3]])
        np.testing.assert_allclose(
            sls.forward(batch)[0], 2 * table.data[3], rtol=1e-5
        )

    def test_empty_sample_yields_zero_vector(self, sls):
        batch = SparseBatch.from_lists([[], [1, 2]])
        out = sls.forward(batch)
        np.testing.assert_array_equal(out[0], np.zeros(8, dtype=np.float32))

    def test_out_of_range_id_raises(self, sls):
        batch = SparseBatch.from_lists([[50]])
        with pytest.raises(IndexError):
            sls.forward(batch)

    def test_output_shape_and_dtype(self, sls):
        batch = SparseBatch.from_lists([[1, 2, 3, 4]] * 5)
        out = sls.forward(batch)
        assert out.shape == (5, 8)
        assert out.dtype == np.float32

    @settings(max_examples=40, deadline=None)
    @given(
        data=st.lists(
            st.lists(st.integers(min_value=0, max_value=49), max_size=6),
            min_size=1,
            max_size=5,
        )
    )
    def test_property_vectorized_equals_reference(self, data):
        table = EmbeddingTable(rows=50, dim=4, rng=np.random.default_rng(3))
        sls = SparseLengthsSum("p", table, lookups_per_sample=1)
        batch = SparseBatch.from_lists(data)
        lengths = [len(s) for s in data]
        flat = [i for s in data for i in s]
        ref = sls_reference(table.data, lengths, flat)
        np.testing.assert_allclose(sls.forward(batch), ref, rtol=1e-4, atol=1e-6)


class TestSlsCost:
    def test_cost_scales_with_batch(self, sls):
        c1, c4 = sls.cost(1), sls.cost(4)
        assert c4.flops == 4 * c1.flops
        assert c4.bytes_read == 4 * c1.bytes_read

    def test_low_operational_intensity(self, sls):
        # The paper's headline: SLS is ~0.25 FLOPs/byte.
        assert sls.cost(1).operational_intensity < 0.5

    def test_parameter_bytes_is_table_storage(self, sls, table):
        assert sls.parameter_bytes() == table.storage_bytes() == 50 * 8 * 4


class TestSlsTrace:
    def test_trace_row_granularity(self, sls):
        accesses = list(sls.trace_for_rows(np.array([0, 5, 49])))
        assert [a.address for a in accesses] == [0, 5 * 32, 49 * 32]
        assert all(a.size == 32 for a in accesses)

    def test_random_trace_length(self, sls):
        accesses = list(sls.address_trace(batch_size=3))
        assert len(accesses) == 3 * 4

    def test_rejects_zero_lookups(self, table):
        with pytest.raises(ValueError):
            SparseLengthsSum("bad", table, lookups_per_sample=0)

    def test_table_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            EmbeddingTable(rows=0, dim=8)
