"""Tests for the set-associative cache, including LRU property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.cache import SetAssociativeCache


def make_cache(size=1024, assoc=2, line=64):
    return SetAssociativeCache("t", size, assoc, line)


class TestBasics:
    def test_geometry(self):
        cache = make_cache(size=8192, assoc=4, line=64)
        assert cache.num_sets == 8192 // 64 // 4

    def test_rejects_non_divisible_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache("t", 100, 3, 64)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            SetAssociativeCache("t", 0, 1, 64)

    def test_miss_then_hit(self):
        cache = make_cache()
        assert not cache.touch(5)
        cache.insert(5)
        assert cache.touch(5)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lines_spanned(self):
        cache = make_cache()
        assert list(cache.lines_spanned(0, 64)) == [0]
        assert list(cache.lines_spanned(0, 65)) == [0, 1]
        assert list(cache.lines_spanned(63, 2)) == [0, 1]
        assert list(cache.lines_spanned(128, 0)) == [2]

    def test_lru_eviction_order(self):
        cache = make_cache(size=128, assoc=2, line=64)  # 1 set, 2 ways
        cache.insert(0)
        cache.insert(1)
        cache.touch(0)  # 0 becomes MRU
        victim = cache.insert(2)
        assert victim == 1

    def test_invalidate(self):
        cache = make_cache()
        cache.insert(7)
        assert cache.invalidate(7)
        assert not cache.touch(7)
        assert not cache.invalidate(7)

    def test_insert_existing_no_eviction(self):
        cache = make_cache(size=128, assoc=2, line=64)
        cache.insert(0)
        assert cache.insert(0) is None
        assert cache.resident_lines() == 1

    def test_reset_stats_keeps_contents(self):
        cache = make_cache()
        cache.insert(3)
        cache.touch(3)
        cache.reset_stats()
        assert cache.stats.hits == 0
        assert cache.probe(3)

    def test_miss_ratio(self):
        cache = make_cache()
        cache.touch(1)
        cache.insert(1)
        cache.touch(1)
        assert cache.stats.miss_ratio == pytest.approx(0.5)

    def test_miss_ratio_untouched(self):
        assert make_cache().stats.miss_ratio == 0.0


class TestLruProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=63), max_size=200))
    def test_capacity_never_exceeded(self, lines):
        cache = make_cache(size=512, assoc=2, line=64)
        for line in lines:
            if not cache.touch(line):
                cache.insert(line)
        assert cache.resident_lines() <= 512 // 64
        for s in cache._sets:
            assert len(s) <= 2

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=100))
    def test_most_recent_line_always_resident(self, lines):
        cache = make_cache(size=512, assoc=2, line=64)
        for line in lines:
            if not cache.touch(line):
                cache.insert(line)
        assert cache.probe(lines[-1])

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=7), max_size=80))
    def test_working_set_within_capacity_all_hits_after_warmup(self, lines):
        """Touching <= capacity distinct lines in one set region never
        evicts: every re-reference hits."""
        cache = make_cache(size=1024, assoc=16, line=64)  # 1 set, 16 ways
        seen = set()
        for line in lines:
            hit = cache.touch(line)
            if line in seen:
                assert hit
            else:
                assert not hit
                cache.insert(line)
                seen.add(line)
