"""Tests for the inclusive/exclusive cache hierarchy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.operators.base import MemoryAccess
from repro.hw.hierarchy import CacheHierarchy
from repro.hw.server import BROADWELL, SKYLAKE


def read(address, size=64):
    return MemoryAccess(address=address, size=size)


class TestBasicFlow:
    def test_first_access_goes_to_dram(self):
        h = CacheHierarchy(BROADWELL)
        h.access(read(0))
        assert h.stats.dram_accesses == 1

    def test_repeat_access_hits_l1(self):
        h = CacheHierarchy(BROADWELL)
        h.access(read(0))
        h.access(read(0))
        assert h.stats.l1_hits == 1

    def test_multi_line_access_counts_lines(self):
        h = CacheHierarchy(BROADWELL)
        h.access(read(0, size=256))
        assert h.stats.dram_accesses == 4

    def test_l3_share_shrinks_cache(self):
        full = CacheHierarchy(BROADWELL)
        shared = CacheHierarchy(BROADWELL, l3_share=0.1)
        assert shared.l3.size_bytes < full.l3.size_bytes

    def test_rejects_bad_share(self):
        with pytest.raises(ValueError):
            CacheHierarchy(BROADWELL, l3_share=0.0)

    def test_mpki_requires_instructions(self):
        h = CacheHierarchy(BROADWELL)
        with pytest.raises(ValueError):
            h.stats.llc_mpki(0)


class TestInclusionSemantics:
    def test_inclusive_l3_eviction_back_invalidates_l2(self):
        """The Haswell/Broadwell mechanism behind co-location sensitivity."""
        h = CacheHierarchy(BROADWELL, l3_share=0.01)  # tiny LLC
        # Touch a line, then thrash the L3 with foreign lines.
        h.access(read(0))
        h.external_llc_pressure(evict_lines=h.l3.size_bytes // 64 * 4)
        assert h.stats.l2_back_invalidations >= 1

    def test_exclusive_hierarchy_never_back_invalidates(self):
        h = CacheHierarchy(SKYLAKE, l3_share=0.01)
        h.access(read(0))
        h.external_llc_pressure(evict_lines=h.l3.size_bytes // 64 * 4)
        assert h.stats.l2_back_invalidations == 0

    def test_exclusive_l2_keeps_line_despite_llc_churn(self):
        """A Skylake L2-resident line survives LLC churn; on Broadwell the
        same churn can invalidate it (Figure 11's contrast)."""
        skl = CacheHierarchy(SKYLAKE, l3_share=0.01)
        skl.access(read(0))
        skl.external_llc_pressure(evict_lines=4096)
        skl.reset_stats()
        skl.access(read(0))
        assert skl.stats.l1_hits == 1  # still in the core caches

    def test_inclusive_line_in_l2_is_also_in_l3(self):
        h = CacheHierarchy(BROADWELL)
        h.access(read(12345 * 64))
        line = 12345
        if h.l2.probe(line):
            assert h.l3.probe(line)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=4095), max_size=300))
    def test_property_inclusion_invariant(self, lines):
        """In an inclusive hierarchy, every L2-resident line is L3-resident."""
        h = CacheHierarchy(BROADWELL, l3_share=0.002)
        for line in lines:
            h.access(read(line * 64))
        for cache_set in h.l2._sets:
            for line in cache_set:
                assert h.l3.probe(line)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=4095), max_size=300))
    def test_property_exclusive_l2_l3_mostly_disjoint(self, lines):
        """In the victim-style hierarchy, a line sits in L2 or L3, not both."""
        h = CacheHierarchy(SKYLAKE, l3_share=0.002)
        for line in lines:
            h.access(read(line * 64))
        for cache_set in h.l2._sets:
            for line in cache_set:
                assert not h.l3.probe(line)


class TestIrregularVsStreaming:
    def test_random_gathers_miss_more_than_streaming(self):
        """The Figure 5 mechanism: SLS-style random rows vs FC-style reuse."""
        rng = np.random.default_rng(0)
        irregular = CacheHierarchy(BROADWELL)
        table_bytes = 512 * 1024 * 1024  # 512 MB table
        for _ in range(2000):
            addr = int(rng.integers(0, table_bytes // 128)) * 128
            irregular.access(read(addr, size=128))

        streaming = CacheHierarchy(BROADWELL)
        weights = 2 * 1024 * 1024  # 2 MB weights, re-streamed
        for _ in range(10):
            streaming.access(read(0, size=weights))

        irregular_ratio = irregular.stats.dram_accesses / max(
            1, irregular.stats.total_line_accesses
        )
        streaming_ratio = streaming.stats.dram_accesses / max(
            1, streaming.stats.total_line_accesses
        )
        assert irregular_ratio > 5 * streaming_ratio

    def test_l2_miss_ratio_bounds(self):
        h = CacheHierarchy(BROADWELL)
        h.access(read(0))
        assert 0.0 <= h.stats.l2_miss_ratio() <= 1.0
