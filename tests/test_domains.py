"""Failure-domain topology, correlated storms, replication and recovery.

The hypothesis suites pin the two load-bearing contracts of the domain
layer: :meth:`DomainSchedule.expand_to_schedule` must agree with a
brute-force per-replica oracle (and be deterministic and
permutation-invariant, since both DES engines consume its output), and
:func:`replicate_shards` must never co-locate two copies of a shard in
one spread domain when a spread is feasible — and refuse loudly when it
is not.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import RMC1_SMALL
from repro.hw import BROADWELL, SKYLAKE
from repro.serving import (
    DOMAIN_HOST,
    DOMAIN_KINDS,
    DOMAIN_RACK,
    DOMAIN_ZONE,
    SLA,
    DomainCrash,
    DomainPartition,
    DomainSchedule,
    DomainSlowdown,
    FleetTopology,
    MachinePool,
    NetworkConfig,
    WorkloadDemand,
    best_spread,
    distributed_latency,
    diverse_domain_order,
    domain_failures,
    domain_storm,
    domain_survivable_capacity,
    expand_to_schedule,
    fault_storm,
    partial_fanout_config,
    recovery_timeline,
    replicate_shards,
    shard_tables,
    survivable_capacity,
    worst_single_domain_loss,
)
from repro.serving.distributed import degraded_fanout_quality

PROPS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ------------------------------------------------------------- strategies


@st.composite
def topologies(draw) -> FleetTopology:
    return FleetTopology(
        num_replicas=draw(st.integers(1, 24)),
        replicas_per_host=draw(st.integers(1, 3)),
        hosts_per_rack=draw(st.integers(1, 4)),
        racks_per_zone=draw(st.integers(1, 3)),
    )


@st.composite
def topology_and_schedule(draw) -> tuple[FleetTopology, DomainSchedule]:
    topology = draw(topologies())

    def scope() -> tuple[str, int]:
        kind = draw(st.sampled_from(DOMAIN_KINDS))
        return kind, draw(st.integers(0, topology.num_domains(kind) - 1))

    crashes = []
    for _ in range(draw(st.integers(0, 3))):
        kind, domain_id = scope()
        crashes.append(
            DomainCrash(
                kind=kind,
                domain_id=domain_id,
                at_s=draw(st.floats(0.0, 1.0)),
                downtime_s=draw(st.floats(0.01, 0.5)),
            )
        )
    partitions = []
    for _ in range(draw(st.integers(0, 3))):
        kind, domain_id = scope()
        partitions.append(
            DomainPartition(
                kind=kind,
                domain_id=domain_id,
                start_s=draw(st.floats(0.0, 1.0)),
                duration_s=draw(st.floats(0.01, 0.5)),
            )
        )
    slowdowns = []
    for _ in range(draw(st.integers(0, 3))):
        kind, domain_id = scope()
        slowdowns.append(
            DomainSlowdown(
                kind=kind,
                domain_id=domain_id,
                start_s=draw(st.floats(0.0, 1.0)),
                duration_s=draw(st.floats(0.01, 0.5)),
                slowdown=draw(st.floats(1.0, 20.0)),
            )
        )
    return topology, DomainSchedule(crashes, partitions, slowdowns)


# --------------------------------------------------------------- topology


class TestFleetTopology:
    def test_sizes_ceil_divide(self):
        topology = FleetTopology(
            num_replicas=8, replicas_per_host=1, hosts_per_rack=2,
            racks_per_zone=2,
        )
        assert topology.num_hosts == 8
        assert topology.num_racks == 4
        assert topology.num_zones == 2

    def test_ragged_tail_occupies_partial_domains(self):
        topology = FleetTopology(
            num_replicas=5, replicas_per_host=2, hosts_per_rack=2,
            racks_per_zone=2,
        )
        assert topology.num_hosts == 3  # last host holds one replica
        assert topology.num_racks == 2
        assert topology.num_zones == 1

    @PROPS
    @given(topology=topologies())
    def test_every_kind_partitions_the_fleet(self, topology):
        for kind in DOMAIN_KINDS:
            seen = [
                r
                for domain_id in range(topology.num_domains(kind))
                for r in topology.replicas_in(kind, domain_id)
            ]
            assert sorted(seen) == list(range(topology.num_replicas))
            assert len(seen) == len(set(seen))

    @PROPS
    @given(topology=topologies())
    def test_domain_nesting_is_consistent(self, topology):
        for r in range(topology.num_replicas):
            host = topology.host_of(r)
            assert topology.rack_of(r) == topology.host_domain(host, DOMAIN_RACK)
            assert topology.zone_of(r) == topology.host_domain(host, DOMAIN_ZONE)

    @PROPS
    @given(topology=topologies())
    def test_diverse_order_enumerates_each_kind_once(self, topology):
        for kind in DOMAIN_KINDS:
            order = diverse_domain_order(topology, kind)
            assert sorted(order) == list(range(topology.num_domains(kind)))

    def test_diverse_rack_order_interleaves_zones(self):
        topology = FleetTopology(
            num_replicas=8, replicas_per_host=1, hosts_per_rack=2,
            racks_per_zone=2,
        )
        order = diverse_domain_order(topology, DOMAIN_RACK)
        zones = [r // topology.racks_per_zone for r in order]
        assert zones[:2] == [0, 1]  # adjacent racks straddle zones

    def test_bounds_are_checked(self):
        topology = FleetTopology(num_replicas=4)
        with pytest.raises(ValueError, match="outside fleet"):
            topology.host_of(4)
        with pytest.raises(ValueError, match="outside topology"):
            topology.replicas_in(DOMAIN_HOST, 99)
        with pytest.raises(ValueError, match="unknown domain kind"):
            topology.num_domains("pod")
        with pytest.raises(ValueError, match="at least one replica"):
            FleetTopology(num_replicas=0)

    def test_best_spread_prefers_widest_kind(self):
        topology = FleetTopology(
            num_replicas=8, replicas_per_host=1, hosts_per_rack=2,
            racks_per_zone=2,
        )
        assert best_spread(topology, 2) == DOMAIN_ZONE
        assert best_spread(topology, 3) == DOMAIN_RACK
        assert best_spread(topology, 5) == DOMAIN_HOST
        with pytest.raises(ValueError, match="cannot spread"):
            best_spread(topology, 9)


# -------------------------------------------------- expansion vs an oracle


def oracle_crashes(topology, schedule):
    """Brute-force per-replica lowering, one interval per (event, victim)."""
    out = []
    for c in schedule.crashes:
        for r in range(topology.num_replicas):
            if topology.domain_of(r, c.kind) == c.domain_id:
                out.append((c.at_s, r, c.downtime_s))
    for p in schedule.partitions:
        for r in range(topology.num_replicas):
            if topology.domain_of(r, p.kind) == p.domain_id:
                out.append((p.start_s, r, p.duration_s))
    return sorted(out)


def down_intervals(crashes, replica_id):
    """Merged downtime of one replica from a crash tuple list."""
    merged = []
    mine = sorted(
        (c.at_s, c.at_s + c.downtime_s)
        for c in crashes
        if c.replica_id == replica_id
    )
    for start_s, end_s in mine:
        if merged and start_s <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end_s))
        else:
            merged.append((start_s, end_s))
    return merged


class TestExpandToSchedule:
    @PROPS
    @given(case=topology_and_schedule())
    def test_matches_brute_force_oracle(self, case):
        topology, schedule = case
        expanded = schedule.expand_to_schedule(topology)
        assert [
            (c.at_s, c.replica_id, c.downtime_s) for c in expanded.crashes
        ] == oracle_crashes(topology, schedule)
        want_stragglers = sorted(
            (s.start_s, r, s.duration_s, s.slowdown)
            for s in schedule.slowdowns
            for r in range(topology.num_replicas)
            if topology.domain_of(r, s.kind) == s.domain_id
        )
        assert [
            (s.start_s, s.replica_id, s.duration_s, s.slowdown)
            for s in expanded.stragglers
        ] == want_stragglers
        assert expanded.bandwidth_faults == ()

    @PROPS
    @given(case=topology_and_schedule(), t_s=st.floats(0.0, 1.5))
    def test_healthy_fraction_matches_oracle(self, case, t_s):
        topology, schedule = case
        expanded = schedule.expand_to_schedule(topology)
        healthy = 0
        for r in range(topology.num_replicas):
            intervals = down_intervals(expanded.crashes, r)
            if not any(a <= t_s < b for a, b in intervals):
                healthy += 1
        # Oracle straight from the domain events, no lowering involved.
        oracle = 0
        for r in range(topology.num_replicas):
            down = False
            for c in schedule.crashes:
                if (
                    topology.domain_of(r, c.kind) == c.domain_id
                    and c.at_s <= t_s < c.at_s + c.downtime_s
                ):
                    down = True
            for p in schedule.partitions:
                if (
                    topology.domain_of(r, p.kind) == p.domain_id
                    and p.start_s <= t_s < p.start_s + p.duration_s
                ):
                    down = True
            oracle += not down
        assert healthy == oracle

    @PROPS
    @given(case=topology_and_schedule(), data=st.data())
    def test_deterministic_and_permutation_invariant(self, case, data):
        topology, schedule = case
        first = schedule.expand_to_schedule(topology)
        again = expand_to_schedule(schedule, topology)
        shuffled = DomainSchedule(
            crashes=data.draw(st.permutations(schedule.crashes)),
            partitions=data.draw(st.permutations(schedule.partitions)),
            slowdowns=data.draw(st.permutations(schedule.slowdowns)),
        )
        reordered = shuffled.expand_to_schedule(topology)
        for other in (again, reordered):
            assert first.crashes == other.crashes
            assert first.stragglers == other.stragglers
            assert first.bandwidth_faults == other.bandwidth_faults

    def test_validate_rejects_out_of_range_domains(self):
        topology = FleetTopology(num_replicas=4)
        schedule = DomainSchedule(
            crashes=(DomainCrash(DOMAIN_ZONE, 7, at_s=0.0, downtime_s=1.0),)
        )
        with pytest.raises(ValueError, match="only 1 zone"):
            schedule.expand_to_schedule(topology)

    def test_zero_schedule_expands_to_zero(self):
        expanded = DomainSchedule.zero().expand_to_schedule(
            FleetTopology(num_replicas=4)
        )
        assert expanded.is_zero
        assert DomainSchedule.zero().is_zero


# ------------------------------------------------------------------ storms


class TestDomainStorm:
    def test_deterministic_in_seed(self):
        topology = FleetTopology(num_replicas=8, hosts_per_rack=2)
        a = domain_storm(topology, 1.0, seed=3)
        b = domain_storm(topology, 1.0, seed=3)
        assert a.crashes == b.crashes
        assert a.partitions == b.partitions
        assert a.slowdowns == b.slowdowns

    def test_events_fit_topology_and_horizon(self):
        topology = FleetTopology(num_replicas=8, hosts_per_rack=2)
        storm = domain_storm(topology, 2.0, seed=7)
        storm.validate(topology)
        for c in storm.crashes:
            assert 0.0 <= c.at_s <= 1.6  # 80% of the horizon
            assert c.downtime_s <= 0.4

    def test_rejects_bad_arguments(self):
        topology = FleetTopology(num_replicas=4)
        with pytest.raises(ValueError, match="duration"):
            domain_storm(topology, 0.0, seed=1)
        with pytest.raises(ValueError, match="domain kind"):
            domain_storm(topology, 1.0, seed=1, kinds=())


class TestCorrelatedFaultStorm:
    def test_zero_correlation_is_byte_identical(self):
        """The escalation knob must not perturb the base storm draws."""
        topology = FleetTopology(
            num_replicas=6, replicas_per_host=1, hosts_per_rack=3
        )
        for seed in range(5):
            base = fault_storm(6, 1.0, seed=seed)
            gated = fault_storm(
                6, 1.0, seed=seed, topology=topology, correlation=0.0
            )
            assert base.crashes == gated.crashes
            assert base.stragglers == gated.stragglers
            assert base.bandwidth_faults == gated.bandwidth_faults

    def test_full_correlation_escalates_to_whole_domains(self):
        topology = FleetTopology(
            num_replicas=6, replicas_per_host=1, hosts_per_rack=3
        )
        base = fault_storm(6, 1.0, seed=2)
        storm = fault_storm(
            6, 1.0, seed=2, topology=topology, correlation=1.0,
            correlation_kind=DOMAIN_RACK,
        )
        for crash in base.crashes:
            rack = topology.rack_of(crash.replica_id)
            victims = {
                c.replica_id for c in storm.crashes if c.at_s == crash.at_s
            }
            assert victims >= set(topology.replicas_in(DOMAIN_RACK, rack))
        assert len(storm.crashes) >= len(base.crashes)

    def test_rejects_bad_correlation_arguments(self):
        topology = FleetTopology(num_replicas=4)
        with pytest.raises(ValueError, match="correlation"):
            fault_storm(4, 1.0, seed=0, topology=topology, correlation=1.5)
        with pytest.raises(ValueError, match="topology covers"):
            fault_storm(8, 1.0, seed=0, topology=topology, correlation=0.5)


# ------------------------------------------------------------- replication


class TestReplicationPlan:
    @PROPS
    @given(
        topology=topologies(),
        replication_factor=st.integers(1, 4),
        num_shards=st.integers(1, 2),
    )
    def test_copies_land_in_distinct_domains(
        self, topology, replication_factor, num_shards
    ):
        plan = shard_tables(RMC1_SMALL, num_shards)
        if replication_factor > topology.num_hosts:
            with pytest.raises(ValueError, match="cannot"):
                replicate_shards(plan, topology, replication_factor)
            return
        replication = replicate_shards(plan, topology, replication_factor)
        assert replication.spread == best_spread(topology, replication_factor)
        for shard in range(plan.num_shards):
            hosts = replication.hosts_of(shard)
            assert len(hosts) == replication_factor
            domains = [
                topology.host_domain(h, replication.spread) for h in hosts
            ]
            assert len(set(domains)) == len(domains)

    def test_zone_spread_straddles_zones_even_for_rack_spread(self):
        # k=3 forces rack spread on a 2-zone fleet; the diverse order must
        # still put the first two copies in different *zones*.
        topology = FleetTopology(
            num_replicas=8, replicas_per_host=1, hosts_per_rack=2,
            racks_per_zone=2,
        )
        replication = replicate_shards(shard_tables(RMC1_SMALL, 2), topology, 3)
        assert replication.spread == DOMAIN_RACK
        for shard in range(2):
            h0, h1, _ = replication.hosts_of(shard)
            assert topology.host_domain(h0, DOMAIN_ZONE) != (
                topology.host_domain(h1, DOMAIN_ZONE)
            )

    def test_infeasible_spread_raises_with_actionable_message(self):
        topology = FleetTopology(
            num_replicas=4, replicas_per_host=1, hosts_per_rack=2,
            racks_per_zone=2,
        )
        plan = shard_tables(RMC1_SMALL, 2)
        with pytest.raises(ValueError, match="only 1 zone"):
            replicate_shards(plan, topology, 2, spread=DOMAIN_ZONE)
        with pytest.raises(ValueError, match="cannot spread 5 copies"):
            replicate_shards(plan, topology, 5)

    def test_validate_catches_co_located_copies(self):
        from repro.serving import ReplicationPlan

        topology = FleetTopology(num_replicas=4)
        plan = shard_tables(RMC1_SMALL, 1)
        bad = ReplicationPlan(
            plan=plan,
            replication_factor=2,
            spread=DOMAIN_HOST,
            copy_hosts=((1, 1),),
        )
        with pytest.raises(ValueError, match="share a host domain"):
            bad.validate(topology)


# ---------------------------------------------------------------- failover


NETWORK = NetworkConfig()
TOPOLOGY_2Z = FleetTopology(
    num_replicas=8, replicas_per_host=1, hosts_per_rack=2, racks_per_zone=2
)
PLAN_2 = shard_tables(RMC1_SMALL, 2)


class TestFailoverReads:
    def test_replication_off_switch_is_bit_identical(self):
        base = distributed_latency(BROADWELL, RMC1_SMALL, 8, PLAN_2)
        replication = replicate_shards(PLAN_2, TOPOLOGY_2Z, 2)
        with_replication = distributed_latency(
            BROADWELL, RMC1_SMALL, 8, PLAN_2, replication=replication
        )
        assert with_replication == base  # all copies up: same dataclass

    def test_dead_primary_costs_one_round_trip(self):
        replication = replicate_shards(PLAN_2, TOPOLOGY_2Z, 2)
        base = distributed_latency(BROADWELL, RMC1_SMALL, 8, PLAN_2)
        degraded = distributed_latency(
            BROADWELL, RMC1_SMALL, 8, PLAN_2,
            replication=replication,
            copy_available=[[False, True], [False, True]],
        )
        assert degraded.failover_hops == 2  # one hop per shard
        assert degraded.lost_tables == ()
        assert degraded.total_seconds == pytest.approx(
            base.total_seconds + NETWORK.rtt_s
        )

    def test_lost_shard_degrades_to_partial_fanout(self):
        replication = replicate_shards(PLAN_2, TOPOLOGY_2Z, 2)
        result = distributed_latency(
            BROADWELL, RMC1_SMALL, 8, PLAN_2,
            replication=replication,
            copy_available=[[False, False], [True, True]],
        )
        assert result.lost_tables == tuple(sorted(PLAN_2.tables_of(0)))
        quality = degraded_fanout_quality(RMC1_SMALL, result.lost_tables)
        assert 0.0 < quality["recall_at_k"] <= 1.0
        assert 0.0 < quality["ndcg_at_k"] <= 1.0

    def test_partial_fanout_config_truncates_lost_tables(self):
        partial = partial_fanout_config(RMC1_SMALL, [0])
        assert partial.embedding_tables[0].lookups_per_sample == 1
        assert partial.name.endswith("-partial1")
        assert partial_fanout_config(RMC1_SMALL, []) is RMC1_SMALL
        with pytest.raises(ValueError, match="outside model"):
            partial_fanout_config(RMC1_SMALL, [99])

    def test_mismatched_plans_are_rejected(self):
        replication = replicate_shards(PLAN_2, TOPOLOGY_2Z, 2)
        other_plan = shard_tables(RMC1_SMALL, 1)
        with pytest.raises(ValueError, match="different shard plan"):
            distributed_latency(
                BROADWELL, RMC1_SMALL, 8, other_plan, replication=replication
            )
        with pytest.raises(ValueError, match="every shard"):
            distributed_latency(
                BROADWELL, RMC1_SMALL, 8, PLAN_2,
                replication=replication,
                copy_available=[[True, True]],
            )


# ---------------------------------------------------------------- recovery


def zone_crash(duration_s=1.0):
    return DomainSchedule(
        crashes=(
            DomainCrash(
                kind=DOMAIN_ZONE, domain_id=0, at_s=0.3 * duration_s,
                downtime_s=0.15 * duration_s,
            ),
        )
    )


class TestRecoveryTimeline:
    def test_unreplicated_zone_loss_cold_reloads(self):
        replication = replicate_shards(PLAN_2, TOPOLOGY_2Z, 1)
        timeline = recovery_timeline(
            BROADWELL, RMC1_SMALL, replication, TOPOLOGY_2Z, zone_crash()
        )
        # Every primary lived in zone 0, so no live source exists.
        assert timeline.transfers
        assert all(t.source_host is None for t in timeline.transfers)
        assert timeline.time_to_full_redundancy_s > 0.45  # after restart
        assert math.isfinite(timeline.time_to_full_redundancy_s)
        assert timeline.blackout_s(1.0) > 0.15  # downtime + re-stream

    def test_zone_spread_copy_survives_and_streams_back(self):
        replication = replicate_shards(PLAN_2, TOPOLOGY_2Z, 2)
        timeline = recovery_timeline(
            BROADWELL, RMC1_SMALL, replication, TOPOLOGY_2Z, zone_crash()
        )
        assert timeline.blackout_s(1.0) == 0.0
        assert timeline.transfers
        for transfer in timeline.transfers:
            assert transfer.source_host is not None
            assert TOPOLOGY_2Z.host_domain(transfer.source_host, DOMAIN_ZONE) == 1
            assert transfer.lost_at_s <= transfer.start_s < transfer.done_s
        expected_s = 0.45 + timeline.transfers[0].shard_bytes / (
            timeline.bandwidth_bytes_per_s
        )
        assert timeline.time_to_full_redundancy_s >= expected_s - 1e-9

    def test_bandwidth_is_nic_dram_min(self):
        replication = replicate_shards(PLAN_2, TOPOLOGY_2Z, 2)
        timeline = recovery_timeline(
            BROADWELL, RMC1_SMALL, replication, TOPOLOGY_2Z, zone_crash()
        )
        assert timeline.bandwidth_bytes_per_s == min(
            NETWORK.bandwidth_bytes_per_s, BROADWELL.dram_bw_bytes_per_s
        )

    def test_partition_heals_without_transfers(self):
        replication = replicate_shards(PLAN_2, TOPOLOGY_2Z, 1)
        events = DomainSchedule(
            partitions=(
                DomainPartition(
                    kind=DOMAIN_ZONE, domain_id=0, start_s=0.3, duration_s=0.2
                ),
            )
        )
        timeline = recovery_timeline(
            BROADWELL, RMC1_SMALL, replication, TOPOLOGY_2Z, events
        )
        assert timeline.transfers == ()
        assert timeline.time_to_full_redundancy_s == 0.0
        # State survives: down exactly for the partition window.
        assert timeline.blackout_s(1.0) == pytest.approx(0.2)
        assert timeline.copy_is_down(0, 0, 0.4)
        assert not timeline.copy_is_down(0, 0, 0.51)

    def test_recrash_mid_restream_aborts_and_restarts(self):
        replication = replicate_shards(PLAN_2, TOPOLOGY_2Z, 2)
        host = replication.hosts_of(0)[0]
        # Transfer takes ~4 ms at NIC bandwidth; the second crash lands
        # inside the first re-stream and must abort it.
        events = DomainSchedule(
            crashes=(
                DomainCrash(DOMAIN_HOST, host, at_s=0.010, downtime_s=0.001),
                DomainCrash(DOMAIN_HOST, host, at_s=0.012, downtime_s=0.001),
            )
        )
        timeline = recovery_timeline(
            BROADWELL, RMC1_SMALL, replication, TOPOLOGY_2Z, events
        )
        assert timeline.aborted_transfers >= 1
        assert timeline.time_to_full_redundancy_s > 0.013

    def test_service_segments_tile_the_horizon(self):
        replication = replicate_shards(PLAN_2, TOPOLOGY_2Z, 2)
        timeline = recovery_timeline(
            BROADWELL, RMC1_SMALL, replication, TOPOLOGY_2Z, zone_crash()
        )
        segments = timeline.service_segments(1.0)
        assert segments[0].start_s == 0.0
        assert segments[-1].end_s == 1.0
        for left, right in zip(segments, segments[1:]):
            assert left.end_s == right.start_s
        # During the outage the surviving copy is one failover hop away.
        assert any(seg.max_failover_hops == 1 for seg in segments)
        # Mid-outage each shard keeps exactly one live copy: the one whose
        # host the rotation placed in the surviving zone.
        for shard, copies in enumerate(timeline.availability_at(0.4)):
            assert sum(copies) == 1
            live = copies.index(True)
            host = replication.hosts_of(shard)[live]
            assert TOPOLOGY_2Z.host_domain(host, DOMAIN_ZONE) == 1

    def test_metrics_and_tracer_observe_transfers(self):
        from repro.obs import MetricsRegistry, Tracer

        registry = MetricsRegistry()
        tracer = Tracer()
        replication = replicate_shards(PLAN_2, TOPOLOGY_2Z, 2)
        timeline = recovery_timeline(
            BROADWELL, RMC1_SMALL, replication, TOPOLOGY_2Z, zone_crash(),
            tracer=tracer, metrics=registry, metrics_labels={"cell": "t"},
        )
        lost = registry.counter("serving.domains.lost_copies", cell="t")
        assert lost.value == len(timeline.transfers)
        redundancy = registry.gauge(
            "serving.domains.time_to_redundancy_s", cell="t"
        )
        assert redundancy.value == timeline.time_to_full_redundancy_s
        names = {span.name for span in tracer.spans}
        assert "serving.domains.transfer" in names


# -------------------------------------------------- cluster domain variants


BROADWELL_POOL = MachinePool(BROADWELL, 4)
SKYLAKE_POOL = MachinePool(SKYLAKE, 4)
DEMANDS = [
    WorkloadDemand(RMC1_SMALL, batch_size=4, sla=SLA(0.010), weight=1.0)
]
#: One rack per pool: rack 0 is the Broadwell pool, rack 1 the Skylake one.
RACK_ALIGNED = FleetTopology(
    num_replicas=8, replicas_per_host=1, hosts_per_rack=4, racks_per_zone=1
)


class TestClusterDomainVariants:
    def test_domain_failures_follow_topology(self):
        pools = [BROADWELL_POOL, SKYLAKE_POOL]
        assert domain_failures(pools, RACK_ALIGNED, DOMAIN_RACK, 0) == [4, 0]
        assert domain_failures(pools, RACK_ALIGNED, DOMAIN_RACK, 1) == [0, 4]
        assert domain_failures(pools, RACK_ALIGNED, DOMAIN_HOST, 5) == [0, 1]

    def test_rack_aligned_topology_reduces_to_pool_loss(self):
        """One rack per pool ⇒ the domain path equals the pool path."""
        pools = [BROADWELL_POOL, SKYLAKE_POOL]
        for domain_id, failures in ((0, [4, 0]), (1, [0, 4])):
            via_domain = domain_survivable_capacity(
                pools, DEMANDS, RACK_ALIGNED, DOMAIN_RACK, domain_id
            )
            via_pool = survivable_capacity(pools, DEMANDS, failures)
            assert via_domain.served_scale == via_pool.served_scale
            assert via_domain.assignment == via_pool.assignment

    def test_worst_domain_loss_orders_by_blast_radius(self):
        pools = [BROADWELL_POOL, SKYLAKE_POOL]
        host_loss = worst_single_domain_loss(
            pools, DEMANDS, RACK_ALIGNED, DOMAIN_HOST
        )
        rack_loss = worst_single_domain_loss(
            pools, DEMANDS, RACK_ALIGNED, DOMAIN_RACK
        )
        assert 0.0 < rack_loss <= host_loss

    def test_pool_topology_size_mismatch_is_rejected(self):
        with pytest.raises(ValueError, match="pools"):
            domain_failures(
                [BROADWELL_POOL], RACK_ALIGNED, DOMAIN_RACK, 0
            )


# --------------------------------------------------------- figure 11z run


class TestFigure11zLadder:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import fig11z_domains

        return fig11z_domains.run(duration_s=0.5)

    def test_zone_loss_collapses_unreplicated_placement(self, result):
        cell = result.cell("zone", 1)
        assert cell.stats.availability < 0.9
        assert cell.blackout_s > 0.0
        assert cell.lost_tables  # reads went partial during the blackout

    def test_zone_spread_k2_survives_the_same_trace(self, result):
        cell = result.cell("zone", 2)
        assert cell.spread == DOMAIN_ZONE
        assert cell.stats.availability >= 0.99
        assert cell.summary.p99 <= result.sla_deadline_s
        assert cell.blackout_s == 0.0
        assert 0.0 < cell.time_to_full_redundancy_s < float("inf")
        assert cell.recovery_transfers > 0

    def test_replication_never_hurts_availability(self, result):
        for scenario in ("rack", "zone"):
            k1 = result.cell(scenario, 1).stats.availability
            k2 = result.cell(scenario, 2).stats.availability
            assert k2 >= k1

    def test_render_leads_with_the_headline(self, result):
        from repro.experiments import fig11z_domains

        text = fig11z_domains.render(result)
        assert "zone loss" in text
        assert "k=1 availability" in text
