"""Tests for cost-optimal fleet provisioning."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import (
    PRODUCTION_PRESETS,
    RMC1_SMALL,
    RMC2_SMALL,
    RMC3_SMALL,
    config_from_dict,
    config_to_dict,
)
from repro.hw import ALL_SERVERS, BROADWELL
from repro.serving import SLA, WorkloadDemand
from repro.serving.provisioning import (
    DEFAULT_PRICES,
    PricedGeneration,
    provision_min_cost,
    single_generation_cost,
)


def priced_generations():
    return [
        PricedGeneration(server, DEFAULT_PRICES[server.name])
        for server in ALL_SERVERS
    ]


def demand_mix():
    return [
        WorkloadDemand(RMC1_SMALL, batch_size=4, sla=SLA(0.001), weight=0.4),
        WorkloadDemand(RMC2_SMALL, batch_size=32, sla=SLA(0.050), weight=0.4),
        WorkloadDemand(RMC3_SMALL, batch_size=32, sla=SLA(0.050), weight=0.2),
    ]


class TestProvisioning:
    def test_plan_meets_shape(self):
        plan = provision_min_cost(priced_generations(), demand_mix(), 1e6)
        assert plan.total_machines >= 1
        assert plan.cost_per_hour > 0
        assert set(plan.machine_counts) == {s.name for s in ALL_SERVERS}

    def test_cost_scales_with_demand(self):
        small = provision_min_cost(priced_generations(), demand_mix(), 1e5)
        big = provision_min_cost(priced_generations(), demand_mix(), 1e6)
        assert big.cost_per_hour > small.cost_per_hour

    def test_mixed_fleet_no_costlier_than_single_generation(self):
        mix = demand_mix()
        mixed = provision_min_cost(priced_generations(), mix, 5e5)
        for generation in priced_generations():
            single = single_generation_cost(generation, mix, 5e5)
            if single is not None:
                # LP optimum <= any single-generation plan; integer rounding
                # adds at most one machine per pool.
                slack = len(priced_generations()) * generation.cost_per_hour
                assert mixed.cost_per_hour <= single + slack

    def test_integer_counts_cover_fractional(self):
        plan = provision_min_cost(priced_generations(), demand_mix(), 7e5)
        for name, fractional in plan.fractional_counts.items():
            assert plan.machine_counts[name] >= fractional - 1e-9

    def test_impossible_sla_raises(self):
        impossible = [
            WorkloadDemand(RMC2_SMALL, batch_size=32, sla=SLA(1e-7), weight=1.0)
        ]
        with pytest.raises(RuntimeError):
            provision_min_cost(priced_generations(), impossible, 1e5)

    def test_single_generation_cost_none_when_infeasible(self):
        impossible = [
            WorkloadDemand(RMC3_SMALL, batch_size=32, sla=SLA(1e-7), weight=1.0)
        ]
        generation = priced_generations()[0]
        assert single_generation_cost(generation, impossible, 1e5) is None

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            provision_min_cost(priced_generations(), demand_mix(), 0)
        with pytest.raises(ValueError):
            PricedGeneration(BROADWELL, 0.0)


class TestSerializationProperty:
    @settings(max_examples=20, deadline=None)
    @given(name=st.sampled_from(sorted(PRODUCTION_PRESETS)))
    def test_round_trip_preserves_all_costs(self, name):
        config = PRODUCTION_PRESETS[name]
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt.flops_per_sample() == config.flops_per_sample()
        assert rebuilt.bytes_read_per_sample() == config.bytes_read_per_sample()
        assert rebuilt.total_storage_bytes() == config.total_storage_bytes()
        assert rebuilt.top_mlp_input_dim == config.top_mlp_input_dim
