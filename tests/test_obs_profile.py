"""Tier-1 tests for repro.obs.profile — per-operator cycle attribution."""

from __future__ import annotations

import pytest

from repro.config import presets
from repro.hw.server import BROADWELL
from repro.hw.timing import TimingModel
from repro.obs import OpProfiler
from repro.serving.simulator import ServingSimulator


class TestOpProfiler:
    def test_record_op_accumulates(self):
        profiler = OpProfiler()
        profiler.record_op("FC", 100.0, 64.0)
        profiler.record_op("FC", 50.0, 32.0)
        profiler.record_op("SLS", 50.0, 128.0)
        assert profiler.total_cycles() == pytest.approx(200.0)
        assert profiler.cycles_by_op_type() == {"FC": 150.0, "SLS": 50.0}
        assert profiler.bytes_by_op_type() == {"FC": 96.0, "SLS": 128.0}
        assert profiler.by_op_type["FC"].invocations == 2
        fractions = profiler.fraction_by_op_type()
        assert fractions["FC"] == pytest.approx(0.75)
        assert fractions["SLS"] == pytest.approx(0.25)

    def test_negative_cost_rejected(self):
        profiler = OpProfiler()
        with pytest.raises(ValueError, match="non-negative"):
            profiler.record_op("FC", -1.0, 0.0)
        with pytest.raises(ValueError, match="non-negative"):
            profiler.record_op("FC", 1.0, -1.0)

    def test_empty_profiler_has_no_fractions(self):
        assert OpProfiler().fraction_by_op_type() == {}

    def test_merged_combines_shards(self):
        a, b = OpProfiler(), OpProfiler()
        a.record_op("FC", 100.0, 10.0)
        a.requests = 2
        b.record_op("FC", 50.0, 5.0)
        b.record_op("SLS", 25.0, 50.0)
        b.requests = 1
        merged = a.merged(b)
        assert merged.cycles_by_op_type() == {"FC": 150.0, "SLS": 25.0}
        assert merged.by_op_type["FC"].invocations == 2
        assert merged.requests == 3

    def test_render_lists_operators(self):
        profiler = OpProfiler()
        profiler.record_op("FC", 100.0, 64.0)
        profiler.requests = 1
        text = profiler.render()
        assert "FC" in text
        assert "requests attributed: 1" in text


class TestTimingModelHook:
    def test_model_latency_reports_every_op(self):
        profiler = OpProfiler()
        timing = TimingModel(BROADWELL, profiler=profiler)
        latency = timing.model_latency(presets.RMC1_SMALL, batch=4)
        # Every priced operator reported exactly once, cycles = seconds * f.
        total_invocations = sum(
            a.invocations for a in profiler.by_op_type.values()
        )
        assert total_invocations == len(latency.per_op)
        expected_cycles = latency.total_seconds * BROADWELL.frequency_ghz * 1e9
        assert profiler.total_cycles() == pytest.approx(expected_cycles)

    def test_profiling_does_not_change_latencies(self):
        plain = TimingModel(BROADWELL).model_latency(presets.RMC1_SMALL, batch=4)
        profiled = TimingModel(BROADWELL, profiler=OpProfiler()).model_latency(
            presets.RMC1_SMALL, batch=4
        )
        assert plain == profiled


class TestServingAttribution:
    def test_fractions_match_analytic_breakdown_within_1pct(self):
        """Fig-4 acceptance: simulated per-op shares track the analytic ones."""
        profiler = OpProfiler()
        sim = ServingSimulator(
            BROADWELL,
            presets.RMC1_SMALL,
            batch_size=4,
            num_instances=2,
            per_instance_qps=200,
            seed=3,
            profiler=profiler,
        )
        result = sim.run(0.05)
        assert profiler.requests == len(result.records)
        analytic = TimingModel(BROADWELL).model_latency(
            presets.RMC1_SMALL, batch=4
        ).fraction_by_op_type()
        profiled = profiler.fraction_by_op_type()
        assert set(profiled) == set(analytic)
        for op_type, fraction in analytic.items():
            assert profiled[op_type] == pytest.approx(fraction, abs=0.01)

    def test_attributed_cycles_sum_to_simulated_service_time(self):
        profiler = OpProfiler()
        sim = ServingSimulator(
            BROADWELL,
            presets.RMC1_SMALL,
            batch_size=4,
            num_instances=2,
            per_instance_qps=200,
            seed=3,
            profiler=profiler,
        )
        result = sim.run(0.05)
        service_s = sum(r.service_s for r in result.records)
        expected_cycles = service_s * BROADWELL.frequency_ghz * 1e9
        assert profiler.total_cycles() == pytest.approx(expected_cycles, rel=1e-9)

    def test_profiler_is_observation_only(self):
        kwargs = dict(
            batch_size=4,
            num_instances=2,
            per_instance_qps=200,
            seed=3,
        )
        plain = ServingSimulator(BROADWELL, presets.RMC1_SMALL, **kwargs).run(0.05)
        profiled = ServingSimulator(
            BROADWELL, presets.RMC1_SMALL, profiler=OpProfiler(), **kwargs
        ).run(0.05)
        assert plain.records == profiled.records
