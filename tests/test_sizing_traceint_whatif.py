"""Tests for cache sizing, trace-driven timing, and the what-if study."""

import numpy as np
import pytest

from repro.config import RMC2_SMALL
from repro.data import TemporalReuseGenerator, reuse_profile
from repro.experiments import whatif_memory
from repro.hw import (
    BROADWELL,
    TimingModel,
    measure_trace_hit_ratio,
    trace_driven_latency,
)
from repro.memory import plan_cache_size


@pytest.fixture(scope="module")
def local_trace():
    gen = TemporalReuseGenerator(1_000_000, 1, reuse_probability=0.7)
    return gen.ids(12_000, np.random.default_rng(4))


@pytest.fixture(scope="module")
def random_trace_ids():
    return np.random.default_rng(5).integers(0, 1_000_000, size=12_000)


class TestCacheSizing:
    def test_latency_improves_with_capacity(self, local_trace):
        plan = plan_cache_size(
            BROADWELL, RMC2_SMALL, local_trace, [100, 1_000, 10_000, 100_000]
        )
        latencies = [p.latency_s for p in plan.points]
        assert latencies == sorted(latencies, reverse=True)

    def test_recommendation_sits_at_knee(self, local_trace):
        plan = plan_cache_size(
            BROADWELL, RMC2_SMALL, local_trace,
            [100, 1_000, 10_000, 100_000, 1_000_000],
        )
        assert plan.recommended is not None
        # Beyond the knee the curve is flat: the last point buys (almost)
        # nothing over the recommendation.
        last = plan.points[-1]
        assert last.latency_reduction - plan.recommended.latency_reduction < 0.05

    def test_random_trace_gets_no_recommendation(self, random_trace_ids):
        plan = plan_cache_size(
            BROADWELL, RMC2_SMALL, random_trace_ids, [100, 1_000, 10_000]
        )
        # Compulsory-dominated trace: nothing to cache.
        assert plan.recommended is None or plan.recommended.latency_reduction < 0.1

    def test_rejects_unsorted_capacities(self, local_trace):
        with pytest.raises(ValueError):
            plan_cache_size(BROADWELL, RMC2_SMALL, local_trace, [1000, 100])

    def test_profile_can_be_precomputed(self, local_trace):
        profile = reuse_profile(local_trace)
        plan = plan_cache_size(
            BROADWELL, RMC2_SMALL, local_trace, [1_000], profile=profile
        )
        assert plan.points[0].hit_ratio == pytest.approx(profile.hit_ratio(1_000))


class TestTraceIntegration:
    def test_local_trace_measures_high_hit_ratio(self, local_trace):
        hit, _ = measure_trace_hit_ratio(BROADWELL, 1_000_000, 32, local_trace)
        assert hit > 0.5

    def test_random_trace_measures_low_hit_ratio(self, random_trace_ids):
        hit, _ = measure_trace_hit_ratio(BROADWELL, 1_000_000, 32, random_trace_ids)
        assert hit < 0.3

    def test_latency_follows_measured_locality(self, local_trace, random_trace_ids):
        local = trace_driven_latency(BROADWELL, RMC2_SMALL, local_trace)
        random = trace_driven_latency(BROADWELL, RMC2_SMALL, random_trace_ids)
        assert local.measured_hit_ratio > random.measured_hit_ratio
        assert local.latency.total_seconds < random.latency.total_seconds

    def test_consistent_with_analytic_model(self, random_trace_ids):
        """A random trace's measured hit ratio should give a latency close
        to the analytic default for multi-GB tables (near-zero hits)."""
        result = trace_driven_latency(BROADWELL, RMC2_SMALL, random_trace_ids)
        analytic = TimingModel(BROADWELL).model_latency(RMC2_SMALL, 16)
        assert result.latency.total_seconds == pytest.approx(
            analytic.total_seconds, rel=0.35
        )

    def test_rejects_empty_trace(self):
        with pytest.raises(ValueError):
            measure_trace_hit_ratio(BROADWELL, 1000, 32, np.array([]))


class TestWhatIfMemory:
    @pytest.fixture(scope="class")
    def result(self):
        return whatif_memory.run()

    def test_latency_lever_pays_alone(self, result):
        rows = result.by_variant()
        assert rows["2x lower latency"].speedup > 1.5
        assert rows["4x bandwidth (HBM-class)"].speedup < 1.1

    def test_bandwidth_lever_pays_colocated(self, result):
        rows = result.by_variant()
        assert rows["4x bandwidth (HBM-class)"].colocated_speedup > 1.25
        assert (
            rows["4x bandwidth (HBM-class)"].colocated_speedup
            > rows["2x lower latency"].colocated_speedup
        )

    def test_combined_lever_dominates(self, result):
        rows = result.by_variant()
        both = rows["both"]
        assert both.speedup >= rows["2x lower latency"].speedup - 1e-9
        assert both.colocated_speedup >= max(
            rows["4x bandwidth (HBM-class)"].colocated_speedup,
            rows["2x lower latency"].colocated_speedup,
        ) - 1e-9

    def test_baseline_is_unity(self, result):
        baseline = result.by_variant()["baseline"]
        assert baseline.speedup == pytest.approx(1.0)
        assert baseline.colocated_speedup == pytest.approx(1.0)

    def test_render(self, result):
        assert "What-if" in whatif_memory.render(result)
