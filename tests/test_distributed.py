"""Tests for sharded (distributed) inference."""

import pytest

from repro.config import RMC1_SMALL, RMC2_SMALL
from repro.hw import BROADWELL
from repro.serving import (
    NetworkConfig,
    distributed_latency,
    min_shards_for_capacity,
    shard_tables,
    sharding_sweep,
)


class TestShardPlan:
    def test_all_tables_assigned(self):
        plan = shard_tables(RMC2_SMALL, 4)
        assert len(plan.table_assignment) == RMC2_SMALL.num_tables
        assert set(plan.table_assignment) == {0, 1, 2, 3}

    def test_balanced_for_uniform_tables(self):
        plan = shard_tables(RMC2_SMALL, 4)
        counts = [len(plan.tables_of(s)) for s in range(4)]
        assert max(counts) - min(counts) <= 1

    def test_single_shard(self):
        plan = shard_tables(RMC2_SMALL, 1)
        assert set(plan.table_assignment) == {0}

    def test_more_shards_than_tables(self):
        plan = shard_tables(RMC1_SMALL, 8)
        used = {s for s in plan.table_assignment}
        assert len(used) == RMC1_SMALL.num_tables  # one table each

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            shard_tables(RMC2_SMALL, 0)


class TestCapacityPlanning:
    def test_small_model_needs_one_shard(self):
        assert min_shards_for_capacity(RMC2_SMALL, BROADWELL) == 1

    def test_shard_count_grows_with_shrinking_budget(self):
        # Squeeze the usable DRAM until RMC2's ~10 GB of tables must split.
        table_bytes = RMC2_SMALL.embedding_tables[0].storage_bytes()
        tight = table_bytes * 3 / BROADWELL.dram_capacity_bytes
        shards = min_shards_for_capacity(RMC2_SMALL, BROADWELL, dram_headroom=tight)
        assert shards >= RMC2_SMALL.num_tables // 3
        plan = shard_tables(RMC2_SMALL, shards)
        budget = int(BROADWELL.dram_capacity_bytes * tight)
        for shard in range(plan.num_shards):
            owned = sum(
                RMC2_SMALL.embedding_tables[i].storage_bytes()
                for i in plan.tables_of(shard)
            )
            assert owned <= budget

    def test_table_larger_than_budget_is_rejected(self):
        table_bytes = RMC2_SMALL.embedding_tables[0].storage_bytes()
        too_tight = table_bytes * 0.5 / BROADWELL.dram_capacity_bytes
        with pytest.raises(ValueError):
            min_shards_for_capacity(RMC2_SMALL, BROADWELL, dram_headroom=too_tight)

    def test_rejects_bad_headroom(self):
        with pytest.raises(ValueError):
            min_shards_for_capacity(RMC2_SMALL, BROADWELL, dram_headroom=0.0)

    def test_rejects_negative_headroom(self):
        with pytest.raises(ValueError, match="dram_headroom"):
            min_shards_for_capacity(RMC2_SMALL, BROADWELL, dram_headroom=-0.5)

    def test_rejects_headroom_above_one(self):
        with pytest.raises(ValueError, match="dram_headroom"):
            min_shards_for_capacity(RMC2_SMALL, BROADWELL, dram_headroom=1.5)

    def test_accepts_full_headroom(self):
        assert min_shards_for_capacity(RMC2_SMALL, BROADWELL, dram_headroom=1.0) == 1


class TestDistributedLatency:
    def test_sharding_reduces_sls_time(self):
        results = sharding_sweep(BROADWELL, RMC2_SMALL, 32, [1, 2, 4, 10])
        sls_times = [r.slowest_shard_seconds for r in results]
        assert sls_times == sorted(sls_times, reverse=True)
        assert sls_times[-1] < 0.3 * sls_times[0]

    def test_single_shard_has_no_network(self):
        result = distributed_latency(
            BROADWELL, RMC2_SMALL, 32, shard_tables(RMC2_SMALL, 1)
        )
        assert result.network_seconds == 0.0

    def test_network_cost_appears_with_shards(self):
        result = distributed_latency(
            BROADWELL, RMC2_SMALL, 32, shard_tables(RMC2_SMALL, 4)
        )
        assert result.network_seconds > 0

    def test_diminishing_returns(self):
        """Beyond enough shards, network + dense compute dominate."""
        results = sharding_sweep(BROADWELL, RMC2_SMALL, 32, [1, 2, 4, 10, 20])
        total = [r.total_seconds for r in results]
        gain_first = total[0] / total[1]
        gain_last = total[-2] / total[-1]
        assert gain_first > gain_last

    def test_sharding_can_unlock_cache_residency(self):
        """Each shard holds a slice of the tables; small enough slices
        become LLC-resident, compounding the win."""
        one = distributed_latency(BROADWELL, RMC2_SMALL, 32, shard_tables(RMC2_SMALL, 1))
        many = distributed_latency(
            BROADWELL, RMC2_SMALL, 32, shard_tables(RMC2_SMALL, 20)
        )
        assert many.total_seconds < one.total_seconds

    def test_slow_network_erases_the_win(self):
        slow = NetworkConfig(rtt_s=0.050, bandwidth_bytes_per_s=1e6)
        result = distributed_latency(
            BROADWELL, RMC2_SMALL, 32, shard_tables(RMC2_SMALL, 4), slow
        )
        single = distributed_latency(
            BROADWELL, RMC2_SMALL, 32, shard_tables(RMC2_SMALL, 1)
        )
        assert result.total_seconds > single.total_seconds

    def test_rejects_mismatched_plan(self):
        plan = shard_tables(RMC1_SMALL, 2)
        with pytest.raises(ValueError):
            distributed_latency(BROADWELL, RMC2_SMALL, 32, plan)

    def test_rejects_bad_network(self):
        with pytest.raises(ValueError):
            NetworkConfig(rtt_s=-1)
