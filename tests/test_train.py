"""Tests for the training substrate: losses, metrics, gradients, training."""

import numpy as np
import pytest

from repro.config import MLPConfig, ModelConfig, uniform_tables
from repro.core import RecommendationModel
from repro.data import SyntheticCtrDataset
from repro.train import (
    TrainableDLRM,
    Trainer,
    bce_with_logits,
    bce_with_logits_grad,
    log_loss,
    roc_auc,
)


def tiny_config(interaction="concat", dim=8):
    bottom_out = dim if interaction == "dot" else 16
    return ModelConfig(
        name="tiny",
        model_class="RMC1",
        dense_features=6,
        bottom_mlp=MLPConfig([12, bottom_out]),
        embedding_tables=uniform_tables(2, 50, dim, 3),
        top_mlp=MLPConfig([10, 1], final_activation="sigmoid"),
        interaction=interaction,
    )


class TestLoss:
    def test_matches_direct_formula(self):
        logits = np.array([0.5, -1.2, 3.0])
        labels = np.array([1.0, 0.0, 1.0])
        p = 1 / (1 + np.exp(-logits))
        expected = -np.mean(labels * np.log(p) + (1 - labels) * np.log(1 - p))
        assert bce_with_logits(logits, labels) == pytest.approx(expected)

    def test_stable_at_extreme_logits(self):
        loss = bce_with_logits(np.array([1e4, -1e4]), np.array([1.0, 0.0]))
        assert np.isfinite(loss) and loss < 1e-3

    def test_grad_matches_finite_difference(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=5)
        labels = (rng.random(5) > 0.5).astype(float)
        grad = bce_with_logits_grad(logits, labels)
        eps = 1e-5
        for i in range(5):
            bumped = logits.copy()
            bumped[i] += eps
            numeric = (bce_with_logits(bumped, labels) - bce_with_logits(logits, labels)) / eps
            assert grad[i] == pytest.approx(numeric, rel=1e-3, abs=1e-6)

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError):
            bce_with_logits(np.array([1.0]), np.array([1.0, 0.0]))


class TestMetrics:
    def test_perfect_auc(self):
        assert roc_auc(np.array([0.9, 0.8, 0.1, 0.2]), np.array([1, 1, 0, 0])) == 1.0

    def test_random_auc_half(self):
        rng = np.random.default_rng(1)
        scores = rng.random(4000)
        labels = rng.random(4000) > 0.5
        assert roc_auc(scores, labels) == pytest.approx(0.5, abs=0.03)

    def test_ties_mid_ranked(self):
        assert roc_auc(np.array([0.5, 0.5]), np.array([1, 0])) == pytest.approx(0.5)

    def test_auc_needs_both_classes(self):
        with pytest.raises(ValueError):
            roc_auc(np.array([0.1, 0.2]), np.array([1, 1]))

    def test_log_loss_matches_bce(self):
        probs = np.array([0.7, 0.2])
        labels = np.array([1.0, 0.0])
        logits = np.log(probs / (1 - probs))
        assert log_loss(probs, labels) == pytest.approx(
            bce_with_logits(logits, labels), rel=1e-5
        )


class TestGradientCheck:
    """Analytic backward vs central finite differences on the full model."""

    @pytest.mark.parametrize("interaction", ["concat", "dot"])
    def test_fc_weight_gradients(self, interaction):
        config = tiny_config(interaction)
        model = RecommendationModel(config, rng=np.random.default_rng(7))
        trainable = TrainableDLRM(model)
        dataset = SyntheticCtrDataset(config, seed=3)
        batch = dataset.batch(8)

        logits, cache = trainable.forward_logits(batch.dense, batch.sparse)
        grads = trainable.backward(
            bce_with_logits_grad(logits, batch.labels), cache
        )

        def loss():
            lg, _ = trainable.forward_logits(batch.dense, batch.sparse)
            return bce_with_logits(lg, batch.labels)

        rng = np.random.default_rng(11)
        for op in (model.bottom_ops[0], model.top_ops[0]):
            d_w, _ = grads.fc[op.name]
            for _ in range(4):
                i = int(rng.integers(op.weight.shape[0]))
                j = int(rng.integers(op.weight.shape[1]))
                eps = 1e-3
                original = op.weight[i, j]
                op.weight[i, j] = original + eps
                up = loss()
                op.weight[i, j] = original - eps
                down = loss()
                op.weight[i, j] = original
                numeric = (up - down) / (2 * eps)
                assert d_w[i, j] == pytest.approx(numeric, rel=0.05, abs=1e-5)

    def test_embedding_gradients(self):
        config = tiny_config()
        model = RecommendationModel(config, rng=np.random.default_rng(7))
        trainable = TrainableDLRM(model)
        dataset = SyntheticCtrDataset(config, seed=3)
        batch = dataset.batch(4)

        logits, cache = trainable.forward_logits(batch.dense, batch.sparse)
        grads = trainable.backward(
            bce_with_logits_grad(logits, batch.labels), cache
        )

        rows, grad_rows = grads.tables[0]
        table = model.tables[0]

        def loss():
            lg, _ = trainable.forward_logits(batch.dense, batch.sparse)
            return bce_with_logits(lg, batch.labels)

        row = int(rows[0])
        eps = 1e-3
        for col in range(2):
            original = table.data[row, col]
            table.data[row, col] = original + eps
            up = loss()
            table.data[row, col] = original - eps
            down = loss()
            table.data[row, col] = original
            numeric = (up - down) / (2 * eps)
            assert grad_rows[0, col] == pytest.approx(numeric, rel=0.05, abs=1e-5)

    def test_untouched_rows_have_no_gradient(self):
        config = tiny_config()
        model = RecommendationModel(config)
        trainable = TrainableDLRM(model)
        dataset = SyntheticCtrDataset(config, seed=3)
        batch = dataset.batch(4)
        logits, cache = trainable.forward_logits(batch.dense, batch.sparse)
        grads = trainable.backward(
            bce_with_logits_grad(logits, batch.labels), cache
        )
        rows, _ = grads.tables[0]
        assert set(rows.tolist()) == set(np.unique(batch.sparse[0].ids).tolist())


class TestTraining:
    def test_loss_decreases_and_beats_chance(self):
        config = tiny_config()
        model = RecommendationModel(config)
        dataset = SyntheticCtrDataset(config, signal_scale=2.0, seed=5)
        trainer = Trainer(TrainableDLRM(model), dataset, lr=0.3)
        report = trainer.fit(steps=250, batch_size=128, eval_samples=1500)
        assert report.final_loss < report.initial_loss - 0.05
        assert report.eval_auc > 0.7

    def test_dot_interaction_model_trains(self):
        config = tiny_config("dot")
        model = RecommendationModel(config)
        dataset = SyntheticCtrDataset(config, signal_scale=2.0, seed=6)
        trainer = Trainer(TrainableDLRM(model), dataset, lr=0.2)
        report = trainer.fit(steps=200, batch_size=128, eval_samples=1500)
        assert report.final_loss < report.initial_loss
        assert report.eval_auc > 0.65

    def test_logits_match_model_probabilities(self):
        config = tiny_config()
        model = RecommendationModel(config)
        trainable = TrainableDLRM(model)
        dataset = SyntheticCtrDataset(config, seed=7)
        batch = dataset.batch(16)
        logits, _ = trainable.forward_logits(batch.dense, batch.sparse)
        probs = model.forward(batch.dense, batch.sparse)
        np.testing.assert_allclose(1 / (1 + np.exp(-logits)), probs, rtol=1e-4)

    def test_rejects_non_sigmoid_head(self):
        config = ModelConfig(
            name="nohead",
            model_class="RMC1",
            dense_features=4,
            bottom_mlp=MLPConfig([8]),
            embedding_tables=uniform_tables(1, 20, 4, 2),
            top_mlp=MLPConfig([4, 1]),  # no sigmoid
        )
        with pytest.raises(ValueError):
            TrainableDLRM(RecommendationModel(config))

    def test_rejects_bad_lr(self):
        config = tiny_config()
        trainable = TrainableDLRM(RecommendationModel(config))
        with pytest.raises(ValueError):
            Trainer(trainable, SyntheticCtrDataset(config), lr=0.0)


class TestSyntheticDataset:
    def test_batch_shapes(self):
        config = tiny_config()
        dataset = SyntheticCtrDataset(config, seed=1)
        batch = dataset.batch(12)
        assert batch.dense.shape == (12, 6)
        assert batch.labels.shape == (12,)
        assert set(np.unique(batch.labels)) <= {0.0, 1.0}

    def test_labels_follow_teacher(self):
        """Samples with high teacher logits must be mostly positive."""
        config = tiny_config()
        dataset = SyntheticCtrDataset(config, signal_scale=3.0, seed=2)
        batch = dataset.batch(3000)
        logits = dataset.true_logits(batch.dense, batch.sparse)
        high = batch.labels[logits > 1.0]
        low = batch.labels[logits < -1.0]
        assert high.mean() > 0.65
        assert low.mean() < 0.35

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            SyntheticCtrDataset(tiny_config(), signal_scale=0.0)
        with pytest.raises(ValueError):
            SyntheticCtrDataset(tiny_config()).batch(0)
