"""Overload-protection layer: units, wiring, and the Figure 11y ladder."""

import numpy as np
import pytest

from repro.config import RMC1_SMALL
from repro.hw import BROADWELL
from repro.obs.metrics import MetricsRegistry
from repro.serving import (
    SLA,
    AdmissionPolicy,
    BatchedServer,
    BreakerPolicy,
    BrownoutPolicy,
    CircuitBreaker,
    CoDelController,
    DiurnalLoadGenerator,
    FaultSchedule,
    LoadSpike,
    OverloadConfig,
    RequestRouter,
    ResiliencePolicy,
    ResilientRouter,
    ServingSimulator,
    SpikeLoadGenerator,
    Straggler,
    check_conservation,
    default_brownout_tiers,
)
from repro.serving.overload import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BrownoutController,
    OverloadStats,
    SHED_QUEUE_FULL,
)

NUM_MACHINES = 4


def _service_s():
    return ResilientRouter(
        BROADWELL, RMC1_SMALL, 8, NUM_MACHINES, seed=0
    )._base_service_s


# ------------------------------------------------------------- policies


class TestAdmissionPolicy:
    def test_validates(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(queue_capacity=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(shed_policy="lifo")
        with pytest.raises(ValueError):
            AdmissionPolicy(deadline_s=-1.0)
        with pytest.raises(ValueError):
            AdmissionPolicy(codel_target_s=0.0)

    def test_make_codel(self):
        assert AdmissionPolicy().make_codel() is None
        codel = AdmissionPolicy(codel_target_s=0.01).make_codel()
        assert isinstance(codel, CoDelController)


class TestCoDel:
    def test_below_target_never_drops(self):
        codel = CoDelController(target_s=0.01, interval_s=0.1)
        for i in range(100):
            assert not codel.on_dequeue(0.005, 0.001 * i)
        assert codel.drop_count == 0

    def test_drops_after_sustained_excess(self):
        codel = CoDelController(target_s=0.01, interval_s=0.1)
        dropped = [
            codel.on_dequeue(0.05, 0.01 * i) for i in range(100)
        ]
        assert not dropped[0]  # grace interval before the first drop
        assert any(dropped)
        assert codel.drop_count >= 1

    def test_drop_rate_accelerates(self):
        # drop_next spacing shrinks like interval/sqrt(n) while above
        # target, so later drops come faster than earlier ones.
        codel = CoDelController(target_s=0.001, interval_s=0.1)
        times = [0.002 * i for i in range(1000)]
        drops = [t for t in times if codel.on_dequeue(0.05, t)]
        assert len(drops) >= 3
        gaps = np.diff(drops)
        assert gaps[-1] < gaps[0]

    def test_recovers_below_target(self):
        codel = CoDelController(target_s=0.01, interval_s=0.05)
        for i in range(50):
            codel.on_dequeue(0.05, 0.01 * i)
        assert codel.drop_count >= 1
        before = codel.drop_count
        assert not codel.on_dequeue(0.001, 1.0)  # back under target
        for i in range(10):
            assert not codel.on_dequeue(0.001, 1.0 + 0.01 * i)
        assert codel.drop_count == before


class TestCircuitBreaker:
    def policy(self, **kw):
        base = dict(
            failure_threshold=3,
            window_s=1.0,
            open_duration_s=2.0,
            half_open_probes=1,
        )
        base.update(kw)
        return BreakerPolicy(**base)

    def test_validates(self):
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerPolicy(window_s=0.0)

    def test_trips_at_threshold_within_window(self):
        breaker = CircuitBreaker(self.policy())
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure(0.2)
        assert breaker.state == BREAKER_OPEN
        assert breaker.opens == 1
        assert not breaker.allows(0.3)

    def test_old_failures_age_out(self):
        breaker = CircuitBreaker(self.policy())
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        breaker.record_failure(5.0)  # first two fell out of the window
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_probe_then_close(self):
        breaker = CircuitBreaker(self.policy())
        for t in (0.0, 0.1, 0.2):
            breaker.record_failure(t)
        assert not breaker.allows(1.0)
        assert breaker.allows(2.5)  # open_duration elapsed -> half-open
        assert breaker.state == BREAKER_HALF_OPEN
        breaker.note_probe()
        assert not breaker.allows(2.6)  # probe budget spent
        breaker.record_success(2.7)
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allows(2.8)

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(self.policy())
        for t in (0.0, 0.1, 0.2):
            breaker.record_failure(t)
        assert breaker.allows(2.5)
        breaker.note_probe()
        breaker.record_failure(2.6)
        assert breaker.state == BREAKER_OPEN
        assert breaker.opens == 2


class TestBrownout:
    def tiers(self):
        return default_brownout_tiers(RMC1_SMALL, lookup_caps=(8, 2))

    def test_default_tiers_validate_caps(self):
        with pytest.raises(ValueError):
            default_brownout_tiers(RMC1_SMALL, lookup_caps=(2, 8))
        with pytest.raises(ValueError):
            default_brownout_tiers(RMC1_SMALL, lookup_caps=())

    def test_policy_validates(self):
        with pytest.raises(ValueError):
            BrownoutPolicy(tiers=())
        with pytest.raises(ValueError):
            BrownoutPolicy(
                tiers=self.tiers(), step_up_depth=1.0, step_down_depth=2.0
            )

    def test_steps_up_under_pressure_and_back_down(self):
        policy = BrownoutPolicy(
            tiers=self.tiers(),
            step_up_depth=4.0,
            step_down_depth=1.0,
            dwell_s=0.1,
        )
        ctl = BrownoutController(policy)
        assert ctl.update(0.0, 10.0) == 1  # one step per update
        assert ctl.update(0.05, 10.0) == 1  # dwell blocks the second
        assert ctl.update(0.2, 10.0) == 2
        assert ctl.update(0.4, 10.0) == 2  # already at the deepest tier
        assert ctl.update(0.6, 0.5) == 1  # recovery steps back
        assert ctl.update(0.8, 0.5) == 0
        assert ctl.switches == 4

    def test_hysteresis_band_holds_tier(self):
        policy = BrownoutPolicy(
            tiers=self.tiers(),
            step_up_depth=4.0,
            step_down_depth=1.0,
            dwell_s=0.0,
        )
        ctl = BrownoutController(policy)
        ctl.update(0.0, 10.0)
        # Pressure between the thresholds: neither up nor down.
        assert ctl.update(1.0, 2.0) == 1
        assert ctl.update(2.0, 2.0) == 1

    def test_time_accounting_covers_horizon(self):
        policy = BrownoutPolicy(tiers=self.tiers(), dwell_s=0.0)
        ctl = BrownoutController(policy)
        ctl.update(0.2, 10.0)
        ctl.update(0.5, 0.0)
        ctl.finish(1.0)
        assert len(ctl.time_in_tier_s) == policy.num_tiers
        assert sum(ctl.time_in_tier_s) == pytest.approx(1.0)
        assert ctl.time_in_tier_s[1] == pytest.approx(0.3)


class TestOverloadConfig:
    def test_noop_detection(self):
        assert OverloadConfig().is_noop
        assert not OverloadConfig(admission=AdmissionPolicy()).is_noop

    def test_stats_shed_sums_reasons(self):
        stats = OverloadStats()
        stats.count_shed(SHED_QUEUE_FULL)
        stats.count_shed(SHED_QUEUE_FULL)
        stats.count_shed("deadline_hopeless")
        assert stats.shed == 3
        assert stats.shed_by_reason[SHED_QUEUE_FULL] == 2


# ----------------------------------------------------- router wiring


class TestResilientRouterOverload:
    def run_router(self, overload, policy=None, qps_factor=4.0, seed=7):
        svc = _service_s()
        router = ResilientRouter(
            BROADWELL,
            RMC1_SMALL,
            8,
            NUM_MACHINES,
            policy=policy,
            overload=overload,
            seed=seed,
        )
        return router.run(
            offered_qps=qps_factor * NUM_MACHINES / svc,
            duration_s=0.1,
            sla=SLA(deadline_s=25.0 * svc),
        )

    def test_admission_bounds_queue_and_latency(self):
        svc = _service_s()
        overload = OverloadConfig(
            admission=AdmissionPolicy(queue_capacity=8)
        )
        result = self.run_router(overload)
        stats = result.overload
        assert stats is not None
        assert stats.max_queue_depth <= 8
        assert stats.shed > 0
        # Bounded queue -> bounded latency: every completion waited at
        # most ~capacity * service behind the head plus noise/straggle.
        assert float(result.latencies_s.max()) < 50.0 * svc

    def test_unprotected_latency_grows_unbounded(self):
        result = self.run_router(None)
        svc = _service_s()
        assert result.overload is None
        # 4x overload for 0.1 s: the queue grows throughout the run, so
        # the worst latency is within a small factor of the horizon.
        assert float(result.latencies_s.max()) > 1000.0 * svc

    def test_reject_oldest_sheds_head_not_tail(self):
        overload = OverloadConfig(
            admission=AdmissionPolicy(
                queue_capacity=4, shed_policy="reject_oldest"
            )
        )
        result = self.run_router(overload)
        stats = result.overload
        assert stats.shed_by_reason.get("oldest_dropped", 0) > 0
        assert stats.shed_by_reason.get("queue_full", 0) == 0

    def test_deadline_aware_sheds_hopeless_work(self):
        svc = _service_s()
        overload = OverloadConfig(
            admission=AdmissionPolicy(
                queue_capacity=64,
                shed_policy="deadline_aware",
                deadline_s=10.0 * svc,
            )
        )
        result = self.run_router(overload)
        assert result.overload.shed_by_reason.get("deadline_hopeless", 0) > 0

    def test_codel_sheds_on_standing_queue(self):
        svc = _service_s()
        overload = OverloadConfig(
            admission=AdmissionPolicy(
                queue_capacity=64,
                codel_target_s=3.0 * svc,
                codel_interval_s=20.0 * svc,
            )
        )
        result = self.run_router(overload)
        assert result.overload.shed_by_reason.get("codel_sojourn", 0) > 0

    def test_breaker_opens_on_straggler_timeouts(self):
        svc = _service_s()
        overload = OverloadConfig(
            admission=AdmissionPolicy(queue_capacity=16),
            breaker=BreakerPolicy(
                failure_threshold=3,
                window_s=50.0 * svc,
                open_duration_s=100.0 * svc,
            ),
        )
        policy = ResiliencePolicy(
            timeout_s=20.0 * svc, max_retries=1, backoff_base_s=svc
        )
        storm = FaultSchedule(
            stragglers=(
                Straggler(
                    replica_id=0, start_s=0.0, duration_s=0.1, slowdown=20.0
                ),
            )
        )
        router = ResilientRouter(
            BROADWELL,
            RMC1_SMALL,
            8,
            NUM_MACHINES,
            policy=policy,
            overload=overload,
            seed=7,
        )
        result = router.run(
            offered_qps=0.7 * NUM_MACHINES / svc,
            duration_s=0.1,
            faults=storm,
            sla=SLA(deadline_s=25.0 * svc),
        )
        assert result.overload.breaker_opens > 0

    def test_brownout_steps_and_accounts_time(self):
        svc = _service_s()
        overload = OverloadConfig(
            admission=AdmissionPolicy(queue_capacity=16),
            brownout=BrownoutPolicy(
                tiers=default_brownout_tiers(RMC1_SMALL),
                step_up_depth=4.0,
                step_down_depth=1.0,
                dwell_s=10.0 * svc,
            ),
        )
        result = self.run_router(overload)
        stats = result.overload
        assert stats.max_brownout_tier > 0
        assert stats.brownout_switches > 0
        assert sum(stats.time_in_tier_s) == pytest.approx(0.1)
        assert stats.time_degraded_s > 0
        assert sum(stats.completions_by_tier) == len(result.latencies_s)
        assert result.brownout_quality is not None
        for quality in result.brownout_quality:
            assert 0.0 < quality["recall_at_k"] <= 1.0

    def test_protected_run_is_deterministic(self):
        svc = _service_s()
        overload = OverloadConfig(
            admission=AdmissionPolicy(
                queue_capacity=8, codel_target_s=5.0 * svc
            ),
            breaker=BreakerPolicy(
                failure_threshold=3,
                window_s=20.0 * svc,
                open_duration_s=50.0 * svc,
            ),
            brownout=BrownoutPolicy(
                tiers=default_brownout_tiers(RMC1_SMALL),
                dwell_s=10.0 * svc,
            ),
        )
        policy = ResiliencePolicy(
            timeout_s=30.0 * svc, max_retries=1, backoff_base_s=svc
        )
        a = self.run_router(overload, policy=policy)
        b = self.run_router(overload, policy=policy)
        np.testing.assert_array_equal(a.latencies_s, b.latencies_s)
        assert a.overload.shed_by_reason == b.overload.shed_by_reason
        assert a.overload.max_queue_depth == b.overload.max_queue_depth

    def test_overload_none_matches_router_without_overload_arg(self):
        svc = _service_s()
        kwargs = dict(offered_qps=2.0 * NUM_MACHINES / svc, duration_s=0.1)
        with_none = ResilientRouter(
            BROADWELL, RMC1_SMALL, 8, NUM_MACHINES, seed=3, overload=None
        ).run(**kwargs)
        without = ResilientRouter(
            BROADWELL, RMC1_SMALL, 8, NUM_MACHINES, seed=3
        ).run(**kwargs)
        np.testing.assert_array_equal(
            with_none.latencies_s, without.latencies_s
        )

    def test_request_conservation(self):
        svc = _service_s()
        overload = OverloadConfig(
            admission=AdmissionPolicy(queue_capacity=8)
        )
        result = self.run_router(overload)
        assert result.offered == (
            result.completed + result.failed + result.unresolved
        )
        assert result.unresolved >= 0

    def test_explicit_arrival_trace(self):
        svc = _service_s()
        times = [0.001 * i for i in range(50)]
        router = ResilientRouter(BROADWELL, RMC1_SMALL, 8, NUM_MACHINES, seed=3)
        result = router.run(
            offered_qps=1000.0,
            duration_s=0.1,
            arrival_times_s=times,
            sla=SLA(deadline_s=25.0 * svc),
        )
        assert result.offered == 50
        with pytest.raises(ValueError):
            router.run(
                offered_qps=1000.0, duration_s=0.1, arrival_times_s=[0.2]
            )

    def test_metrics_recorded(self):
        registry = MetricsRegistry()
        svc = _service_s()
        router = ResilientRouter(
            BROADWELL,
            RMC1_SMALL,
            8,
            NUM_MACHINES,
            overload=OverloadConfig(
                admission=AdmissionPolicy(queue_capacity=8)
            ),
            seed=7,
            metrics=registry,
        )
        router.run(
            offered_qps=4.0 * NUM_MACHINES / svc,
            duration_s=0.05,
            sla=SLA(deadline_s=25.0 * svc),
        )
        snapshot = registry.snapshot()
        assert any(
            key.startswith("serving.overload.shed")
            for key in snapshot.counters
        )
        assert "serving.queue.max_depth" in snapshot.gauges


# -------------------------------------------------- simulator wiring


class TestServingSimulatorOverload:
    def sim(self, overload=None, metrics=None, qps=None):
        return ServingSimulator(
            BROADWELL,
            RMC1_SMALL,
            batch_size=8,
            num_instances=2,
            per_instance_qps=qps,
            seed=5,
            overload=overload,
            metrics=metrics,
        )

    def overloaded_qps(self):
        probe = self.sim()
        return 3.0 / probe._base_latency(2).total_seconds

    def test_rejects_breaker_and_brownout(self):
        with pytest.raises(ValueError):
            self.sim(overload=OverloadConfig(breaker=BreakerPolicy()))
        with pytest.raises(ValueError):
            self.sim(
                overload=OverloadConfig(
                    brownout=BrownoutPolicy(
                        tiers=default_brownout_tiers(RMC1_SMALL)
                    )
                )
            )

    def test_admission_bounds_depth_and_sheds(self):
        overload = OverloadConfig(admission=AdmissionPolicy(queue_capacity=4))
        result = self.sim(overload=overload, qps=self.overloaded_qps()).run(
            duration_s=0.1
        )
        assert result.shed > 0
        assert result.max_queue_depth <= 4
        in_flight = check_conservation(
            result.offered,
            len(result.records),
            shed=result.shed,
            killed=result.killed,
        )
        assert in_flight >= 0

    def test_protection_off_is_record_identical(self):
        qps = self.overloaded_qps()
        a = self.sim(qps=qps).run(duration_s=0.05)
        b = self.sim(overload=None, qps=qps).run(duration_s=0.05)
        assert a.shed == 0
        assert [r.end_s for r in a.records] == [r.end_s for r in b.records]
        assert a.max_queue_depth == b.max_queue_depth > 0

    def test_queue_depth_metrics_visible_without_protection(self):
        registry = MetricsRegistry()
        result = self.sim(metrics=registry, qps=self.overloaded_qps()).run(
            duration_s=0.05
        )
        snapshot = registry.snapshot()
        assert snapshot.gauges["serving.queue.max_depth"] == (
            result.max_queue_depth
        )
        assert "serving.queue.depth" in snapshot.gauges
        assert snapshot.counters["serving.overload.shed"] == 0


# ------------------------------------------- backpressure + loadgen


class TestRequestRouterCapacity:
    def test_bounded_router_sheds_and_bounds_latency(self):
        router = RequestRouter(
            BROADWELL, RMC1_SMALL, 8, NUM_MACHINES, queue_capacity=8, seed=3
        )
        qps = 3.0 * router.max_stable_qps()
        result = router.run(qps, duration_s=0.1)
        assert result.shed > 0
        assert result.max_queue_depth <= 8
        unbounded = RequestRouter(
            BROADWELL, RMC1_SMALL, 8, NUM_MACHINES, seed=3
        ).run(qps, duration_s=0.1)
        assert unbounded.shed == 0
        assert float(result.latencies_s.max()) < float(
            unbounded.latencies_s.max()
        )

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RequestRouter(
                BROADWELL, RMC1_SMALL, 8, NUM_MACHINES, queue_capacity=0
            )


class TestBatchedServerBackpressure:
    def test_backpressure_sheds_under_overload(self):
        server = BatchedServer(
            BROADWELL, RMC1_SMALL, max_batch=8, queue_capacity=2
        )
        service_s = server._service_s(8)
        qps = 4.0 * 8.0 / service_s
        result = server.simulate(qps, duration_s=0.05, seed=1)
        assert result.shed > 0
        unbounded = BatchedServer(BROADWELL, RMC1_SMALL, max_batch=8).simulate(
            qps, duration_s=0.05, seed=1
        )
        assert unbounded.shed == 0
        assert float(result.query_latencies_s.max()) < float(
            unbounded.query_latencies_s.max()
        )

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            BatchedServer(BROADWELL, RMC1_SMALL, queue_capacity=0)


class TestDiurnalLoadGenerator:
    def test_rate_oscillates_around_mean(self):
        gen = DiurnalLoadGenerator(
            mean_qps=1000.0, amplitude=0.5, period_s=1.0
        )
        assert gen.rate_at(0.25) == pytest.approx(1500.0)
        assert gen.rate_at(0.75) == pytest.approx(500.0)
        assert gen.max_rate_qps() == pytest.approx(1500.0)

    def test_seeded_and_deterministic(self):
        a = DiurnalLoadGenerator(1000.0, seed=4).generate(0.5)
        b = DiurnalLoadGenerator(1000.0, seed=4).generate(0.5)
        assert [q.arrival_s for q in a] == [q.arrival_s for q in b]
        assert a, "expected a non-empty stream"

    def test_composes_with_spikes(self):
        spike = LoadSpike(start_s=0.2, duration_s=0.2, multiplier=5.0)
        gen = DiurnalLoadGenerator(
            2000.0,
            amplitude=0.25,
            period_s=1.0,
            spikes=(spike,),
            seed=4,
        )
        assert gen.rate_at(0.3) > 4.0 * gen.rate_at(0.1)
        queries = gen.generate(1.0)
        in_spike = sum(1 for q in queries if 0.2 <= q.arrival_s < 0.4)
        outside = len(queries) - in_spike
        assert in_spike > outside  # 20% of the horizon, most of the load

    def test_zero_amplitude_matches_flat_spike_generator(self):
        flat = DiurnalLoadGenerator(1000.0, amplitude=0.0, seed=9)
        poisson = SpikeLoadGenerator(1000.0, seed=9)
        assert [q.arrival_s for q in flat.generate(0.3)] == [
            q.arrival_s for q in poisson.generate(0.3)
        ]

    def test_validates(self):
        with pytest.raises(ValueError):
            DiurnalLoadGenerator(0.0)
        with pytest.raises(ValueError):
            DiurnalLoadGenerator(100.0, amplitude=1.5)
        with pytest.raises(ValueError):
            DiurnalLoadGenerator(100.0, period_s=0.0)


# ------------------------------------------------------ figure 11y


class TestFigure11yLadder:
    """The acceptance-criterion assertion: under a 5x seeded flash crowd
    the full protection stack keeps goodput near capacity with bounded
    p99 while the unprotected baseline collapses."""

    def test_ladder(self):
        from repro.experiments import fig11y_overload

        result = fig11y_overload.run(duration_s=0.4)
        none = result.outcomes["none"]
        full = result.outcomes["admission+breaker+brownout"]
        # Full stack: goodput >= 80% of capacity, p99 within the SLA.
        assert result.goodput_fraction("admission+breaker+brownout") >= 0.8
        assert full.summary.p99 <= result.sla_deadline_s
        # Unprotected: p99 grows without bound (a sizeable fraction of
        # the horizon — queueing, not service) and goodput collapses.
        assert none.summary.p99 > 0.25 * result.duration_s
        assert none.summary.p99 > 100.0 * full.summary.p99
        assert result.goodput_fraction("none") < 0.5
        # Ladder is monotone in goodput.
        ladder = fig11y_overload.POLICY_LADDER
        goodputs = [result.goodput_fraction(name) for name in ladder]
        assert goodputs == sorted(goodputs)
        # Brownout engaged and reported its quality cost.
        assert full.overload.max_brownout_tier > 0
        assert full.brownout_quality is not None
        assert all(
            q["recall_at_k"] < 1.0 or q["ndcg_at_k"] <= 1.0
            for q in full.brownout_quality
        )
        rendered = fig11y_overload.render(result)
        assert "brownout tier" in rendered
