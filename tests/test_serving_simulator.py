"""Tests for the discrete-event serving simulator."""

import numpy as np
import pytest

from repro.config import RMC1_SMALL, RMC2_SMALL
from repro.hw import BROADWELL, SKYLAKE
from repro.serving import ServingSimulator


@pytest.fixture(scope="module")
def result_open():
    sim = ServingSimulator(
        BROADWELL, RMC2_SMALL, 32, num_instances=4, per_instance_qps=50, seed=0
    )
    return sim, sim.run(0.5)


class TestOpenLoop:
    def test_records_produced(self, result_open):
        _, result = result_open
        assert len(result.records) > 20

    def test_latency_at_least_service(self, result_open):
        _, result = result_open
        for record in result.records:
            assert record.latency_s >= record.service_s - 1e-12
            assert record.queue_s >= -1e-12

    def test_dispatch_times_ordered_per_instance(self, result_open):
        _, result = result_open
        by_instance = {}
        for record in result.records:
            by_instance.setdefault(record.instance_id, []).append(record)
        for records in by_instance.values():
            starts = [r.start_s for r in sorted(records, key=lambda r: r.start_s)]
            ends = [r.end_s for r in sorted(records, key=lambda r: r.start_s)]
            for s, e_prev in zip(starts[1:], ends[:-1]):
                assert s >= e_prev - 1e-12  # one inference at a time

    def test_active_counts_bounded(self, result_open):
        _, result = result_open
        counts = result.active_job_counts()
        assert counts.min() >= 1
        assert counts.max() <= 4

    def test_reproducible_by_seed(self):
        def run():
            sim = ServingSimulator(
                BROADWELL, RMC2_SMALL, 32, num_instances=2,
                per_instance_qps=50, seed=7,
            )
            return sim.run(0.3).latencies_s()

        np.testing.assert_array_equal(run(), run())

    def test_summary_and_throughput(self, result_open):
        _, result = result_open
        summary = result.summary()
        assert summary.p99 >= summary.p50 >= summary.p5
        assert result.throughput_items_per_s() > 0


class TestClosedLoop:
    def test_instances_always_busy(self):
        sim = ServingSimulator(BROADWELL, RMC2_SMALL, 32, num_instances=3, seed=1)
        result = sim.run(0.3)
        counts = result.active_job_counts()
        # After startup every dispatch sees all instances active.
        assert np.median(counts) == 3

    def test_more_instances_more_throughput(self):
        def throughput(n):
            sim = ServingSimulator(BROADWELL, RMC2_SMALL, 32, num_instances=n, seed=1)
            return sim.run(0.3).throughput_items_per_s()

        assert throughput(4) > 1.5 * throughput(1)

    def test_contention_slows_service(self):
        alone = ServingSimulator(BROADWELL, RMC2_SMALL, 32, 1, seed=2).run(0.3)
        packed = ServingSimulator(BROADWELL, RMC2_SMALL, 32, 8, seed=2).run(0.3)
        assert packed.service_times_s().mean() > 1.5 * alone.service_times_s().mean()


class TestNoiseModel:
    def test_noise_grows_with_contention_on_inclusive(self):
        sim = ServingSimulator(BROADWELL, RMC2_SMALL, 32, 8, seed=0)
        assert sim.noise_sigma(8) > sim.noise_sigma(1)

    def test_inclusive_noisier_than_exclusive(self):
        bdw = ServingSimulator(BROADWELL, RMC2_SMALL, 32, 8, seed=0)
        skl = ServingSimulator(SKYLAKE, RMC2_SMALL, 32, 8, seed=0)
        assert bdw.noise_sigma(8) > skl.noise_sigma(8)


class TestFcSamples:
    def test_sample_count_matches_records(self, result_open):
        sim, result = result_open
        samples = sim.fc_latency_samples(result, 512, 512)
        assert samples.shape == (len(result.records),)
        assert np.all(samples > 0)

    def test_skylake_fc_insensitive_to_colocation(self):
        """FC that fits Skylake's L2 barely varies (Figure 11a)."""
        sim = ServingSimulator(SKYLAKE, RMC2_SMALL, 32, 16, seed=3)
        result = sim.run(0.3)
        samples = sim.fc_latency_samples(result, 512, 512)
        assert samples.std() / samples.mean() < 0.12


class TestValidation:
    def test_rejects_zero_instances(self):
        with pytest.raises(ValueError):
            ServingSimulator(BROADWELL, RMC1_SMALL, 1, num_instances=0)

    def test_rejects_bad_qps(self):
        with pytest.raises(ValueError):
            ServingSimulator(BROADWELL, RMC1_SMALL, 1, 1, per_instance_qps=0)

    def test_rejects_bad_duration(self):
        sim = ServingSimulator(BROADWELL, RMC1_SMALL, 1, 1)
        with pytest.raises(ValueError):
            sim.run(0.0)
