"""Tests for the stream prefetcher and the roofline report."""

import numpy as np
import pytest

from repro.analysis import figure5_intensity_points, intensity_point
from repro.analysis.roofline import roofline_report
from repro.core.operators import EmbeddingTable, FullyConnected, SparseLengthsSum
from repro.core.operators.base import MemoryAccess
from repro.hw import BROADWELL, CacheHierarchy


def stream_misses(prefetch_degree: int) -> tuple[int, float]:
    """Misses for a cold 1 MB sequential stream."""
    h = CacheHierarchy(BROADWELL, prefetch_degree=prefetch_degree)
    h.access(MemoryAccess(address=0, size=1 << 20))
    return h.stats.dram_accesses, h.stats.prefetch_accuracy


def random_misses(prefetch_degree: int, seed: int = 0) -> tuple[int, float]:
    """Misses for 4000 random 64 B gathers over a 1 GB region."""
    h = CacheHierarchy(BROADWELL, prefetch_degree=prefetch_degree)
    rng = np.random.default_rng(seed)
    for _ in range(4000):
        addr = int(rng.integers(0, (1 << 30) // 64)) * 64
        h.access(MemoryAccess(address=addr, size=64))
    return h.stats.dram_accesses, h.stats.prefetch_accuracy


class TestPrefetcher:
    def test_streaming_misses_collapse(self):
        baseline, _ = stream_misses(0)
        prefetched, accuracy = stream_misses(4)
        assert prefetched < 0.3 * baseline
        assert accuracy > 0.9

    def test_random_gathers_barely_helped(self):
        baseline, _ = random_misses(0)
        prefetched, accuracy = random_misses(4)
        assert prefetched >= 0.95 * baseline  # no demand-miss reduction
        assert accuracy < 0.05  # nearly all prefetches are pollution

    def test_sls_rows_get_second_line_from_prefetch(self):
        """A 128 B embedding row spans two lines; next-line prefetch covers
        the second — the only prefetcher win SLS sees."""
        table = EmbeddingTable(100_000, 32)
        sls = SparseLengthsSum("s", table, 80)
        rows = np.random.default_rng(1).integers(0, table.rows, size=3000)

        def misses(degree):
            h = CacheHierarchy(BROADWELL, prefetch_degree=degree)
            h.access_trace(sls.trace_for_rows(rows))
            return h.stats.dram_accesses

        assert misses(1) < 0.7 * misses(0)

    def test_zero_degree_issues_nothing(self):
        h = CacheHierarchy(BROADWELL, prefetch_degree=0)
        h.access(MemoryAccess(address=0, size=4096))
        assert h.stats.prefetches_issued == 0

    def test_rejects_negative_degree(self):
        with pytest.raises(ValueError):
            CacheHierarchy(BROADWELL, prefetch_degree=-1)

    def test_accuracy_zero_without_prefetches(self):
        h = CacheHierarchy(BROADWELL)
        assert h.stats.prefetch_accuracy == 0.0


class TestRooflineReport:
    def test_sls_memory_bound_cnn_compute_bound(self):
        placements = {
            p.point.name: p
            for p in roofline_report(BROADWELL, figure5_intensity_points())
        }
        assert placements["SLS"].bound == "memory"
        assert placements["CNN"].bound == "compute"

    def test_attainable_below_peak(self):
        for p in roofline_report(BROADWELL, figure5_intensity_points()):
            assert p.attainable_gflops <= BROADWELL.peak_gflops_per_core + 1e-9

    def test_sls_attainable_tiny(self):
        placements = {
            p.point.name: p
            for p in roofline_report(BROADWELL, figure5_intensity_points())
        }
        # 0.25 FLOPs/B x 77 GB/s ≈ 19 GFLOP/s, a tenth of peak.
        assert placements["SLS"].attainable_gflops < 0.3 * BROADWELL.peak_gflops_per_core

    def test_fc_batch_dependence(self):
        fc = FullyConnected("fc", 2048, 1000)
        low = roofline_report(BROADWELL, [intensity_point(fc, 1)])[0]
        high = roofline_report(BROADWELL, [intensity_point(fc, 256)])[0]
        assert low.bound == "memory"
        assert high.attainable_gflops > low.attainable_gflops
