"""Shared fixtures: golden-output comparison with an update flag."""

import json
import math
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent / "goldens"


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/*.json from current experiment outputs",
    )


def round_sig(value, digits=6):
    """Round to significant digits so goldens survive tiny FP drift."""
    if isinstance(value, dict):
        return {k: round_sig(v, digits) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [round_sig(v, digits) for v in value]
    if isinstance(value, bool) or not isinstance(value, float):
        return value
    if value == 0.0 or not math.isfinite(value):
        return value
    return round(value, digits - 1 - math.floor(math.log10(abs(value))))


@pytest.fixture
def golden(request):
    """Compare a JSON-serializable payload against a checked-in golden.

    Run ``pytest tests/test_goldens.py --update-goldens`` after an
    intentional behavior change to refresh the files, and commit the diff.
    """

    def check(name: str, payload) -> None:
        canonical = round_sig(payload)
        path = GOLDEN_DIR / f"{name}.json"
        text = json.dumps(canonical, indent=2, sort_keys=True) + "\n"
        if request.config.getoption("--update-goldens"):
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
            return
        if not path.exists():
            pytest.fail(
                f"golden {path} is missing - generate it with "
                "pytest tests/test_goldens.py --update-goldens"
            )
        expected = json.loads(path.read_text())
        assert canonical == expected, (
            f"golden mismatch for {name}; if the change is intentional, "
            "refresh with pytest tests/test_goldens.py --update-goldens"
        )

    return check
