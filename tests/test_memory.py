"""Tests for embedding caches, DRAM/NVM tiering and near-memory processing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import RMC1_SMALL, RMC2_SMALL, RMC3_SMALL
from repro.hw import BROADWELL
from repro.memory import (
    DRAM_ROW_NS,
    LfuRowCache,
    LruRowCache,
    NmpConfig,
    NVM_ROW_NS,
    StaticHotRowCache,
    nmp_speedup,
    plan_tiering,
    popularity_hit_ratio,
    sweep_cache_sizes,
    sweep_dram_fractions,
)


def zipf_trace(n=5000, rows=100_000, alpha=1.2, seed=0):
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, rows + 1, dtype=np.float64)
    weights = ranks**-alpha
    cdf = np.cumsum(weights / weights.sum())
    return np.searchsorted(cdf, rng.random(n)).astype(np.int64)


class TestLruRowCache:
    def test_repeat_hits(self):
        cache = LruRowCache(4)
        assert not cache.access(1)
        assert cache.access(1)

    def test_capacity_enforced(self):
        cache = LruRowCache(2)
        cache.access(1)
        cache.access(2)
        cache.access(3)  # evicts 1
        assert not cache.access(1)

    def test_lru_order(self):
        cache = LruRowCache(2)
        cache.access(1)
        cache.access(2)
        cache.access(1)  # 2 is now LRU
        cache.access(3)  # evicts 2
        assert cache.access(1)
        assert not cache.access(2)

    def test_replay_statistics(self):
        cache = LruRowCache(100)
        result = cache.replay(np.array([1, 2, 1, 2, 3]))
        assert result.lookups == 5
        assert result.hits == 2
        assert result.hit_ratio == pytest.approx(0.4)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            LruRowCache(0)

    def test_rejects_empty_trace(self):
        with pytest.raises(ValueError):
            LruRowCache(4).replay(np.array([], dtype=np.int64))

    @settings(max_examples=30, deadline=None)
    @given(
        trace=st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=60),
        capacity=st.integers(min_value=1, max_value=12),
    )
    def test_property_hits_bounded_by_repeats(self, trace, capacity):
        result = LruRowCache(capacity).replay(np.array(trace))
        repeats = len(trace) - len(set(trace))
        assert 0 <= result.hits <= repeats

    @settings(max_examples=20, deadline=None)
    @given(trace=st.lists(st.integers(min_value=0, max_value=5), min_size=2, max_size=40))
    def test_property_infinite_cache_hits_all_repeats(self, trace):
        result = LruRowCache(10_000).replay(np.array(trace))
        assert result.hits == len(trace) - len(set(trace))


class TestPolicies:
    def test_lfu_keeps_frequent_rows(self):
        cache = LfuRowCache(2)
        for _ in range(5):
            cache.access(1)
        cache.access(2)
        cache.access(3)  # should evict 2 (freq 1), not 1 (freq 5)
        assert cache.access(1)

    def test_static_hot_never_learns(self):
        cache = StaticHotRowCache([1, 2, 3])
        assert cache.access(1)
        assert not cache.access(7)
        assert not cache.access(7)  # still a miss

    def test_static_from_profile_picks_top(self):
        profile = np.array([5, 5, 5, 9, 9, 2])
        cache = StaticHotRowCache.from_profile(profile, capacity_rows=2)
        assert cache.access(5)
        assert cache.access(9)
        assert not cache.access(2)

    def test_bigger_cache_never_worse_lru(self):
        trace = zipf_trace()
        results = sweep_cache_sizes(LruRowCache, trace, [100, 1000, 10_000])
        ratios = [r.hit_ratio for r in results]
        assert ratios == sorted(ratios)

    def test_lfu_beats_lru_on_zipf(self):
        trace = zipf_trace(alpha=1.4)
        lru = LruRowCache(200).replay(trace)
        lfu = LfuRowCache(200).replay(trace)
        assert lfu.hit_ratio >= 0.9 * lru.hit_ratio  # competitive or better


class TestTiering:
    def test_uniform_trace_hit_tracks_fraction(self):
        # Long trace relative to the table so frequency estimates converge.
        rng = np.random.default_rng(0)
        trace = rng.integers(0, 1_000, size=100_000)
        hit = popularity_hit_ratio(trace, dram_fraction=0.5, table_rows=1_000)
        assert hit == pytest.approx(0.5, abs=0.1)

    def test_skewed_trace_beats_fraction(self):
        trace = zipf_trace(alpha=1.4, rows=10_000)
        hit = popularity_hit_ratio(trace, dram_fraction=0.1, table_rows=10_000)
        assert hit > 0.5  # 10% of rows capture most lookups

    def test_zero_budget_zero_hits(self):
        assert popularity_hit_ratio(np.array([1, 2]), 0.0, 1000) == 0.0

    def test_placement_arithmetic(self):
        trace = zipf_trace(rows=10_000)
        placement = plan_tiering(RMC2_SMALL, trace, 10_000, dram_fraction=0.25)
        assert placement.dram_bytes + placement.nvm_bytes == placement.total_bytes
        assert placement.dram_savings_fraction == pytest.approx(0.75)
        assert DRAM_ROW_NS <= placement.expected_lookup_ns <= NVM_ROW_NS

    def test_more_dram_less_latency(self):
        trace = zipf_trace(rows=10_000)
        placements = sweep_dram_fractions(
            RMC2_SMALL, trace, 10_000, [0.05, 0.25, 0.75]
        )
        latencies = [p.expected_lookup_ns for p in placements]
        assert latencies == sorted(latencies, reverse=True)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            popularity_hit_ratio(np.array([1]), 1.5, 100)


class TestNearMemory:
    def test_rmc2_gains_most(self):
        """NMP accelerates SLS: the embedding-dominated class wins big."""
        rmc2 = nmp_speedup(BROADWELL, RMC2_SMALL, 16)
        rmc3 = nmp_speedup(BROADWELL, RMC3_SMALL, 16)
        assert rmc2.end_to_end_speedup > 2.0
        assert rmc3.end_to_end_speedup < 1.1
        assert rmc2.end_to_end_speedup > rmc2.sls_share  # sanity

    def test_speedup_bounded_by_amdahl(self):
        result = nmp_speedup(BROADWELL, RMC2_SMALL, 16, NmpConfig(sls_speedup=1000))
        amdahl = 1.0 / (1.0 - result.sls_share)
        assert result.end_to_end_speedup <= amdahl + 1e-6

    def test_rmc1_modest(self):
        result = nmp_speedup(BROADWELL, RMC1_SMALL, 16)
        assert 1.0 <= result.end_to_end_speedup < 1.5

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            NmpConfig(sls_speedup=0.5)
