"""End-to-end tests for the observability layer.

The two load-bearing guarantees:

* **determinism** — a traced, seeded run exports byte-identical Chrome
  JSON every time;
* **zero perturbation** — running with tracing/metrics off (the default)
  produces bit-identical results to never having instrumented at all.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.config import presets
from repro.experiments import fig11x_faults
from repro.hw.server import BROADWELL
from repro.obs import (
    MetricsRegistry,
    Tracer,
    dumps_chrome,
    flight_report,
    to_chrome,
    validate_chrome,
)
from repro.serving.batch_serving import BatchedServer
from repro.serving.distributed import (
    NetworkConfig,
    distributed_latency,
    shard_tables,
)
from repro.serving.simulator import ServingSimulator
from repro.__main__ import main

_FIG11X_KWARGS = dict(num_machines=4, duration_s=0.4, seed=11)


def _traced_fig11x():
    tracer = Tracer()
    metrics = MetricsRegistry()
    result = fig11x_faults.run(tracer=tracer, metrics=metrics, **_FIG11X_KWARGS)
    return tracer, metrics, result


def _policy_fingerprint(result):
    return {
        name: (
            outcome.summary.p50,
            outcome.summary.p99,
            outcome.summary.p999,
            outcome.stats.offered,
            outcome.stats.completed,
            outcome.stats.failed,
            outcome.stats.retries,
            outcome.stats.hedges,
        )
        for name, outcome in result.outcomes.items()
    }


class TestFig11xTracing:
    def test_traced_runs_export_identical_chrome_json(self):
        tracer_a, _, _ = _traced_fig11x()
        tracer_b, _, _ = _traced_fig11x()
        dump_a = dumps_chrome(tracer_a)
        assert dump_a == dumps_chrome(tracer_b)
        assert len(dump_a) > 1000  # a real timeline, not an empty shell

    def test_traced_export_validates(self):
        tracer, _, _ = _traced_fig11x()
        payload = to_chrome(tracer)
        assert validate_chrome(payload) == []
        # Round-trips through JSON text unchanged.
        assert validate_chrome(json.loads(dumps_chrome(tracer))) == []

    def test_tracing_off_is_bit_identical(self):
        _, _, traced = _traced_fig11x()
        plain = fig11x_faults.run(**_FIG11X_KWARGS)
        assert _policy_fingerprint(plain) == _policy_fingerprint(traced)

    def test_metrics_cover_every_policy(self):
        _, metrics, result = _traced_fig11x()
        payload = metrics.snapshot().to_jsonable()
        for name, outcome in result.outcomes.items():
            offered = payload["counters"][f"serving.router.offered{{policy={name}}}"]
            assert offered == outcome.stats.offered
            latency = payload["histograms"][f"serving.router.latency_s{{policy={name}}}"]
            assert latency["count"] == outcome.stats.completed

    def test_flight_report_summarizes_router_stages(self):
        tracer, _, _ = _traced_fig11x()
        report = flight_report(tracer, top_k=5)
        assert "serving.router.request" in report
        assert "serving.router.attempt" in report


class TestSimulatorTracing:
    _KWARGS = dict(
        batch_size=4, num_instances=2, per_instance_qps=200, seed=3
    )

    def _run(self, tracer=None):
        sim = ServingSimulator(
            BROADWELL, presets.RMC1_SMALL, tracer=tracer, **self._KWARGS
        )
        return sim.run(0.05)

    def test_traced_runs_are_deterministic(self):
        tracer_a, tracer_b = Tracer(), Tracer()
        self._run(tracer_a)
        self._run(tracer_b)
        assert dumps_chrome(tracer_a) == dumps_chrome(tracer_b)
        assert validate_chrome(to_chrome(tracer_a)) == []

    def test_tracing_off_is_bit_identical(self):
        tracer = Tracer()
        traced = self._run(tracer)
        plain = self._run()
        assert plain.records == traced.records
        assert tracer.spans  # the traced run actually recorded something


class TestDistributedTracing:
    def test_fanout_timeline_matches_result(self):
        config = presets.RMC2_SMALL
        plan = shard_tables(config, num_shards=2)
        tracer = Tracer()
        traced = distributed_latency(
            BROADWELL, config, batch_size=4, plan=plan,
            network=NetworkConfig(), tracer=tracer,
        )
        plain = distributed_latency(
            BROADWELL, config, batch_size=4, plan=plan, network=NetworkConfig()
        )
        assert traced == plain
        assert validate_chrome(to_chrome(tracer)) == []
        fanout = next(
            s for s in tracer.spans if s.name == "serving.shard.fanout"
        )
        assert fanout.end_s == pytest.approx(traced.total_seconds)
        shards = [s for s in tracer.spans if s.name == "serving.shard.sls"]
        assert len(shards) == plan.num_shards


class TestBatchTracing:
    def test_batches_become_spans(self):
        tracer = Tracer()
        server = BatchedServer(
            BROADWELL, presets.RMC1_SMALL, max_batch=8, tracer=tracer
        )
        traced = server.simulate(offered_qps=500, duration_s=0.05, seed=5)
        plain = BatchedServer(
            BROADWELL, presets.RMC1_SMALL, max_batch=8
        ).simulate(offered_qps=500, duration_s=0.05, seed=5)
        assert np.array_equal(traced.query_latencies_s, plain.query_latencies_s)
        assert traced.items_served == plain.items_served
        assert traced.mean_batch_size == plain.mean_batch_size
        assert validate_chrome(to_chrome(tracer)) == []
        requests = [
            s for s in tracer.spans if s.name == "serving.batch.request"
        ]
        assert sum(s.args["num_items"] for s in requests) == traced.items_served


class TestCli:
    def test_json_flag_writes_deterministic_document(self, tmp_path, capsys):
        out = tmp_path / "table1.json"
        assert main(["table1", "--json", str(out)]) == 0
        capsys.readouterr()
        document = json.loads(out.read_text())
        assert document["experiment"] == "table1"
        assert "result" in document

    def test_json_flag_defaults_to_stdout(self, capsys):
        assert main(["table1", "--json"]) == 0
        stdout = capsys.readouterr().out
        assert '"experiment": "table1"' in stdout

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["not-an-experiment"]) == 2
        capsys.readouterr()

    def test_trace_rejects_unknown_experiment(self, capsys):
        assert main(["trace", "not-an-experiment"]) == 2
        capsys.readouterr()

    def test_trace_rejects_uninstrumented_experiment(self, capsys):
        assert main(["trace", "table1"]) == 2
        err = capsys.readouterr().err
        assert "figure11x" in err  # points at the traceable ones
