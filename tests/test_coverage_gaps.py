"""Behavioral tests for paths not covered elsewhere."""

import numpy as np
import pytest

from repro.config import (
    MLPConfig,
    RMC1_SMALL,
    RMC2_SMALL,
    RMC3_SMALL,
    normalize_table1,
)
from repro.core.graph import fc_weight_bytes
from repro.core.operators.base import Operator, OperatorCost, OP_OTHER
from repro.data import InputGenerator, ZipfSparseGenerator
from repro.experiments import fig10_latency_throughput
from repro.hw.timing import OP_OVERHEAD_S, TimingModel
from repro.hw import BROADWELL
from repro.serving import SLA, production_fleet


class TestNormalizationOptions:
    def test_explicit_references(self):
        rows = normalize_table1(
            [RMC1_SMALL, RMC3_SMALL],
            fc_reference=RMC3_SMALL,
            table_reference=RMC3_SMALL,
            lookup_reference=RMC1_SMALL,
        )
        by_class = {r.model_class: r for r in rows}
        assert by_class["RMC3"].bottom_fc[-1] == pytest.approx(1.0)
        assert by_class["RMC1"].lookups == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            normalize_table1([])

    def test_fallback_reference_when_class_missing(self):
        rows = normalize_table1([RMC2_SMALL])
        assert rows[0].num_tables == pytest.approx(1.0)


class TestInputGeneratorCustom:
    def test_custom_generators_used(self):
        gens = [
            ZipfSparseGenerator(t.rows, t.lookups_per_sample, alpha=1.5)
            for t in RMC1_SMALL.embedding_tables
        ]
        generator = InputGenerator(RMC1_SMALL, sparse_generators=gens, seed=3)
        _, sparse = generator.batch(64)
        # Zipf skew: a large share of IDs land in the hot head.
        head_share = np.mean(sparse[0].ids < 100)
        assert head_share > 0.2


class TestFleetViews:
    def test_combined_view_is_sum_of_splits(self):
        fleet = production_fleet()
        combined = fleet.cycles_by_operator(None)
        rec = fleet.cycles_by_operator(True)
        non = fleet.cycles_by_operator(False)
        for op, share in combined.items():
            assert share == pytest.approx(rec.get(op, 0) + non.get(op, 0))


class TestFigure10Helpers:
    def test_best_respects_sla(self):
        result = fig10_latency_throughput.run(sla=SLA(0.008), max_jobs=12)
        best = result.best("Skylake")
        assert best is not None
        assert best.latency_s <= 0.008

    def test_best_none_when_impossible(self):
        result = fig10_latency_throughput.run(sla=SLA(1e-7), max_jobs=4)
        assert result.best("Broadwell") is None

    def test_unknown_point_raises(self):
        result = fig10_latency_throughput.run(max_jobs=4)
        with pytest.raises(KeyError):
            result.point("Broadwell", 99)


class TestGraphHelpers:
    def test_fc_weight_bytes_matches_mlp_storage(self):
        assert fc_weight_bytes(RMC1_SMALL) == RMC1_SMALL.mlp_storage_bytes()


class TestOperatorBase:
    def test_unknown_op_type_rejected_by_timing(self):
        class Weird(Operator):
            op_type = OP_OTHER

            def forward(self, x):
                return x

            def cost(self, batch_size):
                return OperatorCost(1, 1, 1)

        from repro.core.graph import OpSpec

        spec = OpSpec(
            name="weird",
            op_type=OP_OTHER,
            flops_per_sample=1,
            weight_bytes=0,
            activation_bytes_per_sample=1,
        )
        with pytest.raises(ValueError):
            TimingModel(BROADWELL).op_time(spec, 1)

    def test_stateless_operator_default_trace(self):
        class Stateless(Operator):
            def forward(self, x):
                return x

            def cost(self, batch_size):
                return OperatorCost(0, 0, 0)

        assert list(Stateless("s").address_trace(4)) == []

    def test_op_overhead_floor(self):
        """Even a zero-work FC costs the dispatch overhead."""
        t = TimingModel(BROADWELL).fc_time("z", 0, 4, 0, batch=1)
        assert t.seconds >= OP_OVERHEAD_S


class TestMlpConfigDetails:
    def test_final_activation_none_means_activation(self):
        mlp = MLPConfig([4, 2], activation="relu")
        assert mlp.final_activation is None
        from repro.core.graph import _mlp_ops

        ops = _mlp_ops("x", 3, mlp)
        assert ops[-1].op_type == "Activation"

    def test_activation_none_skips_activations(self):
        mlp = MLPConfig([4, 2], activation="none")
        from repro.core.graph import _mlp_ops

        ops = _mlp_ops("x", 3, mlp)
        assert all(op.op_type == "FC" for op in ops)
