"""Integration: ranking quality of the filtering → ranking pipeline.

Uses the synthetic-CTR teacher as ground truth: candidates are generated
with known true logits, the pipeline filters and ranks them, and
recall@k/NDCG@k quantify what the lightweight filtering stage costs.
"""

import numpy as np
import pytest

from repro.config import MLPConfig, ModelConfig, uniform_tables
from repro.core import RecommendationModel
from repro.data import SyntheticCtrDataset
from repro.serving import pipeline_quality
from repro.train import TrainableDLRM, Trainer


@pytest.fixture(scope="module")
def trained_world():
    """A teacher, a trained filter model, and a candidate pool."""
    config = ModelConfig(
        name="pq",
        model_class="RMC1",
        dense_features=8,
        bottom_mlp=MLPConfig([16, 8]),
        embedding_tables=uniform_tables(2, 200, 8, 4),
        top_mlp=MLPConfig([16, 1], final_activation="sigmoid"),
    )
    dataset = SyntheticCtrDataset(config, signal_scale=2.5, seed=21)
    model = RecommendationModel(config)
    Trainer(TrainableDLRM(model), dataset, lr=0.3).fit(
        steps=400, batch_size=256, eval_samples=512
    )
    candidates = dataset.batch(400)
    true_logits = dataset.true_logits(candidates.dense, candidates.sparse)
    return model, candidates, true_logits


class TestPipelineQuality:
    def test_trained_filter_beats_random_selection(self, trained_world):
        model, candidates, true_logits = trained_world
        scores = model.forward(candidates.dense, candidates.sparse)
        model_top = list(np.argsort(scores)[::-1][:20])
        rng = np.random.default_rng(3)
        random_top = list(rng.choice(400, size=20, replace=False))

        model_q = pipeline_quality(model_top, true_logits, k=20)
        random_q = pipeline_quality(random_top, true_logits, k=20)
        assert model_q["recall_at_k"] > random_q["recall_at_k"] + 0.15
        assert model_q["ndcg_at_k"] > random_q["ndcg_at_k"]

    def test_deeper_filter_keep_never_hurts_recall(self, trained_world):
        model, candidates, true_logits = trained_world
        scores = model.forward(candidates.dense, candidates.sparse)
        order = list(np.argsort(scores)[::-1])
        true_top = set(np.argsort(true_logits)[::-1][:10])

        def survivors(keep):
            return len(true_top.intersection(order[:keep])) / 10

        assert survivors(100) >= survivors(30) >= survivors(10) - 1e-9

    def test_quality_metrics_bounded(self, trained_world):
        model, candidates, true_logits = trained_world
        scores = model.forward(candidates.dense, candidates.sparse)
        top = list(np.argsort(scores)[::-1][:10])
        quality = pipeline_quality(top, true_logits, k=10)
        assert 0.0 <= quality["recall_at_k"] <= 1.0
        assert 0.0 <= quality["ndcg_at_k"] <= 1.0
