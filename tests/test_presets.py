"""Tests for the production presets against the paper's Table I anchors."""

import pytest

from repro.config import (
    NCF,
    PRODUCTION_PRESETS,
    RMC1_LARGE,
    RMC1_SMALL,
    RMC2_LARGE,
    RMC2_SMALL,
    RMC3_LARGE,
    RMC3_SMALL,
    get_preset,
    normalize_table1,
    scaled_for_execution,
)

GB = 1024**3
MB = 1024**2


class TestStorageAnchors:
    """Aggregate embedding storage: ~100 MB / ~10 GB / ~1 GB classes."""

    def test_rmc1_tens_of_mb(self):
        for cfg in (RMC1_SMALL, RMC1_LARGE):
            assert 10 * MB < cfg.embedding_storage_bytes() < 200 * MB

    def test_rmc2_gigabytes(self):
        assert 2 * GB < RMC2_SMALL.embedding_storage_bytes() < 12 * GB
        assert 5 * GB < RMC2_LARGE.embedding_storage_bytes() < 12 * GB

    def test_rmc3_about_a_gigabyte(self):
        assert 0.5 * GB < RMC3_SMALL.embedding_storage_bytes() < 2 * GB
        assert 0.5 * GB < RMC3_LARGE.embedding_storage_bytes() < 2 * GB

    def test_storage_ordering_rmc2_largest(self):
        assert (
            RMC2_SMALL.embedding_storage_bytes()
            > RMC3_SMALL.embedding_storage_bytes()
            > RMC1_SMALL.embedding_storage_bytes()
        )


class TestTableIShape:
    def test_rmc2_has_order_of_magnitude_more_tables(self):
        assert RMC2_SMALL.num_tables >= 8 * RMC1_SMALL.num_tables

    def test_rmc3_widest_bottom_mlp(self):
        assert (
            RMC3_SMALL.bottom_mlp.layer_sizes[0]
            == 10 * RMC1_SMALL.bottom_mlp.layer_sizes[0]
        )

    def test_lookups_rmc1_rmc2_4x_rmc3(self):
        l1 = RMC1_SMALL.embedding_tables[0].lookups_per_sample
        l3 = RMC3_SMALL.embedding_tables[0].lookups_per_sample
        assert l1 == 4 * l3

    def test_embedding_dim_uniform_across_classes(self):
        dims = {
            t.dim
            for cfg in (RMC1_SMALL, RMC2_SMALL, RMC3_SMALL)
            for t in cfg.embedding_tables
        }
        assert dims == {32}

    def test_normalized_table1_matches_paper_ratios(self):
        rows = {
            r.model_class: r
            for r in normalize_table1([RMC1_SMALL, RMC2_SMALL, RMC3_SMALL])
        }
        assert rows["RMC1"].bottom_fc == pytest.approx((8, 4, 1))
        assert rows["RMC3"].bottom_fc == pytest.approx((80, 8, 4))
        assert rows["RMC2"].num_tables == pytest.approx(10)
        assert rows["RMC1"].lookups == pytest.approx(4)
        assert rows["RMC3"].lookups == pytest.approx(1)

    def test_large_variants_are_larger(self):
        assert RMC1_LARGE.flops_per_sample() > RMC1_SMALL.flops_per_sample()
        assert (
            RMC2_LARGE.embedding_storage_bytes()
            > RMC2_SMALL.embedding_storage_bytes()
        )
        assert RMC3_LARGE.flops_per_sample() > RMC3_SMALL.flops_per_sample()


class TestNcfGap:
    """NCF must be far smaller than production models (Section VII)."""

    def test_ncf_fewer_lookups(self):
        assert NCF.total_lookups == 2
        assert RMC2_SMALL.total_lookups == 1600

    def test_ncf_embeddings_orders_of_magnitude_below_rmc2(self):
        assert RMC2_SMALL.embedding_storage_bytes() > 50 * NCF.embedding_storage_bytes()

    def test_ncf_fc_params_below_rmc3(self):
        assert RMC3_SMALL.mlp_parameter_count() > 10 * NCF.mlp_parameter_count()


class TestPresetAccess:
    def test_get_preset_known(self):
        assert get_preset("RMC1-small") is RMC1_SMALL

    def test_get_preset_unknown_lists_names(self):
        with pytest.raises(KeyError, match="RMC1-small"):
            get_preset("nope")

    def test_all_presets_registered(self):
        assert len(PRODUCTION_PRESETS) == 8


class TestScaledForExecution:
    def test_caps_rows(self):
        scaled = scaled_for_execution(RMC2_SMALL, max_rows=5000)
        assert max(t.rows for t in scaled.embedding_tables) == 5000

    def test_preserves_per_sample_costs(self):
        scaled = scaled_for_execution(RMC2_SMALL, max_rows=5000)
        assert scaled.flops_per_sample() == RMC2_SMALL.flops_per_sample()
        assert scaled.total_lookups == RMC2_SMALL.total_lookups

    def test_noop_when_small_enough(self):
        assert scaled_for_execution(NCF, max_rows=10_000_000) is NCF

    def test_renames_with_suffix(self):
        scaled = scaled_for_execution(RMC2_SMALL, max_rows=5000)
        assert scaled.name.endswith("-exec")
