"""Ablation: software embedding-cache policies on Figure-14 traces.

The locality the paper measures in production traces is only useful if a
cache can capture it: replay high- and low-locality traces through LRU,
LFU and pinned-hot-set row caches and compare hit ratios and the resulting
predicted RMC2 latency.
"""

import numpy as np
from conftest import emit

from repro.analysis import format_table
from repro.config import RMC2_SMALL
from repro.data import synthetic_production_traces
from repro.hw import BROADWELL, TimingModel
from repro.memory import LfuRowCache, LruRowCache, StaticHotRowCache

CAPACITY_ROWS = 50_000


def run_study():
    traces = synthetic_production_traces(table_rows=1_000_000, length=25_000)
    picks = [traces[1], traces[5], traces[9]]  # low / medium / high locality
    timing = TimingModel(BROADWELL)
    rows = []
    for trace in picks:
        half = trace.ids.size // 2
        profile, evaluate = trace.ids[:half], trace.ids[half:]
        results = {
            "LRU": LruRowCache(CAPACITY_ROWS).replay(evaluate),
            "LFU": LfuRowCache(CAPACITY_ROWS).replay(evaluate),
            "StaticHot": StaticHotRowCache.from_profile(
                profile, CAPACITY_ROWS
            ).replay(evaluate),
        }
        best = max(results.values(), key=lambda r: r.hit_ratio)
        latency_s = timing.model_latency(
            RMC2_SMALL, 16, locality_hit_ratio=best.hit_ratio
        ).total_seconds
        rows.append(
            [
                trace.name,
                f"{100 * trace.unique_fraction():.0f}%",
                f"{100 * results['LRU'].hit_ratio:.0f}%",
                f"{100 * results['LFU'].hit_ratio:.0f}%",
                f"{100 * results['StaticHot'].hit_ratio:.0f}%",
                f"{latency_s * 1e3:.2f} ms",
            ]
        )
    baseline = timing.model_latency(RMC2_SMALL, 16).total_seconds
    return rows, baseline


def test_ablation_embedding_cache(benchmark):
    rows, baseline = benchmark.pedantic(run_study, iterations=1, rounds=1)
    emit(
        "Ablation: embedding-cache policies "
        f"({CAPACITY_ROWS} rows; baseline RMC2 {baseline * 1e3:.2f} ms)",
        format_table(
            ["trace", "unique", "LRU hits", "LFU hits", "pinned hits",
             "RMC2 latency (best)"],
            rows,
        ),
    )
    # High-locality traces must be well captured by at least one policy.
    assert int(rows[-1][2].rstrip("%")) > 60
    # Near-random traces cannot be cached.
    assert int(rows[0][2].rstrip("%")) < 25
