"""Figure 2 bench: per-inference FLOPs and bytes across workloads."""

from conftest import emit

from repro.experiments import fig02_flops_bytes


def test_fig02_compute_memory(benchmark):
    result = benchmark(fig02_flops_bytes.run)
    emit("Figure 2: compute vs memory requirements", fig02_flops_bytes.render(result))
    points = result.by_name()
    assert points["RMC2-small"].storage_bytes > 100 * points["MLPerf-NCF"].storage_bytes
    assert points["ResNet50"].operational_intensity > 10
