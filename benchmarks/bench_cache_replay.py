"""Perf-trajectory bench: reference vs vectorized cache-replay engines.

Times the same production-like SLS lookup trace through both
``CacheHierarchy`` engines at 100k and 1M lookups and writes
``BENCH_cache_replay.json`` (wallclock, speedup, trace size, backend) so
future PRs can track the replay engine's trajectory. The vectorized
engine's contract is bit-identical stats, so the two timings are the same
computation — any speedup is pure implementation.

Run directly (CI uploads the JSON as an artifact)::

    PYTHONPATH=src python benchmarks/bench_cache_replay.py

or through pytest (excluded from tier-1, which only collects ``tests/``)::

    PYTHONPATH=src python -m pytest benchmarks/bench_cache_replay.py -m perf -s
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core.operators import EmbeddingTable, SparseLengthsSum
from repro.data.sparse import TemporalReuseGenerator
from repro.hw.hierarchy import CacheHierarchy
from repro.hw.server import BROADWELL

DEFAULT_OUT = Path(__file__).parent / "BENCH_cache_replay.json"

TABLE_ROWS = 1_000_000
EMBEDDING_DIM = 32
REUSE_PROBABILITY = 0.55  # production-like moderate temporal reuse (Fig 14)


def _replay_once(engine: str, lines: np.ndarray) -> tuple[float, str, dict]:
    hierarchy = CacheHierarchy(BROADWELL, engine=engine)
    start_s = time.perf_counter()
    hierarchy.access_lines(lines)
    elapsed_s = time.perf_counter() - start_s
    stats = hierarchy.stats
    digest = {
        "l1_hits": stats.l1_hits,
        "l2_hits": stats.l2_hits,
        "l3_hits": stats.l3_hits,
        "dram_accesses": stats.dram_accesses,
    }
    return elapsed_s, hierarchy.backend, digest


def run_bench(lookups_list: tuple[int, ...] = (100_000, 1_000_000)) -> dict:
    """Time both engines on shared traces; returns the JSON report."""
    rng = np.random.default_rng(2020)
    table = EmbeddingTable(TABLE_ROWS, EMBEDDING_DIM)
    sls = SparseLengthsSum("bench", table, lookups_per_sample=80)
    generator = TemporalReuseGenerator(
        table.rows, 1, reuse_probability=REUSE_PROBABILITY
    )
    results = []
    for lookups in lookups_list:
        rows = generator.ids(lookups, rng)
        lines = sls.line_trace_for_rows(rows)
        reference_s, _, reference_stats = _replay_once("reference", lines)
        vectorized_s, backend, vectorized_stats = _replay_once(
            "vectorized", lines
        )
        assert reference_stats == vectorized_stats, "engines diverged"
        results.append(
            {
                "lookups": int(lookups),
                "trace_lines": int(lines.size),
                "reference_s": reference_s,
                "vectorized_s": vectorized_s,
                "speedup": reference_s / vectorized_s,
                "backend": backend,
                "dram_accesses": reference_stats["dram_accesses"],
            }
        )
    return {
        "bench": "cache_replay",
        "config": {
            "server": "BROADWELL",
            "table_rows": TABLE_ROWS,
            "embedding_dim": EMBEDDING_DIM,
            "reuse_probability": REUSE_PROBABILITY,
        },
        "results": results,
    }


def render(report: dict) -> str:
    """Text table of one bench report."""
    rows = [
        [
            f"{r['lookups']:,}",
            f"{r['trace_lines']:,}",
            f"{r['reference_s']:.3f}",
            f"{r['vectorized_s']:.3f}",
            f"{r['speedup']:.1f}x",
            r["backend"],
        ]
        for r in report["results"]
    ]
    return format_table(
        ["lookups", "lines", "reference s", "vectorized s", "speedup", "backend"],
        rows,
        title="Cache-replay engine wallclock (bit-identical stats)",
    )


@pytest.mark.perf
def test_cache_replay_perf():
    """Replay bench at the small size; asserts the vectorized engine wins."""
    from conftest import emit

    report = run_bench(lookups_list=(100_000,))
    emit("Cache replay: reference vs vectorized", render(report))
    assert report["results"][0]["speedup"] > 1.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="JSON report path"
    )
    parser.add_argument(
        "--lookups",
        type=int,
        nargs="+",
        default=[100_000, 1_000_000],
        help="trace sizes to time",
    )
    args = parser.parse_args(argv)
    report = run_bench(tuple(args.lookups))
    print(render(report))
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
