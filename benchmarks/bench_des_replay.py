"""Perf-trajectory bench: reference vs vectorized vs native DES engines.

Times identical serving simulations through the reference per-event loop,
the vectorized numpy engine, and the self-compiled C backend, then runs
the fleet-day experiment head-to-head at full fleet scale. Both engines
are bit-identical by contract (``tests/test_des_equivalence.py``), so
every timing pair is the same computation — any speedup is pure
implementation. Writes ``BENCH_des_replay.json`` so future PRs can track
the DES engine's trajectory.

Run directly (CI uploads the JSON as an artifact)::

    PYTHONPATH=src python benchmarks/bench_des_replay.py

or through pytest (excluded from tier-1, which only collects ``tests/``)::

    PYTHONPATH=src python -m pytest benchmarks/bench_des_replay.py -m perf -s
"""

from __future__ import annotations

import argparse
import hashlib
import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import format_table
from repro.config.presets import RMC1
from repro.experiments import fleet_day
from repro.hw.server import BROADWELL
from repro.serving._des_native import native_available
from repro.serving.simulator import ServingSimulator

DEFAULT_OUT = Path(__file__).parent / "BENCH_des_replay.json"

SIM_INSTANCES = 48
SIM_DURATION_S = 0.5
SIM_SEED = 7
# Full-scale head-to-head samples one window per quarter of the day.
FLEET_HOURS = (0.0, 6.0, 12.0, 18.0)
# The vectorized engine must beat the reference loop by at least this
# factor at the largest simulator size (with the C backend; the pure
# python floor is lower because the event core stays a scalar heap).
NATIVE_FLOOR = 10.0
PYTHON_FLOOR = 2.0


def _sim_once(
    engine: str, backend: str, offered_target: int
) -> tuple[float, str, int, tuple]:
    qps = offered_target / (SIM_INSTANCES * SIM_DURATION_S)
    sim = ServingSimulator(
        BROADWELL,
        RMC1,
        batch_size=4,
        num_instances=SIM_INSTANCES,
        per_instance_qps=qps,
        seed=SIM_SEED,
        engine=engine,
        backend=backend,
    )
    start_s = time.perf_counter()
    result = sim.run(SIM_DURATION_S)
    elapsed_s = time.perf_counter() - start_s
    digest = (
        result.offered,
        result.killed,
        result.shed,
        result.max_queue_depth,
        hashlib.sha256(
            np.asarray(result.latencies_s()).tobytes()
        ).hexdigest(),
    )
    backend_used = getattr(sim, "last_backend", "reference")
    return elapsed_s, backend_used, result.offered, digest


def bench_simulator(offered_targets: tuple[int, ...]) -> list[dict]:
    """Time all three backends on identical open-loop simulations."""
    rows = []
    for target in offered_targets:
        reference_s, _, offered, reference_digest = _sim_once(
            "reference", "auto", target
        )
        python_s, _, _, python_digest = _sim_once(
            "vectorized", "python", target
        )
        assert python_digest == reference_digest, "engines diverged"
        row = {
            "offered_target": int(target),
            "offered": int(offered),
            "num_instances": SIM_INSTANCES,
            "reference_s": reference_s,
            "python_s": python_s,
            "python_speedup": reference_s / python_s,
            "native_s": None,
            "native_speedup": None,
        }
        if native_available():
            native_s, backend, _, native_digest = _sim_once(
                "vectorized", "native", target
            )
            assert backend == "native"
            assert native_digest == reference_digest, "C backend diverged"
            row["native_s"] = native_s
            row["native_speedup"] = reference_s / native_s
        rows.append(row)
    return rows


def bench_fleet_head_to_head(seed: int = 17) -> dict:
    """The fleet-day experiment, both engines, full fleet, sampled hours."""
    times = {}
    results = {}
    for engine in ("reference", "vectorized"):
        start_s = time.perf_counter()
        results[engine] = fleet_day.run(
            engine=engine, seed=seed, hours=FLEET_HOURS
        )
        times[engine] = time.perf_counter() - start_s
    assert results["reference"].windows == results["vectorized"].windows, (
        "fleet-day engines diverged"
    )
    reference = results["reference"]
    return {
        "hours": list(FLEET_HOURS),
        "replicas": [w.replicas for w in reference.windows],
        "offered": reference.total_offered,
        "reference_s": times["reference"],
        "vectorized_s": times["vectorized"],
        "speedup": times["reference"] / times["vectorized"],
    }


def bench_fleet_full_day(seed: int = 17) -> dict:
    """The full default-scale day, vectorized only (reference takes hours)."""
    start_s = time.perf_counter()
    result = fleet_day.run(seed=seed)
    elapsed_s = time.perf_counter() - start_s
    return {
        "windows": len(result.windows),
        "peak_replicas": result.peak_replicas,
        "offered": result.total_offered,
        "availability": result.availability,
        "vectorized_s": elapsed_s,
        "offered_per_s": result.total_offered / elapsed_s,
    }


def run_bench(
    offered_targets: tuple[int, ...] = (10_000, 100_000, 1_000_000),
    fleet: bool = True,
) -> dict:
    """Time engines on shared workloads; returns the JSON report."""
    report = {
        "bench": "des_replay",
        "config": {
            "server": "BROADWELL",
            "model": RMC1.name,
            "sim_instances": SIM_INSTANCES,
            "sim_duration_s": SIM_DURATION_S,
            "native_available": native_available(),
        },
        "simulator": bench_simulator(offered_targets),
    }
    if fleet:
        report["fleet_head_to_head"] = bench_fleet_head_to_head()
        report["fleet_full_day"] = bench_fleet_full_day()
    return report


def check_floors(report: dict) -> None:
    """Assert the speedup floors the engine contract promises."""
    largest = max(report["simulator"], key=lambda r: r["offered_target"])
    if report["config"]["native_available"]:
        assert largest["native_speedup"] >= NATIVE_FLOOR, (
            f"native speedup {largest['native_speedup']:.1f}x below "
            f"{NATIVE_FLOOR:.0f}x floor at {largest['offered_target']:,}"
        )
    else:
        assert largest["python_speedup"] >= PYTHON_FLOOR, (
            f"python speedup {largest['python_speedup']:.1f}x below "
            f"{PYTHON_FLOOR:.0f}x floor at {largest['offered_target']:,}"
        )
    full_day = report.get("fleet_full_day")
    if full_day is not None:
        assert full_day["offered"] >= 1_000_000, "fleet day below 1M requests"
        assert full_day["peak_replicas"] >= 1_000, "fleet below 1000 replicas"


def render(report: dict) -> str:
    """Text tables of one bench report."""
    sim_rows = [
        [
            f"{r['offered']:,}",
            f"{r['reference_s']:.3f}",
            f"{r['python_s']:.3f}",
            f"{r['python_speedup']:.1f}x",
            "-" if r["native_s"] is None else f"{r['native_s']:.3f}",
            "-"
            if r["native_speedup"] is None
            else f"{r['native_speedup']:.1f}x",
        ]
        for r in report["simulator"]
    ]
    parts = [
        format_table(
            [
                "offered", "reference s", "python s", "speedup",
                "native s", "speedup",
            ],
            sim_rows,
            title=(
                f"DES engine wallclock, {SIM_INSTANCES}-instance simulator "
                "(bit-identical records)"
            ),
        )
    ]
    head = report.get("fleet_head_to_head")
    if head is not None:
        parts.append(
            f"fleet head-to-head ({len(head['hours'])} windows, "
            f"{max(head['replicas'])} replicas at peak, "
            f"{head['offered']:,} offered): reference "
            f"{head['reference_s']:.1f} s, vectorized "
            f"{head['vectorized_s']:.1f} s ({head['speedup']:.1f}x)"
        )
    full_day = report.get("fleet_full_day")
    if full_day is not None:
        parts.append(
            f"full day (vectorized): {full_day['offered']:,} offered across "
            f"{full_day['windows']} windows, peak "
            f"{full_day['peak_replicas']} replicas, "
            f"{full_day['vectorized_s']:.1f} s wall "
            f"({full_day['offered_per_s']:,.0f} requests/s)"
        )
    return "\n".join(parts)


@pytest.mark.perf
def test_des_replay_perf():
    """Small-size bench; asserts the vectorized engine wins."""
    from conftest import emit

    report = run_bench(offered_targets=(100_000,), fleet=False)
    emit("DES replay: reference vs vectorized vs native", render(report))
    best = report["simulator"][0]["native_speedup"] or (
        report["simulator"][0]["python_speedup"]
    )
    assert best > 1.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="JSON report path"
    )
    parser.add_argument(
        "--offered",
        type=int,
        nargs="+",
        default=[10_000, 100_000, 1_000_000],
        help="simulator offered-load sizes to time",
    )
    parser.add_argument(
        "--skip-fleet",
        action="store_true",
        help="skip the (minutes-long) fleet-day sections",
    )
    args = parser.parse_args(argv)
    report = run_bench(tuple(args.offered), fleet=not args.skip_fleet)
    check_floors(report)
    print(render(report))
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
