"""Cluster scheduling bench: heterogeneity-aware vs blind routing.

Quantifies the paper's closing claim — exploiting server heterogeneity
when scheduling inference maximizes fleet latency-bounded throughput.
"""

from conftest import emit

from repro.analysis import format_table
from repro.config import RMC1_SMALL, RMC2_SMALL, RMC3_SMALL
from repro.hw import BROADWELL, HASWELL, SKYLAKE
from repro.serving import (
    MachinePool,
    SLA,
    WorkloadDemand,
    aware_capacity,
    blind_capacity,
)

POOLS = [
    MachinePool(HASWELL, 12),
    MachinePool(BROADWELL, 12),
    MachinePool(SKYLAKE, 12),
]
DEMANDS = [
    WorkloadDemand(RMC1_SMALL, batch_size=4, sla=SLA(0.001), weight=0.4),
    WorkloadDemand(RMC2_SMALL, batch_size=32, sla=SLA(0.050), weight=0.4),
    WorkloadDemand(RMC3_SMALL, batch_size=32, sla=SLA(0.050), weight=0.2),
]


def run_comparison():
    return blind_capacity(POOLS, DEMANDS), aware_capacity(POOLS, DEMANDS)


def test_cluster_scheduling(benchmark):
    blind, aware = benchmark(run_comparison)
    rows = []
    for pool, blind_row, aware_row in zip(POOLS, blind.assignment, aware.assignment):
        rows.append(
            [pool.server.name]
            + [f"{100 * f:.0f}%" for f in blind_row]
            + [f"{100 * f:.0f}%" for f in aware_row]
        )
    demand_names = [d.config.model_class for d in DEMANDS]
    table = format_table(
        ["pool"]
        + [f"blind {n}" for n in demand_names]
        + [f"aware {n}" for n in demand_names],
        rows,
    )
    gain = aware.served_scale / blind.served_scale
    emit(
        "Cluster scheduling: blind vs heterogeneity-aware "
        f"(fleet throughput x{gain:.2f})",
        table
        + f"\nblind served scale: {blind.served_scale:,.0f} items/s"
        + f"\naware served scale: {aware.served_scale:,.0f} items/s",
    )
    assert gain > 1.05
