"""Ablation: batch-size limits under an SLA (batched serving DES).

Connects Figure 8 to the serving layer: larger batches amortize compute
but add queueing delay; for a fixed offered load and SLA there is an
optimal batcher limit, and it differs by server generation.
"""

from conftest import emit

from repro.analysis import format_table
from repro.config import RMC3_SMALL
from repro.hw import BROADWELL, SKYLAKE
from repro.serving import SLA, batching_sweep, best_max_batch

MAX_BATCHES = [1, 8, 32, 128]
SLA_10MS = SLA(deadline_s=0.010)
QPS = 4000


def run_study():
    out = {}
    for server in (BROADWELL, SKYLAKE):
        out[server.name] = batching_sweep(
            server, RMC3_SMALL, offered_qps=QPS, max_batches=MAX_BATCHES,
            sla=SLA_10MS, duration_s=0.5,
        )
    return out


def test_ablation_batching_sla(benchmark):
    sweeps = benchmark.pedantic(run_study, iterations=1, rounds=1)
    rows = []
    for server_name, results in sweeps.items():
        for r in results:
            summary = r.summary()
            rows.append(
                [
                    server_name,
                    r.max_batch,
                    f"{r.mean_batch_size:.1f}",
                    f"{summary.p50 * 1e3:.2f}",
                    f"{summary.p99 * 1e3:.2f}",
                    f"{r.throughput_items_per_s():,.0f}",
                    "yes" if r.meets(SLA_10MS) else "NO",
                ]
            )
    emit(
        f"Ablation: RMC3 batching under a 10 ms SLA at {QPS} qps",
        format_table(
            ["server", "max batch", "mean batch", "p50 ms", "p99 ms",
             "items/s", "meets SLA"],
            rows,
        ),
    )
    for server_name, results in sweeps.items():
        best = best_max_batch(results, SLA_10MS)
        assert best is not None, f"{server_name} cannot meet the SLA"
        assert best.max_batch > 1  # batching is worth it at this load
