"""Table I bench: normalized model architecture parameters."""

from conftest import emit

from repro.experiments import table1_model_params


def test_table1_model_params(benchmark):
    result = benchmark(table1_model_params.run)
    emit("Table I: model parameters", table1_model_params.render(result))
    rows = result.by_class()
    assert rows["RMC3"].bottom_fc[0] == 80
    assert rows["RMC2"].num_tables == 10
    assert rows["RMC1"].lookups == 4
