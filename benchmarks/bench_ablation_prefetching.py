"""Ablation: hardware stream prefetching vs operator access patterns.

The paper notes cache miss rates "can be exacerbated by ... prefetching
pollution". The line-accurate hierarchy simulator shows both sides:
next-line prefetching collapses FC's sequential weight-stream misses but
is nearly pure pollution for SLS's random row gathers (its only win is the
second cache line of each 128 B row).
"""

import numpy as np
from conftest import emit

from repro.analysis import format_table
from repro.core.operators import EmbeddingTable, FullyConnected, SparseLengthsSum
from repro.core.operators.base import MemoryAccess
from repro.hw import BROADWELL, CacheHierarchy


def measure(trace_factory, degree: int):
    hierarchy = CacheHierarchy(BROADWELL, prefetch_degree=degree)
    hierarchy.access_trace(trace_factory())
    return hierarchy.stats


def run_study():
    fc = FullyConnected("fc", 2048, 1000)
    table = EmbeddingTable(1_000_000, 32)
    sls = SparseLengthsSum("sls", table, 80)
    rows = np.random.default_rng(3).integers(0, table.rows, size=5000)

    out = {}
    for name, factory in (
        ("FC weight stream", lambda: fc.address_trace(32)),
        ("SLS random gathers", lambda: sls.trace_for_rows(rows)),
    ):
        base = measure(factory, 0)
        pref = measure(factory, 4)
        out[name] = (base.dram_accesses, pref.dram_accesses, pref.prefetch_accuracy)
    return out


def test_ablation_prefetching(benchmark):
    results = benchmark.pedantic(run_study, iterations=1, rounds=1)
    rows = [
        [name, base, pref, f"{base / max(1, pref):.1f}x", f"{100 * acc:.0f}%"]
        for name, (base, pref, acc) in results.items()
    ]
    emit(
        "Ablation: next-line prefetching (degree 4)",
        format_table(
            ["trace", "misses (no pf)", "misses (pf)", "reduction", "pf accuracy"],
            rows,
        ),
    )
    fc_base, fc_pref, fc_acc = results["FC weight stream"]
    sls_base, sls_pref, sls_acc = results["SLS random gathers"]
    assert fc_pref < 0.3 * fc_base and fc_acc > 0.9
    assert sls_acc < 0.5  # mostly pollution on irregular gathers
