"""Ablation: memory-system optimizations for embedding-dominated models.

Three remedies the paper points to for RMC2-class models, evaluated
end-to-end: near-memory SLS execution, int8-quantized tables, and DRAM/NVM
tiering — the optimization directions its open-source benchmark was
released to enable.
"""

from dataclasses import replace

from conftest import emit

from repro.analysis import format_table
from repro.config import RMC2_SMALL
from repro.data.sparse import ZipfSparseGenerator
from repro.hw import BROADWELL, TimingModel
from repro.memory import NmpConfig, nmp_speedup, plan_tiering

import numpy as np


def run_study():
    timing = TimingModel(BROADWELL)
    baseline = timing.model_latency(RMC2_SMALL, 16).total_seconds

    nmp = nmp_speedup(BROADWELL, RMC2_SMALL, 16, NmpConfig(sls_speedup=8))

    int8_cfg = replace(RMC2_SMALL, dtype="int8")
    int8_latency_s = timing.model_latency(int8_cfg, 16).total_seconds

    rng = np.random.default_rng(0)
    gen = ZipfSparseGenerator(rows=100_000, lookups_per_sample=1, alpha=1.1)
    trace = gen.ids(40_000, rng)
    tiering = plan_tiering(RMC2_SMALL, trace, table_rows=100_000, dram_fraction=0.2)

    return baseline, nmp, int8_cfg, int8_latency_s, tiering


def test_ablation_memory_system(benchmark):
    baseline, nmp, int8_cfg, int8_latency_s, tiering = benchmark(run_study)
    rows = [
        ["baseline fp32", f"{baseline * 1e3:.2f} ms", "1.00x", "-"],
        [
            "near-memory SLS (8x)",
            f"{nmp.accelerated_seconds * 1e3:.2f} ms",
            f"{nmp.end_to_end_speedup:.2f}x",
            "-",
        ],
        [
            "int8 tables",
            f"{int8_latency_s * 1e3:.2f} ms",
            f"{baseline / int8_latency_s:.2f}x",
            f"{int8_cfg.embedding_storage_bytes() / 1e9:.1f} GB (4x smaller)",
        ],
        [
            "DRAM/NVM tiering (20% DRAM)",
            f"{tiering.slowdown_vs_dram:.2f}x per-lookup",
            "-",
            f"{100 * tiering.dram_savings_fraction:.0f}% DRAM saved",
        ],
    ]
    emit(
        "Ablation: memory-system remedies for RMC2 (batch 16, Broadwell)",
        format_table(["configuration", "latency", "speedup", "capacity"], rows),
    )
    assert nmp.end_to_end_speedup > 2.0
    assert int8_cfg.embedding_storage_bytes() * 4 == RMC2_SMALL.embedding_storage_bytes()
    assert tiering.dram_savings_fraction == 0.8
    # Skewed traces keep tiering's latency penalty moderate.
    assert tiering.slowdown_vs_dram < 2.5
