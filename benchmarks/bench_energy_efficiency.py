"""Energy bench: joules per ranked item across server generations.

An architectural-implications companion to Figure 8: the latency winner at
each operating point is usually also the energy winner, because energy is
dominated by (power x time); DRAM-heavy models additionally pay per-byte
DRAM energy, worst on Haswell's DDR3.
"""

from conftest import emit

from repro.analysis import format_table
from repro.config import RMC1_SMALL, RMC2_SMALL, RMC3_SMALL
from repro.hw import efficiency_comparison


def run_study():
    out = {}
    for config in (RMC1_SMALL, RMC2_SMALL, RMC3_SMALL):
        for batch in (16, 256):
            out[(config.name, batch)] = efficiency_comparison(config, batch)
    return out


def test_energy_efficiency(benchmark):
    results = benchmark(run_study)
    rows = []
    for (model, batch), estimates in results.items():
        best = max(estimates.values(), key=lambda e: e.items_per_joule)
        row = [model, batch]
        for name in ("Haswell", "Broadwell", "Skylake"):
            row.append(f"{1e3 * estimates[name].joules_per_item:.3f}")
        row.append(best.server_name)
        rows.append(row)
    emit(
        "Energy efficiency: mJ per ranked item",
        format_table(
            ["model", "batch", "Haswell", "Broadwell", "Skylake", "best"], rows
        ),
    )
    # Broadwell's latency edge at batch 16 carries over to energy.
    b16 = results[("RMC2-small", 16)]
    assert max(b16.values(), key=lambda e: e.items_per_joule).server_name == "Broadwell"
    # Larger batches always improve energy per item.
    for model in ("RMC1-small", "RMC2-small", "RMC3-small"):
        for server in ("Haswell", "Broadwell", "Skylake"):
            assert (
                results[(model, 256)][server].joules_per_item
                < results[(model, 16)][server].joules_per_item
            )
