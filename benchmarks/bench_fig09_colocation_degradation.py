"""Figure 9 bench: co-location latency degradation on Broadwell."""

from conftest import emit

from repro.experiments import fig09_colocation


def test_fig09_colocation_degradation(benchmark):
    result = benchmark(fig09_colocation.run)
    emit("Figure 9: co-location degradation", fig09_colocation.render(result))
    # Paper: N=8 degrades RMC1/RMC2/RMC3 by 1.3x / 2.6x / 1.6x.
    assert abs(result.degradation("RMC1-small", 8) - 1.3) < 0.35
    assert abs(result.degradation("RMC2-small", 8) - 2.6) < 0.7
    assert abs(result.degradation("RMC3-small", 8) - 1.6) < 0.4
    assert abs(result.op_degradation("RMC2-small", 8, "SLS") - 3.0) < 0.8
