"""Ablation: distributed (sharded) inference scaling for RMC2.

Splitting the 5 GB of embedding tables across shard servers parallelizes
the SLS work and can even make per-shard slices LLC-resident; returns
diminish once network transfer and the (unsharded) dense compute dominate.
"""

from conftest import emit

from repro.analysis import format_table
from repro.config import RMC2_SMALL
from repro.hw import BROADWELL
from repro.serving import sharding_sweep

SHARDS = [1, 2, 4, 8, 16]


def test_ablation_sharding(benchmark):
    results = benchmark(
        sharding_sweep, BROADWELL, RMC2_SMALL, 32, SHARDS
    )
    rows = [
        [
            r.num_shards,
            f"{r.slowest_shard_seconds * 1e3:.2f}",
            f"{r.network_seconds * 1e6:.0f}",
            f"{r.dense_seconds * 1e3:.2f}",
            f"{r.total_seconds * 1e3:.2f}",
            f"{results[0].total_seconds / r.total_seconds:.2f}x",
        ]
        for r in results
    ]
    emit(
        "Ablation: sharded RMC2 inference (batch 32, Broadwell shards)",
        format_table(
            ["shards", "SLS ms", "network us", "dense ms", "total ms", "speedup"],
            rows,
        ),
    )
    totals = [r.total_seconds for r in results]
    assert totals[1] < totals[0]
    # Diminishing returns: the last doubling gains less than the first.
    assert totals[0] / totals[1] > totals[-2] / totals[-1]
