"""Figure 14 bench: unique sparse-ID fraction and cacheability per trace."""

from conftest import emit

from repro.experiments import fig14_trace_locality


def test_fig14_trace_locality(benchmark):
    result = benchmark.pedantic(
        fig14_trace_locality.run,
        kwargs={"trace_length": 10_000},
        iterations=1,
        rounds=1,
    )
    emit("Figure 14: sparse-ID trace locality", fig14_trace_locality.render(result))
    fractions = result.unique_fractions()
    assert fractions["random"] > 0.9
    assert min(fractions.values()) < 0.15
