"""Figure 11x bench: resilience-policy ladder under a seeded fault storm."""

from conftest import emit

from repro.experiments import fig11x_faults


def test_fig11x_faults(benchmark):
    result = benchmark.pedantic(
        fig11x_faults.run,
        kwargs={"duration_s": 0.8},
        iterations=1,
        rounds=1,
    )
    emit(
        "Figure 11x: fault storm vs resilience policies",
        fig11x_faults.render(result),
    )
    assert result.p999_reduction() > 1.0
    assert result.goodput_gain() >= 1.0
    hedged = result.outcomes["retry+hedge"].stats
    assert hedged.hedges > 0
    assert hedged.goodput_qps <= hedged.throughput_qps + 1e-9
