"""Figure 8 bench: latency vs batch size across server generations."""

from conftest import emit

from repro.experiments import fig08_batch_sweep


def test_fig08_server_sweep(benchmark):
    result = benchmark(fig08_batch_sweep.run)
    emit("Figure 8: batch sweep across servers", fig08_batch_sweep.render(result))
    for model in ("RMC1-small", "RMC2-small", "RMC3-small"):
        assert result.best_server(model, 16) == "Broadwell"
        assert result.best_server(model, 256) == "Skylake"
    assert result.best_server("RMC3-small", 64) == "Skylake"
