"""Figure 11 bench: FC tail latency under production co-location (DES)."""

from conftest import emit

from repro.experiments import fig11_tail_latency


def test_fig11_tail_latency(benchmark):
    result = benchmark.pedantic(
        fig11_tail_latency.run,
        kwargs={"duration_s": 0.4},
        iterations=1,
        rounds=1,
    )
    emit("Figure 11: FC operator tail latency", fig11_tail_latency.render(result))
    assert result.servers["Broadwell"].modes >= 3
    assert result.servers["Skylake"].modes == 1
    bdw = result.servers["Broadwell"]
    skl = result.servers["Skylake"]
    assert bdw.p99_growth(bdw.curve_small) > 2.0
    assert skl.p99_growth(skl.curve_small) < 1.3
