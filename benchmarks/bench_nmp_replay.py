"""Perf-trajectory bench: reference vs vectorized NMP replay engines.

Times the same pooled SLS lookup trace through the
:class:`repro.memory.near_memory.NearMemorySystem` reference engine, the
vectorized engine with the pure-Python batch kernel, and (when a compiler
is available) the vectorized engine with the native C kernel, at 100k and
1M lookups, and writes ``BENCH_nmp_replay.json`` so future PRs can track
the engine's trajectory. The engines' contract is bit-identical
observables — every timing below is the same computation, any speedup is
pure implementation — and this bench re-asserts digest equality on every
trace it times.

Floors (asserted by :func:`check_floors`, like the DES replay bench): with
the native kernel, ≥10x over the reference engine at 1M lookups. The
pure-Python batch kernel's contract is *parity*, not speedup — the
sequential LRU walk is ~70% of the reference engine's wallclock and stays
a Python loop in the fallback, so only the accounting vectorizes; its
floor (0.8x) guards against an accidentally pathological fallback, and
the real speedup claim is the native kernel's.

Run directly (CI uploads the JSON as an artifact)::

    PYTHONPATH=src python benchmarks/bench_nmp_replay.py

or through pytest (excluded from tier-1, which only collects ``tests/``)::

    PYTHONPATH=src python -m pytest benchmarks/bench_nmp_replay.py -m perf -s
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import format_table
from repro.data.sparse import TemporalReuseGenerator
from repro.memory.near_memory import NearMemorySystem, NmpGeometry
from repro.memory.nmp_native import nmp_native_available

DEFAULT_OUT = Path(__file__).parent / "BENCH_nmp_replay.json"

TABLE_ROWS = 1_000_000
LOOKUPS_PER_POOL = 80
REUSE_PROBABILITY = 0.55  # production-like moderate temporal reuse (Fig 14)

# Contract floors at the largest trace size (see check_floors). The python
# floor asserts parity, not speedup — see the module docstring.
NATIVE_FLOOR = 10.0
PYTHON_FLOOR = 0.8
REPEATS = 3  # best-of-N wallclock; each repeat replays on a fresh system


def _pooled_trace(lookups: int, rng: np.random.Generator):
    """A pooled production-like trace: rows plus per-pool lengths."""
    generator = TemporalReuseGenerator(
        TABLE_ROWS, 1, reuse_probability=REUSE_PROBABILITY
    )
    rows = generator.ids(lookups, rng)
    num_pools, remainder = divmod(lookups, LOOKUPS_PER_POOL)
    lengths = [LOOKUPS_PER_POOL] * num_pools
    if remainder:
        lengths.append(remainder)
    return rows, np.asarray(lengths, dtype=np.int64)


def _replay_once(
    engine: str, backend: str, rows: np.ndarray, lengths: np.ndarray
) -> tuple[float, dict]:
    best_s = float("inf")
    digest: dict = {}
    for _ in range(REPEATS):
        system = NearMemorySystem(NmpGeometry(), engine=engine, backend=backend)
        start_s = time.perf_counter()
        result = system.replay(rows, lengths)
        elapsed_s = time.perf_counter() - start_s
        best_s = min(best_s, elapsed_s)
        digest = result.digest()
    return best_s, digest


def run_bench(lookups_list: tuple[int, ...] = (100_000, 1_000_000)) -> dict:
    """Time all engine/backend pairs on shared traces; returns the report."""
    rng = np.random.default_rng(2020)
    native = nmp_native_available()
    results = []
    for lookups in lookups_list:
        rows, lengths = _pooled_trace(lookups, rng)
        reference_s, reference_digest = _replay_once(
            "reference", "python", rows, lengths
        )
        python_s, python_digest = _replay_once(
            "vectorized", "python", rows, lengths
        )
        assert python_digest == reference_digest, "python engine diverged"
        native_s = None
        if native:
            native_s, native_digest = _replay_once(
                "vectorized", "native", rows, lengths
            )
            assert native_digest == reference_digest, "native engine diverged"
        results.append(
            {
                "lookups": int(lookups),
                "pools": int(lengths.size),
                "reference_s": reference_s,
                "python_s": python_s,
                "python_speedup": reference_s / python_s,
                "native_s": native_s,
                "native_speedup": (
                    None if native_s is None else reference_s / native_s
                ),
                "hot_hits": reference_digest["hot_hits"],
                "elapsed_ns": reference_digest["elapsed_ns"],
            }
        )
    return {
        "bench": "nmp_replay",
        "config": {
            "table_rows": TABLE_ROWS,
            "lookups_per_pool": LOOKUPS_PER_POOL,
            "reuse_probability": REUSE_PROBABILITY,
            "geometry_ranks": NmpGeometry().num_ranks,
            "native_available": native,
        },
        "results": results,
    }


def check_floors(report: dict) -> None:
    """Assert the speedup floors the engine contract promises."""
    largest = max(report["results"], key=lambda r: r["lookups"])
    if report["config"]["native_available"]:
        assert largest["native_speedup"] >= NATIVE_FLOOR, (
            f"native speedup {largest['native_speedup']:.1f}x below "
            f"{NATIVE_FLOOR:.0f}x floor at {largest['lookups']:,} lookups"
        )
    else:
        assert largest["python_speedup"] >= PYTHON_FLOOR, (
            f"python speedup {largest['python_speedup']:.2f}x below "
            f"{PYTHON_FLOOR:.1f}x parity floor at {largest['lookups']:,} lookups"
        )


def render(report: dict) -> str:
    """Text table of one bench report."""
    rows = [
        [
            f"{r['lookups']:,}",
            f"{r['pools']:,}",
            f"{r['reference_s']:.3f}",
            f"{r['python_s']:.3f}",
            f"{r['python_speedup']:.1f}x",
            "-" if r["native_s"] is None else f"{r['native_s']:.3f}",
            "-"
            if r["native_speedup"] is None
            else f"{r['native_speedup']:.1f}x",
        ]
        for r in report["results"]
    ]
    return format_table(
        [
            "lookups",
            "pools",
            "reference s",
            "python s",
            "python x",
            "native s",
            "native x",
        ],
        rows,
        title="NMP replay engine wallclock (bit-identical observables)",
    )


@pytest.mark.perf
def test_nmp_replay_perf():
    """Replay bench at the small size; asserts the vectorized engine wins."""
    from conftest import emit

    report = run_bench(lookups_list=(100_000,))
    emit("NMP replay: reference vs vectorized", render(report))
    assert report["results"][0]["python_speedup"] > PYTHON_FLOOR
    if report["config"]["native_available"]:
        assert report["results"][0]["native_speedup"] > 1.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="JSON report path"
    )
    parser.add_argument(
        "--lookups",
        type=int,
        nargs="+",
        default=[100_000, 1_000_000],
        help="trace sizes to time",
    )
    args = parser.parse_args(argv)
    report = run_bench(tuple(args.lookups))
    print(render(report))
    check_floors(report)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
