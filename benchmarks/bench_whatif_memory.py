"""What-if bench: future memory systems for RMC2 in both regimes."""

from conftest import emit

from repro.experiments import whatif_memory


def test_whatif_memory(benchmark):
    result = benchmark(whatif_memory.run)
    emit("What-if: future memory systems", whatif_memory.render(result))
    rows = result.by_variant()
    # Alone (latency-bound): access latency is the lever.
    assert rows["2x lower latency"].speedup > rows["4x bandwidth (HBM-class)"].speedup
    # Co-located (bandwidth-bound): bandwidth takes over.
    assert (
        rows["4x bandwidth (HBM-class)"].colocated_speedup
        > rows["2x lower latency"].colocated_speedup
    )
