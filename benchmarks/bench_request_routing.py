"""Routing-policy bench: tail latency across replicated inference servers."""

from conftest import emit

from repro.analysis import format_table
from repro.config import RMC1_SMALL
from repro.hw import BROADWELL
from repro.serving import compare_policies


def test_request_routing(benchmark):
    results = benchmark.pedantic(
        compare_policies,
        kwargs=dict(
            server=BROADWELL,
            config=RMC1_SMALL,
            batch_size=16,
            num_machines=10,
            utilization=0.85,
            duration_s=2.0,
            seed=5,
        ),
        iterations=1,
        rounds=1,
    )
    rows = []
    for policy, result in results.items():
        summary = result.summary()
        rows.append(
            [
                policy,
                f"{summary.p50 * 1e3:.2f}",
                f"{summary.p95 * 1e3:.2f}",
                f"{summary.p99 * 1e3:.2f}",
                f"{result.throughput_qps():,.0f}",
            ]
        )
    emit(
        "Request routing at 85% utilization (10 Broadwell replicas, RMC1)",
        format_table(["policy", "p50 ms", "p95 ms", "p99 ms", "qps"], rows),
    )
    assert results["jsq2"].summary().p99 < results["random"].summary().p99
