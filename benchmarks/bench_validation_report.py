"""Validation bench: every headline paper claim, checked in one place."""

from conftest import emit

from repro.validation import render_report, validate


def test_validation_report(benchmark):
    checks = benchmark(validate)
    emit("Validation report", render_report(checks))
    failing = [c.claim for c in checks if not c.passed]
    assert not failing, f"claims out of tolerance: {failing}"
