"""Wall-clock benchmarks of the executable numpy models.

Unlike the figure benches (which regenerate paper results through the
server simulator), these time the *real* forward passes of scaled-down
model instances on the host machine — the operator-mix contrast (RMC2's
SLS-heavy profile vs RMC3's GEMM-heavy profile) is visible directly in
host wall-clock time.
"""

import pytest

from repro.config import (
    NCF as NCF_CONFIG,
    RMC1_SMALL,
    RMC2_SMALL,
    RMC3_SMALL,
    scaled_for_execution,
)
from repro.core import NCFModel, RecommendationModel
from repro.data import generate_inputs

BATCH = 64


def make(config):
    scaled = scaled_for_execution(config, max_rows=50_000)
    model = RecommendationModel(scaled)
    dense, sparse = generate_inputs(scaled, BATCH, seed=0)
    return model, dense, sparse


@pytest.mark.parametrize("config", [RMC1_SMALL, RMC2_SMALL, RMC3_SMALL],
                         ids=["rmc1", "rmc2", "rmc3"])
def test_model_forward_wallclock(benchmark, config):
    model, dense, sparse = make(config)
    out = benchmark(model.forward, dense, sparse)
    assert out.shape == (BATCH,)


def test_ncf_forward_wallclock(benchmark):
    import numpy as np

    model = NCFModel(num_users=50_000, num_items=20_000)
    users = np.arange(BATCH) % 50_000
    items = np.arange(BATCH) % 20_000
    out = benchmark(model.forward, users, items)
    assert out.shape == (BATCH,)


def test_rmc2_profile_is_sls_dominated(benchmark):
    """The executable model shows the paper's RMC2 signature on real
    hardware: embedding work dominates the profile."""
    model, dense, sparse = make(RMC2_SMALL)

    def profiled():
        _, profile = model.forward_profiled(dense, sparse)
        return profile

    profile = benchmark(profiled)
    frac = profile.fraction_by_op_type()
    assert frac["SLS"] > frac.get("FC", 0.0)
