"""Section V/VI bench: SIMD scaling and hyperthreading micro-measurements."""

from conftest import emit

from repro.experiments import micro_takeaways


def test_micro_takeaways(benchmark):
    result = benchmark(micro_takeaways.run)
    emit("Micro-takeaways: SIMD + hyperthreading", micro_takeaways.render(result))
    by_batch = {r.batch_size: r for r in result.simd_scaling}
    assert abs(by_batch[4].throughput_ratio - 2.9) < 0.01
    assert abs(by_batch[16].throughput_ratio - 14.5) < 0.01
    for row in result.hyperthreading:
        assert abs(row.fc_degradation - 1.6) < 0.1
        assert abs(row.sls_degradation - 1.3) < 0.1
