"""Ablation: is the L2/L3 inclusion policy really the load-bearing choice?

The paper attributes Broadwell's steep co-location degradation to its
inclusive hierarchy. We test the claim counterfactually: build a
"Broadwell-X" that differs from Broadwell *only* in the inclusion policy
and compare co-location degradation — the gap isolates the
back-invalidation mechanism from frequency/cache-size/DRAM differences.
"""

from dataclasses import replace

from conftest import emit

from repro.analysis import format_table
from repro.config import RMC2_SMALL
from repro.hw import BROADWELL, TimingModel


def degradation(server, n, batch=32):
    timing = TimingModel(server)
    alone = timing.model_latency(RMC2_SMALL, batch).total_seconds
    state = timing.colocation_state(RMC2_SMALL, batch, n)
    return timing.model_latency(RMC2_SMALL, batch, state).total_seconds / alone


def run_ablation():
    exclusive_bdw = replace(BROADWELL, name="Broadwell-X", inclusive_llc=False)
    rows = []
    for n in (2, 4, 8, 16):
        rows.append(
            [
                n,
                f"{degradation(BROADWELL, n):.2f}x",
                f"{degradation(exclusive_bdw, n):.2f}x",
            ]
        )
    return exclusive_bdw, rows


def test_ablation_inclusion_policy(benchmark):
    exclusive_bdw, rows = benchmark(run_ablation)
    emit(
        "Ablation: inclusive vs exclusive L2/L3 on Broadwell (RMC2, batch 32)",
        format_table(["N", "inclusive (real)", "exclusive (counterfactual)"], rows),
    )
    # The inclusive hierarchy must account for a visible share of the
    # co-location penalty while latency (not DRAM bandwidth) dominates;
    # at very high degrees both hierarchies queue on bandwidth alike.
    for n in (2, 4, 8):
        assert degradation(BROADWELL, n) > degradation(exclusive_bdw, n) + 0.1
    assert degradation(BROADWELL, 16) >= degradation(exclusive_bdw, 16) - 1e-9
