"""Figure 4 bench: data-center-wide cycle share per operator."""

from conftest import emit

from repro.experiments import fig04_operator_cycles


def test_fig04_operator_breakdown(benchmark):
    result = benchmark(fig04_operator_cycles.run)
    emit("Figure 4: cycles by operator", fig04_operator_cycles.render(result))
    total = result.total
    assert 0.10 < total["SLS"] < 0.30  # paper: ~15%
    assert total["SLS"] > 4 * total["Conv"]
    assert total["SLS"] > 15 * total["Recurrent"]
