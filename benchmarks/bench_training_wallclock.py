"""Wall-clock benchmarks of DLRM training steps (forward+backward+SGD)."""

import pytest

from repro.config import RMC1_SMALL, RMC2_SMALL, scaled_for_execution
from repro.core import RecommendationModel
from repro.data import SyntheticCtrDataset
from repro.train import TrainableDLRM

BATCH = 128


@pytest.mark.parametrize("config", [RMC1_SMALL, RMC2_SMALL], ids=["rmc1", "rmc2"])
def test_train_step_wallclock(benchmark, config):
    scaled = scaled_for_execution(config, max_rows=20_000)
    trainable = TrainableDLRM(RecommendationModel(scaled))
    dataset = SyntheticCtrDataset(scaled, seed=0)
    batch = dataset.batch(BATCH)

    loss = benchmark(
        trainable.train_step, batch.dense, batch.sparse, batch.labels, 0.05
    )
    assert 0 < loss < 2.0


def test_training_convergence(benchmark):
    """Time a short training run and assert it learns the planted signal."""
    from repro.train import Trainer

    config = scaled_for_execution(RMC1_SMALL, max_rows=2_000)

    def train():
        model = RecommendationModel(config)
        dataset = SyntheticCtrDataset(config, signal_scale=2.0, seed=9)
        return Trainer(TrainableDLRM(model), dataset, lr=0.25).fit(
            steps=300, batch_size=128, eval_samples=1500
        )

    report = benchmark.pedantic(train, iterations=1, rounds=1)
    assert report.eval_auc > 0.72
