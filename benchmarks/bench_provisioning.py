"""Provisioning bench: minimum-cost fleet for the production demand mix."""

from conftest import emit

from repro.analysis import format_table
from repro.config import RMC1_SMALL, RMC2_SMALL, RMC3_SMALL
from repro.hw import ALL_SERVERS
from repro.serving import (
    DEFAULT_PRICES,
    PricedGeneration,
    SLA,
    WorkloadDemand,
    provision_min_cost,
    single_generation_cost,
)

GENERATIONS = [
    PricedGeneration(server, DEFAULT_PRICES[server.name]) for server in ALL_SERVERS
]
DEMANDS = [
    WorkloadDemand(RMC1_SMALL, batch_size=4, sla=SLA(0.001), weight=0.4),
    WorkloadDemand(RMC2_SMALL, batch_size=32, sla=SLA(0.050), weight=0.4),
    WorkloadDemand(RMC3_SMALL, batch_size=32, sla=SLA(0.050), weight=0.2),
]
TARGET = 1e6  # items/s


def run_study():
    mixed = provision_min_cost(GENERATIONS, DEMANDS, TARGET)
    singles = {
        g.server.name: single_generation_cost(g, DEMANDS, TARGET)
        for g in GENERATIONS
    }
    return mixed, singles


def test_provisioning(benchmark):
    mixed, singles = benchmark(run_study)
    rows = [
        [
            "mixed fleet (LP)",
            f"{mixed.cost_per_hour:.1f}",
            ", ".join(f"{k}:{v}" for k, v in mixed.machine_counts.items()),
        ]
    ]
    for name, cost in singles.items():
        rows.append(
            [f"all-{name}", f"{cost:.1f}" if cost else "infeasible", "-"]
        )
    emit(
        f"Provisioning {TARGET:,.0f} items/s of the demand mix "
        "(relative $/hour)",
        format_table(["fleet", "cost/hour", "machines"], rows),
    )
    feasible = [c for c in singles.values() if c is not None]
    assert feasible
    assert mixed.cost_per_hour <= min(feasible) + 3 * max(DEFAULT_PRICES.values())
