"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: the
``benchmark`` fixture times the experiment's computation, and the rendered
table/series is printed (run with ``-s`` to see it inline) and appended to
``benchmarks/results.txt`` for inspection after a full run.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_PATH = Path(__file__).parent / "results.txt"


def emit(title: str, text: str) -> None:
    """Print a rendered experiment and append it to the results file."""
    banner = f"\n{'=' * 72}\n{title}\n{'=' * 72}\n"
    print(banner + text)
    with RESULTS_PATH.open("a") as fh:
        fh.write(banner + text + "\n")
