"""Figure 12 bench: production models vs the MLPerf-NCF public benchmark."""

from conftest import emit

from repro.experiments import fig12_ncf_comparison


def test_fig12_ncf_gap(benchmark):
    result = benchmark(fig12_ncf_comparison.run)
    emit("Figure 12: RMC vs MLPerf-NCF", fig12_ncf_comparison.render(result))
    rows = result.by_name()
    assert rows["RMC2-small"].latency_vs_ncf > 20
    assert rows["RMC2-small"].embedding_vs_ncf > 50
    assert rows["MLPerf-NCF"].fc_time_share > 0.7
    assert rows["RMC2-small"].sls_time_share > 0.7
