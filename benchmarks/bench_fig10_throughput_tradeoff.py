"""Figure 10 bench: latency/throughput frontier per server generation."""

from conftest import emit

from repro.experiments import fig10_latency_throughput


def test_fig10_throughput_tradeoff(benchmark):
    result = benchmark(fig10_latency_throughput.run)
    emit(
        "Figure 10: latency/throughput under co-location",
        fig10_latency_throughput.render(result),
    )
    assert result.point("Broadwell", 1).latency_s < result.point("Skylake", 1).latency_s
    assert (
        result.point("Skylake", 16).items_per_s
        > result.point("Broadwell", 16).items_per_s
    )
    # Skylake's LLC-overflow cliff: jump from 18 to 21 jobs.
    skl_jump = result.point("Skylake", 21).latency_s / result.point("Skylake", 18).latency_s
    bdw_jump = result.point("Broadwell", 21).latency_s / result.point("Broadwell", 18).latency_s
    assert skl_jump > bdw_jump
