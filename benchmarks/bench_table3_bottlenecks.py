"""Table III bench: derived micro-architectural bottlenecks per class."""

from conftest import emit

from repro.experiments import table3_bottlenecks


def test_table3_bottlenecks(benchmark):
    result = benchmark(table3_bottlenecks.run)
    emit("Table III: micro-architectural bottlenecks", table3_bottlenecks.render(result))
    rows = result.by_class()
    assert rows["RMC2"].classification == "Embedding dominated"
    assert rows["RMC3"].classification == "MLP dominated"
    assert rows["RMC2"].dram_sensitivity > rows["RMC2"].frequency_sensitivity
