"""Figure 5 bench: operator compute density and LLC MPKI (cache-simulated)."""

from conftest import emit

from repro.experiments import fig05_intensity_mpki


def test_fig05_sls_characterization(benchmark):
    result = benchmark.pedantic(
        fig05_intensity_mpki.run,
        kwargs={"trace_length": 15_000, "iterations": 3},
        iterations=1,
        rounds=1,
    )
    emit(
        "Figure 5: compute density and LLC miss rates",
        fig05_intensity_mpki.render(result),
    )
    intensity = result.intensity_by_name()
    mpki = result.mpki_by_name()
    assert intensity["SLS"] < 1 < intensity["RNN"] < intensity["FC"] < intensity["CNN"]
    assert mpki["SLS"] > 5 * max(mpki["FC"], mpki["RNN"], mpki["CNN"])
