"""Table II bench: server specs plus a timing-model sanity sweep."""

from conftest import emit

from repro.config import RMC2_SMALL
from repro.experiments import table2_servers
from repro.hw import ALL_SERVERS, TimingModel


def test_table2_servers(benchmark):
    result = benchmark(table2_servers.run)
    emit("Table II: server architectures", table2_servers.render(result))
    names = [s.name for s in result.servers]
    assert names == ["Haswell", "Broadwell", "Skylake"]


def test_table2_timing_model_throughput(benchmark):
    """Time a full model-latency evaluation across all three servers."""

    def evaluate():
        return [
            TimingModel(server).model_latency(RMC2_SMALL, 32).total_seconds
            for server in ALL_SERVERS
        ]

    latencies = benchmark(evaluate)
    assert all(lat > 0 for lat in latencies)
