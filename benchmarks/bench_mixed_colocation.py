"""Mixed co-location bench: which model pairs should share a machine?

Evaluates segregated vs interleaved placements for every model-class pair
using the traffic/footprint-aware contention model. The outcomes follow
the paper's mechanisms: contention is driven by co-runner DRAM traffic
(RMC2) and LLC footprint (RMC3), not by job count alone.
"""

from conftest import emit

from repro.analysis import format_table
from repro.config import RMC1_SMALL, RMC2_SMALL, RMC3_SMALL
from repro.hw import BROADWELL
from repro.serving import JobSpec, compare_groupings

PAIRS = [
    ("RMC1 vs RMC2", RMC1_SMALL, RMC2_SMALL),
    ("RMC1 vs RMC3", RMC1_SMALL, RMC3_SMALL),
    ("RMC2 vs RMC3", RMC2_SMALL, RMC3_SMALL),
]


def run_study():
    out = {}
    for label, a, b in PAIRS:
        out[label] = compare_groupings(
            BROADWELL, [JobSpec(a, 32)] * 8, [JobSpec(b, 32)] * 8
        )
    return out


def test_mixed_colocation(benchmark):
    results = benchmark(run_study)
    rows = [
        [
            label,
            f"{cmp.segregated_items_per_s / 1e3:.1f}k",
            f"{cmp.interleaved_items_per_s / 1e3:.1f}k",
            f"{cmp.interleaving_gain:.3f}x",
        ]
        for label, cmp in results.items()
    ]
    emit(
        "Mixed co-location: segregate or interleave (8+8 jobs, 2 Broadwell)",
        format_table(
            ["pair", "segregated items/s", "interleaved items/s", "gain"], rows
        ),
    )
    # Identical totals must be internally consistent; directionality is the
    # advisor's output, not a fixed law — but the evaluations must exist.
    for cmp in results.values():
        assert cmp.segregated_items_per_s > 0
        assert cmp.interleaved_items_per_s > 0
