"""Figure 1 bench: fleet cycle shares by model class."""

from conftest import emit

from repro.experiments import fig01_cycles


def test_fig01_fleet_cycles(benchmark):
    result = benchmark(fig01_cycles.run)
    emit("Figure 1: AI inference cycles by model class", fig01_cycles.render(result))
    assert abs(result.rmc_core_share - 0.65) < 0.02
    assert result.recommendation_share >= 0.78
