"""Placement-optimizer bench: contention-aware packing vs round-robin."""

from conftest import emit

from repro.analysis import format_table
from repro.config import RMC1_SMALL, RMC2_SMALL, RMC3_SMALL
from repro.hw import BROADWELL
from repro.serving import JobSpec, optimize_placement, round_robin_placement

JOBS = (
    [JobSpec(RMC1_SMALL, 32)] * 4
    + [JobSpec(RMC2_SMALL, 32)] * 4
    + [JobSpec(RMC3_SMALL, 32)] * 4
)
MACHINES = 3


def run_study():
    return (
        optimize_placement(BROADWELL, JOBS, MACHINES),
        round_robin_placement(BROADWELL, JOBS, MACHINES),
    )


def test_placement_optimizer(benchmark):
    optimized, baseline = benchmark.pedantic(run_study, iterations=1, rounds=1)
    rows = []
    for label, solution in (("round-robin", baseline), ("optimized", optimized)):
        mixes = [
            "+".join(sorted(j.config.model_class for j in machine))
            for machine in solution.machines
        ]
        rows.append(
            [label, f"{solution.total_items_per_s / 1e3:.1f}k", "; ".join(mixes)]
        )
    gain = optimized.total_items_per_s / baseline.total_items_per_s
    emit(
        f"Placement optimization (12 mixed jobs on {MACHINES} Broadwell, "
        f"gain {gain:.2f}x)",
        format_table(["policy", "fleet items/s", "machine mixes"], rows),
    )
    assert optimized.total_items_per_s >= baseline.total_items_per_s * 0.999
