"""Autoscaling bench: reactive scaling vs peak provisioning on diurnal load."""

from conftest import emit

from repro.analysis import format_table
from repro.config import RMC2_SMALL
from repro.hw import BROADWELL
from repro.serving import Autoscaler, DiurnalLoad, static_provisioning


def run_study():
    scaler = Autoscaler(BROADWELL, RMC2_SMALL, batch_size=32)
    load = DiurnalLoad(peak_items_per_s=30 * scaler.replica_capacity)
    return scaler, load, scaler.run(load), static_provisioning(scaler, load)


def test_autoscaling(benchmark):
    scaler, load, dynamic, static = benchmark(run_study)
    rows = [
        [
            "static (peak)",
            static.peak_replicas,
            f"{static.machine_hours:.0f}",
            f"{100 * static.violation_fraction:.1f}%",
        ],
        [
            "reactive",
            dynamic.peak_replicas,
            f"{dynamic.machine_hours:.0f}",
            f"{100 * dynamic.violation_fraction:.1f}%",
        ],
    ]
    emit(
        "Autoscaling RMC2 replicas over one diurnal cycle",
        format_table(["policy", "peak replicas", "machine-hours", "SLA violations"], rows)
        + f"\nsavings: {100 * (1 - dynamic.machine_hours / static.machine_hours):.0f}% "
        f"machine-hours",
    )
    assert dynamic.machine_hours < static.machine_hours
    assert dynamic.violation_fraction < 0.1
