"""NUMA bench: embedding-table placement across the two sockets."""

from conftest import emit

from repro.analysis import format_table
from repro.config import RMC1_SMALL, RMC2_SMALL, RMC3_SMALL
from repro.hw import BROADWELL, placement_comparison


def run_study():
    return {
        config.name: placement_comparison(BROADWELL, config, 32)
        for config in (RMC1_SMALL, RMC2_SMALL, RMC3_SMALL)
    }


def test_numa_placement(benchmark):
    results = benchmark(run_study)
    rows = []
    for model, placements in results.items():
        local = placements["local"].total_seconds
        rows.append(
            [
                model,
                f"{local * 1e3:.2f}",
                f"{placements['interleave'].total_seconds / local:.2f}x",
                f"{placements['remote'].total_seconds / local:.2f}x",
            ]
        )
    emit(
        "NUMA: embedding placement vs local-socket latency (batch 32)",
        format_table(["model", "local ms", "interleave", "remote"], rows),
    )
    rmc2 = results["RMC2-small"]
    assert rmc2["remote"].total_seconds > 1.3 * rmc2["local"].total_seconds
    rmc3 = results["RMC3-small"]
    assert rmc3["remote"].total_seconds < 1.15 * rmc3["local"].total_seconds
