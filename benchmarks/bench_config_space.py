"""Config-space bench (Figure 13): watching the bottleneck move."""

from conftest import emit

from repro.experiments import config_space


def test_config_space(benchmark):
    result = benchmark(config_space.run)
    emit("Configuration-space exploration (Figure 13)", config_space.render(result))
    lookups = result.sweep("lookups")
    assert lookups[0].dominant_op == "FC"
    assert lookups[-1].dominant_op == "SLS"
    width = result.sweep("bottom_width")
    assert width[-1].fc_share > 0.9
