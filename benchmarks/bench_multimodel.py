"""Perf-trajectory bench: multi-model router, reference vs vectorized.

Times identical mixed-traffic runs through both DES engines of
:class:`~repro.serving.multimodel.MultiModelRouter` and digests the
results to re-prove bit-identity at bench scale, then times the full
figure-MM experiment (mixed pool vs static partitioning). Writes
``BENCH_multimodel.json`` so future PRs can track the subsystem's
trajectory.

Run directly (CI uploads the JSON as an artifact)::

    PYTHONPATH=src python benchmarks/bench_multimodel.py

or through pytest (excluded from tier-1, which only collects ``tests/``)::

    PYTHONPATH=src python -m pytest benchmarks/bench_multimodel.py -m perf -s
"""

from __future__ import annotations

import argparse
import hashlib
import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import format_table
from repro.config.presets import RMC1_SMALL, RMC2_SMALL, RMC3_SMALL
from repro.experiments import figmm_multimodel
from repro.hw.server import BROADWELL, SKYLAKE
from repro.serving.multimodel import MultiModelPool, MultiModelRouter

DEFAULT_OUT = Path(__file__).parent / "BENCH_multimodel.json"

REPLICAS = (BROADWELL, BROADWELL, SKYLAKE, SKYLAKE)
MODELS = (RMC1_SMALL, RMC2_SMALL, RMC3_SMALL)
MIX = (0.5, 0.3, 0.2)
DURATION_S = 0.5
SEED = 7
# Both engines share the transition core (that is what makes them
# bit-identical); the vectorized one only wins on event sourcing and
# chunked noise, measuring ~1.05x here. The floor guards against a
# regression that makes it materially slower, with headroom for timer
# noise on shared CI runners.
VECTORIZED_FLOOR = 0.9


def _router(engine: str) -> MultiModelRouter:
    pool = MultiModelPool(
        REPLICAS,
        MODELS,
        slots_per_replica=2,
        thrash_window_s=0.05,
    )
    return MultiModelRouter(pool, batch_size=8, seed=SEED, engine=engine)


def _run_once(engine: str, offered_target: int) -> tuple[float, int, tuple]:
    offered_qps = offered_target / DURATION_S
    router = _router(engine)
    start_s = time.perf_counter()
    result = router.run(DURATION_S, offered_qps=offered_qps, mix=MIX)
    elapsed_s = time.perf_counter() - start_s
    digest = (
        result.offered_by_model,
        result.completed_by_model,
        result.shed_by_model,
        result.killed_by_model,
        result.loads,
        result.swaps,
        result.thrash,
        result.max_queue_depth,
        result.hol_bypasses,
        hashlib.sha256(result.latencies_s().tobytes()).hexdigest(),
    )
    return elapsed_s, result.offered, digest


def bench_router(offered_targets: tuple[int, ...]) -> list[dict]:
    """Time both engines on identical mixed-traffic runs."""
    rows = []
    for target in offered_targets:
        reference_s, offered, reference_digest = _run_once(
            "reference", target
        )
        vectorized_s, _, vectorized_digest = _run_once("vectorized", target)
        assert vectorized_digest == reference_digest, "engines diverged"
        rows.append(
            {
                "offered_target": int(target),
                "offered": int(offered),
                "replicas": len(REPLICAS),
                "models": len(MODELS),
                "reference_s": reference_s,
                "vectorized_s": vectorized_s,
                "speedup": reference_s / vectorized_s,
            }
        )
    return rows


def bench_experiment(seed: int = 23) -> dict:
    """Time the figure-MM comparison end to end (vectorized)."""
    start_s = time.perf_counter()
    result = figmm_multimodel.run(seed=seed)
    elapsed_s = time.perf_counter() - start_s
    return {
        "offered": result.mixed.offered,
        "mixed_throughput_qps": result.mixed_throughput_qps,
        "static_throughput_qps": result.static_throughput_qps,
        "swaps": result.mixed.swaps,
        "thrash": result.mixed.thrash,
        "residency_utilization": result.mixed.residency_utilization,
        "wall_s": elapsed_s,
    }


def run_bench(
    offered_targets: tuple[int, ...] = (10_000, 50_000, 200_000),
) -> dict:
    """Time both engines on shared workloads; returns the JSON report."""
    return {
        "bench": "multimodel",
        "config": {
            "replicas": [spec.name for spec in REPLICAS],
            "models": [config.name for config in MODELS],
            "mix": list(MIX),
            "duration_s": DURATION_S,
            "seed": SEED,
        },
        "router": bench_router(offered_targets),
        "experiment": bench_experiment(),
    }


def check_floors(report: dict) -> None:
    """Assert the modest never-slower floor at the largest size."""
    largest = max(report["router"], key=lambda r: r["offered_target"])
    assert largest["speedup"] >= VECTORIZED_FLOOR, (
        f"vectorized speedup {largest['speedup']:.2f}x below "
        f"{VECTORIZED_FLOOR:.2f}x floor at {largest['offered_target']:,}"
    )


def render(report: dict) -> str:
    """Text tables of one bench report."""
    rows = [
        [
            f"{r['offered']:,}",
            f"{r['reference_s']:.3f}",
            f"{r['vectorized_s']:.3f}",
            f"{r['speedup']:.2f}x",
        ]
        for r in report["router"]
    ]
    config = report["config"]
    parts = [
        format_table(
            ["offered", "reference s", "vectorized s", "speedup"],
            rows,
            title=(
                f"Multi-model router wallclock, "
                f"{len(config['replicas'])} replicas x "
                f"{len(config['models'])} models (bit-identical records)"
            ),
        )
    ]
    exp = report.get("experiment")
    if exp is not None:
        parts.append(
            f"figure MM end to end: {exp['offered']:,} offered, mixed "
            f"{exp['mixed_throughput_qps']:.0f} qps vs static "
            f"{exp['static_throughput_qps']:.0f} qps, {exp['swaps']} swaps "
            f"({exp['thrash']} thrash), {exp['wall_s']:.2f} s wall"
        )
    return "\n".join(parts)


@pytest.mark.perf
def test_multimodel_perf():
    """Small-size bench; asserts the engines agree and the floor holds."""
    from conftest import emit

    report = run_bench(offered_targets=(50_000,))
    check_floors(report)
    emit("Multi-model router: reference vs vectorized", render(report))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="JSON report path"
    )
    parser.add_argument(
        "--offered",
        type=int,
        nargs="+",
        default=[10_000, 50_000, 200_000],
        help="router offered-load sizes to time",
    )
    args = parser.parse_args(argv)
    report = run_bench(tuple(args.offered))
    check_floors(report)
    print(render(report))
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
