"""Figure 7 bench: batch-1 latency and operator breakdown on Broadwell."""

from conftest import emit

from repro.experiments import fig07_single_model


def test_fig07_latency_breakdown(benchmark):
    result = benchmark(fig07_single_model.run)
    emit("Figure 7: single-model inference", fig07_single_model.render(result))
    # Paper anchors: 0.04 / 0.30 / 0.60 ms, 15x spread.
    assert 0.02 < result.latency_ms("RMC1-small") < 0.06
    assert 0.18 < result.latency_ms("RMC2-small") < 0.42
    assert 0.40 < result.latency_ms("RMC3-small") < 0.85
    assert result.breakdown("RMC2-small")["SLS"] > 0.7
    assert result.breakdown("RMC3-small")["FC"] > 0.9
