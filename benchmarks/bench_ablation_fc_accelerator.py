"""Ablation: end-to-end benefit of a standalone FC accelerator.

Quantifies the paper's Takeaway 2/5: matrix-multiplication accelerators
"will provide limited benefits on end-to-end performance" for
recommendation — the embedding-dominated RMC2 barely moves even with an
infinitely fast FC engine, while the compute-bound RMC3 gains nearly its
full Amdahl limit.
"""

from conftest import emit

from repro.analysis import format_table
from repro.config import RMC1_SMALL, RMC2_SMALL, RMC3_SMALL
from repro.hw import BROADWELL, speedup_sweep

SPEEDUPS = [2.0, 10.0, 100.0]


def run_sweep():
    return speedup_sweep(
        BROADWELL, [RMC1_SMALL, RMC2_SMALL, RMC3_SMALL], 16, SPEEDUPS
    )


def test_ablation_fc_accelerator(benchmark):
    sweeps = benchmark(run_sweep)
    rows = []
    for name, results in sweeps.items():
        row = [name, f"{100 * results[0].fc_share:.0f}%"]
        row += [f"{r.end_to_end_speedup:.2f}x" for r in results]
        row.append(f"{results[0].amdahl_limit:.2f}x")
        rows.append(row)
    emit(
        "Ablation: FC accelerator end-to-end speedup (batch 16, Broadwell)",
        format_table(
            ["model", "FC share"] + [f"{s:g}x FC" for s in SPEEDUPS] + ["Amdahl limit"],
            rows,
        ),
    )
    by_name = {name: results for name, results in sweeps.items()}
    assert by_name["RMC2-small"][-1].end_to_end_speedup < 1.3
    assert by_name["RMC3-small"][-1].end_to_end_speedup > 5.0
