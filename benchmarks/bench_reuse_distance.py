"""Reuse-distance bench: miss-ratio curves of the Figure-14 traces.

One Mattson pass per trace yields the LRU hit ratio at *every* cache
capacity — the capacity-planning view of Figure 14's locality spread, and
the right way to size the embedding caches and DRAM tiers of the
memory-system studies.
"""

from conftest import emit

from repro.analysis import format_table
from repro.data import reuse_profile, synthetic_production_traces

CAPACITIES = [1_000, 10_000, 100_000]


def run_study():
    traces = synthetic_production_traces(table_rows=1_000_000, length=20_000)
    picks = [traces[0], traces[4], traces[9]]
    return [(t, reuse_profile(t.ids)) for t in picks]


def test_reuse_distance(benchmark):
    profiles = benchmark.pedantic(run_study, iterations=1, rounds=1)
    rows = []
    for trace, profile in profiles:
        row = [
            trace.name,
            f"{100 * profile.compulsory_fraction:.0f}%",
        ]
        for capacity in CAPACITIES:
            row.append(f"{100 * profile.hit_ratio(capacity):.0f}%")
        ws = profile.working_set_size(0.5)
        row.append(str(ws) if ws is not None else "unreachable")
        rows.append(row)
    emit(
        "Reuse-distance curves of Figure-14 traces (LRU hit ratio by capacity)",
        format_table(
            ["trace", "compulsory"]
            + [f"{c:,} rows" for c in CAPACITIES]
            + ["rows for 50% hits"],
            rows,
        ),
    )
    low_locality = profiles[0][1]
    high_locality = profiles[-1][1]
    assert high_locality.hit_ratio(10_000) > low_locality.hit_ratio(10_000)
    assert high_locality.compulsory_fraction < low_locality.compulsory_fraction
