"""Metrics registry: named counters, gauges, and streaming histograms.

Complements the tracer (:mod:`repro.obs.tracer`): spans answer "where did
*this request's* time go", metrics answer "how often and how much" across
a whole run. Series are identified by a dotted ``layer.component.event``
name (same convention as spans, enforced by SC801) plus optional labels::

    registry = MetricsRegistry()
    registry.counter("serving.router.retries", policy="retry").inc()
    registry.histogram("serving.router.latency_s").observe(0.004)

    before = registry.snapshot()
    ...
    delta = registry.snapshot().diff(before)

Histograms accumulate observations online and summarize on demand —
p50/p95/p99/p999 through the one shared quantile implementation
(:mod:`repro.obs.quantiles`), so a histogram tail and a
:class:`~repro.analysis.distributions.LatencySummary` tail can never
disagree on convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .quantiles import quantile
from .tracer import check_name

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramStats",
    "MetricsRegistry",
    "MetricsSnapshot",
    "series_key",
]

#: Quantiles every histogram summary reports.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99, 0.999)


def series_key(name: str, labels: dict[str, str]) -> str:
    """Canonical series identity: ``name{k=v,...}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


@dataclass
class Counter:
    """A monotonically non-decreasing count."""

    name: str
    labels: dict[str, str] = field(default_factory=dict)
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for levels")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time level (queue depth, healthy fraction, ...)."""

    name: str
    labels: dict[str, str] = field(default_factory=dict)
    value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)


@dataclass(frozen=True)
class HistogramStats:
    """Summary of a histogram's observations at snapshot time."""

    count: int
    total: float
    min: float
    max: float
    p50: float
    p95: float
    p99: float
    p999: float

    @property
    def mean(self) -> float:
        """Average observation (0 for an empty histogram)."""
        return self.total / self.count if self.count else 0.0

    def to_jsonable(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "p999": self.p999,
        }


_EMPTY_STATS = HistogramStats(
    count=0, total=0.0, min=0.0, max=0.0, p50=0.0, p95=0.0, p99=0.0, p999=0.0
)


@dataclass
class Histogram:
    """Streaming value distribution; quantiles via the shared helper."""

    name: str
    labels: dict[str, str] = field(default_factory=dict)
    _values: list[float] = field(default_factory=list, repr=False)

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._values.append(float(value))

    @property
    def count(self) -> int:
        """Number of observations so far."""
        return len(self._values)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile of everything observed so far."""
        return quantile(self._values, q)

    def stats(self) -> HistogramStats:
        """Summarize the observations (zeros when empty)."""
        if not self._values:
            return _EMPTY_STATS
        p50, p95, p99, p999 = (
            quantile(self._values, q) for q in SUMMARY_QUANTILES
        )
        return HistogramStats(
            count=len(self._values),
            total=float(sum(self._values)),
            min=min(self._values),
            max=max(self._values),
            p50=p50,
            p95=p95,
            p99=p99,
            p999=p999,
        )


class MetricsRegistry:
    """Get-or-create home for every metric series in a run."""

    def __init__(self) -> None:
        self._series: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, cls, name: str, labels: dict[str, str]):
        check_name(name)
        key = series_key(name, labels)
        series = self._series.get(key)
        if series is None:
            series = cls(name=name, labels=dict(labels))
            self._series[key] = series
        elif not isinstance(series, cls):
            raise TypeError(
                f"metric {key!r} is a {type(series).__name__}, "
                f"not a {cls.__name__}"
            )
        return series

    def counter(self, name: str, **labels: str) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use."""
        return self._get(Histogram, name, labels)

    def snapshot(self) -> "MetricsSnapshot":
        """Immutable view of every series' current state."""
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, HistogramStats] = {}
        for key, series in self._series.items():
            if isinstance(series, Counter):
                counters[key] = series.value
            elif isinstance(series, Gauge):
                gauges[key] = series.value
            else:
                histograms[key] = series.stats()
        return MetricsSnapshot(
            counters=counters, gauges=gauges, histograms=histograms
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """Point-in-time copy of a registry, diffable and JSON-serializable."""

    counters: dict[str, float]
    gauges: dict[str, float]
    histograms: dict[str, HistogramStats]

    def diff(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """This snapshot minus an ``earlier`` one.

        Counters and histogram counts/totals subtract; gauges and
        histogram quantiles are levels, so the later value is kept
        (quantiles of only-the-delta are not recoverable from summaries).
        """
        counters = {
            key: value - earlier.counters.get(key, 0.0)
            for key, value in self.counters.items()
        }
        histograms: dict[str, HistogramStats] = {}
        for key, stats in self.histograms.items():
            prior = earlier.histograms.get(key, _EMPTY_STATS)
            histograms[key] = HistogramStats(
                count=stats.count - prior.count,
                total=stats.total - prior.total,
                min=stats.min,
                max=stats.max,
                p50=stats.p50,
                p95=stats.p95,
                p99=stats.p99,
                p999=stats.p999,
            )
        return MetricsSnapshot(
            counters=counters, gauges=dict(self.gauges), histograms=histograms
        )

    def to_jsonable(self) -> dict:
        """Deterministic (sorted-key) plain-dict form for JSON dumps."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].to_jsonable()
                for k in sorted(self.histograms)
            },
        }
