"""Deterministic JSON form of experiment results and metrics.

Every experiment returns a nest of frozen dataclasses, numpy arrays and
plain containers; :func:`to_jsonable` flattens that into JSON-safe types
(dataclasses become field dicts, arrays become lists, numpy scalars
become Python scalars) so ``python -m repro <experiment> --json`` can dump
any result without per-experiment serializers. Objects with no natural
JSON form (e.g. a :class:`~repro.serving.faults.FaultSchedule`) fall back
to ``repr`` — lossy but honest, and still deterministic for seeded runs.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

import numpy as np

__all__ = ["to_jsonable", "dumps_result"]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-serializable builtins."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(key): to_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        seq = sorted(obj, key=repr) if isinstance(obj, (set, frozenset)) else obj
        return [to_jsonable(value) for value in seq]
    if hasattr(obj, "to_jsonable"):
        return obj.to_jsonable()
    return repr(obj)


def dumps_result(
    experiment: str, result: Any, metrics_snapshot: Any = None
) -> str:
    """The ``--json`` document: experiment result plus metrics snapshot."""
    payload: dict[str, Any] = {
        "experiment": experiment,
        "result": to_jsonable(result),
    }
    if metrics_snapshot is not None:
        payload["metrics"] = to_jsonable(metrics_snapshot)
    return json.dumps(payload, indent=2, sort_keys=True)
