"""Chrome ``trace_event`` export for :class:`~repro.obs.tracer.Tracer`.

Exports the recorded spans as the Trace Event Format consumed by
``chrome://tracing`` and Perfetto (legacy JSON): complete events
(``"ph": "X"``) for spans, instant events (``"ph": "i"``) for point
events, and ``thread_name`` metadata for track labels. Timestamps are the
simulator's seconds converted to microseconds — the viewer's native unit.

The export is deterministic: events are sorted by ``(ts, span id)`` and
serialized with sorted keys, so two identical seeded runs produce
byte-identical files (asserted by the tracing-determinism tests).
"""

from __future__ import annotations

import json

from .tracer import Tracer

__all__ = ["to_chrome", "dumps_chrome", "validate_chrome"]

#: pid for every event; the whole simulation is one "process".
_PID = 1


def to_chrome(tracer: Tracer) -> dict:
    """Build the ``{"traceEvents": [...]}`` payload from a tracer.

    Raises if any span is still open — every ``begin`` must have paired
    with an ``end`` (or :meth:`Tracer.close_all` must have drained them).
    """
    still_open = tracer.open_spans()
    if still_open:
        names = ", ".join(f"{s.name}#{s.span_id}" for s in still_open[:5])
        raise ValueError(
            f"{len(still_open)} span(s) still open (e.g. {names}); "
            "end them or call Tracer.close_all() before exporting"
        )
    events: list[dict] = []
    for track, label in sorted(tracer.track_names.items()):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": _PID,
                "tid": track,
                "args": {"name": label},
            }
        )
    timed: list[tuple[float, int, dict]] = []
    for span in tracer.spans:
        assert span.end_s is not None  # guaranteed by the open-span check
        args = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.args)
        timed.append(
            (
                span.begin_s,
                span.span_id,
                {
                    "ph": "X",
                    "name": span.name,
                    "cat": span.name.split(".", 1)[0],
                    "ts": span.begin_s * 1e6,
                    "dur": (span.end_s - span.begin_s) * 1e6,
                    "pid": _PID,
                    "tid": span.track,
                    "args": args,
                },
            )
        )
    for i, instant in enumerate(tracer.instants):
        timed.append(
            (
                instant.t_s,
                len(tracer.spans) + i,
                {
                    "ph": "i",
                    "s": "t",
                    "name": instant.name,
                    "cat": instant.name.split(".", 1)[0],
                    "ts": instant.t_s * 1e6,
                    "pid": _PID,
                    "tid": instant.track,
                    "args": dict(instant.args),
                },
            )
        )
    timed.sort(key=lambda item: (item[0], item[1]))
    events.extend(event for _, _, event in timed)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def dumps_chrome(tracer: Tracer) -> str:
    """Serialize a tracer to a canonical (byte-stable) JSON string."""
    return json.dumps(to_chrome(tracer), sort_keys=True, separators=(",", ":"))


def validate_chrome(payload: dict) -> list[str]:
    """Check a Chrome trace payload's invariants; returns problems found.

    An empty list means the trace is valid: every span event carries a
    matched begin/end (``ts`` + non-negative ``dur``), timestamps are
    non-negative and monotone in file order, span ids are unique, and
    every ``parent_id`` refers to an exported span.
    """
    problems: list[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["payload has no traceEvents list"]
    span_ids: set[int] = set()
    parent_refs: list[tuple[str, int]] = []
    last_ts = None
    for event in events:
        ph = event.get("ph")
        if ph == "M":
            continue
        name = event.get("name", "<unnamed>")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{name}: bad ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(f"{name}: ts {ts} goes backwards (prev {last_ts})")
        last_ts = ts
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{name}: complete event with bad dur {dur!r}")
            span_id = event.get("args", {}).get("span_id")
            if not isinstance(span_id, int):
                problems.append(f"{name}: span event missing integer span_id")
            elif span_id in span_ids:
                problems.append(f"{name}: duplicate span_id {span_id}")
            else:
                span_ids.add(span_id)
            parent_id = event.get("args", {}).get("parent_id")
            if parent_id is not None:
                parent_refs.append((name, parent_id))
        elif ph == "i":
            continue
        else:
            problems.append(f"{name}: unexpected event phase {ph!r}")
    for name, parent_id in parent_refs:
        if parent_id not in span_ids:
            problems.append(f"{name}: parent_id {parent_id} refers to no span")
    return problems
