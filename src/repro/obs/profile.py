"""Per-operator cycle and byte attribution for live serving runs.

The paper's Figure 4 attributes data-center cycles to operator classes
(FC, SLS, Concat, ...) from fleet profiling. :class:`OpProfiler`
reproduces that breakdown for *any* simulated serving run, not just the
static experiment: the :class:`~repro.hw.timing.TimingModel` reports each
operator invocation it prices (cycles plus bytes touched), and the
serving simulators attribute every completed request's noisy service time
back to its per-operator shares.

For a single-model run the profiled cycle fractions converge on
``ModelLatency.fraction_by_op_type()`` — the same quantity Figure 4/7
plot — which the integration tests assert to within 1%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for annotations only; no runtime cycle
    from ..hw.timing import ModelLatency, OperatorTime

__all__ = ["OpAttribution", "OpProfiler"]


@dataclass
class OpAttribution:
    """Accumulated simulated cost of one operator class."""

    op_type: str
    invocations: int = 0
    cycles: float = 0.0
    bytes_moved: float = 0.0

    def add(self, cycles: float, bytes_moved: float) -> None:
        self.invocations += 1
        self.cycles += cycles
        self.bytes_moved += bytes_moved


class OpProfiler:
    """Attributes simulated cycles and bytes to operator classes.

    Two feeding styles, matching the two layers that know the numbers:

    * ``TimingModel(server, profiler=...)`` calls :meth:`record_timed_op`
      once per operator it prices (analytic, per invocation);
    * ``ServingSimulator(..., profiler=...)`` calls :meth:`record_request`
      once per completed inference, scaling the request's per-op base
      times to its actual (noisy) service time so attributed cycles sum
      to simulated cycles exactly.
    """

    def __init__(self) -> None:
        self.by_op_type: dict[str, OpAttribution] = {}
        self.requests: int = 0

    # ------------------------------------------------------------- feeding

    def record_op(self, op_type: str, cycles: float, bytes_moved: float) -> None:
        """Accumulate one operator invocation's cost."""
        if cycles < 0 or bytes_moved < 0:
            raise ValueError("cycles and bytes must be non-negative")
        attribution = self.by_op_type.get(op_type)
        if attribution is None:
            attribution = OpAttribution(op_type=op_type)
            self.by_op_type[op_type] = attribution
        attribution.add(cycles, bytes_moved)

    def record_timed_op(
        self, op: "OperatorTime", frequency_ghz: float, bytes_moved: float
    ) -> None:
        """Accumulate one priced operator (the TimingModel hook)."""
        self.record_op(op.op_type, op.seconds * frequency_ghz * 1e9, bytes_moved)

    def record_request(
        self,
        latency: "ModelLatency",
        frequency_ghz: float,
        actual_seconds: float | None = None,
        bytes_by_op: dict[str, float] | None = None,
    ) -> None:
        """Attribute one completed request's time to its operators.

        Args:
            latency: the analytic per-op breakdown the request was priced
                from (at its dispatch-time contention state).
            frequency_ghz: the serving core's clock, to convert seconds
                into cycles.
            actual_seconds: the request's realized service time (with
                noise/fault multipliers); each op's share is scaled by
                ``actual/analytic`` so attribution sums to simulated time.
            bytes_by_op: optional per-op-type byte counts for this request
                (defaults to zero — byte attribution then comes from the
                TimingModel hook instead).
        """
        total_s = latency.total_seconds
        scale = 1.0 if actual_seconds is None or total_s <= 0 else actual_seconds / total_s
        for op in latency.per_op:
            moved = 0.0 if bytes_by_op is None else bytes_by_op.get(op.op_type, 0.0)
            self.record_op(op.op_type, op.seconds * scale * frequency_ghz * 1e9, moved)
        self.requests += 1

    # ------------------------------------------------------------- queries

    def total_cycles(self) -> float:
        """All attributed cycles."""
        return sum(a.cycles for a in self.by_op_type.values())

    def cycles_by_op_type(self) -> dict[str, float]:
        """Attributed cycles per operator class."""
        return {k: a.cycles for k, a in self.by_op_type.items()}

    def bytes_by_op_type(self) -> dict[str, float]:
        """Attributed bytes per operator class."""
        return {k: a.bytes_moved for k, a in self.by_op_type.items()}

    def fraction_by_op_type(self) -> dict[str, float]:
        """Cycle share per operator class — the Figure-4 view of a run."""
        total = self.total_cycles()
        if total <= 0:
            return {}
        return {k: a.cycles / total for k, a in self.by_op_type.items()}

    def merged(self, other: "OpProfiler") -> "OpProfiler":
        """Combine two profilers (e.g. per-instance shards of one run)."""
        out = OpProfiler()
        for profiler in (self, other):
            for key, a in profiler.by_op_type.items():
                target = out.by_op_type.setdefault(key, OpAttribution(op_type=key))
                target.invocations += a.invocations
                target.cycles += a.cycles
                target.bytes_moved += a.bytes_moved
            out.requests += profiler.requests
        return out

    def render(self) -> str:
        """Text table of the breakdown, largest cycle share first."""
        fractions = self.fraction_by_op_type()
        rows = sorted(
            self.by_op_type.values(), key=lambda a: -a.cycles
        )
        lines = [
            f"{'operator':<12}{'invocations':>12}{'cycles':>16}"
            f"{'share %':>9}{'bytes':>16}"
        ]
        for a in rows:
            lines.append(
                f"{a.op_type:<12}{a.invocations:>12}{a.cycles:>16.3e}"
                f"{100 * fractions.get(a.op_type, 0.0):>8.1f}%"
                f"{a.bytes_moved:>16.3e}"
            )
        if self.requests:
            lines.append(f"requests attributed: {self.requests}")
        return "\n".join(lines)
