"""Structured span tracing on the simulators' event clocks.

The serving stack is a set of discrete-event simulations; every
interesting instant already has a simulated timestamp. The tracer records
that structure — ``request → queue → batch → shard fan-out →
attempt/retry/hedge → op`` — as :class:`Span` records with parent/child
links, using **the DES clock, never wall-clock**: traces are functions of
the seed alone, so two identical runs export byte-identical JSON and the
determinism rule (SC301) stays clean.

Two API styles:

* **explicit-time** — event-driven code passes simulated times itself::

      span_id = tracer.begin("serving.router.attempt", t_s=now_s, track=machine)
      ...
      tracer.end(span_id, t_s=done_s, outcome="ok")

  or, when both edges are known at once (analytic latency models)::

      tracer.complete("serving.shard.sls", begin_s=t0_s, end_s=t1_s, track=shard)

* **context-manager** — region code with a clock callable::

      tracer = Tracer(clock=sim.now)
      with tracer.span("serving.batch.collect"):
          ...

Span and metric names follow a dotted ``layer.component.event``
convention (at least three lowercase segments), enforced here at record
time and statically by staticcheck rule SC801.

Tracing off is the default everywhere: instrumented components take
``tracer=None`` and fall back to :data:`NULL_TRACER`, whose methods are
no-ops. The tracer never touches any RNG stream or event ordering, so a
run with tracing disabled is bit-identical to one that predates the
instrumentation.
"""

from __future__ import annotations

import re
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = [
    "NULL_TRACER",
    "Instant",
    "NullTracer",
    "SPAN_NAME_RE",
    "Span",
    "Tracer",
    "as_tracer",
]

#: ``layer.component.event``: at least three dot-separated lowercase
#: segments, each starting with a letter.
SPAN_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*){2,}$")


def check_name(name: str) -> str:
    """Validate the dotted ``layer.component.event`` naming convention."""
    if not SPAN_NAME_RE.match(name):
        raise ValueError(
            f"span/metric name {name!r} must be dotted layer.component.event "
            "(>= 3 lowercase segments, e.g. 'serving.router.attempt')"
        )
    return name


@dataclass
class Span:
    """One traced interval on the simulated clock.

    ``end_s`` is ``None`` while the span is open; exporting a trace with
    open spans is an error (every begin must pair with an end).
    """

    span_id: int
    parent_id: int | None
    name: str
    track: int
    begin_s: float
    end_s: float | None = None
    args: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Span length; raises while the span is still open."""
        if self.end_s is None:
            raise ValueError(f"span {self.name!r} (id {self.span_id}) is still open")
        return self.end_s - self.begin_s


@dataclass(frozen=True)
class Instant:
    """A point event (a retry fired, a replica crashed)."""

    name: str
    t_s: float
    track: int
    args: dict


class Tracer:
    """Records spans and instants against an explicit simulated clock.

    Args:
        clock: optional ``() -> float`` returning the current simulated
            time, used only by the :meth:`span` context manager. The
            explicit-time API (:meth:`begin`/:meth:`end`/:meth:`complete`/
            :meth:`instant`) never consults it.
    """

    enabled: bool = True

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self.clock = clock
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self.track_names: dict[int, str] = {}
        self._open: set[int] = set()
        self._stack: list[int] = []

    # ----------------------------------------------------- explicit-time API

    def begin(
        self,
        name: str,
        t_s: float,
        parent_id: int | None = None,
        track: int = 0,
        **args,
    ) -> int:
        """Open a span at simulated time ``t_s``; returns its id."""
        check_name(name)
        if parent_id is not None and not 0 <= parent_id < len(self.spans):
            raise ValueError(f"unknown parent span id {parent_id}")
        span_id = len(self.spans)
        self.spans.append(
            Span(
                span_id=span_id,
                parent_id=parent_id,
                name=name,
                track=track,
                begin_s=t_s,
                args=dict(args),
            )
        )
        self._open.add(span_id)
        return span_id

    def end(self, span_id: int, t_s: float, **args) -> None:
        """Close an open span at simulated time ``t_s``."""
        if span_id not in self._open:
            raise ValueError(f"span id {span_id} is not open")
        span = self.spans[span_id]
        if t_s < span.begin_s:
            raise ValueError(
                f"span {span.name!r} would end at {t_s} before it began "
                f"at {span.begin_s}"
            )
        span.end_s = t_s
        span.args.update(args)
        self._open.discard(span_id)

    def complete(
        self,
        name: str,
        begin_s: float,
        end_s: float,
        parent_id: int | None = None,
        track: int = 0,
        **args,
    ) -> int:
        """Record a span whose both edges are already known."""
        span_id = self.begin(name, begin_s, parent_id=parent_id, track=track, **args)
        self.end(span_id, end_s)
        return span_id

    def instant(self, name: str, t_s: float, track: int = 0, **args) -> None:
        """Record a point event."""
        check_name(name)
        self.instants.append(Instant(name=name, t_s=t_s, track=track, args=dict(args)))

    # -------------------------------------------------- context-manager API

    @contextmanager
    def span(
        self,
        name: str,
        parent_id: int | None = None,
        track: int = 0,
        **args,
    ) -> Iterator[Span]:
        """Trace a code region using the tracer's ``clock``.

        Nested ``span`` blocks parent automatically; an explicit
        ``parent_id`` overrides the nesting.
        """
        if self.clock is None:
            raise ValueError(
                "Tracer.span needs a clock; construct Tracer(clock=...) or "
                "use the explicit-time begin/end API"
            )
        if parent_id is None and self._stack:
            parent_id = self._stack[-1]
        span_id = self.begin(
            name, self.clock(), parent_id=parent_id, track=track, **args
        )
        self._stack.append(span_id)
        try:
            yield self.spans[span_id]
        finally:
            self._stack.pop()
            self.end(span_id, self.clock())

    # -------------------------------------------------------------- queries

    def set_track_name(self, track: int, label: str) -> None:
        """Human-readable label for a track (a thread lane in the viewer)."""
        self.track_names[track] = label

    def open_spans(self) -> list[Span]:
        """Spans begun but not yet ended (must be empty before export)."""
        return [self.spans[i] for i in sorted(self._open)]

    def close_all(self, t_s: float, **args) -> int:
        """Force-close every open span at ``t_s`` (end-of-run drain).

        Returns the number of spans closed. Use at a simulation horizon so
        unresolved work (e.g. a request still waiting on a dead replica)
        exports as a valid span instead of failing validation.
        """
        closed = 0
        for span_id in sorted(self._open):
            self.end(span_id, max(t_s, self.spans[span_id].begin_s), **args)
            closed += 1
        return closed


class NullTracer:
    """The nil tracer: every method is a no-op, ``enabled`` is False.

    Instrumented components hold one of these by default, so tracing costs
    a single attribute check on hot paths and nothing else.
    """

    enabled: bool = False
    clock = None

    def begin(self, name: str, t_s: float, parent_id=None, track: int = 0, **args) -> int:
        return 0

    def end(self, span_id: int, t_s: float, **args) -> None:
        return None

    def complete(
        self, name: str, begin_s: float, end_s: float, parent_id=None,
        track: int = 0, **args,
    ) -> int:
        return 0

    def instant(self, name: str, t_s: float, track: int = 0, **args) -> None:
        return None

    @contextmanager
    def span(self, name: str, parent_id=None, track: int = 0, **args) -> Iterator[None]:
        yield None

    def set_track_name(self, track: int, label: str) -> None:
        return None

    def open_spans(self) -> list[Span]:
        return []

    def close_all(self, t_s: float, **args) -> int:
        return 0


#: Shared nil tracer; safe because every method is stateless.
NULL_TRACER = NullTracer()


def as_tracer(tracer: "Tracer | NullTracer | None") -> "Tracer | NullTracer":
    """Normalize an optional tracer argument (``None`` → :data:`NULL_TRACER`)."""
    return NULL_TRACER if tracer is None else tracer
