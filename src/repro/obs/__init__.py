"""Observability for the serving stack: tracing, metrics, and profiling.

The paper's contribution is visibility — operator breakdowns (Figure 4/7),
tail attribution under co-location (Figure 11). ``repro.obs`` gives the
simulators the same visibility at run time:

* :mod:`~repro.obs.tracer` — structured spans on the DES clock, with a
  nil-by-default :data:`NULL_TRACER` so tracing off is bit-identical;
* :mod:`~repro.obs.chrome` — Chrome ``trace_event`` JSON export
  (``chrome://tracing`` / Perfetto) plus a validator;
* :mod:`~repro.obs.metrics` — counters, gauges, streaming histograms with
  labels and snapshot/diff;
* :mod:`~repro.obs.quantiles` — the one shared quantile implementation;
* :mod:`~repro.obs.profile` — per-operator cycle/byte attribution
  (a Figure-4 breakdown for any live run);
* :mod:`~repro.obs.report` — the flight-recorder terminal report;
* :mod:`~repro.obs.jsonio` — JSON export of results + metrics snapshots.

See ``docs/OBSERVABILITY.md`` for the span model and naming convention.
"""

from .chrome import dumps_chrome, to_chrome, validate_chrome
from .jsonio import dumps_result, to_jsonable
from .metrics import (
    SUMMARY_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    HistogramStats,
    MetricsRegistry,
    MetricsSnapshot,
    series_key,
)
from .profile import OpAttribution, OpProfiler
from .quantiles import quantile, quantiles
from .report import StageStats, flight_report, stage_stats, top_spans, waterfall
from .tracer import (
    NULL_TRACER,
    Instant,
    NullTracer,
    SPAN_NAME_RE,
    Span,
    Tracer,
    as_tracer,
)

__all__ = [
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramStats",
    "Instant",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullTracer",
    "OpAttribution",
    "OpProfiler",
    "SPAN_NAME_RE",
    "SUMMARY_QUANTILES",
    "Span",
    "StageStats",
    "Tracer",
    "as_tracer",
    "dumps_chrome",
    "dumps_result",
    "flight_report",
    "quantile",
    "quantiles",
    "series_key",
    "stage_stats",
    "to_chrome",
    "to_jsonable",
    "top_spans",
    "validate_chrome",
    "waterfall",
]
