"""The one quantile implementation every layer shares.

Before :mod:`repro.obs` existed, ``serving/metrics.py`` and
``analysis/distributions.py`` each called ``np.percentile`` with their own
conventions (percent points vs fractions). Tail statistics quoted across
figures must come from one definition, so both now route through
:func:`quantile` — as do the streaming histograms in
:mod:`repro.obs.metrics`.

Convention: quantiles are *fractions* in ``[0, 1]`` (``0.99``, not ``99``)
and interpolation is numpy's default linear rule. The implementation
multiplies by exactly ``100.0`` and defers to ``np.percentile``, so
results are bit-identical to the historical call sites (the goldens prove
it).
"""

from __future__ import annotations

import numpy as np

__all__ = ["quantile", "quantiles"]


def _as_array(samples) -> np.ndarray:
    arr = np.asarray(
        samples if isinstance(samples, np.ndarray) else list(samples),
        dtype=np.float64,
    )
    if arr.size == 0:
        raise ValueError("cannot take a quantile of an empty sample")
    return arr


def quantile(samples, q: float) -> float:
    """The ``q``-quantile (``q`` in ``[0, 1]``) of a non-empty sample."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    return float(np.percentile(_as_array(samples), 100.0 * q))


def quantiles(samples, qs) -> tuple[float, ...]:
    """Several quantiles of one sample in a single pass."""
    qs = tuple(qs)
    for q in qs:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
    arr = _as_array(samples)
    return tuple(
        float(v) for v in np.percentile(arr, [100.0 * q for q in qs])
    )
