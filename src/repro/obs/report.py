"""Flight-recorder rendering: per-stage waterfall and top-k span table.

Turns a recorded trace into the terminal view ``python -m repro trace
<experiment>`` prints: which pipeline stage the latency lives in
(queue? service? retry backoff?), and which individual spans were the
worst. For interactive digging, export the same tracer with
:func:`repro.obs.chrome.dumps_chrome` and load it in Perfetto.
"""

from __future__ import annotations

from dataclasses import dataclass

from .quantiles import quantile
from .tracer import Tracer

__all__ = ["StageStats", "stage_stats", "waterfall", "top_spans", "flight_report"]

_BAR_WIDTH = 32


@dataclass(frozen=True)
class StageStats:
    """Aggregate timing of one span name (a pipeline stage)."""

    name: str
    count: int
    total_s: float
    mean_s: float
    p95_s: float
    max_s: float
    first_begin_s: float


def stage_stats(tracer: Tracer) -> list[StageStats]:
    """Per-stage aggregates, ordered by first appearance (pipeline order)."""
    durations: dict[str, list[float]] = {}
    first_begin: dict[str, float] = {}
    for span in tracer.spans:
        if span.end_s is None:
            continue
        durations.setdefault(span.name, []).append(span.duration_s)
        first = first_begin.get(span.name)
        if first is None or span.begin_s < first:
            first_begin[span.name] = span.begin_s
    stages = []
    for name, values in durations.items():
        stages.append(
            StageStats(
                name=name,
                count=len(values),
                total_s=sum(values),
                mean_s=sum(values) / len(values),
                p95_s=quantile(values, 0.95),
                max_s=max(values),
                first_begin_s=first_begin[name],
            )
        )
    stages.sort(key=lambda s: (s.first_begin_s, s.name))
    return stages


def waterfall(tracer: Tracer) -> str:
    """Text waterfall: one bar per stage, scaled to the busiest stage."""
    stages = stage_stats(tracer)
    if not stages:
        return "(no closed spans recorded)"
    widest = max(len(s.name) for s in stages)
    peak_s = max(s.total_s for s in stages) or 1.0
    lines = [
        f"{'stage':<{widest}}  {'count':>7} {'total ms':>10} {'mean us':>10} "
        f"{'p95 us':>10} {'max us':>10}"
    ]
    for s in stages:
        bar = "#" * max(1, round(_BAR_WIDTH * s.total_s / peak_s))
        lines.append(
            f"{s.name:<{widest}}  {s.count:>7} {s.total_s * 1e3:>10.3f} "
            f"{s.mean_s * 1e6:>10.1f} {s.p95_s * 1e6:>10.1f} "
            f"{s.max_s * 1e6:>10.1f}  {bar}"
        )
    return "\n".join(lines)


def top_spans(tracer: Tracer, k: int = 10) -> str:
    """The ``k`` longest closed spans, worst first."""
    closed = [s for s in tracer.spans if s.end_s is not None]
    if not closed:
        return "(no closed spans recorded)"
    closed.sort(key=lambda s: (-s.duration_s, s.span_id))
    lines = [f"{'dur us':>12} {'begin ms':>10} {'track':>6}  name / args"]
    for span in closed[:k]:
        args = ", ".join(f"{key}={value}" for key, value in sorted(span.args.items()))
        suffix = f"  [{args}]" if args else ""
        lines.append(
            f"{span.duration_s * 1e6:>12.1f} {span.begin_s * 1e3:>10.3f} "
            f"{span.track:>6}  {span.name}{suffix}"
        )
    return "\n".join(lines)


def flight_report(tracer: Tracer, top_k: int = 10) -> str:
    """Waterfall plus top-k table — the ``repro trace`` terminal report."""
    closed = sum(1 for s in tracer.spans if s.end_s is not None)
    header = (
        f"flight recorder: {closed} span(s), {len(tracer.instants)} instant "
        f"event(s) on {len({s.track for s in tracer.spans}) or 1} track(s)"
    )
    return "\n".join(
        [
            header,
            "",
            "-- per-stage waterfall " + "-" * 40,
            waterfall(tracer),
            "",
            f"-- top {top_k} spans " + "-" * 46,
            top_spans(tracer, top_k),
        ]
    )
