"""Dual-socket NUMA effects on embedding placement.

Every Table-II machine has two sockets; a 10 GB RMC2 model's tables do not
fit one socket's locality domain comfortably once co-located jobs pile up,
so table placement matters: a remote-socket row gather crosses the
inter-socket link (QPI/UPI), adding latency and consuming link bandwidth.

Three placements are modelled:

* ``local`` — all tables on the core's socket (best, needs the capacity);
* ``remote`` — all tables on the other socket (worst case);
* ``interleave`` — rows striped across both (half the gathers remote, but
  both memory controllers share the load — the OS default for big tables).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.model_config import ModelConfig
from .server import ServerSpec
from .timing import TimingModel

PLACEMENTS = ("local", "remote", "interleave")

#: Extra exposed latency of a remote-socket row gather, as a multiple of
#: the local DRAM service time (UPI hop + remote controller queue).
REMOTE_ACCESS_FACTOR = 1.6

#: Bandwidth relief of interleaving: both controllers serve the stream.
INTERLEAVE_BANDWIDTH_BONUS = 1.3


@dataclass(frozen=True)
class NumaLatency:
    """Predicted model latency under one NUMA placement."""

    model_name: str
    server_name: str
    placement: str
    batch_size: int
    total_seconds: float
    sls_seconds: float

    @property
    def remote_fraction(self) -> float:
        """Fraction of gathers that cross the socket link."""
        return {"local": 0.0, "remote": 1.0, "interleave": 0.5}[self.placement]


def numa_latency(
    server: ServerSpec,
    config: ModelConfig,
    batch_size: int,
    placement: str = "local",
) -> NumaLatency:
    """Predict inference latency for a given table placement.

    The remote penalty applies to the DRAM-missing fraction of SLS time;
    interleaving additionally relieves bandwidth pressure at high batch by
    engaging both controllers.
    """
    if placement not in PLACEMENTS:
        raise ValueError(f"unknown placement {placement!r}; valid: {PLACEMENTS}")
    timing = TimingModel(server)
    latency = timing.model_latency(config, batch_size)
    hit = timing.table_hit_ratio(config.embedding_storage_bytes())

    remote_fraction = {"local": 0.0, "remote": 1.0, "interleave": 0.5}[placement]
    penalty = 1.0 + remote_fraction * (REMOTE_ACCESS_FACTOR - 1.0)
    if placement == "interleave":
        penalty /= INTERLEAVE_BANDWIDTH_BONUS ** min(1.0, batch_size / 64)

    total = 0.0
    sls_seconds = 0.0
    for op in latency.per_op:
        if op.op_type == "SLS":
            # Only the DRAM-missing share of SLS crosses the link.
            miss_share = 1.0 - hit
            adjusted = op.seconds * (1.0 + miss_share * (penalty - 1.0))
            sls_seconds += adjusted
            total += adjusted
        else:
            total += op.seconds
    return NumaLatency(
        model_name=config.name,
        server_name=server.name,
        placement=placement,
        batch_size=batch_size,
        total_seconds=total,
        sls_seconds=sls_seconds,
    )


def placement_comparison(
    server: ServerSpec, config: ModelConfig, batch_size: int
) -> dict[str, NumaLatency]:
    """All three placements for one (server, model, batch)."""
    return {
        placement: numa_latency(server, config, batch_size, placement)
        for placement in PLACEMENTS
    }
