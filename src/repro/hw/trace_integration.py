"""Closing the loop: trace-driven cache simulation → analytic timing.

The analytic timing model takes an SLS hit ratio as a parameter; the
mechanistic cache hierarchy can *measure* that hit ratio for a concrete
trace. This module runs a lookup trace through the Table-II hierarchy and
feeds the measured hit ratio back into ``model_latency``, so users with
real traces get trace-faithful latency predictions without choosing a
locality number by hand.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config.model_config import ModelConfig
from ..core.operators.sls import EmbeddingTable, SparseLengthsSum
from .hierarchy import CacheHierarchy
from .server import ServerSpec
from .timing import ModelLatency, TimingModel


@dataclass(frozen=True)
class TraceDrivenResult:
    """Measured cache behaviour plus the resulting latency prediction."""

    measured_hit_ratio: float
    l1_hits: int
    l2_hits: int
    l3_hits: int
    dram_accesses: int
    latency: ModelLatency


def measure_trace_hit_ratio(
    server: ServerSpec,
    table_rows: int,
    embedding_dim: int,
    trace_ids: np.ndarray,
    l3_share: float = 1.0,
) -> tuple[float, CacheHierarchy]:
    """Replay a lookup trace through the hierarchy; return the hit ratio.

    A "hit" here means the row was served from any cache level — the
    quantity the analytic SLS model blends against its DRAM-miss path.
    """
    trace_ids = np.asarray(trace_ids).reshape(-1)
    if trace_ids.size == 0:
        raise ValueError("trace must contain lookups")
    table = EmbeddingTable(table_rows, embedding_dim)
    sls = SparseLengthsSum("trace", table, lookups_per_sample=1)
    hierarchy = CacheHierarchy(server, l3_share=l3_share)
    hierarchy.access_trace(sls.trace_for_rows(trace_ids))
    stats = hierarchy.stats
    total = stats.total_line_accesses
    hit_ratio = 1.0 - stats.dram_accesses / total if total else 0.0
    return hit_ratio, hierarchy


def trace_driven_latency(
    server: ServerSpec,
    config: ModelConfig,
    trace_ids: np.ndarray,
    batch_size: int = 16,
    l3_share: float = 1.0,
) -> TraceDrivenResult:
    """Predict inference latency using a measured, trace-specific hit ratio.

    The trace is replayed against a table of the model's (per-table) size;
    the measured hit ratio replaces the analytic capacity heuristic.
    """
    table = config.embedding_tables[0]
    hit_ratio, hierarchy = measure_trace_hit_ratio(
        server, table.rows, table.dim, trace_ids, l3_share
    )
    latency = TimingModel(server).model_latency(
        config, batch_size, sls_hit_ratio=hit_ratio
    )
    stats = hierarchy.stats
    return TraceDrivenResult(
        measured_hit_ratio=hit_ratio,
        l1_hits=stats.l1_hits,
        l2_hits=stats.l2_hits,
        l3_hits=stats.l3_hits,
        dram_accesses=stats.dram_accesses,
        latency=latency,
    )
