"""Closing the loop: trace-driven cache simulation → analytic timing.

The analytic timing model takes an SLS hit ratio as a parameter; the
mechanistic cache hierarchy can *measure* that hit ratio for a concrete
trace. This module runs a lookup trace through the Table-II hierarchy and
feeds the measured hit ratio back into ``model_latency``, so users with
real traces get trace-faithful latency predictions without choosing a
locality number by hand.

:func:`replay_line_trace` is the batch entry point: it feeds an int64
line-index array (e.g. ``SparseLengthsSum.line_trace_for_rows``) through
``CacheHierarchy.access_lines`` in one kernel call per chunk, and
optionally emits ``hw.replay.*`` spans / per-op attribution so replays
show up in ``python -m repro trace`` waterfalls. Tracing off
(``tracer=None``) is the default and leaves the replay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..config.model_config import ModelConfig
from ..core.operators.base import OP_SLS
from ..core.operators.sls import EmbeddingTable, SparseLengthsSum
from ..obs.profile import OpProfiler
from ..obs.tracer import Tracer
from .hierarchy import CacheHierarchy, HierarchyStats
from .server import ServerSpec
from .timing import ModelLatency, TimingModel

#: Simulated hit latencies used only to lay replay spans on the trace
#: timeline (L3/DRAM latencies come from the ServerSpec).
L1_HIT_CYCLES = 4
L2_HIT_CYCLES = 14


def _stats_delta(after: HierarchyStats, before: HierarchyStats) -> HierarchyStats:
    return HierarchyStats(
        l1_hits=after.l1_hits - before.l1_hits,
        l2_hits=after.l2_hits - before.l2_hits,
        l3_hits=after.l3_hits - before.l3_hits,
        dram_accesses=after.dram_accesses - before.dram_accesses,
        l2_back_invalidations=(
            after.l2_back_invalidations - before.l2_back_invalidations
        ),
        prefetches_issued=after.prefetches_issued - before.prefetches_issued,
        prefetch_hits=after.prefetch_hits - before.prefetch_hits,
    )


def replay_line_trace(
    hierarchy: CacheHierarchy,
    lines: np.ndarray,
    tracer: Tracer | None = None,
    profiler: OpProfiler | None = None,
    track: int = 0,
    t0_s: float = 0.0,
    op_type: str = OP_SLS,
) -> HierarchyStats:
    """Replay a line-index array through ``hierarchy``; return delta stats.

    The replay itself is one ``access_lines`` batch. When a ``tracer`` is
    supplied, the replay is recorded as a ``hw.replay.trace`` span (at
    simulated time ``t0_s`` on ``track``) with per-level child spans whose
    durations are the levels' simulated cycle shares — the same waterfall
    treatment every other serving component gets. A ``profiler``
    attributes the replay's simulated cycles and line bytes to
    ``op_type``. Both default to off and leave the stats bit-identical.
    """
    before = replace(hierarchy.stats)
    hierarchy.access_lines(lines)
    delta = _stats_delta(hierarchy.stats, before)
    if tracer is None and profiler is None:
        return delta
    server = hierarchy.server
    dram_cycles = server.dram_random_ns / server.cycle_ns
    level_cycles = (
        ("hw.replay.l1", delta.l1_hits * L1_HIT_CYCLES, delta.l1_hits),
        ("hw.replay.l2", delta.l2_hits * L2_HIT_CYCLES, delta.l2_hits),
        ("hw.replay.l3", delta.l3_hits * server.llc_latency_cycles, delta.l3_hits),
        ("hw.replay.dram", delta.dram_accesses * dram_cycles, delta.dram_accesses),
    )
    total_cycles = sum(cycles for _, cycles, _ in level_cycles)
    moved_bytes = delta.total_line_accesses * hierarchy.line_bytes
    if profiler is not None:
        profiler.record_op(op_type, total_cycles, moved_bytes)
    if tracer is not None:
        total_s = total_cycles * server.cycle_ns * 1e-9
        parent = tracer.complete(
            "hw.replay.trace",
            begin_s=t0_s,
            end_s=t0_s + total_s,
            track=track,
            lines=int(np.asarray(lines).size),
            engine=hierarchy.engine,
            backend=hierarchy.backend,
            dram_accesses=delta.dram_accesses,
        )
        cursor_s = t0_s
        for name, cycles, count in level_cycles:
            if count == 0:
                continue
            span_s = cycles * server.cycle_ns * 1e-9
            tracer.complete(
                name,
                begin_s=cursor_s,
                end_s=cursor_s + span_s,
                parent_id=parent,
                track=track,
                count=count,
            )
            cursor_s += span_s
    return delta


@dataclass(frozen=True)
class TraceDrivenResult:
    """Measured cache behaviour plus the resulting latency prediction."""

    measured_hit_ratio: float
    l1_hits: int
    l2_hits: int
    l3_hits: int
    dram_accesses: int
    latency: ModelLatency


def measure_trace_hit_ratio(
    server: ServerSpec,
    table_rows: int,
    embedding_dim: int,
    trace_ids: np.ndarray,
    l3_share: float = 1.0,
    engine: str = "vectorized",
    tracer: Tracer | None = None,
    profiler: OpProfiler | None = None,
    track: int = 0,
    t0_s: float = 0.0,
) -> tuple[float, CacheHierarchy]:
    """Replay a lookup trace through the hierarchy; return the hit ratio.

    A "hit" here means the row was served from any cache level — the
    quantity the analytic SLS model blends against its DRAM-miss path.
    Defaults to the vectorized engine (bit-identical stats, see
    ``docs/PERFORMANCE.md``); pass ``engine="reference"`` to run the
    executable spec instead.
    """
    trace_ids = np.asarray(trace_ids).reshape(-1)
    if trace_ids.size == 0:
        raise ValueError("trace must contain lookups")
    table = EmbeddingTable(table_rows, embedding_dim)
    sls = SparseLengthsSum("trace", table, lookups_per_sample=1)
    hierarchy = CacheHierarchy(server, l3_share=l3_share, engine=engine)
    replay_line_trace(
        hierarchy,
        sls.line_trace_for_rows(trace_ids, line_bytes=hierarchy.line_bytes),
        tracer=tracer,
        profiler=profiler,
        track=track,
        t0_s=t0_s,
    )
    stats = hierarchy.stats
    total = stats.total_line_accesses
    hit_ratio = 1.0 - stats.dram_accesses / total if total else 0.0
    return hit_ratio, hierarchy


def trace_driven_latency(
    server: ServerSpec,
    config: ModelConfig,
    trace_ids: np.ndarray,
    batch_size: int = 16,
    l3_share: float = 1.0,
    engine: str = "vectorized",
) -> TraceDrivenResult:
    """Predict inference latency using a measured, trace-specific hit ratio.

    The trace is replayed against a table of the model's (per-table) size;
    the measured hit ratio replaces the analytic capacity heuristic.
    """
    table = config.embedding_tables[0]
    hit_ratio, hierarchy = measure_trace_hit_ratio(
        server, table.rows, table.dim, trace_ids, l3_share, engine=engine
    )
    latency = TimingModel(server).model_latency(
        config, batch_size, sls_hit_ratio=hit_ratio
    )
    stats = hierarchy.stats
    return TraceDrivenResult(
        measured_hit_ratio=hit_ratio,
        l1_hits=stats.l1_hits,
        l2_hits=stats.l2_hits,
        l3_hits=stats.l3_hits,
        dram_accesses=stats.dram_accesses,
        latency=latency,
    )
