"""SIMD utilization modelling.

Two distinct quantities matter in the paper:

1. *Wall-clock GEMM utilization* — the fraction of peak FLOP/s a dense layer
   achieves at a given batch size. Matrix-vector work (batch 1) cannot fill
   wide vectors, so AVX-512 Skylake is slower than higher-clocked AVX-2
   Broadwell until batch ~64-128 (Figure 8). Modelled by per-server anchor
   tables interpolated log-linearly in batch
   (:func:`utilization`, :func:`effective_gflops`).

2. *Packed-SIMD instruction throughput* — what the paper measures with
   ``fp_arith_inst_retired.512b_packed_single``: 2.9x higher at batch 4 (74%
   of the theoretical 4x) and 14.5x at batch 16 (91% of 16x) relative to
   unit batch. Modelled by :func:`packed_simd_throughput_ratio`, calibrated
   to those two anchors.
"""

from __future__ import annotations

import math

from .server import ServerSpec


def _interp_log_batch(anchors: tuple[tuple[float, float], ...], batch: int) -> float:
    """Piecewise log-linear interpolation of (batch, value) anchor points."""
    if batch < 1:
        raise ValueError("batch must be >= 1")
    if batch <= anchors[0][0]:
        return anchors[0][1]
    if batch >= anchors[-1][0]:
        return anchors[-1][1]
    for (b0, v0), (b1, v1) in zip(anchors, anchors[1:]):
        if b0 <= batch <= b1:
            t = (math.log(batch) - math.log(b0)) / (math.log(b1) - math.log(b0))
            return v0 + t * (v1 - v0)
    raise AssertionError("unreachable: anchors must be sorted")  # pragma: no cover


def utilization(server: ServerSpec, batch: int) -> float:
    """Fraction of single-core peak FLOP/s a dense GEMM achieves."""
    return _interp_log_batch(server.fc_utilization, batch)


def effective_gflops(server: ServerSpec, batch: int) -> float:
    """Achieved single-core GFLOP/s for dense layers at ``batch``."""
    return server.peak_gflops_per_core * utilization(server, batch)


#: Paper-measured packed-SIMD throughput scaling on Skylake, relative to
#: unit batch: ``(batch, ratio)``. 74% of theoretical at batch 4, 91% at 16,
#: saturating near peak beyond.
_PACKED_RATIO_ANCHORS: tuple[tuple[float, float], ...] = (
    (1, 1.0),
    (4, 2.9),
    (16, 14.5),
    (64, 56.0),
    (256, 232.0),
)


def packed_simd_throughput_ratio(batch: int) -> float:
    """Packed 512-bit instruction throughput at ``batch`` vs batch 1.

    Reproduces the Section V measurement: ratios of retired packed-single
    SIMD instructions per unit time as batch grows.
    """
    return _interp_log_batch(_PACKED_RATIO_ANCHORS, batch)


def packed_simd_fraction_of_theoretical(batch: int) -> float:
    """The paper's "% of theoretical" view: ratio / batch."""
    if batch < 1:
        raise ValueError("batch must be >= 1")
    return packed_simd_throughput_ratio(batch) / batch
