"""Server-architecture simulator: Table-II machines, caches, SIMD, timing."""

from .accelerator import (
    AcceleratorConfig,
    AccelerationResult,
    accelerate_fc,
    speedup_sweep,
)
from .cache import CacheStats, SetAssociativeCache
from .colocation import ColocationState, ContentionModel, RUN_ALONE
from .energy import EnergyEstimate, efficiency_comparison, inference_energy
from .numa import NumaLatency, numa_latency, placement_comparison
from .hierarchy import CacheHierarchy, HierarchyStats
from .server import (
    ALL_SERVERS,
    AVX2,
    AVX512,
    BROADWELL,
    GB,
    HASWELL,
    KB,
    MB,
    SERVERS_BY_NAME,
    ServerSpec,
    SimdSpec,
    SKYLAKE,
    get_server,
)
from .simd import (
    effective_gflops,
    packed_simd_fraction_of_theoretical,
    packed_simd_throughput_ratio,
    utilization,
)
from .timing import ModelLatency, OperatorTime, TimingModel
from .trace_integration import (
    TraceDrivenResult,
    measure_trace_hit_ratio,
    trace_driven_latency,
)

__all__ = [
    "AcceleratorConfig",
    "AccelerationResult",
    "accelerate_fc",
    "speedup_sweep",
    "CacheStats",
    "SetAssociativeCache",
    "ColocationState",
    "ContentionModel",
    "RUN_ALONE",
    "EnergyEstimate",
    "efficiency_comparison",
    "inference_energy",
    "NumaLatency",
    "numa_latency",
    "placement_comparison",
    "CacheHierarchy",
    "HierarchyStats",
    "ALL_SERVERS",
    "AVX2",
    "AVX512",
    "BROADWELL",
    "GB",
    "HASWELL",
    "KB",
    "MB",
    "SERVERS_BY_NAME",
    "ServerSpec",
    "SimdSpec",
    "SKYLAKE",
    "get_server",
    "effective_gflops",
    "packed_simd_fraction_of_theoretical",
    "packed_simd_throughput_ratio",
    "utilization",
    "ModelLatency",
    "OperatorTime",
    "TimingModel",
    "TraceDrivenResult",
    "measure_trace_hit_ratio",
    "trace_driven_latency",
]
