"""Self-contained native kernel for the vectorized cache-replay engine.

Exact LRU simulation with cross-level feedback (inclusive back-
invalidation, victim fills, prefetch pollution) is inherently sequential
per cache line, so the vectorized engine's inner loop cannot be expressed
as whole-trace numpy array arithmetic without giving up bit-identical
stats. Instead the batch kernel is ~200 lines of C operating **in place on
the engine's structure-of-arrays numpy state** (int64 tag matrices, uint8
prefetch-flag matrices, int64 occupancy vectors — see
:mod:`repro.hw.vectorized`), compiled on first use with the system C
compiler and loaded through :mod:`ctypes`.

No third-party dependency is added: when no compiler is available (or
``REPRO_DISABLE_NATIVE=1`` is set) the engine transparently falls back to
the pure-Python batch kernel, which implements the same semantics and is
itself several times faster than the reference engine. The equivalence
test suite drives both backends against the reference
:class:`~repro.hw.cache.SetAssociativeCache` implementation, which remains
the executable specification.

Build artifacts go to ``REPRO_NATIVE_CACHE`` if set, else a
``_native_build`` directory next to this file when writable, else a
process-private temporary directory. The shared object is keyed by a hash
of the C source so edits trigger a rebuild.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

__all__ = ["compile_cached", "load_kernel", "native_available", "NativeKernel"]

# Mirror of the reference engine in repro.hw.cache / repro.hw.hierarchy.
# Each cache set keeps its resident lines contiguous from slot 0 in LRU
# order (slot 0 = LRU victim, slot occ-1 = MRU), matching the iteration
# order of the reference OrderedDict. The uint8 flag alongside each tag
# marks "filled by a prefetch, not yet demanded"; flags die with their
# copy on eviction, which is the leak-free prefetch-hit bookkeeping.
_C_SOURCE = r"""
#include <stdint.h>
#include <string.h>

typedef int64_t i64;
typedef uint8_t u8;

typedef struct {
    i64 *tags;
    u8 *flags;
    i64 *occ;
    i64 nsets;
    i64 ways;
    i64 *ctr; /* [hits, misses, evictions, invalidations] */
} Level;

typedef struct {
    Level l1, l2, l3;
    i64 inclusive;
    i64 degree;
    i64 *ctr; /* [l1_hits, l2_hits, l3_hits, dram, l2_back_inv,
                  pf_issued, pf_hits] */
} Ctx;

/* Python's % (always non-negative) — foreign pressure lines are negative. */
static inline i64 set_of(i64 line, i64 nsets) {
    i64 m = line % nsets;
    return m < 0 ? m + nsets : m;
}

static inline i64 find_way(const Level *L, i64 base, i64 n, i64 line) {
    const i64 *t = L->tags + base;
    for (i64 w = 0; w < n; ++w)
        if (t[w] == line)
            return w;
    return -1;
}

static inline void promote(Level *L, i64 base, i64 n, i64 w) {
    i64 tag = L->tags[base + w];
    u8 f = L->flags[base + w];
    memmove(L->tags + base + w, L->tags + base + w + 1,
            (size_t)(n - 1 - w) * sizeof(i64));
    memmove(L->flags + base + w, L->flags + base + w + 1,
            (size_t)(n - 1 - w) * sizeof(u8));
    L->tags[base + n - 1] = tag;
    L->flags[base + n - 1] = f;
}

static int level_probe(const Level *L, i64 line) {
    i64 s = set_of(line, L->nsets);
    return find_way(L, s * L->ways, L->occ[s], line) >= 0;
}

/* cache.touch(): LRU-promote + hit/miss counters; no allocation. */
static int level_touch(Level *L, i64 line, u8 *flag_out) {
    i64 s = set_of(line, L->nsets);
    i64 base = s * L->ways, n = L->occ[s];
    i64 w = find_way(L, base, n, line);
    if (w < 0) {
        L->ctr[1]++;
        return 0;
    }
    *flag_out = L->flags[base + w];
    L->flags[base + w] = 0; /* demand touch consumes the prefetch flag */
    promote(L, base, n, w);
    L->ctr[0]++;
    return 1;
}

/* cache.insert(): allocate at MRU; returns 1 and the victim on eviction.
   Present lines are promoted and their flag OR-ed (victim re-insertion). */
static int level_insert(Level *L, i64 line, u8 flag, i64 *victim,
                        u8 *victim_flag) {
    i64 s = set_of(line, L->nsets);
    i64 base = s * L->ways, n = L->occ[s];
    i64 w = find_way(L, base, n, line);
    if (w >= 0) {
        L->flags[base + w] |= flag;
        promote(L, base, n, w);
        return 0;
    }
    int evicted = 0;
    if (n >= L->ways) {
        *victim = L->tags[base];
        *victim_flag = L->flags[base];
        memmove(L->tags + base, L->tags + base + 1,
                (size_t)(n - 1) * sizeof(i64));
        memmove(L->flags + base, L->flags + base + 1,
                (size_t)(n - 1) * sizeof(u8));
        n--;
        L->ctr[2]++;
        evicted = 1;
    }
    L->tags[base + n] = line;
    L->flags[base + n] = flag;
    L->occ[s] = n + 1;
    return evicted;
}

/* cache.invalidate(): remove, keeping the order of the others. */
static int level_invalidate(Level *L, i64 line, int count_stat) {
    i64 s = set_of(line, L->nsets);
    i64 base = s * L->ways, n = L->occ[s];
    i64 w = find_way(L, base, n, line);
    if (w < 0)
        return 0;
    memmove(L->tags + base + w, L->tags + base + w + 1,
            (size_t)(n - 1 - w) * sizeof(i64));
    memmove(L->flags + base + w, L->flags + base + w + 1,
            (size_t)(n - 1 - w) * sizeof(u8));
    L->occ[s] = n - 1;
    if (count_stat)
        L->ctr[3]++;
    return 1;
}

static void clear_flag(Level *L, i64 line) {
    i64 s = set_of(line, L->nsets);
    i64 base = s * L->ways;
    i64 w = find_way(L, base, L->occ[s], line);
    if (w >= 0)
        L->flags[base + w] = 0;
}

static void insert_l3_inclusive(Ctx *c, i64 line, u8 flag) {
    i64 victim = 0;
    u8 vf = 0;
    if (level_insert(&c->l3, line, flag, &victim, &vf)) {
        /* Inclusion: the L3 victim is forced out of the inner levels. */
        if (level_invalidate(&c->l2, victim, 1))
            c->ctr[4]++;
        level_invalidate(&c->l1, victim, 1);
    }
}

static void fill_l2(Ctx *c, i64 line, u8 flag) {
    i64 victim = 0;
    u8 vf = 0;
    if (level_insert(&c->l2, line, flag, &victim, &vf) && !c->inclusive) {
        /* Victim-style L3 catches L2 evictions; the prefetch flag travels
           with the line so an eventual demand hit still counts. */
        i64 v2 = 0;
        u8 vf2 = 0;
        level_insert(&c->l3, victim, vf, &v2, &vf2);
    }
}

static void fill_l1(Ctx *c, i64 line) {
    i64 victim = 0;
    u8 vf = 0;
    level_insert(&c->l1, line, 0, &victim, &vf);
}

static void issue_prefetches(Ctx *c, i64 miss_line) {
    for (i64 off = 1; off <= c->degree; ++off) {
        i64 line = miss_line + off;
        if (level_probe(&c->l1, line) || level_probe(&c->l2, line))
            continue;
        c->ctr[5]++;
        if (c->inclusive)
            insert_l3_inclusive(c, line, 1);
        fill_l2(c, line, 1);
    }
}

static void access_line(Ctx *c, i64 line) {
    u8 flag = 0;
    if (level_touch(&c->l1, line, &flag)) {
        /* Prefetched lines never reach L1 without being demanded first,
           so no flag can be pending here. */
        c->ctr[0]++;
        return;
    }
    if (level_touch(&c->l2, line, &flag)) {
        if (flag) {
            c->ctr[6]++;
            /* Mirror the reference's single bookkeeping entry: consuming
               the prefetch clears the flag on any L3 copy too. */
            clear_flag(&c->l3, line);
        }
        c->ctr[1]++;
        fill_l1(c, line);
        return;
    }
    if (level_touch(&c->l3, line, &flag)) {
        if (flag)
            c->ctr[6]++;
        c->ctr[2]++;
        if (!c->inclusive) {
            /* Non-inclusive victim L3: the line moves up (uncounted
               removal, matching the reference's invalidation rollback). */
            level_invalidate(&c->l3, line, 0);
        }
        fill_l2(c, line, 0);
        fill_l1(c, line);
        return;
    }
    c->ctr[3]++;
    if (c->inclusive)
        insert_l3_inclusive(c, line, 0);
    fill_l2(c, line, 0);
    fill_l1(c, line);
    if (c->degree > 0)
        issue_prefetches(c, line);
}

static Ctx make_ctx(i64 *t1, u8 *f1, i64 *o1, i64 n1, i64 w1, i64 *c1,
                    i64 *t2, u8 *f2, i64 *o2, i64 n2, i64 w2, i64 *c2,
                    i64 *t3, u8 *f3, i64 *o3, i64 n3, i64 w3, i64 *c3,
                    i64 inclusive, i64 degree, i64 *hier_ctr) {
    Ctx c;
    c.l1 = (Level){t1, f1, o1, n1, w1, c1};
    c.l2 = (Level){t2, f2, o2, n2, w2, c2};
    c.l3 = (Level){t3, f3, o3, n3, w3, c3};
    c.inclusive = inclusive;
    c.degree = degree;
    c.ctr = hier_ctr;
    return c;
}

void repro_replay(const i64 *lines, i64 n_lines,
                  i64 *t1, u8 *f1, i64 *o1, i64 n1, i64 w1, i64 *c1,
                  i64 *t2, u8 *f2, i64 *o2, i64 n2, i64 w2, i64 *c2,
                  i64 *t3, u8 *f3, i64 *o3, i64 n3, i64 w3, i64 *c3,
                  i64 inclusive, i64 degree, i64 *hier_ctr) {
    Ctx c = make_ctx(t1, f1, o1, n1, w1, c1, t2, f2, o2, n2, w2, c2,
                     t3, f3, o3, n3, w3, c3, inclusive, degree, hier_ctr);
    for (i64 i = 0; i < n_lines; ++i)
        access_line(&c, lines[i]);
}

void repro_pressure(i64 evict_lines, i64 seed_stride,
                    i64 *t1, u8 *f1, i64 *o1, i64 n1, i64 w1, i64 *c1,
                    i64 *t2, u8 *f2, i64 *o2, i64 n2, i64 w2, i64 *c2,
                    i64 *t3, u8 *f3, i64 *o3, i64 n3, i64 w3, i64 *c3,
                    i64 inclusive, i64 degree, i64 *hier_ctr) {
    Ctx c = make_ctx(t1, f1, o1, n1, w1, c1, t2, f2, o2, n2, w2, c2,
                     t3, f3, o3, n3, w3, c3, inclusive, degree, hier_ctr);
    for (i64 i = 0; i < evict_lines; ++i) {
        i64 foreign = -(1 + i * seed_stride);
        if (c.inclusive) {
            insert_l3_inclusive(&c, foreign, 0);
        } else {
            i64 victim = 0;
            u8 vf = 0;
            level_insert(&c.l3, foreign, 0, &victim, &vf);
        }
    }
}
"""

_I64P = ctypes.POINTER(ctypes.c_int64)
_U8P = ctypes.POINTER(ctypes.c_uint8)

_LEVEL_ARGS = [_I64P, _U8P, _I64P, ctypes.c_int64, ctypes.c_int64, _I64P]


class NativeKernel:
    """ctypes facade over the compiled replay kernel."""

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._replay = lib.repro_replay
        self._replay.restype = None
        self._replay.argtypes = (
            [_I64P, ctypes.c_int64]
            + _LEVEL_ARGS * 3
            + [ctypes.c_int64, ctypes.c_int64, _I64P]
        )
        self._pressure = lib.repro_pressure
        self._pressure.restype = None
        self._pressure.argtypes = (
            [ctypes.c_int64, ctypes.c_int64]
            + _LEVEL_ARGS * 3
            + [ctypes.c_int64, ctypes.c_int64, _I64P]
        )

    @staticmethod
    def _level_args(level) -> list:
        return [
            level.tags.ctypes.data_as(_I64P),
            level.flags.ctypes.data_as(_U8P),
            level.occupancy.ctypes.data_as(_I64P),
            level.num_sets,
            level.associativity,
            level._counters.ctypes.data_as(_I64P),
        ]

    def replay(self, lines: np.ndarray, l1, l2, l3, inclusive: bool,
               degree: int, hier_counters: np.ndarray) -> None:
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        self._replay(
            lines.ctypes.data_as(_I64P),
            lines.size,
            *self._level_args(l1),
            *self._level_args(l2),
            *self._level_args(l3),
            int(inclusive),
            int(degree),
            hier_counters.ctypes.data_as(_I64P),
        )

    def pressure(self, evict_lines: int, seed_stride: int, l1, l2, l3,
                 inclusive: bool, degree: int,
                 hier_counters: np.ndarray) -> None:
        self._pressure(
            int(evict_lines),
            int(seed_stride),
            *self._level_args(l1),
            *self._level_args(l2),
            *self._level_args(l3),
            int(inclusive),
            int(degree),
            hier_counters.ctypes.data_as(_I64P),
        )


def _build_dir() -> Path:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    local = Path(__file__).resolve().parent / "_native_build"
    try:
        local.mkdir(exist_ok=True)
        probe = local / f".probe-{os.getpid()}"
        probe.touch()
        probe.unlink()
        return local
    except OSError:
        return Path(tempfile.mkdtemp(prefix="repro-native-"))


def _compiler() -> str | None:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def compile_cached(
    source: str, stem: str, extra_flags: tuple[str, ...] = ()
) -> Path | None:
    """Compile C ``source`` into a cached shared object; None if impossible.

    The artifact is keyed by a hash of the source and the extra compiler
    flags, so edits to either trigger a rebuild while repeat calls reuse
    the cached ``.so``. Honours ``REPRO_DISABLE_NATIVE=1`` and the
    ``REPRO_NATIVE_CACHE`` build-directory override. Shared by every
    self-compiled kernel in the repo (cache replay here, the DES kernel
    in :mod:`repro.serving._des_native`).
    """
    if os.environ.get("REPRO_DISABLE_NATIVE") == "1":
        return None
    cc = _compiler()
    if cc is None:
        return None
    key = source + "\x00" + " ".join(extra_flags)
    tag = hashlib.sha256(key.encode()).hexdigest()[:16]
    build_dir = _build_dir()
    suffix = ".dylib" if sys.platform == "darwin" else ".so"
    target = build_dir / f"{stem}-{tag}{suffix}"
    if target.exists():
        return target
    src = build_dir / f"{stem}-{tag}.c"
    src.write_text(source)
    tmp = build_dir / f".{stem}-{tag}-{os.getpid()}{suffix}"
    cmd = [cc, "-O2", "-shared", "-fPIC", *extra_flags, "-o", str(tmp), str(src)]
    try:
        subprocess.run(
            cmd, check=True, capture_output=True, timeout=120
        )
    except (subprocess.SubprocessError, OSError):
        return None
    os.replace(tmp, target)  # atomic: racing processes both succeed
    return target


_CACHED: tuple[bool, NativeKernel | None] | None = None


def native_available() -> bool:
    """True when the compiled kernel is usable in this process."""
    return load_kernel() is not None


def load_kernel() -> NativeKernel | None:
    """Compile (once) and load the native kernel; None when unavailable."""
    global _CACHED
    if _CACHED is not None:
        return _CACHED[1]
    try:
        path = compile_cached(_C_SOURCE, "repro_replay")
        kernel = NativeKernel(ctypes.CDLL(str(path))) if path else None
    except OSError:
        kernel = None
    _CACHED = (kernel is not None, kernel)
    return kernel
