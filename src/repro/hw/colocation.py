"""Shared-resource contention model for co-located inference jobs.

Co-locating recommendation models on one server (Section VI) stresses the
shared memory system through four mechanisms, each modelled here:

1. **DRAM random-access saturation.** Each SLS-heavy job issues ~1 GB/s of
   irregular row gathers (the paper measures ~1 GB/s per RMC2 job). Random
   accesses achieve only a fraction of peak DRAM bandwidth; once co-located
   demand saturates that capacity, each job's gathers are served at its
   bandwidth *share*, and the memory-level parallelism that hid miss latency
   when running alone collapses — the dominant terms in the paper's 3x SLS
   degradation at 8 co-located RMC2 jobs.

2. **LLC churn, driven by co-runner DRAM traffic.** Co-runners whose misses
   stream through the shared LLC evict each other's FC weights and hot
   embedding rows. Churn is proportional to the co-runners' actual DRAM
   traffic: eight co-located RMC2 jobs (~1 GB/s of misses each) thrash the
   LLC, while eight RMC1 jobs (whose small tables hit in the LLC) barely
   disturb it — which is why the paper sees RMC2 degrade 2.6x but RMC1 only
   1.3x at N=8.

3. **LLC bandwidth sharing.** Jobs whose embedding tables are LLC-resident
   (RMC1) are instead limited by the socket's LLC gather bandwidth, which is
   divided among active jobs — producing RMC1's 3x SLS slow-down (its time
   share rising 15%→35%) even though its lookups keep hitting.

4. **Inclusive back-invalidation.** On Haswell/Broadwell every LLC eviction
   invalidates the line's L2 copy, so LLC churn reaches into the private L2
   (+29% L2 misses on Broadwell at 16 jobs vs +9% on Skylake) — the reason
   inclusive hierarchies degrade faster and more variably (Figures 9-11).
   Skylake instead shows a capacity *cliff* once co-located working sets
   overflow its smaller LLC (~18 jobs, Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass

from .server import MB, ServerSpec
from .simd import _interp_log_batch


@dataclass(frozen=True)
class ColocationState:
    """Run-time placement context for one inference job.

    Attributes:
        num_jobs: inference jobs simultaneously active on the socket
            (1 = running alone).
        hyperthreading: True when two jobs share each physical core.
        resident_bytes_per_job: per-job warm working set parked in the LLC
            (FC weights + activations + hot embedding rows); drives the
            capacity-overflow cliff. The default is representative of
            production RMC jobs.
        corunner_random_gbps: random-access DRAM traffic (GB/s) each
            co-runner generates. ``None`` assumes co-runners behave like the
            memory-intensive production mix (~1.1 GB/s, the paper's measured
            per-RMC2-job traffic). Experiments co-locating a specific model
            should set this from
            :meth:`repro.hw.timing.TimingModel.estimate_random_traffic_gbps`.
    """

    num_jobs: int = 1
    hyperthreading: bool = False
    resident_bytes_per_job: int = int(1.5 * MB)
    corunner_random_gbps: float | None = None

    def __post_init__(self) -> None:
        if self.num_jobs < 1:
            raise ValueError("num_jobs must be >= 1")
        if self.resident_bytes_per_job < 0:
            raise ValueError("resident_bytes_per_job must be non-negative")
        if self.corunner_random_gbps is not None and self.corunner_random_gbps < 0:
            raise ValueError("corunner_random_gbps must be non-negative")


RUN_ALONE = ColocationState()

#: Assumed per-co-runner random DRAM traffic when not specified (GB/s);
#: the paper measures ~1 GB/s per memory-intensive RMC2 job.
DEFAULT_CORUNNER_GBPS = 1.1

#: Fraction of peak DRAM bandwidth achievable with random row gathers.
RANDOM_ACCESS_EFFICIENCY = {"DDR3": 0.20, "DDR4": 0.22}

#: Fraction of peak DRAM bandwidth achievable with streaming reads.
STREAM_EFFICIENCY = 0.65

#: Socket-wide LLC random-gather bandwidth, bytes per cycle (shared by all
#: jobs whose embedding tables are LLC-resident).
LLC_GATHER_BYTES_PER_CYCLE = 48

#: Per-core ceiling on LLC gather bandwidth, bytes per cycle.
LLC_GATHER_BYTES_PER_CYCLE_CORE = 16

#: Fraction of the random-access capacity whose worth of foreign traffic
#: fully churns the LLC.
CHURN_TRAFFIC_FRACTION = 0.5

#: Back-invalidation slowdown ceiling for inclusive hierarchies, applied to
#: L2-resident work (calibrated to Broadwell's +29% L2 misses at 16 jobs).
INCLUSIVE_L2_PENALTY = 0.15

#: Extra exposed-DRAM-latency factor ceiling on inclusive hierarchies:
#: back-invalidated pooling buffers force additional round trips.
INCLUSIVE_DRAM_PENALTY = 0.6

#: MLP-collapse sensitivity to churn (miss overlap divisor = 1 + this x
#: churn x (it saturates via churn itself)).
MLP_COLLAPSE = 1.2

#: Latency penalty per unit of LLC-capacity overflow (the Skylake cliff).
OVERFLOW_PENALTY = 1.0

#: Hit-path inflation under churn: LLC hits queue behind co-runner traffic.
HIT_CHURN_PENALTY = 1.5

#: Overlap of LLC-hit latencies as batch grows (hit pipelining).
HIT_OVERLAP_ANCHORS: tuple[tuple[float, float], ...] = (
    (1, 1.0),
    (16, 4.0),
    (64, 6.0),
    (256, 6.0),
)


def hit_overlap(batch: int) -> float:
    """Pipelined overlap of LLC hit latencies at a given batch size."""
    return _interp_log_batch(HIT_OVERLAP_ANCHORS, batch)


class ContentionModel:
    """Computes effective shared-resource parameters for a job.

    All methods take a :class:`ColocationState` describing how many jobs the
    socket is running; ``num_jobs == 1`` recovers stand-alone behaviour.
    """

    def __init__(self, server: ServerSpec) -> None:
        self.server = server

    # ------------------------------------------------------------- traffic

    def foreign_random_bytes_per_s(self, state: ColocationState) -> float:
        """Aggregate random DRAM traffic generated by the co-runners."""
        per_job = (
            DEFAULT_CORUNNER_GBPS
            if state.corunner_random_gbps is None
            else state.corunner_random_gbps
        )
        return (state.num_jobs - 1) * per_job * 1e9

    # ------------------------------------------------------------ capacity

    def llc_share_bytes(self, state: ColocationState) -> float:
        """Per-job effective LLC capacity (equal-share approximation)."""
        return self.server.l3_bytes / state.num_jobs

    def llc_churn(self, state: ColocationState) -> float:
        """Co-runner churn pressure on the LLC, in [0, 1].

        0 when alone or when co-runners hit in cache (no DRAM traffic);
        saturates once their combined miss traffic reaches
        :data:`CHURN_TRAFFIC_FRACTION` of the random-access capacity.
        """
        foreign = self.foreign_random_bytes_per_s(state)
        threshold = CHURN_TRAFFIC_FRACTION * self.random_access_capacity()
        return min(1.0, foreign / threshold)

    def llc_overflow(self, state: ColocationState) -> float:
        """Relative LLC capacity overflow of the combined working sets.

        Positive once ``num_jobs x resident`` exceeds the LLC — the sudden
        regime change Skylake hits near 18 co-located RMC2 jobs (its LLC is
        the smallest of the three generations).
        """
        total = state.num_jobs * state.resident_bytes_per_job
        return max(0.0, (total - self.server.l3_bytes) / self.server.l3_bytes)

    def l2_back_invalidation_penalty(self, state: ColocationState) -> float:
        """Fractional slowdown of L2-resident work from back-invalidation.

        Zero for non-inclusive hierarchies (Skylake): LLC churn cannot
        invalidate L2 lines.
        """
        if not self.server.inclusive_llc:
            return 0.0
        return INCLUSIVE_L2_PENALTY * self.llc_churn(state)

    def inclusive_dram_penalty(self, state: ColocationState) -> float:
        """Extra exposed-latency factor on DRAM gathers (inclusive only)."""
        if not self.server.inclusive_llc:
            return 0.0
        return INCLUSIVE_DRAM_PENALTY * self.llc_churn(state)

    # ----------------------------------------------------------- bandwidth

    def random_access_capacity(self) -> float:
        """Sustainable random-gather DRAM bandwidth (bytes/s) of one socket."""
        eff = RANDOM_ACCESS_EFFICIENCY[self.server.ddr_type]
        return self.server.dram_bw_bytes_per_s * eff

    def random_bandwidth_share(
        self, state: ColocationState, own_demand_bytes_per_s: float
    ) -> float:
        """Per-job random-access DRAM bandwidth under proportional sharing.

        While total demand is below capacity a job can burst up to whatever
        the co-runners leave free; past saturation bandwidth is split in
        proportion to demand.
        """
        foreign = self.foreign_random_bytes_per_s(state)
        capacity = self.random_access_capacity()
        total_demand = own_demand_bytes_per_s + foreign
        if total_demand <= capacity:
            return capacity - foreign
        return capacity * own_demand_bytes_per_s / total_demand

    def llc_gather_bandwidth_share(self, state: ColocationState) -> float:
        """Per-job LLC gather bandwidth (bytes/s) for cache-resident tables.

        Bounded by the per-core gather rate and by an equal share of the
        socket-wide LLC gather capacity.
        """
        freq = self.server.frequency_ghz * 1e9
        per_core = LLC_GATHER_BYTES_PER_CYCLE_CORE * freq
        socket_share = LLC_GATHER_BYTES_PER_CYCLE * freq / state.num_jobs
        return min(per_core, socket_share)

    def stream_bandwidth_share(self, state: ColocationState) -> float:
        """Per-job streaming DRAM bandwidth (bytes/s)."""
        peak = self.server.dram_bw_bytes_per_s * STREAM_EFFICIENCY
        return peak / state.num_jobs

    def memory_level_parallelism(self, state: ColocationState, batch: int) -> float:
        """Effective miss overlap: full MLP alone, collapsing under churn."""
        mlp = _interp_log_batch(self.server.sls_mlp, batch)
        divisor = 1.0 + MLP_COLLAPSE * self.llc_churn(state)
        return 1.0 + (mlp - 1.0) / divisor

    # -------------------------------------------------------- fc residency

    def fc_contention_factor(self, state: ColocationState, weight_bytes: int) -> float:
        """Multiplicative FC slowdown from shared-cache contention.

        Three regimes, matching the Figure 11 annotations:

        * weights fit in the private L2 → essentially protected (only the
          inclusive back-invalidation penalty applies);
        * weights resident in the LLC → exposed to co-runner churn, much
          worse on inclusive hierarchies (0.6 vs 0.15 sensitivity,
          calibrated to Broadwell's 1.6x FC degradation at 8 RMC2 jobs);
        * weights exceed even the LLC share → already DRAM-streaming, so
          churn adds little beyond bandwidth sharing (handled separately).
        """
        churn = self.llc_churn(state)
        overflow_term = OVERFLOW_PENALTY * self.llc_overflow(state)
        # A small slack on the L2 boundary: a 512x512 fp32 FC (1 MiB of
        # weights + biases) is L2-resident on Skylake, per Figure 11a.
        if weight_bytes <= self.server.l2_bytes * 1.05:
            return 1.0 + self.l2_back_invalidation_penalty(state)
        if weight_bytes <= self.llc_share_bytes(state):
            sensitivity = 0.6 if self.server.inclusive_llc else 0.15
            return (
                1.0
                + sensitivity * churn
                + self.l2_back_invalidation_penalty(state)
                + overflow_term
            )
        # Weights already stream from DRAM: the stream/compute overlap tax
        # in the timing model carries the degradation; churn adds little.
        return 1.0 + 0.1 * churn
