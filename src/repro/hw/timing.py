"""Operator- and model-level latency prediction on Table-II servers.

A roofline-style analytical model per operator, parameterized by the server
generation and a :class:`~repro.hw.colocation.ColocationState`:

* **FC / BatchMatMul** — ``max(compute, weight-stream)`` where compute uses
  the batch-dependent SIMD utilization (:mod:`repro.hw.simd`) and the weight
  stream reads from whichever level the weights fit in (private L2, LLC
  share, or DRAM). Co-location multiplies by the FC contention factor.
* **SLS** — the larger of a core-side gather/accumulate cost (amortizing
  with batch) and a memory cost that blends an LLC-hit path (for tables
  resident in the LLC — RMC1) with a DRAM-miss path (for multi-GB tables —
  RMC2/RMC3). Both paths degrade under co-location: hits through LLC
  bandwidth sharing and churn, misses through MLP collapse, bandwidth
  sharing and (on inclusive hierarchies) back-invalidation.
* **Concat / Activation** — streaming data movement at L2 bandwidth.

Every constant is either a Table-II parameter or a calibration anchor
documented in DESIGN.md §5 and asserted by
``tests/test_calibration_anchors.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..config.model_config import ModelConfig
from ..core.graph import OpSpec, config_ops
from ..core.operators.base import (
    OP_ACTIVATION,
    OP_BATCH_MATMUL,
    OP_CONCAT,
    OP_FC,
    OP_SLS,
)
from .colocation import (
    ColocationState,
    ContentionModel,
    HIT_CHURN_PENALTY,
    OVERFLOW_PENALTY,
    RUN_ALONE,
    hit_overlap,
)
from .server import ServerSpec
from .simd import _interp_log_batch, effective_gflops

if TYPE_CHECKING:
    from ..memory.near_memory import NmpGeometry
    from ..obs.profile import OpProfiler

#: Framework dispatch overhead per operator invocation (seconds).
OP_OVERHEAD_S = 0.2e-6

#: Hyperthreading slowdowns (Section VI): two threads time-share the SIMD
#: ports (FC suffers more) and the load ports (SLS suffers less).
HT_FC_FACTOR = 1.6
HT_SLS_FACTOR = 1.3

#: Per-core cache bandwidth, bytes per cycle.
L2_BYTES_PER_CYCLE = 64
LLC_BYTES_PER_CYCLE = 16

#: Fraction of the LLC usable for keeping embedding tables warm.
LLC_TABLE_FRACTION = 0.9

#: Imperfect overlap between GEMM compute and DRAM weight streaming: when
#: FC weights no longer fit the job's LLC share, this fraction of the
#: stream time adds to the compute time (the mechanism behind RMC3's 1.6x
#: co-location degradation in Figure 9 — its 5 MB Bottom-FC layer spills
#: once eight jobs split the LLC).
DRAM_STREAM_OVERLAP_TAX = 0.8

#: Baseline per-job warm footprint beyond FC weights (thread stacks, queues,
#: framework buffers) used when deriving a ColocationState from a config.
JOB_BASE_RESIDENT_BYTES = 512 * 1024

#: Warm bytes per embedding table (hot rows + indirection metadata).
TABLE_RESIDENT_BYTES = 16 * 1024


@dataclass(frozen=True)
class OperatorTime:
    """Predicted latency of one operator invocation."""

    name: str
    op_type: str
    seconds: float
    compute_seconds: float
    memory_seconds: float


@dataclass(frozen=True)
class ModelLatency:
    """Predicted end-to-end latency of one model inference."""

    model_name: str
    server_name: str
    batch_size: int
    per_op: tuple[OperatorTime, ...]

    @property
    def total_seconds(self) -> float:
        """End-to-end inference latency."""
        return sum(op.seconds for op in self.per_op)

    @property
    def seconds_per_sample(self) -> float:
        """Latency divided by batch size (throughput view)."""
        return self.total_seconds / self.batch_size

    def seconds_by_op_type(self) -> dict[str, float]:
        """Latency grouped by Figure-4 operator category."""
        out: dict[str, float] = {}
        for op in self.per_op:
            out[op.op_type] = out.get(op.op_type, 0.0) + op.seconds
        return out

    def fraction_by_op_type(self) -> dict[str, float]:
        """Share of total latency per operator category."""
        total = self.total_seconds
        return {k: v / total for k, v in self.seconds_by_op_type().items()}


class TimingModel:
    """Latency predictor for one server generation.

    Args:
        server: the Table-II server generation to price operators on.
        profiler: optional :class:`~repro.obs.profile.OpProfiler`; when
            set, every operator this model prices is reported to it with
            its simulated cycles and the bytes it touches. Profiling is
            observational only — it never changes a priced latency.
        nmp: optional :class:`~repro.memory.near_memory.NmpGeometry`;
            when set, SLS operators are priced on the near-memory backend
            (rank-parallel DIMM-side gathers, see
            :mod:`repro.memory.near_memory`) instead of the host cache
            hierarchy. ``nmp=None`` (the default) is a bit-identical
            off-switch: no code path changes. With NMP, the
            ``hit_ratio`` passed to :meth:`sls_time` means the DIMM-side
            hot-row cache hit fraction (trace-temporal reuse), not LLC
            residency — :meth:`model_latency`'s default derivation
            therefore uses only ``locality_hit_ratio`` when NMP is on,
            since capacity residency in the host LLC is irrelevant to
            DIMM-side execution.
    """

    def __init__(
        self,
        server: ServerSpec,
        profiler: "OpProfiler | None" = None,
        nmp: "NmpGeometry | None" = None,
    ) -> None:
        self.server = server
        self.contention = ContentionModel(server)
        self.profiler = profiler
        self.nmp = nmp

    def _profile_op(self, op: OperatorTime, bytes_moved: float) -> OperatorTime:
        """Report a priced operator to the attached profiler, if any."""
        if self.profiler is not None:
            self.profiler.record_timed_op(
                op, self.server.frequency_ghz, bytes_moved
            )
        return op

    # -------------------------------------------------------------- dense

    def _l2_bandwidth(self) -> float:
        return L2_BYTES_PER_CYCLE * self.server.frequency_ghz * 1e9

    def _llc_bandwidth(self) -> float:
        return LLC_BYTES_PER_CYCLE * self.server.frequency_ghz * 1e9

    def fc_time(
        self,
        name: str,
        flops: int,
        weight_bytes: int,
        activation_bytes: int,
        batch: int,
        state: ColocationState = RUN_ALONE,
        op_type: str = OP_FC,
    ) -> OperatorTime:
        """Latency of a dense layer (FC or batched-matmul interaction)."""
        compute = flops / (effective_gflops(self.server, batch) * 1e9)
        if state.hyperthreading:
            compute *= HT_FC_FACTOR

        l2_eff = self.server.l2_bytes
        llc_share = self.contention.llc_share_bytes(state)
        dram_resident = False
        if weight_bytes <= l2_eff * 1.05:
            stream = weight_bytes / self._l2_bandwidth()
        elif weight_bytes <= l2_eff + llc_share:
            stream = weight_bytes / self._llc_bandwidth()
        else:
            dram_resident = True
            stream = weight_bytes / self.contention.stream_bandwidth_share(state)
        stream += activation_bytes / self._l2_bandwidth()

        contention_factor = self.contention.fc_contention_factor(state, weight_bytes)
        base = max(compute, stream)
        if dram_resident:
            # DRAM weight streaming does not fully hide behind compute.
            base += DRAM_STREAM_OVERLAP_TAX * min(compute, stream)
        seconds = base * contention_factor + OP_OVERHEAD_S
        op = OperatorTime(
            name=name,
            op_type=op_type,
            seconds=seconds,
            compute_seconds=compute * contention_factor,
            memory_seconds=stream,
        )
        return self._profile_op(op, weight_bytes + activation_bytes)

    # --------------------------------------------------------------- sparse

    def _sls_core_ns(self, batch: int) -> float:
        cycles = _interp_log_batch(self.server.sls_cycles_per_lookup, batch)
        return cycles / self.server.frequency_ghz

    def sls_miss_ns(
        self,
        embedding_dim: int,
        batch: int,
        state: ColocationState = RUN_ALONE,
        dtype_bytes: int = 4,
    ) -> float:
        """Exposed nanoseconds per DRAM-missing embedding row gather."""
        row_bytes = max(64, embedding_dim * dtype_bytes)
        raw_latency_ns = self.server.dram_random_ns * 3.0
        mlp = self.contention.memory_level_parallelism(state, batch)
        latency_term = (raw_latency_ns / mlp) * (
            1.0 + self.contention.inclusive_dram_penalty(state)
        )
        demand = self.sls_demand_bytes_per_s(embedding_dim, batch, dtype_bytes)
        share = self.contention.random_bandwidth_share(state, demand)
        bandwidth_term = row_bytes / (share * 1e-9)
        miss_ns = max(latency_term, bandwidth_term)
        return miss_ns * (1.0 + OVERFLOW_PENALTY * self.contention.llc_overflow(state))

    def sls_hit_ns(
        self,
        embedding_dim: int,
        batch: int,
        state: ColocationState = RUN_ALONE,
        dtype_bytes: int = 4,
    ) -> float:
        """Nanoseconds per LLC-hitting embedding row gather."""
        row_bytes = max(64, embedding_dim * dtype_bytes)
        latency_ns = self.server.llc_latency_cycles / self.server.frequency_ghz
        latency_term = latency_ns / hit_overlap(batch)
        share = self.contention.llc_gather_bandwidth_share(state)
        bandwidth_term = row_bytes / (share * 1e-9)
        penalty = 1.0 + HIT_CHURN_PENALTY * self.contention.llc_churn(state)
        penalty += self.contention.l2_back_invalidation_penalty(state)
        return max(latency_term, bandwidth_term) * penalty

    def sls_lookup_ns(
        self,
        embedding_dim: int,
        batch: int = 1,
        state: ColocationState = RUN_ALONE,
        hit_ratio: float = 0.0,
        dtype_bytes: int = 4,
    ) -> float:
        """Exposed nanoseconds per pooled embedding lookup.

        The gather cost is the larger of a core-side component (address
        generation and accumulation, amortizing with batch) and a memory
        component blending the LLC-hit and DRAM-miss paths by ``hit_ratio``.
        """
        if not 0.0 <= hit_ratio <= 1.0:
            raise ValueError("hit_ratio must be in [0, 1]")
        core_ns = self._sls_core_ns(batch)
        core_ns *= 1.0 + self.contention.l2_back_invalidation_penalty(state)
        memory_ns = hit_ratio * self.sls_hit_ns(embedding_dim, batch, state, dtype_bytes)
        memory_ns += (1.0 - hit_ratio) * self.sls_miss_ns(
            embedding_dim, batch, state, dtype_bytes
        )
        lookup_ns = max(core_ns, memory_ns)
        if state.hyperthreading:
            # Two threads share the load ports and miss queues (Section VI).
            lookup_ns *= HT_SLS_FACTOR
        return lookup_ns

    def sls_demand_bytes_per_s(
        self, embedding_dim: int, batch: int = 1, dtype_bytes: int = 4
    ) -> float:
        """Uncontended per-job random-access bandwidth demand of SLS misses."""
        row_bytes = max(64, embedding_dim * dtype_bytes)
        uncontended_ns = self._sls_core_ns(batch) + self.server.dram_random_ns
        return row_bytes / (uncontended_ns * 1e-9)

    def table_hit_ratio(
        self, total_table_bytes: int, locality_hit_ratio: float = 0.0
    ) -> float:
        """Fraction of lookups expected to hit in the LLC.

        Capacity residency (small tables stay warm: RMC1) combines with any
        input locality (Figure 14 traces): a lookup hits if its row is
        capacity-resident or if it re-references a recently-used row.
        """
        capacity = min(
            1.0, LLC_TABLE_FRACTION * self.server.l3_bytes / max(1, total_table_bytes)
        )
        return capacity + (1.0 - capacity) * locality_hit_ratio

    def _nmp_sls_time(
        self,
        name: str,
        lookups_per_sample: int,
        embedding_dim: int,
        batch: int,
        hit_ratio: float,
        dtype_bytes: int,
    ) -> OperatorTime:
        """SLS priced on the near-memory backend (analytic expectation).

        Each of the ``batch`` pools spreads its lookups over every rank
        (the uniform expectation of the low-order interleave placement);
        ``hit_ratio`` is the DIMM-side hot-row cache hit fraction. The
        full trace-driven engine
        (:class:`~repro.memory.near_memory.NearMemorySystem`) refines
        this with actual placement skew and LRU hot-cache behaviour —
        :func:`~repro.memory.near_memory.amdahl_crosscheck` proves the
        two agree in the uniform-locality/no-contention limit.
        """
        geometry = self.nmp
        per_lookup_ns = hit_ratio * geometry.hot_hit_ns
        per_lookup_ns += (1.0 - hit_ratio) * geometry.rank_gather_ns
        gather_s = (
            batch * lookups_per_sample * per_lookup_ns / geometry.num_ranks * 1e-9
        )
        launch_s = batch * geometry.pool_overhead_ns * 1e-9
        op = OperatorTime(
            name=name,
            op_type=OP_SLS,
            seconds=gather_s + launch_s + OP_OVERHEAD_S,
            compute_seconds=launch_s,
            memory_seconds=gather_s,
        )
        # Only the pooled vectors cross the memory bus — that reduction
        # in bus traffic is the point of near-memory execution.
        pooled_bytes = batch * max(64, embedding_dim * dtype_bytes)
        return self._profile_op(op, pooled_bytes)

    def sls_time(
        self,
        name: str,
        lookups_per_sample: int,
        embedding_dim: int,
        batch: int,
        state: ColocationState = RUN_ALONE,
        hit_ratio: float = 0.0,
        dtype_bytes: int = 4,
    ) -> OperatorTime:
        """Latency of one SparseLengthsSum invocation."""
        if self.nmp is not None:
            if not 0.0 <= hit_ratio <= 1.0:
                raise ValueError("hit_ratio must be in [0, 1]")
            return self._nmp_sls_time(
                name, lookups_per_sample, embedding_dim, batch, hit_ratio, dtype_bytes
            )
        lookup_ns = self.sls_lookup_ns(embedding_dim, batch, state, hit_ratio, dtype_bytes)
        total_lookups = batch * lookups_per_sample
        seconds = total_lookups * lookup_ns * 1e-9 + OP_OVERHEAD_S
        compute = total_lookups * self._sls_core_ns(batch) * 1e-9
        op = OperatorTime(
            name=name,
            op_type=OP_SLS,
            seconds=seconds,
            compute_seconds=min(compute, seconds),
            memory_seconds=max(0.0, seconds - compute - OP_OVERHEAD_S),
        )
        gathered_bytes = total_lookups * max(64, embedding_dim * dtype_bytes)
        return self._profile_op(op, gathered_bytes)

    # ------------------------------------------------------------- movement

    def movement_time(
        self,
        name: str,
        op_type: str,
        bytes_moved: int,
        flops: int = 0,
        state: ColocationState = RUN_ALONE,
    ) -> OperatorTime:
        """Streaming data-movement ops: Concat and element-wise activations."""
        memory = bytes_moved / self._l2_bandwidth()
        compute = flops / (self.server.peak_gflops_per_core * 1e9 * 0.25)
        if state.hyperthreading:
            compute *= HT_SLS_FACTOR
        seconds = max(memory, compute) + OP_OVERHEAD_S
        op = OperatorTime(
            name=name,
            op_type=op_type,
            seconds=seconds,
            compute_seconds=compute,
            memory_seconds=memory,
        )
        return self._profile_op(op, bytes_moved)

    # ------------------------------------------------------------ dispatch

    def op_time(
        self,
        spec: OpSpec,
        batch: int,
        state: ColocationState = RUN_ALONE,
        sls_hit_ratio: float = 0.0,
    ) -> OperatorTime:
        """Latency of one abstract operator at ``batch``."""
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if spec.op_type in (OP_FC, OP_BATCH_MATMUL):
            return self.fc_time(
                name=spec.name,
                flops=batch * spec.flops_per_sample,
                weight_bytes=spec.weight_bytes,
                activation_bytes=batch * spec.activation_bytes_per_sample,
                batch=batch,
                state=state,
                op_type=spec.op_type,
            )
        if spec.op_type == OP_SLS:
            return self.sls_time(
                name=spec.name,
                lookups_per_sample=spec.lookups_per_sample,
                embedding_dim=spec.embedding_dim,
                batch=batch,
                state=state,
                hit_ratio=sls_hit_ratio,
                dtype_bytes=spec.dtype_bytes,
            )
        if spec.op_type in (OP_CONCAT, OP_ACTIVATION):
            return self.movement_time(
                name=spec.name,
                op_type=spec.op_type,
                bytes_moved=batch * spec.activation_bytes_per_sample,
                flops=batch * spec.flops_per_sample,
                state=state,
            )
        raise ValueError(f"no timing model for op type {spec.op_type!r}")

    # ----------------------------------------------------------- model-level

    def model_latency(
        self,
        config: ModelConfig,
        batch: int,
        state: ColocationState = RUN_ALONE,
        sls_hit_ratio: float | None = None,
        locality_hit_ratio: float = 0.0,
    ) -> ModelLatency:
        """End-to-end inference latency of ``config`` at ``batch``.

        Args:
            config: the model architecture (production-scale configs are
                fine; nothing is allocated).
            batch: inference batch size.
            state: co-location context.
            sls_hit_ratio: explicit LLC hit ratio for embedding lookups;
                ``None`` derives it from table capacity vs the LLC plus
                ``locality_hit_ratio``.
            locality_hit_ratio: input-trace reuse (Figure 14): the fraction
                of lookups that would hit due to temporal locality even
                without capacity residency.
        """
        if sls_hit_ratio is None:
            if self.nmp is not None:
                # DIMM-side execution: host-LLC capacity residency is
                # irrelevant, only trace-temporal reuse reaches the
                # per-DIMM hot-row caches.
                sls_hit_ratio = locality_hit_ratio
            else:
                sls_hit_ratio = self.table_hit_ratio(
                    config.embedding_storage_bytes(), locality_hit_ratio
                )
        per_op = tuple(
            self.op_time(spec, batch, state, sls_hit_ratio)
            for spec in config_ops(config)
        )
        return ModelLatency(
            model_name=config.name,
            server_name=self.server.name,
            batch_size=batch,
            per_op=per_op,
        )

    def resident_bytes(self, config: ModelConfig) -> int:
        """Warm working set one ``config`` job parks in the shared LLC."""
        fc_bytes = sum(
            spec.weight_bytes for spec in config_ops(config) if spec.op_type == OP_FC
        )
        return (
            fc_bytes
            + JOB_BASE_RESIDENT_BYTES
            + TABLE_RESIDENT_BYTES * config.num_tables
        )

    def colocation_state(
        self,
        config: ModelConfig,
        batch: int,
        num_jobs: int,
        hyperthreading: bool = False,
    ) -> ColocationState:
        """Build the state for ``num_jobs`` co-located instances of ``config``.

        Derives both the per-co-runner random DRAM traffic and the per-job
        resident working set from the model itself, which is what separates
        the paper's co-location outcomes: RMC1 jobs generate almost no DRAM
        traffic (LLC-resident tables), RMC2 jobs ~1-2 GB/s, RMC3 jobs park
        multi-MB FC weights.
        """
        return ColocationState(
            num_jobs=num_jobs,
            hyperthreading=hyperthreading,
            resident_bytes_per_job=self.resident_bytes(config),
            corunner_random_gbps=self.estimate_random_traffic_gbps(config, batch),
        )

    def estimate_random_traffic_gbps(self, config: ModelConfig, batch: int) -> float:
        """Random DRAM traffic (GB/s) one instance of ``config`` generates.

        Used to parameterize :class:`ColocationState.corunner_random_gbps`
        for homogeneous co-location experiments: LLC-resident models (RMC1)
        produce almost none; RMC2 produces ~1 GB/s, matching the paper.
        """
        hit = self.table_hit_ratio(config.embedding_storage_bytes())
        latency_s = self.model_latency(config, batch).total_seconds
        miss_bytes = 0.0
        for spec in config_ops(config):
            if spec.op_type == OP_SLS:
                row_bytes = max(64, spec.embedding_dim * spec.dtype_bytes)
                miss_bytes += (1.0 - hit) * batch * spec.lookups_per_sample * row_bytes
        return miss_bytes / latency_s / 1e9
