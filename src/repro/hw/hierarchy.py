"""Multi-level cache hierarchies: inclusive vs non-inclusive/exclusive.

The paper's key micro-architectural contrast (Takeaway 7): Haswell and
Broadwell implement an *inclusive* L2/L3 — every L2 line is also in L3, so
an L3 eviction back-invalidates the victim's L2 copy. Under the irregular
access streams of co-located recommendation models, this back-invalidation
inflates L2 miss rates (+29% on Broadwell at 16 co-located jobs vs +9% on
Skylake) and produces the multi-modal tail latencies of Figure 11. Skylake's
L2/L3 is non-inclusive (L3 acts as a victim cache), so LLC churn does not
reach into L2.

:class:`CacheHierarchy` simulates an L1/L2/L3 stack with either policy and
returns per-level hit counts for an address trace. Two engines implement
the same semantics:

* ``engine="reference"`` — one OrderedDict per set, one Python call per
  line. Slow, obvious, and the executable specification.
* ``engine="vectorized"`` — structure-of-arrays numpy state
  (:mod:`repro.hw.vectorized`) driven by a batch kernel: a self-compiled
  C kernel (:mod:`repro.hw._native`) when a compiler is available, else a
  pure-Python batch loop. Bit-identical stats to the reference across
  both inclusion policies, prefetching, and external-pressure paths —
  enforced by ``tests/test_engine_equivalence.py`` — at one-to-two orders
  of magnitude lower cost, which is what makes million-lookup
  paper-scale traces tractable (see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.operators.base import MemoryAccess
from ._native import load_kernel
from .cache import SetAssociativeCache
from .server import ServerSpec
from .vectorized import (
    VectorizedSetAssociativeCache,
    expand_spans,
    python_pressure,
    python_replay,
)

# Accesses buffered per batch when draining a MemoryAccess iterable
# through the vectorized engine.
_TRACE_CHUNK = 65536


@dataclass
class HierarchyStats:
    """Per-level hits plus DRAM fills for a simulated trace."""

    l1_hits: int = 0
    l2_hits: int = 0
    l3_hits: int = 0
    dram_accesses: int = 0
    l2_back_invalidations: int = 0
    prefetches_issued: int = 0
    prefetch_hits: int = 0

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of issued prefetches whose line was later used."""
        if self.prefetches_issued == 0:
            return 0.0
        return self.prefetch_hits / self.prefetches_issued

    @property
    def total_line_accesses(self) -> int:
        """Total cache-line lookups issued."""
        return self.l1_hits + self.l2_hits + self.l3_hits + self.dram_accesses

    def llc_mpki(self, instructions: int) -> float:
        """LLC misses per kilo-instruction, the Figure-5 metric."""
        if instructions <= 0:
            raise ValueError("instructions must be positive")
        return 1000.0 * self.dram_accesses / instructions

    def l2_miss_ratio(self) -> float:
        """L2 misses / L2 accesses."""
        l2_accesses = self.l2_hits + self.l3_hits + self.dram_accesses
        if l2_accesses == 0:
            return 0.0
        return (self.l3_hits + self.dram_accesses) / l2_accesses


class CacheHierarchy:
    """An L1 + L2 + shared-L3 stack with a configurable inclusion policy.

    Args:
        server: provides capacities and the inclusion policy.
        l3_share: fraction of the shared LLC available to this context
            (co-located jobs shrink each other's effective share).
        line_bytes: cache-line size.
        prefetch_degree: next-line stream prefetcher: on every demand miss
            to line L, lines L+1..L+degree are fetched into the L2. Helps
            streaming operators (FC weight reads); barely helps — and can
            pollute — under SLS's irregular row gathers, the effect the
            paper notes as "prefetching pollution". 0 disables.
        engine: ``"reference"`` (per-line OrderedDict walk, the executable
            spec) or ``"vectorized"`` (SoA numpy state + batch kernel,
            bit-identical stats, built for million-lookup traces — feed it
            through :meth:`access_lines` for full speed).
        backend: batch-kernel selection for the vectorized engine:
            ``"auto"`` uses the self-compiled C kernel when a compiler is
            available and falls back to the pure-Python batch loop,
            ``"native"`` requires the C kernel (raises if unavailable),
            ``"python"`` forces the fallback. Ignored by the reference
            engine.
    """

    def __init__(
        self,
        server: ServerSpec,
        l3_share: float = 1.0,
        line_bytes: int = 64,
        prefetch_degree: int = 0,
        engine: str = "reference",
        backend: str = "auto",
    ) -> None:
        if not 0.0 < l3_share <= 1.0:
            raise ValueError("l3_share must be in (0, 1]")
        if prefetch_degree < 0:
            raise ValueError("prefetch_degree must be non-negative")
        if engine not in ("reference", "vectorized"):
            raise ValueError(f"unknown engine {engine!r}")
        if backend not in ("auto", "native", "python"):
            raise ValueError(f"unknown backend {backend!r}")
        self.server = server
        self.inclusive = server.inclusive_llc
        self.prefetch_degree = prefetch_degree
        self.engine = engine
        self.line_bytes = line_bytes
        self._prefetched_lines: set[int] = set()
        cache_cls = (
            SetAssociativeCache
            if engine == "reference"
            else VectorizedSetAssociativeCache
        )
        self.l1 = cache_cls("L1", server.l1_bytes, 8, line_bytes)
        self.l2 = cache_cls("L2", server.l2_bytes, 8, line_bytes)
        l3_bytes = int(server.l3_bytes * l3_share)
        # Keep the L3 well-formed at tiny shares.
        l3_bytes = max(l3_bytes - l3_bytes % (16 * line_bytes), 16 * line_bytes)
        self.l3 = cache_cls("L3", l3_bytes, 16, line_bytes)
        self.stats = HierarchyStats()
        self._kernel = None
        if engine == "vectorized":
            if backend in ("auto", "native"):
                self._kernel = load_kernel()
            if backend == "native" and self._kernel is None:
                raise RuntimeError(
                    "backend='native' requested but the C kernel is "
                    "unavailable (no compiler, or REPRO_DISABLE_NATIVE=1)"
                )
            self._batch_counters = np.zeros(7, dtype=np.int64)
        self.backend = "native" if self._kernel is not None else "python"

    # ------------------------------------------------------------- accesses

    def access(self, access: MemoryAccess) -> None:
        """Simulate one logical access (all lines it spans)."""
        if self.engine == "reference":
            for line in self.l1.lines_spanned(access.address, access.size):
                self._access_line(line)
            return
        span = self.l1.lines_spanned(access.address, access.size)
        self.access_lines(
            np.arange(span.start, span.stop, dtype=np.int64)
        )

    def access_lines(self, lines: np.ndarray) -> None:
        """Batch-replay an int64 array of line indices, in trace order.

        The fast path of the vectorized engine: one kernel call per batch
        instead of one Python call per line. Available on the reference
        engine too (a per-line loop) so callers and the equivalence suite
        can drive both engines through the same entry point.
        """
        if self.engine == "reference":
            for line in np.asarray(lines, dtype=np.int64).reshape(-1).tolist():
                self._access_line(line)
            return
        counters = self._batch_counters
        counters[:] = 0
        if self._kernel is not None:
            self._kernel.replay(
                lines,
                self.l1,
                self.l2,
                self.l3,
                self.inclusive,
                self.prefetch_degree,
                counters,
            )
        else:
            python_replay(
                lines,
                self.l1,
                self.l2,
                self.l3,
                self.inclusive,
                self.prefetch_degree,
                counters,
            )
        self._drain_batch_counters()

    def _drain_batch_counters(self) -> None:
        counters = self._batch_counters
        stats = self.stats
        stats.l1_hits += int(counters[0])
        stats.l2_hits += int(counters[1])
        stats.l3_hits += int(counters[2])
        stats.dram_accesses += int(counters[3])
        stats.l2_back_invalidations += int(counters[4])
        stats.prefetches_issued += int(counters[5])
        stats.prefetch_hits += int(counters[6])

    def access_trace(self, trace) -> HierarchyStats:
        """Simulate an iterable of :class:`MemoryAccess`; returns stats."""
        if self.engine == "reference":
            for item in trace:
                self.access(item)
            return self.stats
        addresses: list[int] = []
        sizes: list[int] = []
        for item in trace:
            addresses.append(item.address)
            sizes.append(item.size)
            if len(addresses) >= _TRACE_CHUNK:
                self._flush_trace_chunk(addresses, sizes)
        if addresses:
            self._flush_trace_chunk(addresses, sizes)
        return self.stats

    def _flush_trace_chunk(
        self, addresses: list[int], sizes: list[int]
    ) -> None:
        lines = expand_spans(
            np.array(addresses, dtype=np.int64),
            np.array(sizes, dtype=np.int64),
            self.line_bytes,
        )
        addresses.clear()
        sizes.clear()
        self.access_lines(lines)

    def _access_line(self, line: int) -> None:
        if line in self._prefetched_lines:
            self._prefetched_lines.discard(line)
            self.stats.prefetch_hits += 1
        if self.l1.touch(line):
            self.stats.l1_hits += 1
            return
        if self.l2.touch(line):
            self.stats.l2_hits += 1
            self._fill_l1(line)
            return
        if self.l3.touch(line):
            self.stats.l3_hits += 1
            if not self.inclusive:
                # Non-inclusive victim L3: the line moves up to L2.
                self.l3.invalidate(line)
                self.l3.stats.invalidations -= 1  # not a coherence event
            self._fill_l2(line)
            self._fill_l1(line)
            return
        # DRAM fill.
        self.stats.dram_accesses += 1
        if self.inclusive:
            self._insert_l3_inclusive(line)
        self._fill_l2(line)
        self._fill_l1(line)
        self._issue_prefetches(line)

    def _issue_prefetches(self, miss_line: int) -> None:
        """Next-line stream prefetch into the L2 on a demand miss."""
        for offset in range(1, self.prefetch_degree + 1):
            line = miss_line + offset
            if self.l1.probe(line) or self.l2.probe(line):
                continue
            self.stats.prefetches_issued += 1
            self._prefetched_lines.add(line)
            if self.inclusive:
                self._insert_l3_inclusive(line)
            self._fill_l2(line)

    # ---------------------------------------------------------------- fills

    def _fill_l1(self, line: int) -> None:
        self.l1.insert(line)

    def _fill_l2(self, line: int) -> None:
        victim = self.l2.insert(line)
        if victim is not None and not self.inclusive:
            # Exclusive-style hierarchy: L2 victims are caught by the L3.
            self._insert_l3_victim(victim)

    def _insert_l3_inclusive(self, line: int) -> None:
        victim = self.l3.insert(line)
        if victim is not None:
            # Inclusion forces the victim out of the inner levels too.
            if self.l2.invalidate(victim):
                self.stats.l2_back_invalidations += 1
            self.l1.invalidate(victim)
            # The victim is resident nowhere now, so a pending prefetch
            # flag dies with it — without this, the bookkeeping set grows
            # unboundedly on pollution-heavy traces and a long-evicted
            # line still counts as a prefetch hit on its eventual demand.
            self._prefetched_lines.discard(victim)

    def _insert_l3_victim(self, line: int) -> None:
        victim = self.l3.insert(line)
        if victim is not None and not self.l2.probe(victim):
            # Same leak fix as the inclusive path. A line prefetched while
            # already L3-resident lives in both L2 and L3, so only drop
            # the pending flag when its last copy is gone.
            self._prefetched_lines.discard(victim)

    # ------------------------------------------------------------ utilities

    def external_llc_pressure(self, evict_lines: int, seed_stride: int = 9973) -> None:
        """Model co-runner LLC churn: insert foreign lines into the L3.

        Each foreign line occupies LLC capacity; in an inclusive hierarchy
        the resulting evictions back-invalidate this context's L2/L1 lines —
        the mechanism behind Broadwell's co-location latency degradation.
        Foreign lines use negative line indices so they never alias the
        workload's own lines.
        """
        if self.engine == "reference":
            for i in range(evict_lines):
                foreign = -(1 + i * seed_stride)
                if self.inclusive:
                    self._insert_l3_inclusive(foreign)
                else:
                    self._insert_l3_victim(foreign)
            return
        counters = self._batch_counters
        counters[:] = 0
        if self._kernel is not None:
            self._kernel.pressure(
                evict_lines,
                seed_stride,
                self.l1,
                self.l2,
                self.l3,
                self.inclusive,
                self.prefetch_degree,
                counters,
            )
        else:
            python_pressure(
                evict_lines,
                seed_stride,
                self.l1,
                self.l2,
                self.l3,
                self.inclusive,
                counters,
            )
        self._drain_batch_counters()

    def reset_stats(self) -> HierarchyStats:
        """Return accumulated stats and start fresh (contents kept)."""
        finished = self.stats
        self.stats = HierarchyStats()
        for level in (self.l1, self.l2, self.l3):
            level.reset_stats()
        return finished
