"""Multi-level cache hierarchies: inclusive vs non-inclusive/exclusive.

The paper's key micro-architectural contrast (Takeaway 7): Haswell and
Broadwell implement an *inclusive* L2/L3 — every L2 line is also in L3, so
an L3 eviction back-invalidates the victim's L2 copy. Under the irregular
access streams of co-located recommendation models, this back-invalidation
inflates L2 miss rates (+29% on Broadwell at 16 co-located jobs vs +9% on
Skylake) and produces the multi-modal tail latencies of Figure 11. Skylake's
L2/L3 is non-inclusive (L3 acts as a victim cache), so LLC churn does not
reach into L2.

:class:`CacheHierarchy` simulates an L1/L2/L3 stack with either policy and
returns per-level hit counts for an address trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.operators.base import MemoryAccess
from .cache import SetAssociativeCache
from .server import ServerSpec


@dataclass
class HierarchyStats:
    """Per-level hits plus DRAM fills for a simulated trace."""

    l1_hits: int = 0
    l2_hits: int = 0
    l3_hits: int = 0
    dram_accesses: int = 0
    l2_back_invalidations: int = 0
    prefetches_issued: int = 0
    prefetch_hits: int = 0

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of issued prefetches whose line was later used."""
        if self.prefetches_issued == 0:
            return 0.0
        return self.prefetch_hits / self.prefetches_issued

    @property
    def total_line_accesses(self) -> int:
        """Total cache-line lookups issued."""
        return self.l1_hits + self.l2_hits + self.l3_hits + self.dram_accesses

    def llc_mpki(self, instructions: int) -> float:
        """LLC misses per kilo-instruction, the Figure-5 metric."""
        if instructions <= 0:
            raise ValueError("instructions must be positive")
        return 1000.0 * self.dram_accesses / instructions

    def l2_miss_ratio(self) -> float:
        """L2 misses / L2 accesses."""
        l2_accesses = self.l2_hits + self.l3_hits + self.dram_accesses
        if l2_accesses == 0:
            return 0.0
        return (self.l3_hits + self.dram_accesses) / l2_accesses


class CacheHierarchy:
    """An L1 + L2 + shared-L3 stack with a configurable inclusion policy.

    Args:
        server: provides capacities and the inclusion policy.
        l3_share: fraction of the shared LLC available to this context
            (co-located jobs shrink each other's effective share).
        line_bytes: cache-line size.
        prefetch_degree: next-line stream prefetcher: on every demand miss
            to line L, lines L+1..L+degree are fetched into the L2. Helps
            streaming operators (FC weight reads); barely helps — and can
            pollute — under SLS's irregular row gathers, the effect the
            paper notes as "prefetching pollution". 0 disables.
    """

    def __init__(
        self,
        server: ServerSpec,
        l3_share: float = 1.0,
        line_bytes: int = 64,
        prefetch_degree: int = 0,
    ) -> None:
        if not 0.0 < l3_share <= 1.0:
            raise ValueError("l3_share must be in (0, 1]")
        if prefetch_degree < 0:
            raise ValueError("prefetch_degree must be non-negative")
        self.server = server
        self.inclusive = server.inclusive_llc
        self.prefetch_degree = prefetch_degree
        self._prefetched_lines: set[int] = set()
        self.l1 = SetAssociativeCache("L1", server.l1_bytes, 8, line_bytes)
        self.l2 = SetAssociativeCache("L2", server.l2_bytes, 8, line_bytes)
        l3_bytes = int(server.l3_bytes * l3_share)
        # Keep the L3 well-formed at tiny shares.
        l3_bytes = max(l3_bytes - l3_bytes % (16 * line_bytes), 16 * line_bytes)
        self.l3 = SetAssociativeCache("L3", l3_bytes, 16, line_bytes)
        self.stats = HierarchyStats()

    # ------------------------------------------------------------- accesses

    def access(self, access: MemoryAccess) -> None:
        """Simulate one logical access (all lines it spans)."""
        for line in self.l1.lines_spanned(access.address, access.size):
            self._access_line(line)

    def access_trace(self, trace) -> HierarchyStats:
        """Simulate an iterable of :class:`MemoryAccess`; returns stats."""
        for item in trace:
            self.access(item)
        return self.stats

    def _access_line(self, line: int) -> None:
        if line in self._prefetched_lines:
            self._prefetched_lines.discard(line)
            self.stats.prefetch_hits += 1
        if self.l1.touch(line):
            self.stats.l1_hits += 1
            return
        if self.l2.touch(line):
            self.stats.l2_hits += 1
            self._fill_l1(line)
            return
        if self.l3.touch(line):
            self.stats.l3_hits += 1
            if not self.inclusive:
                # Non-inclusive victim L3: the line moves up to L2.
                self.l3.invalidate(line)
                self.l3.stats.invalidations -= 1  # not a coherence event
            self._fill_l2(line)
            self._fill_l1(line)
            return
        # DRAM fill.
        self.stats.dram_accesses += 1
        if self.inclusive:
            self._insert_l3_inclusive(line)
        self._fill_l2(line)
        self._fill_l1(line)
        self._issue_prefetches(line)

    def _issue_prefetches(self, miss_line: int) -> None:
        """Next-line stream prefetch into the L2 on a demand miss."""
        for offset in range(1, self.prefetch_degree + 1):
            line = miss_line + offset
            if self.l1.probe(line) or self.l2.probe(line):
                continue
            self.stats.prefetches_issued += 1
            self._prefetched_lines.add(line)
            if self.inclusive:
                self._insert_l3_inclusive(line)
            self._fill_l2(line)

    # ---------------------------------------------------------------- fills

    def _fill_l1(self, line: int) -> None:
        self.l1.insert(line)

    def _fill_l2(self, line: int) -> None:
        victim = self.l2.insert(line)
        if victim is not None and not self.inclusive:
            # Exclusive-style hierarchy: L2 victims are caught by the L3.
            self._insert_l3_victim(victim)

    def _insert_l3_inclusive(self, line: int) -> None:
        victim = self.l3.insert(line)
        if victim is not None:
            # Inclusion forces the victim out of the inner levels too.
            if self.l2.invalidate(victim):
                self.stats.l2_back_invalidations += 1
            self.l1.invalidate(victim)

    def _insert_l3_victim(self, line: int) -> None:
        self.l3.insert(line)

    # ------------------------------------------------------------ utilities

    def external_llc_pressure(self, evict_lines: int, seed_stride: int = 9973) -> None:
        """Model co-runner LLC churn: insert foreign lines into the L3.

        Each foreign line occupies LLC capacity; in an inclusive hierarchy
        the resulting evictions back-invalidate this context's L2/L1 lines —
        the mechanism behind Broadwell's co-location latency degradation.
        Foreign lines use negative line indices so they never alias the
        workload's own lines.
        """
        for i in range(evict_lines):
            foreign = -(1 + i * seed_stride)
            if self.inclusive:
                self._insert_l3_inclusive(foreign)
            else:
                self._insert_l3_victim(foreign)

    def reset_stats(self) -> HierarchyStats:
        """Return accumulated stats and start fresh (contents kept)."""
        finished = self.stats
        self.stats = HierarchyStats()
        for level in (self.l1, self.l2, self.l3):
            level.reset_stats()
        return finished
