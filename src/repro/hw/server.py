"""Server architecture specifications (the paper's Table II).

Data centers run inference on a heterogeneous set of dual-socket Intel
servers; the paper studies Haswell, Broadwell and Skylake. The parameters
that drive every result in Sections V-VI are captured here: operating
frequency, core count, SIMD generation, cache sizes, the L2/L3 inclusion
policy, and DRAM generation/bandwidth.

Calibration fields (documented in DESIGN.md §5) encode per-generation
behaviour the paper measures but Table II does not list directly — e.g.
per-lookup SLS core cycles and effective random-access DRAM service time.
"""

from __future__ import annotations

from dataclasses import dataclass

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass(frozen=True)
class SimdSpec:
    """A SIMD instruction-set generation.

    Attributes:
        name: ISA label ("AVX-2", "AVX-512").
        lanes_fp32: vector lanes of fp32.
        fma_ports: FMA execution ports per core.
    """

    name: str
    lanes_fp32: int
    fma_ports: int

    @property
    def peak_flops_per_cycle(self) -> int:
        """fp32 FLOPs/cycle/core: lanes x ports x 2 (multiply+add)."""
        return self.lanes_fp32 * self.fma_ports * 2


AVX2 = SimdSpec(name="AVX-2", lanes_fp32=8, fma_ports=2)
AVX512 = SimdSpec(name="AVX-512", lanes_fp32=16, fma_ports=2)


@dataclass(frozen=True)
class ServerSpec:
    """One server generation (a row of the paper's Table II).

    Attributes:
        name: generation name.
        frequency_ghz: core clock (turbo disabled, as in the paper).
        cores_per_socket / sockets: physical core topology.
        simd: SIMD generation.
        l1_bytes / l2_bytes / l3_bytes: per-core L1 and L2, shared L3
            (per socket).
        inclusive_llc: True for Haswell/Broadwell's inclusive L2/L3,
            False for Skylake's non-inclusive (victim) hierarchy.
        dram_capacity_bytes: installed DRAM.
        ddr_type / ddr_freq_mhz: DRAM generation.
        dram_bw_bytes_per_s: peak DRAM bandwidth per socket.
        sls_cycles_per_lookup: batch -> core-side cycles to issue one
            embedding row gather + accumulate (address generation, loop
            overhead), log-interpolated. Cycles amortize with batch as the
            gather loop pipelines and prefetches across independent samples.
        sls_mlp: batch -> memory-level parallelism (overlapped outstanding
            misses) for DRAM row gathers. Skylake's AVX-512 gather path
            amortizes later (the paper's "sub-optimal throughput due to
            irregular memory access patterns").
        llc_latency_cycles: load-to-use latency of the shared LLC (Skylake's
            mesh interconnect is slower than the ring of Haswell/Broadwell).
        dram_random_ns: exposed DRAM service time per random row access at
            unit batch running alone, after out-of-order overlap (slowest on
            Haswell's DDR3). Calibrated so Broadwell's batch-1 per-lookup
            SLS cost lands at ~130 ns (RMC2 batch-1 latency anchor).
        fc_utilization: batch -> fraction-of-peak anchors for dense GEMM,
            log-interpolated (see :mod:`repro.hw.simd`); encodes both SIMD
            fill behaviour and generation-specific GEMM efficiency.
    """

    name: str
    frequency_ghz: float
    cores_per_socket: int
    sockets: int
    simd: SimdSpec
    l1_bytes: int
    l2_bytes: int
    l3_bytes: int
    inclusive_llc: bool
    dram_capacity_bytes: int
    ddr_type: str
    ddr_freq_mhz: int
    dram_bw_bytes_per_s: float
    sls_cycles_per_lookup: tuple[tuple[float, float], ...]
    sls_mlp: tuple[tuple[float, float], ...]
    llc_latency_cycles: int
    dram_random_ns: float
    fc_utilization: tuple[tuple[float, float], ...]

    @property
    def total_cores(self) -> int:
        """Physical cores across both sockets."""
        return self.cores_per_socket * self.sockets

    @property
    def peak_gflops_per_core(self) -> float:
        """Single-core fp32 peak in GFLOP/s."""
        return self.frequency_ghz * self.simd.peak_flops_per_cycle

    @property
    def cycle_ns(self) -> float:
        """Nanoseconds per core cycle."""
        return 1.0 / self.frequency_ghz


#: Core-side gather/accumulate cycles per lookup vs batch (shared shape; the
#: loop pipelines across independent samples as batch grows).
_SLS_CYCLES_AVX2 = ((1, 120), (4, 40), (16, 12), (64, 6), (128, 4), (256, 3))
_SLS_CYCLES_AVX512 = ((1, 120), (4, 40), (16, 12), (64, 6), (128, 4), (256, 3))

#: Memory-level parallelism of DRAM row gathers vs batch. The ring-based
#: Haswell/Broadwell uncore overlaps misses aggressively with batching; the
#: Skylake mesh + AVX-512 gather path ramps later, which is why Skylake's
#: SLS throughput trails Broadwell until batch ~128 (Figure 8).
_SLS_MLP_RING = ((1, 3.0), (16, 6.0), (32, 6.7), (64, 8.0), (128, 10.0), (256, 12.0))
_SLS_MLP_MESH = ((1, 3.0), (16, 4.2), (32, 4.8), (64, 6.5), (128, 10.0), (256, 13.0))


HASWELL = ServerSpec(
    name="Haswell",
    frequency_ghz=2.5,
    cores_per_socket=12,
    sockets=2,
    simd=AVX2,
    l1_bytes=32 * KB,
    l2_bytes=256 * KB,
    l3_bytes=30 * MB,
    inclusive_llc=True,
    dram_capacity_bytes=256 * GB,
    ddr_type="DDR3",
    ddr_freq_mhz=1600,
    dram_bw_bytes_per_s=51e9,
    sls_cycles_per_lookup=_SLS_CYCLES_AVX2,
    sls_mlp=_SLS_MLP_RING,
    llc_latency_cycles=48,
    dram_random_ns=170.0,
    # Older core: lower GEMM efficiency at every batch (paper: BDW is
    # 1.32-1.4x faster at batch 16 despite HSW's higher clock).
    fc_utilization=((1, 0.066), (4, 0.19), (16, 0.55), (64, 0.66), (256, 0.68)),
)

BROADWELL = ServerSpec(
    name="Broadwell",
    frequency_ghz=2.4,
    cores_per_socket=14,
    sockets=2,
    simd=AVX2,
    l1_bytes=32 * KB,
    l2_bytes=256 * KB,
    l3_bytes=35 * MB,
    inclusive_llc=True,
    dram_capacity_bytes=256 * GB,
    ddr_type="DDR4",
    ddr_freq_mhz=2400,
    dram_bw_bytes_per_s=77e9,
    sls_cycles_per_lookup=_SLS_CYCLES_AVX2,
    sls_mlp=_SLS_MLP_RING,
    llc_latency_cycles=40,
    dram_random_ns=130.0,
    # AVX-2 fills its 8 lanes at modest batch: high utilization early.
    fc_utilization=((1, 0.088), (4, 0.25), (16, 0.75), (64, 0.90), (256, 0.92)),
)

SKYLAKE = ServerSpec(
    name="Skylake",
    frequency_ghz=2.0,
    cores_per_socket=20,
    sockets=2,
    simd=AVX512,
    l1_bytes=32 * KB,
    l2_bytes=1 * MB,
    l3_bytes=int(27.5 * MB),
    inclusive_llc=False,
    dram_capacity_bytes=256 * GB,
    ddr_type="DDR4",
    ddr_freq_mhz=2666,
    dram_bw_bytes_per_s=85e9,
    sls_cycles_per_lookup=_SLS_CYCLES_AVX512,
    sls_mlp=_SLS_MLP_MESH,
    llc_latency_cycles=55,
    dram_random_ns=125.0,
    # AVX-512 needs large batches to fill 16 lanes (paper: crossover vs
    # Broadwell at batch ~64 for compute models, ~128 for memory models).
    fc_utilization=((1, 0.030), (4, 0.085), (16, 0.27), (64, 0.55), (256, 0.72)),
)

ALL_SERVERS = (HASWELL, BROADWELL, SKYLAKE)

SERVERS_BY_NAME = {s.name: s for s in ALL_SERVERS}


def get_server(name: str) -> ServerSpec:
    """Look up a server generation by name (case-insensitive)."""
    for server in ALL_SERVERS:
        if server.name.lower() == name.lower():
            return server
    valid = ", ".join(s.name for s in ALL_SERVERS)
    raise KeyError(f"unknown server {name!r}; valid: {valid}")
