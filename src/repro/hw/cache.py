"""Set-associative cache model with LRU replacement.

Used by :mod:`repro.hw.hierarchy` to build the inclusive (Haswell,
Broadwell) and non-inclusive/exclusive (Skylake) L2/L3 hierarchies whose
behaviour under irregular embedding-table accesses drives the paper's
co-location findings (Sections V-VI).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Access counters for one cache level."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        """Misses per access (0 when untouched)."""
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """A single cache level: ``size_bytes`` split into LRU sets.

    Args:
        name: label for stats reporting ("L1", "L2", "L3").
        size_bytes: total capacity; must be a multiple of
            ``line_bytes * associativity``.
        associativity: ways per set.
        line_bytes: cache-line size (64 B on all Table-II machines).
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        associativity: int = 8,
        line_bytes: int = 64,
    ) -> None:
        if size_bytes <= 0 or associativity <= 0 or line_bytes <= 0:
            raise ValueError("cache parameters must be positive")
        num_lines = size_bytes // line_bytes
        if num_lines == 0 or num_lines % associativity != 0:
            raise ValueError(
                f"{name}: size {size_bytes} not divisible into "
                f"{associativity}-way sets of {line_bytes}B lines"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.line_bytes = line_bytes
        self.num_sets = num_lines // associativity
        # One LRU-ordered dict of line-tag -> None per set.
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()

    # -------------------------------------------------------------- helpers

    def line_of(self, address: int) -> int:
        """Line index (address / line size) of a byte address."""
        return address // self.line_bytes

    def _set_index(self, line: int) -> int:
        return line % self.num_sets

    def lines_spanned(self, address: int, size: int) -> range:
        """All line indices touched by ``size`` bytes at ``address``."""
        first = address // self.line_bytes
        last = (address + max(size, 1) - 1) // self.line_bytes
        return range(first, last + 1)

    # ------------------------------------------------------------ line ops

    def probe(self, line: int) -> bool:
        """Check presence without updating LRU or stats."""
        return line in self._sets[self._set_index(line)]

    def touch(self, line: int) -> bool:
        """Look up a line, updating LRU order and hit/miss stats.

        Returns True on hit. Does *not* allocate on miss — the hierarchy
        decides where the line is filled.
        """
        cache_set = self._sets[self._set_index(line)]
        if line in cache_set:
            cache_set.move_to_end(line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def insert(self, line: int) -> int | None:
        """Allocate a line; returns the evicted victim line, if any."""
        cache_set = self._sets[self._set_index(line)]
        if line in cache_set:
            cache_set.move_to_end(line)
            return None
        victim: int | None = None
        if len(cache_set) >= self.associativity:
            victim, _ = cache_set.popitem(last=False)
            self.stats.evictions += 1
        cache_set[line] = None
        return victim

    def invalidate(self, line: int) -> bool:
        """Remove a line (back-invalidation); returns True if present."""
        cache_set = self._sets[self._set_index(line)]
        if line in cache_set:
            del cache_set[line]
            self.stats.invalidations += 1
            return True
        return False

    def resident_lines(self) -> int:
        """Number of lines currently cached."""
        return sum(len(s) for s in self._sets)

    def reset_stats(self) -> None:
        """Zero the counters (contents are kept)."""
        self.stats = CacheStats()
