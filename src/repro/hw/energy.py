"""Server energy model: power, energy per inference, efficiency.

An architectural-implications companion to the latency analysis: the three
generations differ not only in speed but in energy per ranked item. The
model uses published TDP-class figures plus activity-dependent DRAM power,
splitting an inference's energy into core-compute and DRAM components so
the embedding-dominated and compute-dominated classes separate the same
way they do for latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.model_config import ModelConfig
from .server import BROADWELL, HASWELL, SKYLAKE, ServerSpec
from .timing import ModelLatency, TimingModel

#: Active power per busy core (watts), by generation: newer processes are
#: denser but wider; AVX-512 raises Skylake's active draw.
CORE_ACTIVE_W = {"Haswell": 7.5, "Broadwell": 6.5, "Skylake": 8.5}

#: Idle (uncore+leakage) power attributed per core (watts).
CORE_IDLE_W = {"Haswell": 2.5, "Broadwell": 2.0, "Skylake": 2.2}

#: DRAM energy per byte actually moved (pJ/byte): DDR3 is least efficient.
DRAM_PJ_PER_BYTE = {"DDR3": 70.0, "DDR4": 40.0}

#: DRAM background power per socket (watts).
DRAM_BACKGROUND_W = 15.0


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy accounting for one inference."""

    model_name: str
    server_name: str
    batch_size: int
    core_joules: float
    dram_joules: float
    latency_s: float

    @property
    def total_joules(self) -> float:
        """Total energy for the inference."""
        return self.core_joules + self.dram_joules

    @property
    def joules_per_item(self) -> float:
        """Energy per ranked user-post pair."""
        return self.total_joules / self.batch_size

    @property
    def items_per_joule(self) -> float:
        """Energy efficiency (higher is better)."""
        return self.batch_size / self.total_joules


def _dram_bytes(latency: ModelLatency, config: ModelConfig) -> float:
    """Bytes that actually cross the DRAM bus during one inference."""
    batch = latency.batch_size
    # Embedding gathers dominated by misses; FC weights stream once when
    # DRAM-resident (approximated by their memory_seconds share).
    sls_bytes = sum(
        batch * t.lookups_per_sample * max(64, t.dim * 4)
        for t in config.embedding_tables
    )
    return float(sls_bytes)


def inference_energy(
    server: ServerSpec,
    config: ModelConfig,
    batch_size: int,
) -> EnergyEstimate:
    """Predict the energy of one inference on one core of ``server``."""
    if server.name not in CORE_ACTIVE_W:
        raise KeyError(f"no power model for server {server.name!r}")
    latency = TimingModel(server).model_latency(config, batch_size)
    seconds = latency.total_seconds
    core_w = CORE_ACTIVE_W[server.name] + CORE_IDLE_W[server.name]
    dram_share_w = DRAM_BACKGROUND_W / server.cores_per_socket
    core_joules = (core_w + dram_share_w) * seconds
    hit = TimingModel(server).table_hit_ratio(config.embedding_storage_bytes())
    moved = _dram_bytes(latency, config) * (1.0 - hit)
    dram_joules = moved * DRAM_PJ_PER_BYTE[server.ddr_type] * 1e-12
    return EnergyEstimate(
        model_name=config.name,
        server_name=server.name,
        batch_size=batch_size,
        core_joules=core_joules,
        dram_joules=dram_joules,
        latency_s=seconds,
    )


def efficiency_comparison(
    config: ModelConfig, batch_size: int
) -> dict[str, EnergyEstimate]:
    """Energy estimates across the three Table-II generations."""
    return {
        server.name: inference_energy(server, config, batch_size)
        for server in (HASWELL, BROADWELL, SKYLAKE)
    }
