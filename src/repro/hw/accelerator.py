"""FC-accelerator Amdahl analysis (Takeaway 2 / Section V).

A central argument of the paper: existing DNN accelerators target matrix
multiplication, but "software and hardware acceleration of matrix
multiplication operations alone will provide limited benefits on
end-to-end performance" because the FC share of recommendation models
ranges from ~30% (RMC1 at batch) to ~95% (RMC3). This module quantifies
that claim: offload FC/BatchMatMul to an accelerator with a given speedup
and per-offload overhead, and compute the end-to-end gain per model class.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.model_config import ModelConfig
from ..core.operators.base import OP_BATCH_MATMUL, OP_FC
from .server import ServerSpec
from .timing import TimingModel


@dataclass(frozen=True)
class AcceleratorConfig:
    """A standalone FC/matmul accelerator attached to the server.

    Attributes:
        fc_speedup: factor by which FC/BatchMM operator time shrinks.
        offload_overhead_s: per-offloaded-operator transfer/launch cost.
    """

    fc_speedup: float = 10.0
    offload_overhead_s: float = 2e-6

    def __post_init__(self) -> None:
        if self.fc_speedup < 1.0:
            raise ValueError("fc_speedup must be >= 1")
        if self.offload_overhead_s < 0:
            raise ValueError("offload overhead must be non-negative")


@dataclass(frozen=True)
class AccelerationResult:
    """End-to-end effect of FC acceleration on one model."""

    model_name: str
    server_name: str
    batch_size: int
    fc_speedup: float
    baseline_seconds: float
    accelerated_seconds: float
    fc_share: float

    @property
    def end_to_end_speedup(self) -> float:
        """Total-latency improvement factor."""
        return self.baseline_seconds / self.accelerated_seconds

    @property
    def amdahl_limit(self) -> float:
        """Speedup with an infinitely fast FC engine (1 / (1 - fc_share))."""
        return 1.0 / max(1e-9, 1.0 - self.fc_share)


def accelerate_fc(
    server: ServerSpec,
    config: ModelConfig,
    batch_size: int,
    accelerator: AcceleratorConfig = AcceleratorConfig(),
) -> AccelerationResult:
    """Predict end-to-end latency with FC/BatchMM offloaded."""
    latency = TimingModel(server).model_latency(config, batch_size)
    baseline = latency.total_seconds
    accelerated = 0.0
    fc_seconds = 0.0
    for op in latency.per_op:
        if op.op_type in (OP_FC, OP_BATCH_MATMUL):
            fc_seconds += op.seconds
            accelerated += (
                op.seconds / accelerator.fc_speedup + accelerator.offload_overhead_s
            )
        else:
            accelerated += op.seconds
    return AccelerationResult(
        model_name=config.name,
        server_name=server.name,
        batch_size=batch_size,
        fc_speedup=accelerator.fc_speedup,
        baseline_seconds=baseline,
        accelerated_seconds=accelerated,
        fc_share=fc_seconds / baseline,
    )


def speedup_sweep(
    server: ServerSpec,
    configs: list[ModelConfig],
    batch_size: int,
    fc_speedups: list[float],
) -> dict[str, list[AccelerationResult]]:
    """End-to-end speedups across accelerator strengths per model class."""
    out: dict[str, list[AccelerationResult]] = {}
    for config in configs:
        out[config.name] = [
            accelerate_fc(server, config, batch_size, AcceleratorConfig(fc_speedup=s))
            for s in fc_speedups
        ]
    return out
