"""Structure-of-arrays cache state for the vectorized replay engine.

The reference simulator (:mod:`repro.hw.cache`) keeps one ``OrderedDict``
per set and walks it per cache line — perfectly clear, and far too slow
for million-lookup traces. The vectorized engine keeps each level as flat
numpy matrices instead:

* ``tags``   — ``(num_sets, associativity)`` int64; slots ``0..occ-1`` of
  a row hold the set's resident lines in LRU→MRU order (slot 0 is the
  next victim), mirroring the reference OrderedDict's iteration order.
* ``flags``  — same shape, uint8; marks lines filled by a prefetch and
  not yet demanded. A flag dies with its copy on eviction, which is what
  makes prefetch-hit accounting leak-free.
* ``occupancy`` — ``(num_sets,)`` int64 valid-slot counts.

Age counters are position-encoded (a line's age within its set is its
distance from the MRU slot); :meth:`VectorizedSetAssociativeCache.age_matrix`
materializes them for introspection.

Batches of line indices are replayed through this state by the native C
kernel (:mod:`repro.hw._native`) when a compiler is available, or by the
pure-Python batch kernel below. Both implement exactly the reference
semantics — the equivalence suite asserts record-for-record equal stats —
but exact LRU with cross-level feedback is sequential per line, so the
Python path is "only" a few times faster than the reference while the
native path is one-to-two orders of magnitude faster.
"""

from __future__ import annotations

import numpy as np

from .cache import CacheStats

__all__ = [
    "VectorizedSetAssociativeCache",
    "expand_spans",
    "python_replay",
    "python_pressure",
]


class VectorizedSetAssociativeCache:
    """One cache level as numpy tag/flag/occupancy matrices.

    Geometry and validation match :class:`repro.hw.cache.SetAssociativeCache`;
    the contents are mutated in bulk by the batch kernels rather than per
    access.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        associativity: int = 8,
        line_bytes: int = 64,
    ) -> None:
        if size_bytes <= 0 or associativity <= 0 or line_bytes <= 0:
            raise ValueError("cache parameters must be positive")
        num_lines = size_bytes // line_bytes
        if num_lines == 0 or num_lines % associativity != 0:
            raise ValueError(
                f"{name}: size {size_bytes} not divisible into "
                f"{associativity}-way sets of {line_bytes}B lines"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.line_bytes = line_bytes
        self.num_sets = num_lines // associativity
        self.tags = np.zeros((self.num_sets, associativity), dtype=np.int64)
        self.flags = np.zeros((self.num_sets, associativity), dtype=np.uint8)
        self.occupancy = np.zeros(self.num_sets, dtype=np.int64)
        # [hits, misses, evictions, invalidations] — incremented in place
        # by the batch kernels.
        self._counters = np.zeros(4, dtype=np.int64)

    # ------------------------------------------------------------- geometry

    def line_of(self, address: int) -> int:
        """Line index (address / line size) of a byte address."""
        return address // self.line_bytes

    def lines_spanned(self, address: int, size: int) -> range:
        """All line indices touched by ``size`` bytes at ``address``."""
        first = address // self.line_bytes
        last = (address + max(size, 1) - 1) // self.line_bytes
        return range(first, last + 1)

    # ---------------------------------------------------------------- state

    @property
    def stats(self) -> CacheStats:
        """Access counters, as the reference :class:`CacheStats`."""
        hits, misses, evictions, invalidations = (int(c) for c in self._counters)
        return CacheStats(
            hits=hits,
            misses=misses,
            evictions=evictions,
            invalidations=invalidations,
        )

    def probe(self, line: int) -> bool:
        """Check presence without updating LRU or stats."""
        set_index = int(line % self.num_sets)
        occupied = int(self.occupancy[set_index])
        return bool((self.tags[set_index, :occupied] == line).any())

    def probe_lines(self, lines: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`probe` over an int64 line-index array."""
        lines = np.asarray(lines, dtype=np.int64).reshape(-1)
        set_indices = lines % self.num_sets
        way = np.arange(self.associativity, dtype=np.int64)[None, :]
        valid = way < self.occupancy[set_indices][:, None]
        return ((self.tags[set_indices] == lines[:, None]) & valid).any(axis=1)

    def resident_lines(self) -> int:
        """Number of lines currently cached."""
        return int(self.occupancy.sum())

    def age_matrix(self) -> np.ndarray:
        """Per-slot LRU ages (MRU slot = 0); -1 marks empty slots."""
        way = np.arange(self.associativity, dtype=np.int64)[None, :]
        ages = self.occupancy[:, None] - 1 - way
        return np.where(way < self.occupancy[:, None], ages, -1)

    def reset_stats(self) -> None:
        """Zero the counters (contents are kept)."""
        self._counters[:] = 0


# --------------------------------------------------------------- span utils


def expand_spans(
    addresses: np.ndarray, sizes: np.ndarray, line_bytes: int
) -> np.ndarray:
    """Expand (address, size) pairs into the flat line-index sequence.

    Vectorized equivalent of calling ``lines_spanned`` per access and
    concatenating the ranges in trace order.
    """
    addresses = np.asarray(addresses, dtype=np.int64).reshape(-1)
    sizes = np.asarray(sizes, dtype=np.int64).reshape(-1)
    first = addresses // line_bytes
    last = (addresses + np.maximum(sizes, 1) - 1) // line_bytes
    counts = last - first + 1
    if counts.size == 0:
        return np.empty(0, dtype=np.int64)
    total = int(counts.sum())
    starts = np.repeat(first, counts)
    bases = np.repeat(np.cumsum(counts) - counts, counts)
    return starts + (np.arange(total, dtype=np.int64) - bases)


# ------------------------------------------------------ python batch kernel


def _to_dicts(level: VectorizedSetAssociativeCache) -> list[dict[int, int]]:
    """SoA state -> per-set {line: prefetch_flag} dicts in LRU order."""
    tags = level.tags.tolist()
    flags = level.flags.tolist()
    occupancy = level.occupancy.tolist()
    return [
        dict(zip(tag_row[:occupied], flag_row[:occupied]))
        for tag_row, flag_row, occupied in zip(tags, flags, occupancy)
    ]

def _from_dicts(
    level: VectorizedSetAssociativeCache, sets: list[dict[int, int]]
) -> None:
    """Write the dict mirror back into the SoA arrays."""
    for set_index, cache_set in enumerate(sets):
        occupied = len(cache_set)
        level.occupancy[set_index] = occupied
        if occupied:
            level.tags[set_index, :occupied] = list(cache_set.keys())
            level.flags[set_index, :occupied] = list(cache_set.values())


def python_replay(
    lines: np.ndarray,
    l1: VectorizedSetAssociativeCache,
    l2: VectorizedSetAssociativeCache,
    l3: VectorizedSetAssociativeCache,
    inclusive: bool,
    prefetch_degree: int,
    hier_counters: np.ndarray,
) -> None:
    """Pure-Python batch kernel: replay ``lines`` through the hierarchy.

    Fallback for environments without a C compiler. Uses an ephemeral
    per-set dict mirror of the SoA state (CPython dict operations beat
    per-access numpy indexing by a wide margin) and writes the state back
    when the batch completes.
    """
    d1, d2, d3 = _to_dicts(l1), _to_dicts(l2), _to_dicts(l3)
    n1, n2, n3 = l1.num_sets, l2.num_sets, l3.num_sets
    w1, w2, w3 = l1.associativity, l2.associativity, l3.associativity
    h1 = h2 = h3 = dram = back_inv = pf_issued = pf_hits = 0
    l1h = l1m = l1e = l1i = 0
    l2h = l2m = l2e = l2i = 0
    l3h = l3m = l3e = 0

    flags_possible = bool(
        prefetch_degree > 0 or l2.flags.any() or l3.flags.any()
    )
    for line in np.asarray(lines, dtype=np.int64).reshape(-1).tolist():
        s1 = d1[line % n1]
        if line in s1:
            del s1[line]
            s1[line] = 0
            h1 += 1
            l1h += 1
            continue
        l1m += 1
        s2 = d2[line % n2]
        if line in s2:
            if flags_possible and s2[line]:
                pf_hits += 1
                s3 = d3[line % n3]
                if line in s3:
                    s3[line] = 0
            del s2[line]
            s2[line] = 0
            h2 += 1
            l2h += 1
            if len(s1) >= w1:
                del s1[next(iter(s1))]
                l1e += 1
            s1[line] = 0
            continue
        l2m += 1
        dram_fill = False
        s3 = d3[line % n3]
        if line in s3:
            if flags_possible and s3[line]:
                pf_hits += 1
            h3 += 1
            l3h += 1
            if inclusive:
                del s3[line]
                s3[line] = 0
            else:
                # Victim L3: the line moves up (uncounted removal).
                del s3[line]
        else:
            l3m += 1
            dram += 1
            dram_fill = True
            if inclusive:
                if len(s3) >= w3:
                    victim = next(iter(s3))
                    del s3[victim]
                    l3e += 1
                    sv2 = d2[victim % n2]
                    if victim in sv2:
                        del sv2[victim]
                        l2i += 1
                        back_inv += 1
                    sv1 = d1[victim % n1]
                    if victim in sv1:
                        del sv1[victim]
                        l1i += 1
                s3[line] = 0
        # Fill L2 (line is absent on every path reaching here).
        if len(s2) >= w2:
            victim = next(iter(s2))
            victim_flag = s2[victim]
            del s2[victim]
            l2e += 1
            if not inclusive:
                sv3 = d3[victim % n3]
                if victim in sv3:
                    sv3[victim] |= victim_flag
                    del_flag = sv3.pop(victim)
                    sv3[victim] = del_flag  # move to MRU
                else:
                    if len(sv3) >= w3:
                        del sv3[next(iter(sv3))]
                        l3e += 1
                    sv3[victim] = victim_flag
        s2[line] = 0
        # Fill L1.
        if len(s1) >= w1:
            del s1[next(iter(s1))]
            l1e += 1
        s1[line] = 0
        # Next-line stream prefetch — only on a DRAM fill, not an L3 hit.
        if prefetch_degree > 0 and dram_fill:
            for offset in range(1, prefetch_degree + 1):
                pf_line = line + offset
                if pf_line in d1[pf_line % n1] or pf_line in d2[pf_line % n2]:
                    continue
                pf_issued += 1
                if inclusive:
                    ps3 = d3[pf_line % n3]
                    if pf_line in ps3:
                        ps3[pf_line] |= 1
                        moved = ps3.pop(pf_line)
                        ps3[pf_line] = moved  # move to MRU
                    else:
                        if len(ps3) >= w3:
                            victim = next(iter(ps3))
                            del ps3[victim]
                            l3e += 1
                            sv2 = d2[victim % n2]
                            if victim in sv2:
                                del sv2[victim]
                                l2i += 1
                                back_inv += 1
                            sv1 = d1[victim % n1]
                            if victim in sv1:
                                del sv1[victim]
                                l1i += 1
                        ps3[pf_line] = 1
                ps2 = d2[pf_line % n2]
                if len(ps2) >= w2:
                    victim = next(iter(ps2))
                    victim_flag = ps2[victim]
                    del ps2[victim]
                    l2e += 1
                    if not inclusive:
                        sv3 = d3[victim % n3]
                        if victim in sv3:
                            sv3[victim] |= victim_flag
                            moved = sv3.pop(victim)
                            sv3[victim] = moved
                        else:
                            if len(sv3) >= w3:
                                del sv3[next(iter(sv3))]
                                l3e += 1
                            sv3[victim] = victim_flag
                ps2[pf_line] = 1

    hier_counters[0] += h1
    hier_counters[1] += h2
    hier_counters[2] += h3
    hier_counters[3] += dram
    hier_counters[4] += back_inv
    hier_counters[5] += pf_issued
    hier_counters[6] += pf_hits
    l1._counters += np.array([l1h, l1m, l1e, l1i], dtype=np.int64)
    l2._counters += np.array([l2h, l2m, l2e, l2i], dtype=np.int64)
    l3._counters += np.array([l3h, l3m, l3e, 0], dtype=np.int64)
    _from_dicts(l1, d1)
    _from_dicts(l2, d2)
    _from_dicts(l3, d3)


def python_pressure(
    evict_lines: int,
    seed_stride: int,
    l1: VectorizedSetAssociativeCache,
    l2: VectorizedSetAssociativeCache,
    l3: VectorizedSetAssociativeCache,
    inclusive: bool,
    hier_counters: np.ndarray,
) -> None:
    """Pure-Python foreign-line LLC churn (``external_llc_pressure``)."""
    d1, d2, d3 = _to_dicts(l1), _to_dicts(l2), _to_dicts(l3)
    n1, n2, n3 = l1.num_sets, l2.num_sets, l3.num_sets
    w3 = l3.associativity
    back_inv = l1i = l2i = l3e = 0
    for i in range(evict_lines):
        foreign = -(1 + i * seed_stride)
        s3 = d3[foreign % n3]
        if foreign in s3:
            moved = s3.pop(foreign)
            s3[foreign] = moved  # re-insert: move to MRU
            continue
        if len(s3) >= w3:
            victim = next(iter(s3))
            del s3[victim]
            l3e += 1
            if inclusive:
                sv2 = d2[victim % n2]
                if victim in sv2:
                    del sv2[victim]
                    l2i += 1
                    back_inv += 1
                sv1 = d1[victim % n1]
                if victim in sv1:
                    del sv1[victim]
                    l1i += 1
        s3[foreign] = 0
    hier_counters[4] += back_inv
    l1._counters += np.array([0, 0, 0, l1i], dtype=np.int64)
    l2._counters += np.array([0, 0, 0, l2i], dtype=np.int64)
    l3._counters += np.array([0, 0, l3e, 0], dtype=np.int64)
    _from_dicts(l1, d1)
    _from_dicts(l2, d2)
    _from_dicts(l3, d3)
