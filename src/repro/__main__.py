"""Command-line entry point: regenerate any paper experiment.

Usage::

    python -m repro list                 # show available experiments
    python -m repro figure8              # run one and print its table
    python -m repro figure11x --json out.json   # + JSON result dump
    python -m repro all                  # run everything (slow ones last)
    python -m repro trace figure11x --out trace.json   # flight recorder

The ``trace`` subcommand re-runs an instrumented experiment with a live
:class:`~repro.obs.tracer.Tracer`, prints the flight-recorder report
(per-stage latency waterfall + top-k spans) and can export the Chrome
``trace_event`` JSON for ``chrome://tracing`` / Perfetto. ``--json`` dumps
the experiment's result — plus a metrics snapshot when the experiment
supports a registry — as a deterministic JSON document (CI uploads these
as build artifacts).
"""

from __future__ import annotations

import argparse
import inspect
import sys

from .experiments import REGISTRY

#: Experiments ordered cheap-first so `all` gives fast feedback.
_ORDERED = [
    "table1",
    "table2",
    "figure1",
    "figure2",
    "figure4",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure12",
    "table3",
    "micro",
    "configspace",
    "whatif",
    "figure11",
    "figure11x",
    "figure11y",
    "figure11z",
    "figure14",
    "fignmp",
    "figure5",
    "fleet",
    "multimodel",
]


def _run_kwargs(module) -> set[str]:
    """Keyword names the experiment's ``run()`` accepts."""
    return set(inspect.signature(module.run).parameters)


def _run_one(exp_id: str, json_path: str | None = None) -> None:
    from .obs import MetricsRegistry, dumps_result

    module = REGISTRY[exp_id]
    kwargs = {}
    registry = None
    if json_path is not None and "metrics" in _run_kwargs(module):
        registry = MetricsRegistry()
        kwargs["metrics"] = registry
    # Deliberately no wall-clock timing here (SC904): every latency this
    # CLI prints is *simulated*; real execution time is the business of
    # benchmarks/bench_execution_wallclock.py, and a cosmetic elapsed
    # display was the one host-dependent output in an otherwise
    # deterministic pipeline.
    result = module.run(**kwargs)
    print(f"\n### {exp_id}\n")
    print(module.render(result))
    if json_path is not None:
        snapshot = registry.snapshot() if registry is not None else None
        document = dumps_result(exp_id, result, snapshot)
        if json_path == "-":
            print(document)
        else:
            with open(json_path, "w", encoding="utf-8") as handle:
                handle.write(document + "\n")
            print(f"\nwrote {json_path}")


def _main_trace(argv: list[str]) -> int:
    """``python -m repro trace <experiment>`` — the flight recorder."""
    from .obs import Tracer, dumps_chrome, flight_report

    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Re-run an instrumented experiment with tracing on.",
    )
    parser.add_argument("experiment", help="experiment id (see `list`)")
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write Chrome trace_event JSON here (open in Perfetto)",
    )
    parser.add_argument(
        "--top", type=int, default=10, help="rows in the top-span table"
    )
    args = parser.parse_args(argv)

    module = REGISTRY.get(args.experiment)
    if module is None:
        print(f"unknown experiment {args.experiment!r}", file=sys.stderr)
        return 2
    if "tracer" not in _run_kwargs(module):
        traceable = ", ".join(
            exp_id
            for exp_id in _ORDERED
            if "tracer" in _run_kwargs(REGISTRY[exp_id])
        )
        print(
            f"{args.experiment!r} is not instrumented for tracing; "
            f"traceable experiments: {traceable}",
            file=sys.stderr,
        )
        return 2

    tracer = Tracer()
    result = module.run(tracer=tracer)
    print(module.render(result))
    print()
    print(flight_report(tracer, top_k=args.top))
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(dumps_chrome(tracer) + "\n")
        print(f"\nwrote {args.out} (load in chrome://tracing or Perfetto)")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "trace":
        return _main_trace(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see `list`), `all`, `validate`, `list`, or "
        "`trace <experiment>`",
    )
    parser.add_argument(
        "--json",
        dest="json_path",
        metavar="PATH",
        nargs="?",
        const="-",
        default=None,
        help="dump the result (and metrics snapshot, when the experiment "
        "supports one) as JSON to PATH, or stdout when PATH is omitted",
    )
    args = parser.parse_args(argv)

    if args.experiment == "validate":
        from .validation import render_report, validate

        checks = validate()
        print(render_report(checks))
        return 0 if all(c.passed for c in checks) else 1
    if args.experiment == "list":
        for exp_id in _ORDERED:
            doc = (REGISTRY[exp_id].__doc__ or "").strip().splitlines()[0]
            print(f"{exp_id:<10} {doc}")
        return 0
    if args.experiment == "all":
        for exp_id in _ORDERED:
            _run_one(exp_id, json_path=None)
        return 0
    if args.experiment not in REGISTRY:
        valid = ", ".join(_ORDERED)
        print(f"unknown experiment {args.experiment!r}; valid: {valid}, all, validate, list",
              file=sys.stderr)
        return 2
    _run_one(args.experiment, json_path=args.json_path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
