"""Command-line entry point: regenerate any paper experiment.

Usage::

    python -m repro list                 # show available experiments
    python -m repro figure8              # run one and print its table
    python -m repro all                  # run everything (slow ones last)
"""

from __future__ import annotations

import argparse
import sys
import time

from .experiments import REGISTRY

#: Experiments ordered cheap-first so `all` gives fast feedback.
_ORDERED = [
    "table1",
    "table2",
    "figure1",
    "figure2",
    "figure4",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure12",
    "table3",
    "micro",
    "configspace",
    "whatif",
    "figure11",
    "figure11x",
    "figure14",
    "figure5",
]


def _run_one(exp_id: str) -> None:
    module = REGISTRY[exp_id]
    start = time.perf_counter()
    result = module.run()
    elapsed_s = time.perf_counter() - start
    print(f"\n### {exp_id} ({elapsed_s:.1f}s)\n")
    print(module.render(result))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see `list`), `all`, `validate`, or `list`",
    )
    args = parser.parse_args(argv)

    if args.experiment == "validate":
        from .validation import render_report, validate

        checks = validate()
        print(render_report(checks))
        return 0 if all(c.passed for c in checks) else 1
    if args.experiment == "list":
        for exp_id in _ORDERED:
            doc = (REGISTRY[exp_id].__doc__ or "").strip().splitlines()[0]
            print(f"{exp_id:<10} {doc}")
        return 0
    if args.experiment == "all":
        for exp_id in _ORDERED:
            _run_one(exp_id)
        return 0
    if args.experiment not in REGISTRY:
        valid = ", ".join(_ORDERED)
        print(f"unknown experiment {args.experiment!r}; valid: {valid}, all, validate, list",
              file=sys.stderr)
        return 2
    _run_one(args.experiment)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
