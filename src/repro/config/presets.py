"""Preset model configurations for the paper's three recommendation classes.

Table I of the paper gives *normalized* architecture parameters for RMC1,
RMC2 and RMC3 together with absolute anchors scattered through the text:

* embedding output dimension is 24-40 across all classes (we use 32);
* Bottom-FC widths are 8x/4x/1x of RMC1's layer 3 for RMC1/RMC2 and
  80x/8x/4x for RMC3; with the layer-3 unit at 32 this gives
  ``[256, 128, 32]`` and ``[2560, 256, 128]``;
* Top-FC widths are 4x/2x/(1) ending in the scalar CTR output;
* lookups per table are normalized to RMC3: RMC1/RMC2 use ~4x more
  (the Section VII example uses 80, so RMC3 uses 20);
* table counts: RMC2 has ~10x the tables of RMC1/RMC3 (4-40 in total
  across the fleet);
* aggregate embedding storage is ~100 MB (RMC1), ~10 GB (RMC2),
  ~1 GB (RMC3); RMC3 has the largest per-table input dimension.

These choices reproduce the paper's operator mixes (Figure 7: RMC1 ~61%
FC+BatchMM / ~20% SLS; RMC2 ~80% SLS; RMC3 >96% FC) and batch-1 Broadwell
latencies (0.04 / 0.30 / 0.60 ms). The ``*-small`` / ``*-large`` presets
bracket each class the way the paper's "small and large implementations"
do. :func:`scaled_for_execution` returns laptop-runnable instances that
keep every per-sample cost identical.
"""

from __future__ import annotations

from .model_config import (
    EmbeddingTableConfig,
    MLPConfig,
    ModelConfig,
    uniform_tables,
)

#: Embedding dimension shared by all production presets (paper: 24-40).
EMBEDDING_DIM = 32

#: Sparse-ID lookups per table. Normalized to RMC3 = 1x in Table I; the
#: Section VII example RMC1 uses 80 lookups, i.e. the 4x classes use 80.
LOOKUPS_RMC1 = 80
LOOKUPS_RMC2 = 80
LOOKUPS_RMC3 = 20

#: Bottom/Top MLP shapes from Table I (unit: RMC1 layer 3 = 32).
_SMALL_BOTTOM = [256, 128, 32]
_SMALL_TOP = [128, 64, 1]
_RMC3_BOTTOM = [2560, 256, 128]
_RMC3_TOP = [128, 64, 1]


def _model(
    name: str,
    model_class: str,
    dense: int,
    bottom: list,
    top: list,
    num_tables: int,
    rows: int,
    lookups: int,
) -> ModelConfig:
    return ModelConfig(
        name=name,
        model_class=model_class,
        dense_features=dense,
        bottom_mlp=MLPConfig(bottom),
        embedding_tables=uniform_tables(num_tables, rows, EMBEDDING_DIM, lookups),
        top_mlp=MLPConfig(top, final_activation="sigmoid"),
    )


#: Lightweight filtering model: few, small tables, small MLPs (~50-150 MB).
RMC1_SMALL = _model(
    "RMC1-small", "RMC1", 128, _SMALL_BOTTOM, _SMALL_TOP,
    num_tables=2, rows=100_000, lookups=LOOKUPS_RMC1,
)

#: Larger RMC1 instance — 3x the tables and wider FCs (paper: ~2x latency).
RMC1_LARGE = _model(
    "RMC1-large", "RMC1", 128, [512, 256, 32], [256, 64, 1],
    num_tables=6, rows=100_000, lookups=LOOKUPS_RMC1,
)

#: Memory-intensive ranking model: ~10x more tables (5-10 GB aggregate).
RMC2_SMALL = _model(
    "RMC2-small", "RMC2", 128, _SMALL_BOTTOM, _SMALL_TOP,
    num_tables=20, rows=2_000_000, lookups=LOOKUPS_RMC2,
)

RMC2_LARGE = _model(
    "RMC2-large", "RMC2", 128, _SMALL_BOTTOM, _SMALL_TOP,
    num_tables=24, rows=3_000_000, lookups=LOOKUPS_RMC2,
)

#: Compute-intensive ranking model: very wide Bottom-MLP (many dense
#: features in social-media post ranking), few but very tall tables (~1 GB),
#: few lookups per table.
RMC3_SMALL = _model(
    "RMC3-small", "RMC3", 512, _RMC3_BOTTOM, _RMC3_TOP,
    num_tables=2, rows=3_600_000, lookups=LOOKUPS_RMC3,
)

RMC3_LARGE = _model(
    "RMC3-large", "RMC3", 512, [2560, 512, 128], [256, 64, 1],
    num_tables=3, rows=3_600_000, lookups=LOOKUPS_RMC3,
)

#: The MLPerf-NCF comparison point (Section VII / Figure 12): orders of
#: magnitude smaller embedding tables (MovieLens-20m: ~138k users, ~27k
#: movies, dim 64) and fewer/smaller FC layers, one lookup per table.
NCF = ModelConfig(
    name="MLPerf-NCF",
    model_class="NCF",
    dense_features=1,
    bottom_mlp=MLPConfig([64]),
    embedding_tables=(
        EmbeddingTableConfig(rows=138_000, dim=64, lookups_per_sample=1),
        EmbeddingTableConfig(rows=27_000, dim=64, lookups_per_sample=1),
    ),
    top_mlp=MLPConfig([128, 64, 1], final_activation="sigmoid"),
)

#: A DLRM-style variant of RMC1 using the pairwise dot-product interaction
#: (executed as BatchMatMul) instead of plain concatenation. The Bottom-MLP
#: output width must equal the embedding dimension.
RMC1_DOT = ModelConfig(
    name="RMC1-dot",
    model_class="RMC1",
    dense_features=128,
    bottom_mlp=MLPConfig(_SMALL_BOTTOM),
    embedding_tables=uniform_tables(2, 100_000, EMBEDDING_DIM, LOOKUPS_RMC1),
    top_mlp=MLPConfig(_SMALL_TOP, final_activation="sigmoid"),
    interaction="dot",
)

#: Canonical representative of each class, used throughout the experiments.
RMC1 = RMC1_SMALL
RMC2 = RMC2_SMALL
RMC3 = RMC3_SMALL

PRODUCTION_PRESETS: dict[str, ModelConfig] = {
    cfg.name: cfg
    for cfg in (
        RMC1_SMALL,
        RMC1_LARGE,
        RMC1_DOT,
        RMC2_SMALL,
        RMC2_LARGE,
        RMC3_SMALL,
        RMC3_LARGE,
        NCF,
    )
}


def get_preset(name: str) -> ModelConfig:
    """Look up a preset by name, raising ``KeyError`` with the valid names."""
    try:
        return PRODUCTION_PRESETS[name]
    except KeyError:
        valid = ", ".join(sorted(PRODUCTION_PRESETS))
        raise KeyError(f"unknown preset {name!r}; valid presets: {valid}") from None


def scaled_for_execution(config: ModelConfig, max_rows: int = 20_000) -> ModelConfig:
    """Shrink embedding tables so the model is executable in modest RAM.

    Rows are capped at ``max_rows`` per table; lookup counts, embedding
    dimensions and MLP shapes — everything that determines per-sample
    compute and operator mix — are preserved.
    """
    biggest = max(t.rows for t in config.embedding_tables)
    if biggest <= max_rows:
        return config
    return config.scaled(table_rows=max_rows / biggest, suffix="-exec")
