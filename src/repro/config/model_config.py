"""Model configuration for DLRM-style personalized recommendation models.

These dataclasses mirror the tunable parameters of the open-source benchmark
described in Section VII / Figure 13 of the paper:

1. the number of embedding tables,
2. input (rows) and output (embedding dimension) sizes of embedding tables,
3. the number of sparse lookups per embedding table,
4. depth/width of the Bottom-MLP (dense features), and
5. depth/width of the Top-MLP (after combining dense and sparse features).

A :class:`ModelConfig` fully determines model structure, storage capacity,
and per-inference FLOP/byte counts; it can be instantiated as a runnable
:class:`repro.core.model.RecommendationModel`, and scaled down with
:meth:`ModelConfig.scaled` so that production-sized configurations (tens of
GBs of embeddings) remain executable on a laptop while preserving shape
ratios.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Sequence

#: Bytes per element for the supported datatypes (the paper uses fp32).
DTYPE_BYTES = {"fp32": 4, "fp16": 2, "int8": 1}


class ConfigError(ValueError):
    """Raised when a model configuration is structurally invalid."""


@dataclass(frozen=True)
class EmbeddingTableConfig:
    """Configuration of one embedding table.

    Attributes:
        rows: number of rows (the categorical-domain size; "input dimension"
            in the paper's Table I, up to millions in production).
        dim: embedding dimension (the paper reports 24-40 in production;
            "output dimension" in Table I).
        lookups_per_sample: sparse IDs gathered and pooled per input sample
            (Table I "Lookups"; tens in production).
    """

    rows: int
    dim: int
    lookups_per_sample: int

    def __post_init__(self) -> None:
        if self.rows < 1:
            raise ConfigError(f"embedding table needs at least 1 row, got {self.rows}")
        if self.dim < 1:
            raise ConfigError(f"embedding dim must be positive, got {self.dim}")
        if self.lookups_per_sample < 1:
            raise ConfigError(
                f"lookups_per_sample must be positive, got {self.lookups_per_sample}"
            )

    def storage_bytes(self, dtype: str = "fp32") -> int:
        """Bytes needed to hold the full table."""
        return self.rows * self.dim * DTYPE_BYTES[dtype]

    def bytes_read_per_sample(self, dtype: str = "fp32") -> int:
        """Bytes of embedding rows gathered per input sample."""
        return self.lookups_per_sample * self.dim * DTYPE_BYTES[dtype]

    def flops_per_sample(self) -> int:
        """Element-wise accumulation FLOPs of the pooled lookup (Algorithm 1)."""
        return self.lookups_per_sample * self.dim


@dataclass(frozen=True)
class MLPConfig:
    """Configuration of a stack of fully-connected layers.

    Attributes:
        layer_sizes: output width of each FC layer in order. The input width
            of the first layer is supplied by the surrounding model (dense
            feature width for the Bottom-MLP; concat width for the Top-MLP).
        activation: activation applied after every layer except, optionally,
            the last (``final_activation``).
        final_activation: activation after the last layer; the Top-MLP of a
            CTR model ends in a sigmoid.
    """

    layer_sizes: tuple[int, ...]
    activation: str = "relu"
    final_activation: str | None = None

    def __init__(
        self,
        layer_sizes: Sequence[int],
        activation: str = "relu",
        final_activation: str | None = None,
    ) -> None:
        object.__setattr__(self, "layer_sizes", tuple(int(s) for s in layer_sizes))
        object.__setattr__(self, "activation", activation)
        object.__setattr__(self, "final_activation", final_activation)
        self.__post_init__()

    def __post_init__(self) -> None:
        if not self.layer_sizes:
            raise ConfigError("MLP must have at least one layer")
        if any(s < 1 for s in self.layer_sizes):
            raise ConfigError(f"MLP layer sizes must be positive, got {self.layer_sizes}")
        if self.activation not in ("relu", "sigmoid", "none"):
            raise ConfigError(f"unsupported activation {self.activation!r}")
        if self.final_activation not in (None, "relu", "sigmoid", "none"):
            raise ConfigError(f"unsupported final activation {self.final_activation!r}")

    @property
    def depth(self) -> int:
        """Number of FC layers."""
        return len(self.layer_sizes)

    @property
    def output_dim(self) -> int:
        """Width of the final layer."""
        return self.layer_sizes[-1]

    def parameter_count(self, input_dim: int) -> int:
        """Total weights + biases given the input width."""
        total = 0
        fan_in = input_dim
        for width in self.layer_sizes:
            total += fan_in * width + width
            fan_in = width
        return total

    def flops_per_sample(self, input_dim: int) -> int:
        """Multiply-accumulate FLOPs (2 per MAC) for one input sample."""
        total = 0
        fan_in = input_dim
        for width in self.layer_sizes:
            total += 2 * fan_in * width
            fan_in = width
        return total


@dataclass(frozen=True)
class ModelConfig:
    """Complete configuration of a DLRM-style recommendation model (Fig. 3).

    The model consumes ``dense_features`` continuous inputs (processed by the
    Bottom-MLP) and one multi-hot sparse feature per embedding table
    (processed by SparseLengthsSum). Embedding outputs and the Bottom-MLP
    output are concatenated and fed to the Top-MLP, whose final scalar and
    sigmoid produce the predicted click-through rate.

    Attributes:
        name: human-readable identifier (e.g. ``"RMC1-small"``).
        model_class: one of ``"RMC1"``, ``"RMC2"``, ``"RMC3"``, ``"NCF"`` or
            a free-form label; used by fleet accounting and Table I.
        dense_features: width of the dense input vector.
        bottom_mlp: Bottom-MLP configuration.
        embedding_tables: per-table configurations.
        top_mlp: Top-MLP configuration; its final layer should have width 1
            for CTR prediction.
        dtype: parameter datatype ("fp32" in all paper experiments).
        interaction: how dense and sparse representations combine —
            ``"concat"`` (Figure 3's architecture) or ``"dot"`` (DLRM's
            pairwise dot-product interaction, executed as the BatchMatMul
            operator that dominates production RMC profiles alongside FC).
            ``"dot"`` requires the Bottom-MLP output width to equal every
            embedding dimension.
    """

    name: str
    model_class: str
    dense_features: int
    bottom_mlp: MLPConfig
    embedding_tables: tuple[EmbeddingTableConfig, ...]
    top_mlp: MLPConfig
    dtype: str = "fp32"
    interaction: str = "concat"

    def __init__(
        self,
        name: str,
        model_class: str,
        dense_features: int,
        bottom_mlp: MLPConfig,
        embedding_tables: Sequence[EmbeddingTableConfig],
        top_mlp: MLPConfig,
        dtype: str = "fp32",
        interaction: str = "concat",
    ) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "model_class", model_class)
        object.__setattr__(self, "dense_features", int(dense_features))
        object.__setattr__(self, "bottom_mlp", bottom_mlp)
        object.__setattr__(self, "embedding_tables", tuple(embedding_tables))
        object.__setattr__(self, "top_mlp", top_mlp)
        object.__setattr__(self, "dtype", dtype)
        object.__setattr__(self, "interaction", interaction)
        self.__post_init__()

    def __post_init__(self) -> None:
        if self.dense_features < 1:
            raise ConfigError("dense_features must be positive")
        if not self.embedding_tables:
            raise ConfigError("a recommendation model needs at least one embedding table")
        if self.dtype not in DTYPE_BYTES:
            raise ConfigError(f"unsupported dtype {self.dtype!r}")
        if self.interaction not in ("concat", "dot"):
            raise ConfigError(f"unsupported interaction {self.interaction!r}")
        if self.interaction == "dot":
            dims = {t.dim for t in self.embedding_tables}
            dims.add(self.bottom_mlp.output_dim)
            if len(dims) != 1:
                raise ConfigError(
                    "dot interaction needs Bottom-MLP output width equal to "
                    f"every embedding dim, got {sorted(dims)}"
                )

    # ------------------------------------------------------------------ shape

    @property
    def num_tables(self) -> int:
        """Number of embedding tables."""
        return len(self.embedding_tables)

    @property
    def embedding_output_dim(self) -> int:
        """Sum of embedding dimensions across tables (concat contribution)."""
        return sum(t.dim for t in self.embedding_tables)

    @property
    def num_interaction_vectors(self) -> int:
        """Feature vectors entering the interaction (dense + one/table)."""
        return 1 + self.num_tables

    @property
    def top_mlp_input_dim(self) -> int:
        """Width of the combined representation feeding the Top-MLP.

        ``concat``: Bottom-MLP output plus every embedding vector.
        ``dot``: the Bottom-MLP output passed through, plus one pairwise
        dot product per feature-vector pair (DLRM's layout).
        """
        if self.interaction == "dot":
            v = self.num_interaction_vectors
            return self.bottom_mlp.output_dim + v * (v - 1) // 2
        return self.bottom_mlp.output_dim + self.embedding_output_dim

    @property
    def total_lookups(self) -> int:
        """Total sparse-ID lookups per sample across all tables."""
        return sum(t.lookups_per_sample for t in self.embedding_tables)

    # --------------------------------------------------------------- capacity

    def embedding_storage_bytes(self) -> int:
        """Aggregate embedding-table capacity (the dominant storage term)."""
        return sum(t.storage_bytes(self.dtype) for t in self.embedding_tables)

    def mlp_parameter_count(self) -> int:
        """FC parameters across Bottom- and Top-MLP."""
        return self.bottom_mlp.parameter_count(
            self.dense_features
        ) + self.top_mlp.parameter_count(self.top_mlp_input_dim)

    def mlp_storage_bytes(self) -> int:
        """Bytes holding all FC weights and biases."""
        return self.mlp_parameter_count() * DTYPE_BYTES[self.dtype]

    def total_storage_bytes(self) -> int:
        """Total model capacity (embeddings + MLPs)."""
        return self.embedding_storage_bytes() + self.mlp_storage_bytes()

    # ------------------------------------------------------------------- cost

    def interaction_flops_per_sample(self) -> int:
        """FLOPs of the dot interaction's batched matmul (0 for concat)."""
        if self.interaction != "dot":
            return 0
        v = self.num_interaction_vectors
        return 2 * v * v * self.bottom_mlp.output_dim

    def flops_per_sample(self) -> int:
        """End-to-end FLOPs for one user-post pair (MACs count as 2)."""
        mlp = self.bottom_mlp.flops_per_sample(self.dense_features)
        mlp += self.top_mlp.flops_per_sample(self.top_mlp_input_dim)
        emb = sum(t.flops_per_sample() for t in self.embedding_tables)
        return mlp + emb + self.interaction_flops_per_sample()

    def bytes_read_per_sample(self) -> int:
        """Bytes read per sample: all FC weights plus gathered embedding rows.

        This matches the paper's Figure 2 notion of per-inference bytes: at
        unit batch every FC weight is read once and only the looked-up
        embedding rows are touched.
        """
        emb = sum(t.bytes_read_per_sample(self.dtype) for t in self.embedding_tables)
        return self.mlp_storage_bytes() + emb

    def operational_intensity(self) -> float:
        """FLOPs per byte read, at unit batch (Figure 5-style metric)."""
        return self.flops_per_sample() / self.bytes_read_per_sample()

    # ---------------------------------------------------------------- scaling

    def scaled(self, table_rows: float = 1.0, suffix: str | None = None) -> "ModelConfig":
        """Return a copy with embedding-table rows scaled by ``table_rows``.

        Production configurations have tables with millions of rows (up to
        10 GB aggregate); tests and examples scale rows down, which preserves
        every per-sample cost except storage capacity (lookups, dims and FC
        shapes are untouched).
        """
        if table_rows <= 0:
            raise ConfigError("table_rows scale factor must be positive")
        tables = tuple(
            replace(t, rows=max(1, int(math.ceil(t.rows * table_rows))))
            for t in self.embedding_tables
        )
        name = self.name if suffix is None else f"{self.name}{suffix}"
        return ModelConfig(
            name=name,
            model_class=self.model_class,
            dense_features=self.dense_features,
            bottom_mlp=self.bottom_mlp,
            embedding_tables=tables,
            top_mlp=self.top_mlp,
            dtype=self.dtype,
            interaction=self.interaction,
        )

    def describe(self) -> dict:
        """Structured summary used by Table I / Figure 12 experiments."""
        return {
            "name": self.name,
            "model_class": self.model_class,
            "dense_features": self.dense_features,
            "num_tables": self.num_tables,
            "table_rows": [t.rows for t in self.embedding_tables],
            "embedding_dim": [t.dim for t in self.embedding_tables],
            "lookups_per_table": [t.lookups_per_sample for t in self.embedding_tables],
            "bottom_mlp": list(self.bottom_mlp.layer_sizes),
            "top_mlp": list(self.top_mlp.layer_sizes),
            "embedding_storage_bytes": self.embedding_storage_bytes(),
            "mlp_parameters": self.mlp_parameter_count(),
            "flops_per_sample": self.flops_per_sample(),
            "bytes_per_sample": self.bytes_read_per_sample(),
        }


def uniform_tables(
    num_tables: int, rows: int, dim: int, lookups: int
) -> tuple[EmbeddingTableConfig, ...]:
    """Convenience builder: ``num_tables`` identical embedding tables."""
    if num_tables < 1:
        raise ConfigError("num_tables must be positive")
    table = EmbeddingTableConfig(rows=rows, dim=dim, lookups_per_sample=lookups)
    return tuple(table for _ in range(num_tables))
