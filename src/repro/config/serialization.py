"""JSON (de)serialization of model configurations.

The open-source benchmark's parameter space (Figure 13) is only useful if
configurations travel between tools and experiments; these helpers give a
stable JSON schema for :class:`~repro.config.model_config.ModelConfig`.
"""

from __future__ import annotations

import json
from pathlib import Path

from .model_config import (
    ConfigError,
    EmbeddingTableConfig,
    MLPConfig,
    ModelConfig,
)

SCHEMA_VERSION = 1


def config_to_dict(config: ModelConfig) -> dict:
    """Structured, version-tagged representation of a configuration."""
    return {
        "schema_version": SCHEMA_VERSION,
        "name": config.name,
        "model_class": config.model_class,
        "dense_features": config.dense_features,
        "dtype": config.dtype,
        "interaction": config.interaction,
        "bottom_mlp": {
            "layer_sizes": list(config.bottom_mlp.layer_sizes),
            "activation": config.bottom_mlp.activation,
            "final_activation": config.bottom_mlp.final_activation,
        },
        "top_mlp": {
            "layer_sizes": list(config.top_mlp.layer_sizes),
            "activation": config.top_mlp.activation,
            "final_activation": config.top_mlp.final_activation,
        },
        "embedding_tables": [
            {
                "rows": t.rows,
                "dim": t.dim,
                "lookups_per_sample": t.lookups_per_sample,
            }
            for t in config.embedding_tables
        ],
    }


def config_from_dict(data: dict) -> ModelConfig:
    """Rebuild a configuration from :func:`config_to_dict` output."""
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ConfigError(
            f"unsupported config schema version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    try:
        return ModelConfig(
            name=data["name"],
            model_class=data["model_class"],
            dense_features=data["dense_features"],
            bottom_mlp=MLPConfig(
                data["bottom_mlp"]["layer_sizes"],
                activation=data["bottom_mlp"].get("activation", "relu"),
                final_activation=data["bottom_mlp"].get("final_activation"),
            ),
            embedding_tables=[
                EmbeddingTableConfig(
                    rows=t["rows"],
                    dim=t["dim"],
                    lookups_per_sample=t["lookups_per_sample"],
                )
                for t in data["embedding_tables"]
            ],
            top_mlp=MLPConfig(
                data["top_mlp"]["layer_sizes"],
                activation=data["top_mlp"].get("activation", "relu"),
                final_activation=data["top_mlp"].get("final_activation"),
            ),
            dtype=data.get("dtype", "fp32"),
            interaction=data.get("interaction", "concat"),
        )
    except KeyError as missing:
        raise ConfigError(f"config dict is missing field {missing}") from None


def save_config(config: ModelConfig, path: str | Path) -> None:
    """Write a configuration as pretty-printed JSON."""
    Path(path).write_text(json.dumps(config_to_dict(config), indent=2) + "\n")


def load_config(path: str | Path) -> ModelConfig:
    """Read a configuration written by :func:`save_config`."""
    return config_from_dict(json.loads(Path(path).read_text()))
