"""Model configuration: the tunable parameter space of Figure 13."""

from .model_config import (
    ConfigError,
    DTYPE_BYTES,
    EmbeddingTableConfig,
    MLPConfig,
    ModelConfig,
    uniform_tables,
)
from .normalization import NormalizedModelParams, normalize_table1
from .serialization import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)
from .presets import (
    EMBEDDING_DIM,
    NCF,
    PRODUCTION_PRESETS,
    RMC1,
    RMC1_DOT,
    RMC1_LARGE,
    RMC1_SMALL,
    RMC2,
    RMC2_LARGE,
    RMC2_SMALL,
    RMC3,
    RMC3_LARGE,
    RMC3_SMALL,
    get_preset,
    scaled_for_execution,
)

__all__ = [
    "ConfigError",
    "DTYPE_BYTES",
    "EmbeddingTableConfig",
    "MLPConfig",
    "ModelConfig",
    "uniform_tables",
    "NormalizedModelParams",
    "normalize_table1",
    "config_from_dict",
    "config_to_dict",
    "load_config",
    "save_config",
    "EMBEDDING_DIM",
    "NCF",
    "PRODUCTION_PRESETS",
    "RMC1",
    "RMC1_DOT",
    "RMC1_LARGE",
    "RMC1_SMALL",
    "RMC2",
    "RMC2_LARGE",
    "RMC2_SMALL",
    "RMC3",
    "RMC3_LARGE",
    "RMC3_SMALL",
    "get_preset",
    "scaled_for_execution",
]
