"""Normalized Table-I view of model configurations.

The paper's Table I reports every architecture parameter normalized to the
smallest instance across the three model classes: Bottom- and Top-FC widths
are normalized to RMC1's layer 3, embedding-table count and dimensions to
RMC1, and lookups per table to RMC3. This module computes the same
normalized view from concrete :class:`~repro.config.model_config.ModelConfig`
objects, so the reproduction of Table I is derived from the presets rather
than hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass

from .model_config import ModelConfig


@dataclass(frozen=True)
class NormalizedModelParams:
    """One row of the normalized Table I."""

    name: str
    model_class: str
    bottom_fc: tuple[float, ...]
    top_fc: tuple[float, ...]
    num_tables: float
    table_rows: float
    table_dim: float
    lookups: float


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values)


def normalize_table1(
    configs: list[ModelConfig],
    fc_reference: ModelConfig | None = None,
    table_reference: ModelConfig | None = None,
    lookup_reference: ModelConfig | None = None,
) -> list[NormalizedModelParams]:
    """Compute Table-I-style normalized parameters for ``configs``.

    Args:
        configs: the model configurations to normalize (one row each).
        fc_reference: model whose *last* Bottom-FC layer defines 1x for FC
            widths (the paper uses RMC1). Defaults to the first RMC1 in
            ``configs``, else the first config.
        table_reference: model defining 1x for table count/rows/dims
            (paper: RMC1).
        lookup_reference: model defining 1x lookups (paper: RMC3).

    Returns:
        One :class:`NormalizedModelParams` per input config.
    """
    if not configs:
        raise ValueError("need at least one config to normalize")

    def first_of(model_class: str) -> ModelConfig:
        for cfg in configs:
            if cfg.model_class == model_class:
                return cfg
        return configs[0]

    fc_ref = fc_reference or first_of("RMC1")
    tbl_ref = table_reference or first_of("RMC1")
    lkp_ref = lookup_reference or first_of("RMC3")

    fc_unit = fc_ref.bottom_mlp.layer_sizes[-1]
    tables_unit = tbl_ref.num_tables
    rows_unit = _mean(t.rows for t in tbl_ref.embedding_tables)
    dim_unit = _mean(t.dim for t in tbl_ref.embedding_tables)
    lookups_unit = _mean(t.lookups_per_sample for t in lkp_ref.embedding_tables)

    rows = []
    for cfg in configs:
        rows.append(
            NormalizedModelParams(
                name=cfg.name,
                model_class=cfg.model_class,
                bottom_fc=tuple(s / fc_unit for s in cfg.bottom_mlp.layer_sizes),
                top_fc=tuple(s / fc_unit for s in cfg.top_mlp.layer_sizes),
                num_tables=cfg.num_tables / tables_unit,
                table_rows=_mean(t.rows for t in cfg.embedding_tables) / rows_unit,
                table_dim=_mean(t.dim for t in cfg.embedding_tables) / dim_unit,
                lookups=_mean(t.lookups_per_sample for t in cfg.embedding_tables)
                / lookups_unit,
            )
        )
    return rows
