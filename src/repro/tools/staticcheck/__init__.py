"""repro.tools.staticcheck — AST-based invariant checker for this repository.

The paper's characterization rests on operators reporting *correct*
analytical costs and on simulation being deterministic and unit-consistent;
a silently wrong ``bytes()`` or an unseeded RNG invalidates every
downstream figure. This package enforces those invariants statically:

* a pluggable rule engine over Python ``ast`` (:mod:`.engine`),
* repo-specific rules (:mod:`.rules`): cost contracts, unit-suffix
  discipline, determinism, dtype discipline, config reachability, and the
  experiment-registry convention,
* a static model-graph validator (:mod:`.graphs`) that shape-checks every
  ``config/presets.py`` preset without executing numpy,
* a baseline/suppression mechanism (:mod:`.baseline`) and text + JSON
  reporters (:mod:`.reporters`).

Run it as::

    python -m repro.tools.staticcheck src/ tests/ benchmarks/

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue and conventions.
"""

from .engine import ModuleInfo, Project, Rule, Violation, load_project, run_checks
from .graphs import GraphProblem, validate_config, validate_presets

__all__ = [
    "GraphProblem",
    "ModuleInfo",
    "Project",
    "Rule",
    "Violation",
    "load_project",
    "run_checks",
    "validate_config",
    "validate_presets",
]
