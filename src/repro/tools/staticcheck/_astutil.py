"""Small AST helpers shared by the rules."""

from __future__ import annotations

import ast
from typing import Iterator


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute/name chains as a string, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def names_in(node: ast.AST) -> set[str]:
    """Every bare identifier referenced anywhere inside ``node``.

    ``self.x`` contributes both ``self`` and the attribute name ``x`` so
    data-flow checks can follow instance attributes by name.
    """
    found: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            found.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            found.add(sub.attr)
    return found


def contains_mult(node: ast.AST) -> bool:
    """True if any multiplication appears inside ``node``."""
    return any(
        isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Mult)
        for sub in ast.walk(node)
    )


def call_keyword(call: ast.Call, name: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        dotted = dotted_name(target)
        if dotted:
            names.add(dotted.split(".")[-1])
    return names


def walk_functions(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def is_constant_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None
