"""Small AST helpers shared by the rules."""

from __future__ import annotations

import ast
from typing import Iterator


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute/name chains as a string, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def names_in(node: ast.AST) -> set[str]:
    """Every bare identifier referenced anywhere inside ``node``.

    ``self.x`` contributes both ``self`` and the attribute name ``x`` so
    data-flow checks can follow instance attributes by name.
    """
    found: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            found.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            found.add(sub.attr)
    return found


def contains_mult(node: ast.AST) -> bool:
    """True if any multiplication appears inside ``node``."""
    return any(
        isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Mult)
        for sub in ast.walk(node)
    )


def call_keyword(call: ast.Call, name: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        dotted = dotted_name(target)
        if dotted:
            names.add(dotted.split(".")[-1])
    return names


def walk_functions(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def is_constant_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


#: Unit vocabulary shared by SC201 (per-file) and SC901 (interprocedural).
TIME_UNITS = {"ns", "us", "ms", "s", "sec", "seconds"}
SIZE_UNITS = {"bytes", "kb", "mb", "gb", "tb", "kib", "mib", "gib"}
UNIT_SUFFIXES = TIME_UNITS | SIZE_UNITS

#: Spelling variants of the same unit (``elapsed_seconds`` == ``elapsed_s``).
_UNIT_ALIASES = {"sec": "s", "seconds": "s"}


def unit_of_name(name: str) -> str | None:
    """Canonical unit suffix carried by an identifier, or ``None``.

    Rates (``bytes_per_s``, ``per_s``) are not unit-suffixed quantities,
    and alias spellings collapse (``_seconds``/``_sec`` → ``s``) so the
    same physical unit never reads as a mix.
    """
    lowered = name.lower()
    if "_per_" in lowered or lowered.startswith("per_"):
        return None
    suffix = lowered.rsplit("_", 1)[-1] if "_" in lowered else None
    if suffix in UNIT_SUFFIXES:
        return _UNIT_ALIASES.get(suffix, suffix)
    return None
