"""Text and JSON reporters for checker results."""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field

from .engine import Violation

#: Version of the JSON report schema (tests pin it).
REPORT_SCHEMA_VERSION = 1


@dataclass
class RunStats:
    """Per-phase timing and cache observability for one invocation.

    Collected by the CLI under ``--stats`` so analyzer-runtime regressions
    and cache effectiveness are visible in CI logs.
    """

    files: int = 0
    parse_seconds: float = 0.0
    index_seconds: float = 0.0
    dataflow_seconds: float = 0.0
    rules_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Violation count per rule id for every rule that ran (zeros kept).
    rule_counts: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return (
            self.parse_seconds
            + self.index_seconds
            + self.dataflow_seconds
            + self.rules_seconds
        )

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def to_jsonable(self) -> dict:
        return {
            "files": self.files,
            "parse_seconds": round(self.parse_seconds, 4),
            "index_seconds": round(self.index_seconds, 4),
            "dataflow_seconds": round(self.dataflow_seconds, 4),
            "rules_seconds": round(self.rules_seconds, 4),
            "total_seconds": round(self.total_seconds, 4),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "rule_counts": dict(sorted(self.rule_counts.items())),
        }


def render_stats(stats: RunStats) -> str:
    """Human-readable ``--stats`` block appended to the text report."""
    counts = " ".join(f"{r}:{n}" for r, n in sorted(stats.rule_counts.items()))
    return "\n".join(
        [
            "staticcheck stats:",
            f"  files: {stats.files}  parse: {stats.parse_seconds:.2f}s  "
            f"index: {stats.index_seconds:.2f}s  "
            f"dataflow: {stats.dataflow_seconds:.2f}s  "
            f"rules: {stats.rules_seconds:.2f}s  "
            f"total: {stats.total_seconds:.2f}s",
            f"  summary cache: {stats.cache_hits} hits / "
            f"{stats.cache_misses} misses "
            f"({100.0 * stats.cache_hit_rate:.1f}% hit rate)",
            f"  violations by rule: {counts or '(no rules ran)'}",
        ]
    )


@dataclass
class CheckReport:
    """Everything one checker invocation produced."""

    violations: list[Violation]
    checked_files: int
    suppressed_by_baseline: int = 0
    graph_problems: list = field(default_factory=list)
    stats: RunStats | None = None

    @property
    def exit_code(self) -> int:
        return 1 if self.violations or self.graph_problems else 0


def render_text(report: CheckReport) -> str:
    """Human-readable diagnostics, one ``path:line:col`` line per finding."""
    lines = [v.format() for v in report.violations]
    lines.extend(
        f"src/repro/config/presets.py:0:0: SC701 [preset-graphs] {p.format()}"
        for p in report.graph_problems
    )
    total = len(report.violations) + len(report.graph_problems)
    if total:
        by_rule = Counter(v.rule for v in report.violations)
        if report.graph_problems:
            by_rule["SC701"] = len(report.graph_problems)
        breakdown = ", ".join(f"{r}:{n}" for r, n in sorted(by_rule.items()))
        lines.append(
            f"staticcheck: {total} violation{'s' if total != 1 else ''} "
            f"({breakdown}) in {report.checked_files} files"
        )
    else:
        lines.append(
            f"staticcheck: clean — {report.checked_files} files checked"
            + (
                f", {report.suppressed_by_baseline} baseline-suppressed"
                if report.suppressed_by_baseline
                else ""
            )
        )
    if report.stats is not None:
        lines.append(render_stats(report.stats))
    return "\n".join(lines)


def render_json(report: CheckReport) -> str:
    """Machine-readable report (schema pinned by REPORT_SCHEMA_VERSION)."""
    payload = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "checked_files": report.checked_files,
        "suppressed_by_baseline": report.suppressed_by_baseline,
        "violations": [
            {
                "rule": v.rule,
                "name": v.name,
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "message": v.message,
            }
            for v in report.violations
        ],
        "graph_problems": [
            {"preset": p.preset, "stage": p.stage, "message": p.message}
            for p in report.graph_problems
        ],
        "counts": dict(Counter(v.rule for v in report.violations)),
        "exit_code": report.exit_code,
    }
    if report.stats is not None:
        payload["stats"] = report.stats.to_jsonable()
    return json.dumps(payload, indent=2)
