"""Text and JSON reporters for checker results."""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field

from .engine import Violation

#: Version of the JSON report schema (tests pin it).
REPORT_SCHEMA_VERSION = 1


@dataclass
class CheckReport:
    """Everything one checker invocation produced."""

    violations: list[Violation]
    checked_files: int
    suppressed_by_baseline: int = 0
    graph_problems: list = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.violations or self.graph_problems else 0


def render_text(report: CheckReport) -> str:
    """Human-readable diagnostics, one ``path:line:col`` line per finding."""
    lines = [v.format() for v in report.violations]
    lines.extend(
        f"src/repro/config/presets.py:0:0: SC701 [preset-graphs] {p.format()}"
        for p in report.graph_problems
    )
    total = len(report.violations) + len(report.graph_problems)
    if total:
        by_rule = Counter(v.rule for v in report.violations)
        if report.graph_problems:
            by_rule["SC701"] = len(report.graph_problems)
        breakdown = ", ".join(f"{r}:{n}" for r, n in sorted(by_rule.items()))
        lines.append(
            f"staticcheck: {total} violation{'s' if total != 1 else ''} "
            f"({breakdown}) in {report.checked_files} files"
        )
    else:
        lines.append(
            f"staticcheck: clean — {report.checked_files} files checked"
            + (
                f", {report.suppressed_by_baseline} baseline-suppressed"
                if report.suppressed_by_baseline
                else ""
            )
        )
    return "\n".join(lines)


def render_json(report: CheckReport) -> str:
    """Machine-readable report (schema pinned by REPORT_SCHEMA_VERSION)."""
    payload = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "checked_files": report.checked_files,
        "suppressed_by_baseline": report.suppressed_by_baseline,
        "violations": [
            {
                "rule": v.rule,
                "name": v.name,
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "message": v.message,
            }
            for v in report.violations
        ],
        "graph_problems": [
            {"preset": p.preset, "stage": p.stage, "message": p.message}
            for p in report.graph_problems
        ],
        "counts": dict(Counter(v.rule for v in report.violations)),
        "exit_code": report.exit_code,
    }
    return json.dumps(payload, indent=2)
