"""SC701 static model-graph validation for the config presets.

Shape-checks a :class:`~repro.config.model_config.ModelConfig` the way the
executable model would wire it — bottom-MLP → SLS gathers → interaction →
concat → top-MLP — **without executing numpy**: no table is allocated, no
array touched. A preset whose dimensions disagree fails lint instead of
failing a benchmark run twenty minutes in.

Checks, per preset:

* positive dense width and bottom-MLP layer widths;
* every embedding table has positive rows/dim/lookups;
* ``dot`` interaction requires the bottom-MLP output width to equal every
  embedding dimension (the Gram matmul is otherwise ill-shaped);
* the concat width implied by walking the graph equals the config's own
  ``top_mlp_input_dim`` (guards drift between the property and the graph
  expansion in :mod:`repro.core.graph`);
* the top-MLP ends in the scalar CTR head (width 1) with a sigmoid;
* dtype is a known element type with a positive byte width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class GraphProblem:
    """One shape/contract violation found in a model preset."""

    preset: str
    stage: str
    message: str

    def format(self) -> str:
        return f"preset {self.preset!r} [{self.stage}]: {self.message}"


def validate_config(config) -> list[GraphProblem]:
    """Shape-check one ``ModelConfig``-like object; returns found problems."""
    problems: list[GraphProblem] = []
    name = getattr(config, "name", "<unnamed>")

    def problem(stage: str, message: str) -> None:
        problems.append(GraphProblem(preset=name, stage=stage, message=message))

    # --- bottom MLP -------------------------------------------------------
    if config.dense_features < 1:
        problem("bottom-mlp", f"dense_features must be positive, got {config.dense_features}")
    widths = list(config.bottom_mlp.layer_sizes)
    if not widths:
        problem("bottom-mlp", "bottom MLP has no layers")
    if any(w < 1 for w in widths):
        problem("bottom-mlp", f"non-positive layer width in {widths}")
    bottom_out = widths[-1] if widths else 0

    # --- embedding tables -------------------------------------------------
    if not config.embedding_tables:
        problem("sls", "model has no embedding tables")
    embedding_dims = []
    for i, table in enumerate(config.embedding_tables):
        if table.rows < 1 or table.dim < 1 or table.lookups_per_sample < 1:
            problem(
                "sls",
                f"table {i}: rows/dim/lookups must be positive, got "
                f"({table.rows}, {table.dim}, {table.lookups_per_sample})",
            )
        embedding_dims.append(table.dim)

    # --- interaction ------------------------------------------------------
    if config.interaction == "dot":
        mismatched = sorted({d for d in embedding_dims if d != bottom_out})
        if mismatched:
            problem(
                "interaction",
                f"dot interaction needs every embedding dim == bottom-MLP "
                f"output width {bottom_out}, got dims {mismatched}",
            )
        v = 1 + len(embedding_dims)
        concat_width = bottom_out + v * (v - 1) // 2
    elif config.interaction == "concat":
        concat_width = bottom_out + sum(embedding_dims)
    else:
        problem("interaction", f"unknown interaction {config.interaction!r}")
        concat_width = bottom_out + sum(embedding_dims)

    declared = config.top_mlp_input_dim
    if declared != concat_width:
        problem(
            "concat",
            f"graph walk implies top-MLP input width {concat_width} but the "
            f"config reports top_mlp_input_dim={declared}",
        )

    # --- top MLP / CTR head ----------------------------------------------
    top_widths = list(config.top_mlp.layer_sizes)
    if not top_widths:
        problem("top-mlp", "top MLP has no layers")
    elif top_widths[-1] != 1:
        problem(
            "top-mlp",
            f"CTR head must end in a scalar (width 1), got {top_widths[-1]}",
        )
    if top_widths and config.top_mlp.final_activation != "sigmoid":
        problem(
            "top-mlp",
            "CTR head should end in a sigmoid "
            f"(final_activation={config.top_mlp.final_activation!r})",
        )

    # --- dtype ------------------------------------------------------------
    from ...config.model_config import DTYPE_BYTES

    if config.dtype not in DTYPE_BYTES or DTYPE_BYTES.get(config.dtype, 0) < 1:
        problem("dtype", f"unknown or zero-width dtype {config.dtype!r}")

    return problems


def validate_presets(presets: Iterable | None = None) -> list[GraphProblem]:
    """Validate every production preset (or the supplied configs)."""
    if presets is None:
        from ...config.presets import PRODUCTION_PRESETS

        presets = PRODUCTION_PRESETS.values()
    problems: list[GraphProblem] = []
    for config in presets:
        problems.extend(validate_config(config))
    return problems
