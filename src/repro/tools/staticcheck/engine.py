"""Rule engine: file discovery, parsing, rule dispatch, inline suppression.

The engine parses every ``*.py`` file under the requested paths once into a
:class:`ModuleInfo`, hands the whole :class:`Project` to each rule, and
collects :class:`Violation` records. Rules come in two granularities:

* per-module (:meth:`Rule.check_module`) — purely local AST checks;
* project-wide (:meth:`Rule.check_project`) — checks that need the whole
  class hierarchy or cross-module usage counts (cost contracts, config
  reachability, the experiment registry).

A violation can be silenced at the source line with an inline marker::

    foo = np.random.rand(3)  # staticcheck: ignore[SC301]

(``# staticcheck: ignore`` with no bracket silences every rule on that
line). Longer-lived exceptions belong in the baseline file instead — see
:mod:`repro.tools.staticcheck.baseline`.
"""

from __future__ import annotations

import abc
import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Directories never scanned (build artifacts, VCS internals, caches).
SKIP_DIRS = {
    "__pycache__",
    ".git",
    ".hypothesis",
    ".pytest_cache",
    "build",
    "dist",
}

_IGNORE_RE = re.compile(r"#\s*staticcheck:\s*ignore(?:\[([A-Za-z0-9_,\s-]+)\])?")


@dataclass(frozen=True)
class Violation:
    """One diagnostic produced by a rule.

    ``fingerprint`` deliberately omits the line number so baseline entries
    survive unrelated edits that shift code up or down a file.
    """

    rule: str
    name: str
    path: str
    line: int
    col: int
    message: str

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.message)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.name}] {self.message}"


@dataclass
class ModuleInfo:
    """One parsed source file plus the path-derived facts rules key off."""

    path: Path
    relpath: str
    tree: ast.Module
    source_lines: list[str]

    @property
    def is_test(self) -> bool:
        """Test code is exempt from the determinism rule."""
        parts = Path(self.relpath).parts
        stem = Path(self.relpath).name
        return (
            "tests" in parts
            or stem.startswith("test_")
            or stem == "conftest.py"
        )

    @property
    def is_operator_hot_path(self) -> bool:
        """Files holding the numpy operator kernels (dtype rule scope)."""
        return "core/operators" in self.relpath.replace("\\", "/")

    @property
    def is_experiment(self) -> bool:
        return "experiments/" in self.relpath.replace("\\", "/")

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.source_lines):
            return self.source_lines[line - 1]
        return ""


@dataclass
class Project:
    """All parsed modules for one checker invocation."""

    root: Path
    modules: list[ModuleInfo] = field(default_factory=list)
    parse_errors: list[Violation] = field(default_factory=list)
    #: Optional persistent summary cache (set by the CLI before running
    #: rules); ``analysis()`` records hits/misses on it.
    analysis_cache: "object | None" = None
    _analysis: "object | None" = None

    def analysis(self):
        """Whole-program analysis (index + dataflow summaries), built
        lazily on first use and shared by every SC9xx rule."""
        if self._analysis is None:
            from .dataflow import analyze_project  # local: keep engine light

            self._analysis = analyze_project(self, cache=self.analysis_cache)
        return self._analysis

    def src_modules(self) -> list[ModuleInfo]:
        """Modules under ``src/`` (library code, not tests/benchmarks)."""
        return [
            m
            for m in self.modules
            if Path(m.relpath).parts[:1] == ("src",) or "/src/" in m.relpath
        ]

    def by_relpath(self, suffix: str) -> ModuleInfo | None:
        """First module whose relative path ends with ``suffix``."""
        norm = suffix.replace("\\", "/")
        for module in self.modules:
            if module.relpath.replace("\\", "/").endswith(norm):
                return module
        return None


class Rule(abc.ABC):
    """Base class for checks. Subclasses set ``id``/``name``/``description``
    and override one (or both) of the check hooks."""

    id: str = "SC000"
    name: str = "unnamed"
    description: str = ""

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator[Violation]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Violation]:
        return iter(())

    def violation(
        self, module_or_path: ModuleInfo | str, node: ast.AST | None, message: str
    ) -> Violation:
        path = (
            module_or_path.relpath
            if isinstance(module_or_path, ModuleInfo)
            else module_or_path
        )
        line = getattr(node, "lineno", 0) if node is not None else 0
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Violation(
            rule=self.id, name=self.name, path=path, line=line, col=col, message=message
        )


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield every ``*.py`` file under ``paths`` (files pass through)."""
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = set(candidate.parts)
                if parts & SKIP_DIRS:
                    continue
                if any(p.endswith(".egg-info") for p in candidate.parts):
                    continue
                yield candidate


def _relativize(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def load_project(paths: Sequence[Path | str], root: Path | str | None = None) -> Project:
    """Parse every python file under ``paths`` into a :class:`Project`.

    Files that fail to parse become ``SC001 parse-error`` violations rather
    than aborting the run — a syntactically broken file must fail the check,
    not crash it.
    """
    root = Path(root) if root is not None else Path.cwd()
    project = Project(root=root)
    for file_path in iter_python_files([Path(p) for p in paths]):
        relpath = _relativize(file_path, root)
        try:
            source = file_path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(file_path))
        except (SyntaxError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", 0) or 0
            project.parse_errors.append(
                Violation(
                    rule="SC001",
                    name="parse-error",
                    path=relpath,
                    line=line,
                    col=0,
                    message=f"cannot parse: {exc.msg if hasattr(exc, 'msg') else exc}",
                )
            )
            continue
        project.modules.append(
            ModuleInfo(
                path=file_path,
                relpath=relpath,
                tree=tree,
                source_lines=source.splitlines(),
            )
        )
    return project


def _inline_suppressed(violation: Violation, project: Project) -> bool:
    module = next((m for m in project.modules if m.relpath == violation.path), None)
    if module is None:
        return False
    match = _IGNORE_RE.search(module.line_text(violation.line))
    if not match:
        return False
    listed = match.group(1)
    if listed is None:
        return True
    tokens = {t.strip() for t in listed.split(",")}
    return violation.rule in tokens or violation.name in tokens


def run_checks(
    project: Project, rules: Iterable[Rule]
) -> list[Violation]:
    """Run ``rules`` over ``project``; returns sorted, unsuppressed violations."""
    violations: list[Violation] = list(project.parse_errors)
    for rule in rules:
        for module in project.modules:
            violations.extend(rule.check_module(module, project))
        violations.extend(rule.check_project(project))
    violations = [v for v in violations if not _inline_suppressed(v, project)]
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations
