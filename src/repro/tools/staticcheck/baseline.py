"""Baseline (accepted-exception) handling.

A baseline is a checked-in JSON file recording violations the team has
reviewed and accepted. Matching is by *fingerprint* — ``(rule, path,
message)``, deliberately line-free so entries survive unrelated edits —
and multiset-aware: two accepted occurrences of the same fingerprint
suppress at most two live violations, so a third regression still fails.

Format (``--write-baseline`` produces it)::

    {
      "version": 1,
      "entries": [
        {"rule": "SC201", "path": "src/...", "message": "...", "count": 1}
      ]
    }
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from .engine import Violation

BASELINE_VERSION = 1

#: Default baseline filename looked up at the repo root.
DEFAULT_BASELINE_NAME = ".staticcheck-baseline.json"


class BaselineError(ValueError):
    """Raised for malformed baseline files."""


def load_baseline(path: Path) -> Counter:
    """Load a baseline file into a fingerprint multiset."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path} has unsupported version "
            f"{payload.get('version') if isinstance(payload, dict) else '?'}"
        )
    counts: Counter = Counter()
    for entry in payload.get("entries", []):
        try:
            fingerprint = (entry["rule"], entry["path"], entry["message"])
        except (TypeError, KeyError) as exc:
            raise BaselineError(f"baseline {path}: malformed entry {entry!r}") from exc
        counts[fingerprint] += int(entry.get("count", 1))
    return counts


def save_baseline(path: Path, violations: list[Violation]) -> None:
    """Write the baseline that would suppress exactly ``violations``."""
    counts = Counter(v.fingerprint for v in violations)
    entries = [
        {"rule": rule, "path": rel, "message": message, "count": count}
        for (rule, rel, message), count in sorted(counts.items())
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def apply_baseline(
    violations: list[Violation], baseline: Counter
) -> tuple[list[Violation], int]:
    """Split violations into (new, suppressed-count) against a baseline."""
    remaining = Counter(baseline)
    new: list[Violation] = []
    suppressed = 0
    for violation in violations:
        if remaining[violation.fingerprint] > 0:
            remaining[violation.fingerprint] -= 1
            suppressed += 1
        else:
            new.append(violation)
    return new, suppressed
