"""CLI: ``python -m repro.tools.staticcheck src/ tests/ benchmarks/ examples/``.

Exit codes: 0 clean, 1 violations found, 2 bad invocation/baseline.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections import Counter
from pathlib import Path
from typing import Sequence

from .baseline import (
    BaselineError,
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from .dataflow import SummaryCache
from .engine import load_project, run_checks
from .graphs import validate_presets
from .reporters import CheckReport, RunStats, render_json, render_text
from .rules import ALL_RULES, select_rules

#: Persistent dataflow-summary cache, relative to ``--root`` (gitignored).
CACHE_RELPATH = ".staticcheck-cache/summaries.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.staticcheck",
        description="AST-based invariant checker for the repro codebase.",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files/dirs to check")
    parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="emit a JSON report to stdout, or to PATH (text still on stdout)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="report per-phase timing, cache hit rate and per-rule counts",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent dataflow summary cache",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: ./{DEFAULT_BASELINE_NAME} if present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current violations into the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="RULE",
        help="run only these rules (id or name; repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=None,
        metavar="RULE",
        help="skip these rules (id or name; repeatable)",
    )
    parser.add_argument(
        "--no-graphs",
        action="store_true",
        help="skip the preset model-graph validation (SC701)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="root for relative paths in diagnostics (default: cwd)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.name:<22} {rule.description}")
        print("SC701  preset-graphs          static shape validation of config/presets.py")
        return 0

    # Reject typo'd rule tokens and missing paths up front: a --select that
    # matches nothing or a path that doesn't exist would otherwise report
    # "clean" and green a broken CI invocation.
    known_tokens = {t for rule in ALL_RULES for t in (rule.id, rule.name)}
    known_tokens.update({"SC701", "preset-graphs"})
    for token in (args.select or []) + (args.ignore or []):
        if token not in known_tokens:
            print(f"staticcheck: unknown rule {token!r}", file=sys.stderr)
            return 2
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        for p in missing:
            print(f"staticcheck: path does not exist: {p}", file=sys.stderr)
        return 2

    rules = select_rules(args.select, args.ignore)

    t0 = time.perf_counter()
    project = load_project(args.paths, root=args.root)
    parse_seconds = time.perf_counter() - t0

    cache = None
    if not args.no_cache:
        cache = SummaryCache((args.root or Path.cwd()) / CACHE_RELPATH)
        project.analysis_cache = cache
    # Force the whole-program analysis up front so its phase timings are
    # attributable (rules would otherwise trigger it lazily mid-check).
    analysis = project.analysis()

    t0 = time.perf_counter()
    violations = run_checks(project, rules)

    run_graphs = not args.no_graphs and (
        args.select is None or "SC701" in args.select or "preset-graphs" in args.select
    )
    if args.ignore and ("SC701" in args.ignore or "preset-graphs" in args.ignore):
        run_graphs = False
    graph_problems = validate_presets() if run_graphs else []
    rules_seconds = time.perf_counter() - t0

    if cache is not None:
        cache.save()

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        default = (args.root or Path.cwd()) / DEFAULT_BASELINE_NAME
        baseline_path = default if default.exists() else None
    if args.no_baseline:
        baseline_path = None

    if args.write_baseline:
        target = args.baseline or (args.root or Path.cwd()) / DEFAULT_BASELINE_NAME
        save_baseline(target, violations)
        print(f"staticcheck: wrote {len(violations)} accepted entries to {target}")
        return 0

    suppressed = 0
    if baseline_path is not None:
        try:
            baseline = load_baseline(baseline_path)
        except (BaselineError, OSError) as exc:
            print(f"staticcheck: {exc}", file=sys.stderr)
            return 2
        violations, suppressed = apply_baseline(violations, baseline)

    report = CheckReport(
        violations=violations,
        checked_files=len(project.modules) + len(project.parse_errors),
        suppressed_by_baseline=suppressed,
        graph_problems=graph_problems,
    )
    if args.stats:
        rule_counts = {rule.id: 0 for rule in rules}
        if project.parse_errors:
            rule_counts.setdefault("SC001", 0)
        if run_graphs:
            rule_counts.setdefault("SC701", 0)
        rule_counts.update(Counter(v.rule for v in violations))
        if graph_problems:
            rule_counts["SC701"] = len(graph_problems)
        report.stats = RunStats(
            files=report.checked_files,
            parse_seconds=parse_seconds,
            index_seconds=analysis.index_seconds,
            dataflow_seconds=analysis.dataflow_seconds,
            rules_seconds=rules_seconds,
            cache_hits=analysis.cache_hits,
            cache_misses=analysis.cache_misses,
            rule_counts=rule_counts,
        )

    if args.json == "-":
        print(render_json(report))
    elif args.json is not None:
        json_path = Path(args.json)
        json_path.parent.mkdir(parents=True, exist_ok=True)
        json_path.write_text(render_json(report) + "\n", encoding="utf-8")
        print(render_text(report))
    else:
        print(render_text(report))
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
