"""Project indexer: symbols, imports, and a conservative call graph.

The per-file rules of PR 1 cannot see across call boundaries — a ``_s``
value bound to a ``_ns`` parameter two modules away is invisible to them.
This module builds the whole-program facts the SC9xx rule family keys off:

* a **symbol table** of every function, method and class in the checked
  tree (:class:`FunctionInfo` / :class:`ClassInfo`), with parameter
  names, default kinds and unit suffixes;
* per-module **import bindings** (``import a.b as c`` / ``from .x import
  y``), resolved against the checked files so cross-module references
  land on the actual definition;
* :meth:`ProjectIndex.resolve_call` — a deliberately conservative
  resolver: exact matches through imports, local definitions and
  ``self.<method>`` first, then a name-based fallback that returns *all*
  same-named candidates so downstream rules can require agreement before
  flagging anything.

Everything here is derived from the ASTs the engine already parsed; no
code is imported or executed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from ._astutil import dotted_name, unit_of_name
from .engine import ModuleInfo, Project

#: Name-based fallback resolution gives up beyond this many candidates:
#: a name that common is a generic verb, not a traceable callee.
MAX_NAME_CANDIDATES = 8


@dataclass(frozen=True)
class ParamInfo:
    """One formal parameter of an indexed function."""

    name: str
    #: "none" — default is the literal ``None``; "value" — any other
    #: default; None — the parameter is required.
    default: str | None
    kwonly: bool = False

    @property
    def unit(self) -> str | None:
        return unit_of_name(self.name)


@dataclass
class FunctionInfo:
    """One function or method definition in the checked tree."""

    relpath: str
    qualname: str  # "func" or "Class.meth"
    name: str
    lineno: int
    col: int
    params: list[ParamInfo] = field(default_factory=list)
    has_vararg: bool = False
    has_kwarg: bool = False
    class_name: str | None = None

    @property
    def key(self) -> tuple[str, str]:
        return (self.relpath, self.qualname)

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    def positional(self, skip_self: bool) -> list[ParamInfo]:
        """Positionally bindable parameters, optionally minus self/cls."""
        pos = [p for p in self.params if not p.kwonly]
        if skip_self and self.is_method and pos and pos[0].name in ("self", "cls"):
            pos = pos[1:]
        return pos

    def param_named(self, name: str) -> ParamInfo | None:
        for param in self.params:
            if param.name == name:
                return param
        return None

    @property
    def none_default_params(self) -> list[str]:
        return [p.name for p in self.params if p.default == "none"]


@dataclass
class ClassInfo:
    """One class definition: its methods and its None-default fields."""

    relpath: str
    name: str
    lineno: int
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: Fields that start life as ``None`` — dataclass fields declared
    #: ``x: T | None = None`` and ``self.x = <param defaulting to None>``
    #: assignments in ``__init__``. The off-switch pattern.
    none_fields: set[str] = field(default_factory=set)
    bases: tuple[str, ...] = ()


def module_dotted_name(relpath: str) -> str:
    """Importable dotted name for a checked file.

    ``src/repro/serving/faults.py`` → ``repro.serving.faults``;
    package ``__init__.py`` files name the package itself.
    """
    parts = list(relpath.replace("\\", "/").split("/"))
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return ""
    leaf = parts[-1]
    if leaf == "__init__.py":
        parts = parts[:-1]
    elif leaf.endswith(".py"):
        parts[-1] = leaf[: -len(".py")]
    return ".".join(parts)


def _default_kind(node: ast.expr | None) -> str | None:
    if node is None:
        return None
    if isinstance(node, ast.Constant) and node.value is None:
        return "none"
    return "value"


def _params_of(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[list[ParamInfo], bool, bool]:
    args = node.args
    params: list[ParamInfo] = []
    ordered = list(args.posonlyargs) + list(args.args)
    defaults: list[ast.expr | None] = [None] * (len(ordered) - len(args.defaults))
    defaults += list(args.defaults)
    for arg, default in zip(ordered, defaults):
        params.append(ParamInfo(name=arg.arg, default=_default_kind(default)))
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        params.append(ParamInfo(name=arg.arg, default=_default_kind(default), kwonly=True))
    return params, args.vararg is not None, args.kwarg is not None


@dataclass
class ModuleBindings:
    """Import bindings of one module: local name → what it refers to."""

    #: local alias → fully qualified module name (``import a.b as c``).
    modules: dict[str, str] = field(default_factory=dict)
    #: local name → (source module fq, symbol) (``from a import b``).
    symbols: dict[str, tuple[str, str]] = field(default_factory=dict)


class ProjectIndex:
    """Symbol table + import graph over one :class:`Project`."""

    def __init__(self) -> None:
        self.functions: dict[tuple[str, str], FunctionInfo] = {}
        self.classes_by_module: dict[str, dict[str, ClassInfo]] = {}
        self.by_bare_name: dict[str, list[FunctionInfo]] = {}
        self.bindings: dict[str, ModuleBindings] = {}
        self.dotted_to_relpath: dict[str, str] = {}

    # ------------------------------------------------------------ building

    @classmethod
    def build(cls, project: Project) -> "ProjectIndex":
        index = cls()
        for module in project.modules:
            index.dotted_to_relpath.setdefault(
                module_dotted_name(module.relpath), module.relpath
            )
        for module in project.modules:
            index._index_module(module)
        return index

    def _index_module(self, module: ModuleInfo) -> None:
        relpath = module.relpath
        self.classes_by_module[relpath] = {}
        self.bindings[relpath] = self._bindings_of(module)
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(relpath, stmt, class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(relpath, stmt)

    def _add_function(
        self,
        relpath: str,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
    ) -> FunctionInfo:
        params, has_vararg, has_kwarg = _params_of(node)
        qualname = f"{class_name}.{node.name}" if class_name else node.name
        info = FunctionInfo(
            relpath=relpath,
            qualname=qualname,
            name=node.name,
            lineno=node.lineno,
            col=node.col_offset,
            params=params,
            has_vararg=has_vararg,
            has_kwarg=has_kwarg,
            class_name=class_name,
        )
        self.functions[info.key] = info
        self.by_bare_name.setdefault(node.name, []).append(info)
        return info

    def _index_class(self, relpath: str, node: ast.ClassDef) -> None:
        info = ClassInfo(
            relpath=relpath,
            name=node.name,
            lineno=node.lineno,
            bases=tuple(b for b in (dotted_name(base) for base in node.bases) if b),
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[stmt.name] = self._add_function(
                    relpath, stmt, class_name=node.name
                )
            elif (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and self._is_none_default(stmt.value)
            ):
                info.none_fields.add(stmt.target.id)
        init = info.methods.get("__init__")
        if init is not None:
            none_params = set(init.none_default_params)
            init_node = next(
                (
                    s
                    for s in node.body
                    if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and s.name == "__init__"
                ),
                None,
            )
            if init_node is not None:
                for sub in ast.walk(init_node):
                    if not isinstance(sub, ast.Assign):
                        continue
                    for target in sub.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                            and isinstance(sub.value, ast.Name)
                            and sub.value.id in none_params
                        ):
                            info.none_fields.add(target.attr)
        self.classes_by_module[relpath][node.name] = info

    @staticmethod
    def _is_none_default(value: ast.expr | None) -> bool:
        if value is None:
            return False
        if isinstance(value, ast.Constant) and value.value is None:
            return True
        # dataclasses.field(default=None)
        if isinstance(value, ast.Call):
            callee = dotted_name(value.func)
            if callee and callee.split(".")[-1] == "field":
                for kw in value.keywords:
                    if (
                        kw.arg == "default"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is None
                    ):
                        return True
        return False

    def _bindings_of(self, module: ModuleInfo) -> ModuleBindings:
        bindings = ModuleBindings()
        package = module_dotted_name(module.relpath)
        if not module.relpath.replace("\\", "/").endswith("__init__.py"):
            package = package.rpartition(".")[0]
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    bindings.modules[local] = target
            elif isinstance(node, ast.ImportFrom):
                source = self._resolve_from(node, package)
                if source is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bindings.symbols[alias.asname or alias.name] = (source, alias.name)
        return bindings

    @staticmethod
    def _resolve_from(node: ast.ImportFrom, package: str) -> str | None:
        if node.level == 0:
            return node.module
        parts = package.split(".") if package else []
        drop = node.level - 1
        if drop > len(parts):
            return None
        base = parts[: len(parts) - drop]
        if node.module:
            base.append(node.module)
        return ".".join(base) if base else None

    # ----------------------------------------------------------- resolving

    def class_in_module(self, relpath: str, name: str) -> ClassInfo | None:
        return self.classes_by_module.get(relpath, {}).get(name)

    def _function_in_dotted(self, dotted_module: str, qualname: str) -> FunctionInfo | None:
        relpath = self.dotted_to_relpath.get(dotted_module)
        if relpath is None:
            return None
        return self.functions.get((relpath, qualname))

    def _symbol_target(
        self, source: str, symbol: str, remainder: list[str]
    ) -> list[FunctionInfo]:
        """Resolve ``from source import symbol`` then ``symbol.remainder``."""
        relpath = self.dotted_to_relpath.get(source)
        if relpath is None:
            # Re-exports: `from a import b` where a is a package whose
            # __init__ re-exports b from a.b — try a.b as a module.
            return self._module_member(f"{source}.{symbol}", remainder)
        if not remainder:
            fn = self.functions.get((relpath, symbol))
            if fn is not None:
                return [fn]
            klass = self.class_in_module(relpath, symbol)
            if klass is not None:
                init = klass.methods.get("__init__")
                return [init] if init is not None else []
            # The symbol may itself be a submodule (`from repro import hw`).
            return self._module_member(f"{source}.{symbol}", remainder)
        if len(remainder) == 1:
            klass = self.class_in_module(relpath, symbol)
            if klass is not None:
                meth = klass.methods.get(remainder[0])
                return [meth] if meth is not None else []
        return self._module_member(f"{source}.{symbol}", remainder)

    def _module_member(self, dotted_module: str, remainder: list[str]) -> list[FunctionInfo]:
        """Resolve ``<module>.<remainder>`` trying ever-longer module prefixes."""
        if not remainder:
            return []
        if len(remainder) >= 1:
            fn = self._function_in_dotted(dotted_module, remainder[0])
            if fn is not None and len(remainder) == 1:
                return [fn]
            relpath = self.dotted_to_relpath.get(dotted_module)
            if relpath is not None and len(remainder) <= 2:
                klass = self.class_in_module(relpath, remainder[0])
                if klass is not None:
                    if len(remainder) == 1:
                        init = klass.methods.get("__init__")
                        return [init] if init is not None else []
                    meth = klass.methods.get(remainder[1])
                    return [meth] if meth is not None else []
        return self._module_member(
            f"{dotted_module}.{remainder[0]}", remainder[1:]
        )

    def resolve_call(
        self,
        module: ModuleInfo | str,
        dotted: str,
        class_context: str | None = None,
    ) -> tuple[list[FunctionInfo], bool]:
        """Resolve a call target to candidate definitions.

        Returns ``(candidates, exact)``. ``exact`` is True when resolution
        went through imports/local scope and the answer is authoritative;
        False for the name-based fallback, where *all* candidates sharing
        the bare name are returned and callers must require agreement.
        """
        relpath = module if isinstance(module, str) else module.relpath
        parts = dotted.split(".")
        bindings = self.bindings.get(relpath, ModuleBindings())

        # self.method() within a known class.
        if parts[0] in ("self", "cls") and class_context and len(parts) == 2:
            klass = self.class_in_module(relpath, class_context)
            if klass is not None and parts[1] in klass.methods:
                return [klass.methods[parts[1]]], True

        if parts[0] in bindings.symbols:
            source, symbol = bindings.symbols[parts[0]]
            found = self._symbol_target(source, symbol, parts[1:])
            if found:
                return found, True
        elif parts[0] in bindings.modules and len(parts) > 1:
            found = self._module_member(bindings.modules[parts[0]], parts[1:])
            if found:
                return found, True
        elif len(parts) == 1:
            fn = self.functions.get((relpath, parts[0]))
            if fn is not None:
                return [fn], True
            klass = self.class_in_module(relpath, parts[0])
            if klass is not None:
                init = klass.methods.get("__init__")
                return ([init], True) if init is not None else ([], True)

        candidates = self.by_bare_name.get(parts[-1], [])
        if 0 < len(candidates) <= MAX_NAME_CANDIDATES:
            return list(candidates), False
        return [], False

    def none_fields_for(self, relpath: str, class_name: str | None) -> set[str]:
        if class_name is None:
            return set()
        klass = self.class_in_module(relpath, class_name)
        return set(klass.none_fields) if klass is not None else set()

    def iter_functions(self) -> Iterator[FunctionInfo]:
        yield from self.functions.values()


def build_index(project: Project) -> ProjectIndex:
    """Convenience wrapper used by :meth:`Project.analysis`."""
    return ProjectIndex.build(project)
