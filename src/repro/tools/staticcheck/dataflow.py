"""Intraprocedural dataflow: per-function summaries + content-hash cache.

One forward pass per function computes everything the SC9xx rules need,
conservatively and without fixpoints:

* **None-guard domination** — every attribute/call/subscript use of a
  maybe-``None`` value (a parameter defaulting to ``None``, or a
  ``self.<field>`` whose field starts life as ``None``) is recorded with
  a ``guarded`` flag. Recognized guards: ``if x is not None`` (and the
  inverted early-return form), plain truthiness tests, ``assert``,
  ``x and x.y`` short-circuits, ``x.y if x else z`` ternaries, and
  re-assignment through a normalizer (``x = x or NULL_TRACER``,
  ``self.tracer = as_tracer(tracer)``).
* **unit-tag propagation** — a tiny unit environment follows suffixes
  (``_ns``, ``_bytes``, ...) through local assignments so call-argument
  and return units reflect reaching definitions, not just spellings.
* **RNG construction sites** and whether the function already threads an
  ``rng``/``seed`` parameter.
* **call sites** with per-argument inferred units (feeding SC901 and the
  reverse call graph for SC902).
* **wall-clock calls** (``time.time``/``perf_counter``/``datetime.now``/
  ``sleep``), import-alias aware, for SC904.

Summaries are plain data (:meth:`FunctionSummary.to_jsonable`) so a
full-tree run can cache them per file keyed by content hash
(:class:`SummaryCache`); re-analysis only happens for files whose bytes
changed, keeping warm runs fast. The analysis never executes checked
code and is written to *never raise* on any parseable input — anything
it does not understand simply widens to "unknown".
"""

from __future__ import annotations

import ast
import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from ._astutil import dotted_name, unit_of_name
from .engine import ModuleInfo, Project
from .index import ProjectIndex, build_index

SUMMARY_CACHE_VERSION = 1

#: Wall-clock entry points (canonical dotted names) banned by SC904.
WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.sleep",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Seed-fork helpers: constructing a Generator from one of these is the
#: sanctioned way to derive an independent stream (see serving.simulator).
STABLE_SEED_PREFIX = "stable_"


# ------------------------------------------------------------- summary types


@dataclass
class CallSite:
    """One call expression inside a function body."""

    callee: str
    line: int
    col: int
    arg_units: list[str | None] = field(default_factory=list)
    kw_units: dict[str, str | None] = field(default_factory=dict)
    kw_lines: dict[str, tuple[int, int]] = field(default_factory=dict)
    has_starargs: bool = False

    def to_jsonable(self) -> dict:
        return {
            "callee": self.callee,
            "line": self.line,
            "col": self.col,
            "arg_units": self.arg_units,
            "kw_units": self.kw_units,
            "kw_lines": {k: list(v) for k, v in self.kw_lines.items()},
            "has_starargs": self.has_starargs,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "CallSite":
        return cls(
            callee=data["callee"],
            line=data["line"],
            col=data["col"],
            arg_units=list(data["arg_units"]),
            kw_units=dict(data["kw_units"]),
            kw_lines={k: tuple(v) for k, v in data["kw_lines"].items()},
            has_starargs=data["has_starargs"],
        )


@dataclass
class MaybeNoneUse:
    """An attribute/call/subscript use of a maybe-None value."""

    target: str  # "faults" or "self.tracer"
    detail: str  # ".apply(...)" style description of the use
    line: int
    col: int
    guarded: bool

    def to_jsonable(self) -> dict:
        return {
            "target": self.target,
            "detail": self.detail,
            "line": self.line,
            "col": self.col,
            "guarded": self.guarded,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "MaybeNoneUse":
        return cls(**data)


@dataclass
class RngConstruction:
    """A ``np.random.default_rng(...)``/``Generator(...)`` construction."""

    line: int
    col: int
    #: "literal" — hard-coded seed; "param" — seed derived from a
    #: parameter/attribute; "helper" — stable_*-seed helper call;
    #: "unseeded" — no/None seed (SC301's domain); "expr" — anything else.
    seed_kind: str

    def to_jsonable(self) -> dict:
        return {"line": self.line, "col": self.col, "seed_kind": self.seed_kind}

    @classmethod
    def from_jsonable(cls, data: dict) -> "RngConstruction":
        return cls(**data)


@dataclass
class WallClockCall:
    line: int
    col: int
    func: str  # canonical dotted name, e.g. "time.perf_counter"

    def to_jsonable(self) -> dict:
        return {"line": self.line, "col": self.col, "func": self.func}

    @classmethod
    def from_jsonable(cls, data: dict) -> "WallClockCall":
        return cls(**data)


@dataclass
class FunctionSummary:
    """Everything one forward pass learned about one function."""

    qualname: str  # "func", "Class.meth", or "<module>"
    name: str
    lineno: int
    col: int
    class_name: str | None = None
    param_units: dict[str, str] = field(default_factory=dict)
    none_default_params: list[str] = field(default_factory=list)
    return_units: list[tuple[str, int, int]] = field(default_factory=list)
    maybe_none_uses: list[MaybeNoneUse] = field(default_factory=list)
    rng_constructions: list[RngConstruction] = field(default_factory=list)
    has_rng_param: bool = False
    holds_rng: bool = False
    calls: list[CallSite] = field(default_factory=list)
    wall_clock: list[WallClockCall] = field(default_factory=list)

    @property
    def name_unit(self) -> str | None:
        return unit_of_name(self.name)

    def to_jsonable(self) -> dict:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "lineno": self.lineno,
            "col": self.col,
            "class_name": self.class_name,
            "param_units": self.param_units,
            "none_default_params": self.none_default_params,
            "return_units": [list(r) for r in self.return_units],
            "maybe_none_uses": [u.to_jsonable() for u in self.maybe_none_uses],
            "rng_constructions": [r.to_jsonable() for r in self.rng_constructions],
            "has_rng_param": self.has_rng_param,
            "holds_rng": self.holds_rng,
            "calls": [c.to_jsonable() for c in self.calls],
            "wall_clock": [w.to_jsonable() for w in self.wall_clock],
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "FunctionSummary":
        return cls(
            qualname=data["qualname"],
            name=data["name"],
            lineno=data["lineno"],
            col=data["col"],
            class_name=data["class_name"],
            param_units=dict(data["param_units"]),
            none_default_params=list(data["none_default_params"]),
            return_units=[tuple(r) for r in data["return_units"]],
            maybe_none_uses=[MaybeNoneUse.from_jsonable(u) for u in data["maybe_none_uses"]],
            rng_constructions=[
                RngConstruction.from_jsonable(r) for r in data["rng_constructions"]
            ],
            has_rng_param=data["has_rng_param"],
            holds_rng=data["holds_rng"],
            calls=[CallSite.from_jsonable(c) for c in data["calls"]],
            wall_clock=[WallClockCall.from_jsonable(w) for w in data["wall_clock"]],
        )


@dataclass
class ModuleSummary:
    """All function summaries of one file (plus module-level code)."""

    relpath: str
    functions: list[FunctionSummary] = field(default_factory=list)

    def to_jsonable(self) -> dict:
        return {
            "relpath": self.relpath,
            "functions": [f.to_jsonable() for f in self.functions],
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "ModuleSummary":
        return cls(
            relpath=data["relpath"],
            functions=[FunctionSummary.from_jsonable(f) for f in data["functions"]],
        )


# --------------------------------------------------------- helper predicates


_RNG_PARAM_MARKERS = ("rng", "seed")


def _is_rng_param_name(name: str) -> bool:
    lowered = name.lower()
    return any(
        lowered == marker or lowered.endswith("_" + marker) or lowered.startswith(marker + "_")
        for marker in _RNG_PARAM_MARKERS
    )


def _is_default_rng_call(dotted: str) -> bool:
    parts = dotted.split(".")
    return parts[-1] == "default_rng" or (
        len(parts) >= 2 and parts[-2] == "random" and parts[-1] == "Generator"
    )


def _wall_clock_names(tree: ast.Module) -> dict[str, str]:
    """Local dotted spellings → canonical banned wall-clock names."""
    banned: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name
                if alias.name == "time":
                    for canon in WALL_CLOCK_CALLS:
                        if canon.startswith("time."):
                            banned[local + canon[len("time"):]] = canon
                elif alias.name == "datetime":
                    for canon in WALL_CLOCK_CALLS:
                        if canon.startswith("datetime."):
                            banned[local + canon[len("datetime"):]] = canon
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == "time":
                for alias in node.names:
                    canon = f"time.{alias.name}"
                    if canon in WALL_CLOCK_CALLS:
                        banned[alias.asname or alias.name] = canon
            elif node.module == "datetime":
                for alias in node.names:
                    local = alias.asname or alias.name
                    for canon in WALL_CLOCK_CALLS:
                        if canon.startswith(f"datetime.{alias.name}."):
                            suffix = canon[len(f"datetime.{alias.name}"):]
                            banned[local + suffix] = canon
    return banned


# ------------------------------------------------------------ the one pass


class _FunctionWalker:
    """Single forward pass over one function body.

    Carries two environments: the set of names currently known non-None
    (``guarded``) and a name → unit map (``units``). Nested function and
    class definitions are *not* descended into — they are analyzed as
    their own summaries, and uses of outer maybe-None names inside a
    closure run at an unknown time, so flagging them would be a false
    positive factory.
    """

    def __init__(
        self,
        summary: FunctionSummary,
        tracked: set[str],
        banned_clocks: dict[str, str],
    ) -> None:
        self.summary = summary
        self.tracked = tracked
        self.banned_clocks = banned_clocks
        self.units: dict[str, str] = dict(summary.param_units)

    # -- small expression facts

    def _tracked_key(self, node: ast.AST) -> str | None:
        if isinstance(node, ast.Name) and node.id in self.tracked:
            return node.id
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            key = f"self.{node.attr}"
            if key in self.tracked:
                return key
        return None

    def unit_of(self, node: ast.expr) -> str | None:
        """Reaching-definition-aware unit inference."""
        if isinstance(node, ast.Name):
            if node.id in self.units:
                return self.units[node.id]
            return unit_of_name(node.id)
        if isinstance(node, ast.Attribute):
            return unit_of_name(node.attr)
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
            return self.unit_of(node.left) or self.unit_of(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.unit_of(node.operand)
        if isinstance(node, ast.IfExp):
            body = self.unit_of(node.body)
            orelse = self.unit_of(node.orelse)
            return body if body == orelse else None
        if isinstance(node, ast.Call):
            func = dotted_name(node.func)
            if func is not None:
                leaf = func.split(".")[-1]
                if leaf in ("min", "max", "sum", "abs") and node.args:
                    known = {u for u in (self.unit_of(a) for a in node.args) if u}
                    if len(known) == 1:
                        return known.pop()
                    return None
                return unit_of_name(leaf)
        return None

    # -- narrowing from test expressions

    def _narrow(self, test: ast.expr) -> tuple[set[str], set[str]]:
        """(names non-None when test is true, names non-None when false)."""
        pos: set[str] = set()
        neg: set[str] = set()
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            left, op, right = test.left, test.ops[0], test.comparators[0]
            key = self._tracked_key(left) or self._tracked_key(right)
            if key is not None:
                right_is_none = isinstance(right, ast.Constant) and right.value is None
                left_is_none = isinstance(left, ast.Constant) and left.value is None
                if right_is_none or left_is_none:
                    if isinstance(op, (ast.IsNot, ast.NotEq)):
                        pos.add(key)
                    elif isinstance(op, (ast.Is, ast.Eq)):
                        neg.add(key)
        elif isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            p, n = self._narrow(test.operand)
            return n, p
        elif isinstance(test, ast.BoolOp):
            parts = [self._narrow(v) for v in test.values]
            if isinstance(test.op, ast.And):
                for p, _ in parts:
                    pos |= p
            else:  # Or: false only when every operand is false
                for _, n in parts:
                    neg |= n
        elif isinstance(test, ast.Call):
            func = dotted_name(test.func)
            if func is not None and func.split(".")[-1] in ("isinstance", "callable", "len"):
                for arg in test.args[:1]:
                    key = self._tracked_key(arg)
                    if key is not None:
                        pos.add(key)
        else:
            key = self._tracked_key(test)
            if key is not None:
                pos.add(key)  # plain truthiness: `if tracer:`
        return pos, neg

    # -- expression scanning (uses + calls + rng + clocks)

    def scan_expr(self, node: ast.expr | None, guarded: set[str]) -> None:
        if node is None:
            return
        self._scan(node, guarded)

    def _scan(self, node: ast.AST, guarded: set[str]) -> None:
        if isinstance(node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(node, ast.BoolOp):
            acc = set(guarded)
            for value in node.values:
                self._scan(value, acc)
                pos, neg = self._narrow(value)
                acc |= pos if isinstance(node.op, ast.And) else neg
            return
        if isinstance(node, ast.IfExp):
            self._scan(node.test, guarded)
            pos, neg = self._narrow(node.test)
            self._scan(node.body, guarded | pos)
            self._scan(node.orelse, guarded | neg)
            return
        if isinstance(node, ast.Call):
            self._record_call(node, guarded)
            # fall through to scan children (receiver, args)
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            key = self._tracked_key(node.value)
            if key is not None:
                detail = (
                    f".{node.attr}" if isinstance(node, ast.Attribute) else "[...]"
                )
                self.summary.maybe_none_uses.append(
                    MaybeNoneUse(
                        target=key,
                        detail=detail,
                        line=node.lineno,
                        col=node.col_offset,
                        guarded=key in guarded,
                    )
                )
        if isinstance(node, ast.Compare):
            # `x.y is not None` is a use of x, but `x is not None` is the
            # guard itself — Name operands carry no attribute access.
            pass
        for child in ast.iter_child_nodes(node):
            self._scan(child, guarded)

    def _record_call(self, node: ast.Call, guarded: set[str]) -> None:
        dotted = dotted_name(node.func)
        # Calling a maybe-None value directly: `callback()` / `self.hook()`.
        key = self._tracked_key(node.func)
        if key is not None:
            self.summary.maybe_none_uses.append(
                MaybeNoneUse(
                    target=key,
                    detail="(...)",
                    line=node.lineno,
                    col=node.col_offset,
                    guarded=key in guarded,
                )
            )
        if dotted is None:
            return
        canon = self.banned_clocks.get(dotted)
        if canon is not None:
            self.summary.wall_clock.append(
                WallClockCall(line=node.lineno, col=node.col_offset, func=canon)
            )
        if _is_default_rng_call(dotted):
            self.summary.holds_rng = True
            self.summary.rng_constructions.append(
                RngConstruction(
                    line=node.lineno,
                    col=node.col_offset,
                    seed_kind=self._seed_kind(node),
                )
            )
        site = CallSite(
            callee=dotted,
            line=node.lineno,
            col=node.col_offset,
            has_starargs=any(isinstance(a, ast.Starred) for a in node.args)
            or any(kw.arg is None for kw in node.keywords),
        )
        for arg in node.args:
            site.arg_units.append(
                None if isinstance(arg, ast.Starred) else self.unit_of(arg)
            )
        for kw in node.keywords:
            if kw.arg is None:
                continue
            site.kw_units[kw.arg] = self.unit_of(kw.value)
            site.kw_lines[kw.arg] = (
                getattr(kw.value, "lineno", node.lineno),
                getattr(kw.value, "col_offset", node.col_offset),
            )
        self.summary.calls.append(site)

    def _seed_kind(self, node: ast.Call) -> str:
        if not node.args and not node.keywords:
            return "unseeded"
        seed = node.args[0] if node.args else node.keywords[0].value
        if isinstance(seed, ast.Constant):
            return "unseeded" if seed.value is None else "literal"
        if isinstance(seed, ast.Call):
            callee = dotted_name(seed.func)
            if callee is not None:
                leaf = callee.split(".")[-1]
                if leaf.startswith(STABLE_SEED_PREFIX) or leaf.endswith("_seed"):
                    return "helper"
            return "expr"
        # Any identifier/attribute in the seed expression ties it to state
        # the caller controls (a parameter, self.seed, a module constant).
        for sub in ast.walk(seed):
            if isinstance(sub, (ast.Name, ast.Attribute)):
                return "param"
        return "expr"

    # -- statements

    def visit_block(
        self, stmts: Sequence[ast.stmt], guarded: set[str]
    ) -> tuple[set[str], bool]:
        """Returns (guarded-set on fallthrough, always-terminates)."""
        g = set(guarded)
        for stmt in stmts:
            terminated = self.visit_stmt(stmt, g)
            if terminated:
                return g, True
        return g, False

    def visit_stmt(self, stmt: ast.stmt, g: set[str]) -> bool:
        """Visit one statement, mutating ``g`` in place; True if it
        unconditionally leaves the block (return/raise/break/continue)."""
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            for dec in stmt.decorator_list:
                self.scan_expr(dec, g)
            return False
        if isinstance(stmt, ast.Return):
            self.scan_expr(stmt.value, g)
            if stmt.value is not None:
                unit = self.unit_of(stmt.value)
                if unit is not None:
                    self.summary.return_units.append(
                        (unit, stmt.lineno, stmt.col_offset)
                    )
            return True
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return True
        if isinstance(stmt, ast.Raise):
            self.scan_expr(stmt.exc, g)
            self.scan_expr(stmt.cause, g)
            return True
        if isinstance(stmt, ast.Assert):
            self.scan_expr(stmt.test, g)
            self.scan_expr(stmt.msg, g)
            pos, _ = self._narrow(stmt.test)
            g |= pos
            return False
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._visit_assign(stmt, g)
            return False
        if isinstance(stmt, ast.If):
            self.scan_expr(stmt.test, g)
            pos, neg = self._narrow(stmt.test)
            g_body, term_body = self.visit_block(stmt.body, g | pos)
            g_else, term_else = self.visit_block(stmt.orelse, g | neg)
            if term_body and term_else:
                return True
            if term_body:
                g |= g_else
            elif term_else:
                g |= g_body
            else:
                g |= g_body & g_else
            return False
        if isinstance(stmt, ast.While):
            self.scan_expr(stmt.test, g)
            pos, _ = self._narrow(stmt.test)
            self.visit_block(stmt.body, g | pos)
            self.visit_block(stmt.orelse, g)
            return False
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.scan_expr(stmt.iter, g)
            self.visit_block(stmt.body, g)
            self.visit_block(stmt.orelse, g)
            return False
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.scan_expr(item.context_expr, g)
            g_body, terminated = self.visit_block(stmt.body, g)
            g |= g_body
            return terminated
        if isinstance(stmt, ast.Try):
            self.visit_block(stmt.body, g)
            for handler in stmt.handlers:
                self.visit_block(handler.body, g)
            self.visit_block(stmt.orelse, g)
            g_final, terminated = self.visit_block(stmt.finalbody, g)
            g |= g_final
            return terminated
        if isinstance(stmt, ast.Match):
            self.scan_expr(stmt.subject, g)
            for case in stmt.cases:
                self.scan_expr(case.guard, g)
                self.visit_block(case.body, g)
            return False
        if isinstance(stmt, ast.Expr):
            self.scan_expr(stmt.value, g)
            return False
        # Delete, Import, Global, Nonlocal, Pass, ...
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self.scan_expr(child, g)
        return False

    def _visit_assign(
        self, stmt: ast.Assign | ast.AnnAssign | ast.AugAssign, g: set[str]
    ) -> None:
        value = stmt.value
        targets: list[ast.expr]
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        else:
            targets = [stmt.target]
        # The RHS may use maybe-None names; narrow ternary/boolop forms.
        self.scan_expr(value, g)
        if isinstance(stmt, ast.AugAssign):
            return
        if value is None:
            return
        value_unit = self.unit_of(value)
        for target in targets:
            if isinstance(target, ast.Tuple):
                continue  # tuple unpacking: give up on units and guards
            if isinstance(target, ast.Name):
                if value_unit is not None:
                    self.units[target.id] = value_unit
                else:
                    self.units.pop(target.id, None)
            key = None
            if isinstance(target, ast.Name) and target.id in self.tracked:
                key = target.id
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and f"self.{target.attr}" in self.tracked
            ):
                key = f"self.{target.attr}"
            if key is None:
                continue
            if self._still_maybe_none(value, key):
                g.discard(key)
            else:
                g.add(key)

    def _still_maybe_none(self, value: ast.expr, key: str) -> bool:
        """True if assigning ``value`` leaves ``key`` possibly None."""
        if isinstance(value, ast.Constant):
            return value.value is None
        value_key = self._tracked_key(value)
        if value_key is not None:
            # Aliasing another maybe-None (including `x = x`).
            return True
        if isinstance(value, ast.IfExp):
            return self._still_maybe_none(value.body, key) or self._still_maybe_none(
                value.orelse, key
            )
        if isinstance(value, ast.BoolOp) and isinstance(value.op, ast.Or):
            # `x or DEFAULT` is None only if the last operand can be.
            return self._still_maybe_none(value.values[-1], key)
        if isinstance(value, (ast.Name, ast.Attribute)):
            # Unknown other name: could be anything — stay conservative
            # only for plain None-y constructs; a fresh name is assumed
            # meaningful (matches `x = x or NULL_TRACER` and factory
            # assignments without drowning real guards in noise).
            return False
        return False


# --------------------------------------------------------------- module pass


def analyze_module(module: ModuleInfo, index: ProjectIndex) -> ModuleSummary:
    """Summarize every function in one parsed file (plus module level)."""
    summary = ModuleSummary(relpath=module.relpath)
    banned_clocks = _wall_clock_names(module.tree)

    def walk_body(
        body: Sequence[ast.stmt], class_name: str | None
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                summary.functions.append(
                    _analyze_function(stmt, module, index, class_name, banned_clocks)
                )
                # Nested defs get their own (flat) summaries.
                walk_body(stmt.body, class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                walk_body(stmt.body, class_name=stmt.name if class_name is None else None)

    walk_body(module.tree.body, class_name=None)

    # Module-level statements (import-time code) as a pseudo-function.
    top = FunctionSummary(qualname="<module>", name="<module>", lineno=1, col=0)
    top_level = [
        stmt
        for stmt in module.tree.body
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
    ]
    walker = _FunctionWalker(top, tracked=set(), banned_clocks=banned_clocks)
    walker.visit_block(top_level, set())
    summary.functions.append(top)
    return summary


def _analyze_function(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    module: ModuleInfo,
    index: ProjectIndex,
    class_name: str | None,
    banned_clocks: dict[str, str],
) -> FunctionSummary:
    qualname = f"{class_name}.{node.name}" if class_name else node.name
    info = index.functions.get((module.relpath, qualname))
    summary = FunctionSummary(
        qualname=qualname,
        name=node.name,
        lineno=node.lineno,
        col=node.col_offset,
        class_name=class_name,
    )
    tracked: set[str] = set()
    if info is not None:
        for param in info.params:
            unit = param.unit
            if unit is not None:
                summary.param_units[param.name] = unit
            if param.default == "none":
                summary.none_default_params.append(param.name)
                tracked.add(param.name)
            if _is_rng_param_name(param.name):
                summary.has_rng_param = True
                summary.holds_rng = True
        for none_field in index.none_fields_for(module.relpath, class_name):
            tracked.add(f"self.{none_field}")
    else:
        # Nested function: derive params straight from the AST node.
        args = list(node.args.posonlyargs) + list(node.args.args) + list(node.args.kwonlyargs)
        for arg in args:
            unit = unit_of_name(arg.arg)
            if unit is not None:
                summary.param_units[arg.arg] = unit
            if _is_rng_param_name(arg.arg):
                summary.has_rng_param = True
                summary.holds_rng = True
        defaults = node.args.defaults
        positional = list(node.args.posonlyargs) + list(node.args.args)
        for arg, default in zip(positional[len(positional) - len(defaults):], defaults):
            if isinstance(default, ast.Constant) and default.value is None:
                summary.none_default_params.append(arg.arg)
                tracked.add(arg.arg)
        for arg, default in zip(node.args.kwonlyargs, node.args.kw_defaults):
            if isinstance(default, ast.Constant) and default.value is None:
                summary.none_default_params.append(arg.arg)
                tracked.add(arg.arg)

    walker = _FunctionWalker(summary, tracked=tracked, banned_clocks=banned_clocks)
    walker.visit_block(node.body, set())
    return summary


# -------------------------------------------------------------------- cache


class SummaryCache:
    """Per-file summary cache keyed by content hash.

    The on-disk format is one JSON document mapping relpath → {sha256,
    summary}. Any load/save failure degrades to an empty cache — the
    cache can make runs faster, never wrong, and never fatal.
    """

    def __init__(self, path: Path | None = None) -> None:
        self.path = path
        self.entries: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        if path is not None:
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                if (
                    isinstance(payload, dict)
                    and payload.get("version") == SUMMARY_CACHE_VERSION
                ):
                    self.entries = dict(payload.get("modules", {}))
            except (OSError, ValueError):
                self.entries = {}

    @staticmethod
    def content_hash(module: ModuleInfo) -> str:
        text = "\n".join(module.source_lines)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def lookup(self, module: ModuleInfo) -> ModuleSummary | None:
        entry = self.entries.get(module.relpath)
        if entry is None or entry.get("sha256") != self.content_hash(module):
            self.misses += 1
            return None
        try:
            summary = ModuleSummary.from_jsonable(entry["summary"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def store(self, module: ModuleInfo, summary: ModuleSummary) -> None:
        self.entries[module.relpath] = {
            "sha256": self.content_hash(module),
            "summary": summary.to_jsonable(),
        }

    def save(self) -> None:
        if self.path is None:
            return
        payload = {"version": SUMMARY_CACHE_VERSION, "modules": self.entries}
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(json.dumps(payload) + "\n", encoding="utf-8")
        except OSError:
            pass

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


# ------------------------------------------------------------ whole program


@dataclass
class WholeProgramAnalysis:
    """Index + summaries + reverse call graph for one checker run."""

    index: ProjectIndex
    summaries: dict[str, ModuleSummary]
    index_seconds: float = 0.0
    dataflow_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    _callers: dict[tuple[str, str], list[tuple[str, FunctionSummary]]] | None = None

    def iter_summaries(self) -> Iterator[tuple[str, FunctionSummary]]:
        for relpath in sorted(self.summaries):
            for fn in self.summaries[relpath].functions:
                yield relpath, fn

    def callers_of(self, relpath: str, qualname: str) -> list[tuple[str, FunctionSummary]]:
        """Functions whose resolved call sites reach (relpath, qualname)."""
        if self._callers is None:
            callers: dict[tuple[str, str], list[tuple[str, FunctionSummary]]] = {}
            for caller_relpath, fn in self.iter_summaries():
                class_ctx = fn.class_name
                seen: set[tuple[str, str]] = set()
                for site in fn.calls:
                    candidates, _ = self.index.resolve_call(
                        caller_relpath, site.callee, class_context=class_ctx
                    )
                    for target in candidates:
                        if target.key in seen:
                            continue
                        seen.add(target.key)
                        callers.setdefault(target.key, []).append((caller_relpath, fn))
            self._callers = callers
        return self._callers.get((relpath, qualname), [])


def analyze_project(
    project: Project, cache: SummaryCache | None = None
) -> WholeProgramAnalysis:
    """Build the whole-program analysis every SC9xx rule shares."""
    t0 = time.perf_counter()
    index = build_index(project)
    t1 = time.perf_counter()
    summaries: dict[str, ModuleSummary] = {}
    for module in project.modules:
        cached = cache.lookup(module) if cache is not None else None
        if cached is not None:
            summaries[module.relpath] = cached
            continue
        summary = analyze_module(module, index)
        summaries[module.relpath] = summary
        if cache is not None:
            cache.store(module, summary)
    t2 = time.perf_counter()
    return WholeProgramAnalysis(
        index=index,
        summaries=summaries,
        index_seconds=t1 - t0,
        dataflow_seconds=t2 - t1,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
    )
