"""SC002 rule-docs-drift: the rule catalogue and its docs must agree.

``docs/STATIC_ANALYSIS.md`` is the contract developers read before
touching a rule; a rule that ships without a ``### SCxxx`` section is
undiscoverable, and a documented rule that no longer exists teaches
people to suppress ids that do nothing. This meta-rule fails lint when
the registry (:data:`..rules.ALL_RULES`, plus the engine-level SC001 and
the graph validator SC701) and the catalogue drift in either direction.

When the checked tree has no ``docs/STATIC_ANALYSIS.md`` under the
project root (snippet fixtures, vendored subtrees), the rule stays
silent — drift detection only means something in the repo that owns the
docs.
"""

from __future__ import annotations

import re
from typing import Iterator

from ..engine import Project, Rule, Violation

DOCS_RELPATH = "docs/STATIC_ANALYSIS.md"

#: Ids documented and enforced outside the pluggable registry.
BUILTIN_IDS = {"SC001", "SC701"}

_SECTION_RE = re.compile(r"^###\s+(SC\d{3})\b", re.MULTILINE)


class RuleDocsDriftRule(Rule):
    id = "SC002"
    name = "rule-docs-drift"
    description = (
        "every registered SCxxx rule needs a matching '### SCxxx' section "
        "in docs/STATIC_ANALYSIS.md, and vice versa"
    )

    def check_project(self, project: Project) -> Iterator[Violation]:
        docs_path = project.root / DOCS_RELPATH
        try:
            text = docs_path.read_text(encoding="utf-8")
        except OSError:
            return  # tree without docs: nothing to drift against

        from . import ALL_RULES  # late import: the registry imports rules

        registered = {rule.id for rule in ALL_RULES} | BUILTIN_IDS | {self.id}
        documented: dict[str, int] = {}
        for match in _SECTION_RE.finditer(text):
            documented.setdefault(
                match.group(1), text.count("\n", 0, match.start()) + 1
            )

        for rule_id in sorted(registered - set(documented)):
            yield Violation(
                rule=self.id,
                name=self.name,
                path=DOCS_RELPATH,
                line=0,
                col=0,
                message=(
                    f"registered rule {rule_id} has no '### {rule_id}' section "
                    f"in {DOCS_RELPATH}; document it"
                ),
            )
        for rule_id, line in sorted(documented.items()):
            if rule_id not in registered:
                yield Violation(
                    rule=self.id,
                    name=self.name,
                    path=DOCS_RELPATH,
                    line=line,
                    col=0,
                    message=(
                        f"documented rule {rule_id} is not registered in the "
                        "checker; delete the section or restore the rule"
                    ),
                )
