"""Rule registry. Every rule the checker knows about is listed here."""

from __future__ import annotations

from ..engine import Rule
from .config_reachability import ConfigReachabilityRule
from .cost_contract import CostContractRule
from .determinism import DeterminismRule
from .dtype_discipline import DtypeDisciplineRule
from .experiment_registry import ExperimentRegistryRule
from .obs_naming import ObsNamingRule
from .off_switch import OffSwitchPurityRule
from .rng_plumbing import RngPlumbingRule
from .rule_docs import RuleDocsDriftRule
from .units import UnitSuffixRule
from .unit_flow import UnitFlowRule
from .wall_clock import WallClockRule

ALL_RULES: tuple[Rule, ...] = (
    RuleDocsDriftRule(),
    CostContractRule(),
    UnitSuffixRule(),
    DeterminismRule(),
    DtypeDisciplineRule(),
    ConfigReachabilityRule(),
    ExperimentRegistryRule(),
    ObsNamingRule(),
    UnitFlowRule(),
    RngPlumbingRule(),
    OffSwitchPurityRule(),
    WallClockRule(),
)


def select_rules(
    select: list[str] | None = None, ignore: list[str] | None = None
) -> list[Rule]:
    """Filter :data:`ALL_RULES` by rule id or name."""
    rules = list(ALL_RULES)
    if select:
        wanted = set(select)
        rules = [r for r in rules if r.id in wanted or r.name in wanted]
    if ignore:
        dropped = set(ignore)
        rules = [r for r in rules if r.id not in dropped and r.name not in dropped]
    return rules


__all__ = ["ALL_RULES", "select_rules"]
