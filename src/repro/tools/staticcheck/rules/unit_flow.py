"""SC901 unit-flow: unit suffixes must survive call boundaries.

SC201 catches ``a_ns + b_s`` inside one expression; it cannot see a
``_s`` value handed to a ``_ns`` parameter two modules away — the single
most dangerous unit bug in a timing simulator, because the call type
checks, runs, and silently corrupts every downstream latency by 1e9.
Three interprocedural checks, all built on the dataflow summaries and
the project index:

1. **keyword binding** — ``f(timeout_ns=budget_s)``: the keyword name
   itself declares the parameter's unit; a differing argument unit is
   flagged with no call-graph resolution needed.
2. **positional binding** — a unit-suffixed argument bound to a resolved
   callee parameter carrying a different suffix. Resolution must be
   exact (import/local/self) or *unanimous* among same-named candidates;
   any disagreement or unknown unit stays silent.
3. **return units** — a function whose own name carries a unit suffix
   (``queueing_delay_ns``) returning a value inferred to a different
   unit is lying about its contract.

Multiplication/division remain exempt everywhere — they *are* the
conversions — and rates (``_per_``) carry no unit, exactly as in SC201.
"""

from __future__ import annotations

from typing import Iterator

from ..dataflow import CallSite, FunctionSummary
from ..engine import ModuleInfo, Project, Rule, Violation
from .._astutil import unit_of_name


class UnitFlowRule(Rule):
    id = "SC901"
    name = "unit-flow"
    description = (
        "unit suffixes must agree across call boundaries: argument-to-"
        "parameter bindings and declared return units are checked "
        "interprocedurally"
    )

    def check_project(self, project: Project) -> Iterator[Violation]:
        analysis = project.analysis()
        modules = {m.relpath: m for m in project.modules}
        for relpath, fn in analysis.iter_summaries():
            module = modules.get(relpath)
            if module is None or module.is_test:
                continue
            yield from self._check_returns(relpath, fn)
            for site in fn.calls:
                yield from self._check_keywords(relpath, site)
                yield from self._check_positional(project, relpath, fn, site)

    # ----------------------------------------------------------- checks

    def _check_returns(self, relpath: str, fn: FunctionSummary) -> Iterator[Violation]:
        declared = fn.name_unit
        if declared is None:
            return
        for unit, line, col in fn.return_units:
            if unit != declared:
                yield Violation(
                    rule=self.id,
                    name=self.name,
                    path=relpath,
                    line=line,
                    col=col,
                    message=(
                        f"{fn.qualname}() declares unit '_{declared}' in its name "
                        f"but returns a value inferred to '_{unit}'; convert before "
                        "returning or rename the function"
                    ),
                )

    def _check_keywords(self, relpath: str, site: CallSite) -> Iterator[Violation]:
        for kw_name, arg_unit in site.kw_units.items():
            if arg_unit is None:
                continue
            kw_unit = unit_of_name(kw_name)
            if kw_unit is not None and kw_unit != arg_unit:
                line, col = site.kw_lines.get(kw_name, (site.line, site.col))
                yield Violation(
                    rule=self.id,
                    name=self.name,
                    path=relpath,
                    line=line,
                    col=col,
                    message=(
                        f"call to {site.callee}() binds a '_{arg_unit}' value to "
                        f"keyword {kw_name!r} ('_{kw_unit}'); convert explicitly"
                    ),
                )

    def _check_positional(
        self, project: Project, relpath: str, fn: FunctionSummary, site: CallSite
    ) -> Iterator[Violation]:
        if site.has_starargs or not any(u is not None for u in site.arg_units):
            return
        analysis = project.analysis()
        candidates, exact = analysis.index.resolve_call(
            relpath, site.callee, class_context=fn.class_name
        )
        if not candidates:
            return
        # Was the receiver an instance (`obj.meth(...)`, `self.meth(...)`)
        # or a constructor (`Class(...)`)? Either way the bound `self`
        # slot is consumed before user arguments.
        attribute_call = "." in site.callee
        for position, arg_unit in enumerate(site.arg_units):
            if arg_unit is None:
                continue
            param_units = set()
            usable = True
            for target in candidates:
                skip_self = target.is_method and (
                    attribute_call or target.qualname.endswith(".__init__")
                )
                positional = target.positional(skip_self=skip_self)
                if position >= len(positional):
                    usable = target.has_vararg and exact
                    if not usable:
                        break
                    continue
                param_units.add((positional[position].name, positional[position].unit))
            if not usable or len(param_units) != 1:
                continue  # ambiguous across candidates — stay silent
            param_name, param_unit = param_units.pop()
            if param_unit is not None and param_unit != arg_unit:
                yield Violation(
                    rule=self.id,
                    name=self.name,
                    path=relpath,
                    line=site.line,
                    col=site.col,
                    message=(
                        f"call to {site.callee}() binds a '_{arg_unit}' value to "
                        f"parameter {param_name!r} ('_{param_unit}'); convert "
                        "explicitly"
                    ),
                )
