"""SC903 off-switch-purity: maybe-None off-switches need a dominating guard.

The ROADMAP's standing guardrail is that every optional subsystem —
``faults=None``, ``overload=None``, ``tracer=None``, ``metrics=None``,
``profiler=None`` — leaves runs bit-identical to baselines when off.
The failure mode is not a wrong number but a crash on the *off* path: an
unguarded ``self.tracer.begin(...)`` works in every traced test and
raises ``AttributeError`` the first time someone runs the default
configuration. Goldens cannot catch it, because the golden run usually
is the configuration that crashes.

The dataflow layer records every attribute access, call or subscript on

* a parameter whose default is ``None``, and
* a ``self.<field>`` whose field starts life as ``None`` (dataclass
  ``x: T | None = None`` or ``self.x = <param defaulting to None>``),

together with whether a None-guard dominates it. Recognized guards:
``if x is not None:`` (and the ``if x is None: return`` early-exit
form), plain truthiness, ``assert x is not None``, ``x and x.use()``
short-circuits, ``x.use() if x else ...`` ternaries, and re-assignment
through a normalizer (``x = x or NULL_TRACER``, ``self.tracer =
as_tracer(tracer)``). Anything not dominated is flagged. Test modules
are exempt — fixtures pass stand-ins that are never None.
"""

from __future__ import annotations

from typing import Iterator

from ..engine import ModuleInfo, Project, Rule, Violation


class OffSwitchPurityRule(Rule):
    id = "SC903"
    name = "off-switch-purity"
    description = (
        "attribute/call use of a None-default parameter or field must be "
        "dominated by a None-guard (if x is not None / x = x or NULL_...)"
    )

    def check_project(self, project: Project) -> Iterator[Violation]:
        analysis = project.analysis()
        modules = {m.relpath: m for m in project.modules}
        for relpath, fn in analysis.iter_summaries():
            module = modules.get(relpath)
            if module is None or module.is_test:
                continue
            for use in fn.maybe_none_uses:
                if use.guarded:
                    continue
                origin = (
                    "field" if use.target.startswith("self.") else "parameter"
                )
                bare = use.target.split(".")[-1]
                yield Violation(
                    rule=self.id,
                    name=self.name,
                    path=relpath,
                    line=use.line,
                    col=use.col,
                    message=(
                        f"{fn.qualname}() uses {use.target}{use.detail} but "
                        f"{origin} {bare!r} defaults to None and no None-guard "
                        "dominates this use; guard it (if x is not None / early "
                        "return) or normalize once (x = x or NULL_...)"
                    ),
                )
