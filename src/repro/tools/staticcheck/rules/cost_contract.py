"""SC101 cost-contract: every concrete Operator reports batch-aware costs.

Two checks:

1. A concrete :class:`Operator` subclass (one that implements ``forward``)
   must implement ``cost`` somewhere in its project-visible ancestry —
   otherwise its FLOPs/bytes silently fall back to nothing and every
   fleet-level figure built on them is wrong.

2. Inside any ``cost`` method of an Operator subclass, the ``flops`` and
   ``bytes_written`` terms handed to ``OperatorCost`` must carry the batch
   dimension: a multiplicative shape chain (``lookups * dim * 4``) whose
   factors never trace back to the batch parameter has dropped the batch
   term — the classic silent per-sample/per-batch confusion. The check
   follows simple local assignments (``lookups = batch_size * k``)
   transitively, so idiomatic cost bodies pass. ``bytes_read`` is exempt:
   parameter streaming legitimately contributes a batch-independent term.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .._astutil import contains_mult, call_keyword, decorator_names, names_in
from ..engine import ModuleInfo, Project, Rule, Violation

#: Root of the operator hierarchy; classes reaching it by name are checked.
OPERATOR_BASE = "Operator"

#: Cost terms that must scale with batch (bytes_read is legitimately mixed).
BATCH_SCALED_TERMS = ("flops", "bytes_written")

#: Positional layout of OperatorCost(flops, bytes_read, bytes_written).
_POSITIONAL_TERMS = {0: "flops", 2: "bytes_written"}


class _ClassRecord:
    def __init__(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        self.module = module
        self.node = node
        self.bases = [b for b in (_base_name(base) for base in node.bases) if b]
        self.methods: dict[str, ast.FunctionDef] = {}
        self.abstract_methods: set[str] = set()
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods[item.name] = item
                if "abstractmethod" in decorator_names(item):
                    self.abstract_methods.add(item.name)


def _base_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _reaches_operator(name: str, classes: dict[str, _ClassRecord], seen: set[str]) -> bool:
    if name == OPERATOR_BASE:
        return True
    if name in seen or name not in classes:
        return False
    seen.add(name)
    return any(_reaches_operator(base, classes, seen) for base in classes[name].bases)


def _defines_concretely(
    name: str, method: str, classes: dict[str, _ClassRecord]
) -> bool:
    """True if class ``name`` or a project ancestor (below Operator) defines
    ``method`` without an ``abstractmethod`` decorator."""
    if name == OPERATOR_BASE or name not in classes:
        return False
    record = classes[name]
    if method in record.methods:
        return method not in record.abstract_methods
    return any(_defines_concretely(base, method, classes) for base in record.bases)


class CostContractRule(Rule):
    id = "SC101"
    name = "cost-contract"
    description = (
        "concrete Operator subclasses must implement cost(); flops/bytes_written "
        "shape products inside cost() must carry the batch term"
    )

    def check_project(self, project: Project) -> Iterator[Violation]:
        # The cost contract binds library code; tests may define deliberately
        # minimal fake operators (zero-cost stubs, fixed-cost probes).
        classes: dict[str, _ClassRecord] = {}
        for module in project.modules:
            if module.is_test:
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef) and node.name not in classes:
                    classes[node.name] = _ClassRecord(module, node)

        for name, record in classes.items():
            if name == OPERATOR_BASE:
                continue
            if not _reaches_operator(name, classes, set()):
                continue
            is_concrete = _defines_concretely(name, "forward", classes)
            if is_concrete and not _defines_concretely(name, "cost", classes):
                yield self.violation(
                    record.module,
                    record.node,
                    f"concrete Operator subclass {name!r} implements forward() "
                    "but never implements cost(); its FLOPs/bytes are unaccounted",
                )
            cost = record.methods.get("cost")
            if cost is not None and "abstractmethod" not in decorator_names(cost):
                yield from self._check_cost_body(record, cost)

    # ------------------------------------------------------------- cost body

    def _check_cost_body(
        self, record: _ClassRecord, cost: ast.FunctionDef
    ) -> Iterator[Violation]:
        params = [a.arg for a in cost.args.args if a.arg != "self"]
        if not params:
            yield self.violation(
                record.module,
                cost,
                f"{record.node.name}.cost() takes no batch-size parameter",
            )
            return
        batch = params[0]

        # Local data flow: name -> names referenced by its assigned value.
        bindings: dict[str, set[str]] = {}
        binding_exprs: dict[str, ast.expr] = {}
        for node in ast.walk(cost):
            if isinstance(node, ast.Assign) and node.targets:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    bindings[target.id] = names_in(node.value)
                    binding_exprs[target.id] = node.value

        def reaches_batch(expr: ast.expr) -> bool:
            frontier = names_in(expr)
            seen: set[str] = set()
            while frontier:
                if batch in frontier:
                    return True
                seen |= frontier
                frontier = {
                    dep
                    for name in frontier
                    if name in bindings
                    for dep in bindings[name]
                } - seen
            return False

        def is_product(expr: ast.expr) -> bool:
            if contains_mult(expr):
                return True
            return any(
                name in binding_exprs and contains_mult(binding_exprs[name])
                for name in names_in(expr)
            )

        body_names = names_in(cost)
        if batch not in body_names:
            yield self.violation(
                record.module,
                cost,
                f"{record.node.name}.cost() never uses its batch parameter "
                f"{batch!r}; the reported cost cannot scale with batch size",
            )
            return

        for node in ast.walk(cost):
            if not (isinstance(node, ast.Call) and _is_operator_cost(node.func)):
                continue
            terms: list[tuple[str, ast.expr]] = []
            for position, term in _POSITIONAL_TERMS.items():
                if len(node.args) > position:
                    terms.append((term, node.args[position]))
            for term in BATCH_SCALED_TERMS:
                value = call_keyword(node, term)
                if value is not None:
                    terms.append((term, value))
            for term, expr in terms:
                if is_product(expr) and not reaches_batch(expr):
                    yield self.violation(
                        record.module,
                        expr,
                        f"{record.node.name}.cost(): {term} is a shape product "
                        f"with no {batch!r} factor — batch term dropped?",
                    )


def _is_operator_cost(func: ast.expr) -> bool:
    if isinstance(func, ast.Name):
        return func.id == "OperatorCost"
    if isinstance(func, ast.Attribute):
        return func.attr == "OperatorCost"
    return False
