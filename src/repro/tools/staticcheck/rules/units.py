"""SC201 unit-suffix discipline for time and size quantities.

The hw/timing and serving layers are full of latency and capacity math;
the convention (docs/STATIC_ANALYSIS.md) is that any scalar holding a
duration or a byte count carries an explicit unit suffix — ``_ns``,
``_us``, ``_ms``, ``_s``, ``_bytes``, ``_kb``, ``_mb``, ``_gb``, ... Two
checks enforce it:

1. **mixing** — ``a_ns + b_s`` (or ``-``, or a comparison) between operands
   whose inferred units differ is almost certainly a missing conversion.
   Multiplication/division are exempt: they *are* the conversions.
2. **bare names** — an assignment or numeric annotation whose target is a
   bare time/size stem (``latency``, ``duration``, ``timeout``, ...) and
   whose value is visibly numeric must say which unit it holds.

Unit inference is deliberately conservative: names containing ``_per_``
are rates, constants and calls are wildcards, and only two *known,
different* units on either side of ``+``/``-`` fire the rule.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .._astutil import SIZE_UNITS, TIME_UNITS, UNIT_SUFFIXES, unit_of_name
from ..engine import ModuleInfo, Project, Rule, Violation

#: Names that clearly hold a duration but don't say in which unit. Size
#: stems like ``size`` are NOT listed: ``batch_size``/``kernel_size`` are
#: element counts, not byte quantities — only the mixing check covers sizes.
BARE_STEMS = {"latency", "elapsed", "duration", "delay", "timeout"}

_NUMERIC_ANNOTATIONS = {"int", "float"}


_unit_of_name = unit_of_name


def _target_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _unit_of_expr(node: ast.expr) -> str | None:
    """Infer the unit of an expression; ``None`` means unknown/wildcard."""
    name = _target_name(node)
    if name is not None:
        return _unit_of_name(name)
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        left = _unit_of_expr(node.left)
        right = _unit_of_expr(node.right)
        return left or right
    if isinstance(node, ast.Call):
        func = _target_name(node.func)
        if func in ("min", "max", "sum", "abs") and node.args:
            units = [_unit_of_expr(a) for a in node.args]
            known = [u for u in units if u]
            if len(set(known)) == 1:
                return known[0]
    return None


def _is_numeric_value(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return not isinstance(node.value, bool)
    if isinstance(node, ast.BinOp):
        return True
    name = _target_name(node)
    if name is not None:
        return _unit_of_name(name) is not None
    return False


class UnitSuffixRule(Rule):
    id = "SC201"
    name = "unit-suffix"
    description = (
        "time/size scalars must carry unit suffixes (_ns/_us/_ms/_s/_bytes/...); "
        "adding or comparing values with different unit suffixes is flagged"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
                yield from self._check_pair(module, node, node.left, node.right, "mixes")
            elif isinstance(node, ast.Compare) and len(node.comparators) == 1:
                yield from self._check_pair(
                    module, node, node.left, node.comparators[0], "compares"
                )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    yield from self._check_bare(module, target, node.value)
            elif isinstance(node, ast.AnnAssign):
                yield from self._check_annotated(module, node.target, node.annotation)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for arg in node.args.args + node.args.kwonlyargs:
                    if arg.annotation is not None:
                        yield from self._check_annotated(module, arg, arg.annotation)

    def _check_pair(
        self,
        module: ModuleInfo,
        node: ast.AST,
        left: ast.expr,
        right: ast.expr,
        verb: str,
    ) -> Iterator[Violation]:
        left_unit = _unit_of_expr(left)
        right_unit = _unit_of_expr(right)
        if left_unit and right_unit and left_unit != right_unit:
            yield self.violation(
                module,
                node,
                f"arithmetic {verb} units '_{left_unit}' and '_{right_unit}' "
                "without an explicit conversion",
            )

    def _check_bare(
        self, module: ModuleInfo, target: ast.expr, value: ast.expr
    ) -> Iterator[Violation]:
        name = _target_name(target)
        if name is None:
            return
        stem = name.lower().rsplit("_", 1)[-1] if "_" in name else name.lower()
        if stem in BARE_STEMS and _is_numeric_value(value):
            yield self.violation(
                module,
                target,
                f"{name!r} holds a numeric time/size but has no unit suffix "
                "(_ns/_us/_ms/_s/_bytes/...)",
            )

    def _check_annotated(
        self, module: ModuleInfo, target: ast.AST, annotation: ast.expr
    ) -> Iterator[Violation]:
        ann = _target_name(annotation)
        if ann not in _NUMERIC_ANNOTATIONS:
            return
        if isinstance(target, ast.arg):
            name: str | None = target.arg
        else:
            name = _target_name(target)  # type: ignore[arg-type]
        if name is None:
            return
        stem = name.lower().rsplit("_", 1)[-1] if "_" in name else name.lower()
        if stem in BARE_STEMS:
            yield self.violation(
                module,
                target,
                f"{name!r} is a numeric time/size but has no unit suffix "
                "(_ns/_us/_ms/_s/_bytes/...)",
            )
