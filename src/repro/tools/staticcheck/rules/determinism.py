"""SC301 determinism: no unseeded or global-state randomness outside tests.

Every simulator figure must be reproducible run-to-run; randomness is only
allowed through an explicitly seeded ``np.random.Generator``. Flagged:

* legacy global-state numpy randomness — any ``np.random.<fn>()`` call
  except ``default_rng``/``Generator``/bit-generator constructors;
* the stdlib ``random`` module (both ``random.<fn>()`` and names imported
  via ``from random import ...``);
* ``np.random.default_rng()`` with no seed (or an explicit ``None`` seed):
  entropy from the OS makes the run unrepeatable.

Test files are exempt — tests may legitimately fuzz.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .._astutil import dotted_name, is_constant_none
from ..engine import ModuleInfo, Project, Rule, Violation

#: np.random attributes that are fine to call (seeded/explicit-state APIs).
ALLOWED_NP_RANDOM = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}


class DeterminismRule(Rule):
    id = "SC301"
    name = "determinism"
    description = (
        "forbid global-state randomness (np.random.<fn>, random.<fn>) and "
        "unseeded default_rng() outside tests"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator[Violation]:
        if module.is_test:
            return
        random_imports = self._stdlib_random_names(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            yield from self._check_call(module, node, dotted, random_imports)

    def _stdlib_random_names(self, tree: ast.Module) -> set[str]:
        """Names bound in this module that refer to the stdlib random module."""
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        names.add(alias.asname or "random")
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    names.add(alias.asname or alias.name)
        return names

    def _check_call(
        self,
        module: ModuleInfo,
        node: ast.Call,
        dotted: str,
        random_imports: set[str],
    ) -> Iterator[Violation]:
        parts = dotted.split(".")
        # np.random.<fn> / numpy.random.<fn>
        if len(parts) >= 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
            fn = parts[2]
            if fn not in ALLOWED_NP_RANDOM:
                yield self.violation(
                    module,
                    node,
                    f"np.random.{fn}() uses numpy's global RNG state; "
                    "thread an explicitly seeded np.random.Generator instead",
                )
                return
        # stdlib random
        root = parts[0]
        if root in random_imports and (len(parts) > 1 or root != "random"):
            # `random.x()` when `import random`, or a bare name imported
            # via `from random import x`.
            yield self.violation(
                module,
                node,
                f"stdlib random call {dotted}() is process-global and unseeded "
                "per-site; use a seeded np.random.Generator",
            )
            return
        # default_rng with no/None seed
        if parts[-1] == "default_rng":
            if not node.args and not node.keywords:
                yield self.violation(
                    module,
                    node,
                    "default_rng() without a seed draws OS entropy — results "
                    "are not reproducible; pass an explicit seed",
                )
            elif node.args and is_constant_none(node.args[0]):
                yield self.violation(
                    module,
                    node,
                    "default_rng(None) is unseeded; pass an explicit integer seed",
                )
