"""SC801 obs-naming: span/metric names and span lifecycle discipline.

The observability layer (:mod:`repro.obs`) identifies every span, instant
and metric series by a dotted ``layer.component.event`` name (at least
three lowercase segments — e.g. ``serving.router.attempt``) so traces and
metric dumps from different subsystems stay greppable and collision-free.
This rule enforces that convention statically, plus the one lifecycle
mistake the tracer cannot catch until export time:

* any string literal passed as the name to ``begin`` / ``complete`` /
  ``instant`` (tracer) or ``counter`` / ``gauge`` / ``histogram``
  (metrics registry) must match the convention — dynamic names
  (f-strings and variables) are trusted, the tracer validates them at
  run time;
* a ``begin()`` whose span id is discarded (a bare expression statement)
  can never be ``end()``-ed — use the ``span()`` context manager, or
  bind the id so the matching ``end`` call is possible.

Test files are exempt: tests legitimately construct invalid names to
exercise the validators.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ....obs.tracer import SPAN_NAME_RE
from ..engine import ModuleInfo, Project, Rule, Violation

#: Methods whose first argument is a span/instant name.
TRACER_METHODS = {"begin", "complete", "instant"}

#: Methods whose first argument is a metric series name.
METRIC_METHODS = {"counter", "gauge", "histogram"}


class ObsNamingRule(Rule):
    id = "SC801"
    name = "obs-naming"
    description = (
        "span/metric names must be dotted layer.component.event; "
        "begin() results must be bound so the span can be ended"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator[Violation]:
        if module.is_test:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Expr) and self._is_begin_call(node.value):
                yield self.violation(
                    module,
                    node,
                    "begin() span id is discarded, so the span can never be "
                    "ended; bind the id or use the span() context manager",
                )
            if isinstance(node, ast.Call):
                yield from self._check_name_argument(module, node)

    def _is_begin_call(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "begin"
        )

    def _check_name_argument(
        self, module: ModuleInfo, node: ast.Call
    ) -> Iterator[Violation]:
        if not isinstance(node.func, ast.Attribute):
            return
        method = node.func.attr
        if method not in TRACER_METHODS | METRIC_METHODS:
            return
        if not node.args:
            return
        first = node.args[0]
        if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
            return  # dynamic names are validated at run time
        name = first.value
        if not SPAN_NAME_RE.match(name):
            kind = "span/instant" if method in TRACER_METHODS else "metric"
            yield self.violation(
                module,
                node,
                f"{kind} name {name!r} does not follow the dotted "
                "layer.component.event convention (>= 3 lowercase segments, "
                "e.g. 'serving.router.attempt')",
            )
