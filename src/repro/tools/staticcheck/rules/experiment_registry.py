"""SC601 experiment-registry: figure/table modules expose the common API.

Every ``experiments/fig*.py`` / ``experiments/table*.py`` module is driven
by the benchmark harness and the CLI through one convention:

* a top-level ``run(...)`` whose parameters ALL have defaults, so
  ``module.run()`` regenerates the figure with the paper's configuration;
* a top-level ``render(result)`` turning the result into text;
* an entry in ``experiments/__init__.py``'s ``REGISTRY`` so harnesses can
  enumerate it.

A module that drifts from the convention silently disappears from full
regeneration runs — exactly the kind of rot this checker exists to stop.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from ..engine import ModuleInfo, Project, Rule, Violation


def _is_experiment_file(module: ModuleInfo) -> bool:
    path = Path(module.relpath)
    if path.parent.name != "experiments":
        return False
    return path.name.startswith(("fig", "table")) and path.name != "__init__.py"


def _toplevel_function(tree: ast.Module, name: str) -> ast.FunctionDef | None:
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _all_params_defaulted(fn: ast.FunctionDef) -> bool:
    args = fn.args
    required_positional = len(args.args) - len(args.defaults)
    if required_positional > 0:
        return False
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        del arg
        if default is None:
            return False
    return True


class ExperimentRegistryRule(Rule):
    id = "SC601"
    name = "experiment-registry"
    description = (
        "experiments/fig*.py and table*.py must expose run() (all params "
        "defaulted) and render(result), and be listed in REGISTRY"
    )

    def check_project(self, project: Project) -> Iterator[Violation]:
        experiment_modules = [m for m in project.modules if _is_experiment_file(m)]
        if not experiment_modules:
            return

        registered = self._registry_entries(project)

        for module in experiment_modules:
            module_name = Path(module.relpath).stem
            run = _toplevel_function(module.tree, "run")
            if run is None:
                yield self.violation(
                    module,
                    module.tree,
                    f"experiment module {module_name!r} has no top-level run()",
                )
            elif not _all_params_defaulted(run):
                yield self.violation(
                    module,
                    run,
                    f"{module_name}.run() has parameters without defaults; the "
                    "harness must be able to call run() with no arguments",
                )
            render = _toplevel_function(module.tree, "render")
            if render is None:
                yield self.violation(
                    module,
                    module.tree,
                    f"experiment module {module_name!r} has no top-level "
                    "render(result)",
                )
            elif not render.args.args:
                yield self.violation(
                    module,
                    render,
                    f"{module_name}.render() must accept the run() result as "
                    "its first parameter",
                )
            if registered is not None and module_name not in registered:
                yield self.violation(
                    module,
                    module.tree,
                    f"experiment module {module_name!r} is missing from "
                    "experiments/__init__.py REGISTRY",
                )

    def _registry_entries(self, project: Project) -> set[str] | None:
        """Module names registered in experiments/__init__.py, if present."""
        init = project.by_relpath("experiments/__init__.py")
        if init is None:
            return None
        for node in ast.walk(init.tree):
            if not isinstance(node, ast.Assign):
                continue
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "REGISTRY" not in targets or not isinstance(node.value, ast.Dict):
                continue
            entries: set[str] = set()
            for value in node.value.values:
                if isinstance(value, ast.Name):
                    entries.add(value.id)
                elif isinstance(value, ast.Attribute):
                    entries.add(value.attr)
            return entries
        return None
