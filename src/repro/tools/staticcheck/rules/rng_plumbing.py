"""SC902 rng-plumbing: seeded streams must be threaded, not re-rooted.

SC301 guarantees every Generator is *seeded*; it cannot see a function
that quietly roots a brand-new ``default_rng(0)`` in the middle of the
serving/fault/overload stack while its callers are already threading a
seeded stream. That hidden re-rooting makes two sweeps that differ only
in call order produce identical "random" draws — correlated noise that
silently narrows every distribution the paper's figures rest on.

Flagged: a non-test ``src/`` function that

* does **not** accept an ``rng``/``seed`` parameter (any spelling:
  ``rng``, ``seed``, ``base_seed``, ``rng_fc``, ...), and
* constructs a Generator from a **hard-coded literal** seed, and
* has at least one caller (conservative name-based call graph) that
  already holds a stream — an rng/seed parameter or its own Generator.

Deriving the seed from a parameter/attribute (``default_rng(seed + 1)``,
``default_rng(self.seed)``) and forking through the stable-seed helpers
(``stable_fc_seed(...)``, anything ``stable_*``/``*_seed``) stay legal —
those are the explicit plumbing this rule exists to protect.
"""

from __future__ import annotations

from typing import Iterator

from ..engine import ModuleInfo, Project, Rule, Violation


def _in_src(relpath: str) -> bool:
    norm = relpath.replace("\\", "/")
    return norm.startswith("src/") or "/src/" in norm


class RngPlumbingRule(Rule):
    id = "SC902"
    name = "rng-plumbing"
    description = (
        "src/ functions must accept rng/seed instead of rooting a new "
        "literal-seeded Generator when a caller already holds a stream"
    )

    def check_project(self, project: Project) -> Iterator[Violation]:
        analysis = project.analysis()
        modules = {m.relpath: m for m in project.modules}
        for relpath, fn in analysis.iter_summaries():
            module = modules.get(relpath)
            if module is None or module.is_test or not _in_src(relpath):
                continue
            if fn.has_rng_param or fn.qualname == "<module>":
                continue
            literal_sites = [
                c for c in fn.rng_constructions if c.seed_kind == "literal"
            ]
            if not literal_sites:
                continue
            holders = [
                caller
                for _, caller in analysis.callers_of(relpath, fn.qualname)
                if caller.holds_rng and caller.qualname != fn.qualname
            ]
            if not holders:
                continue
            holder_names = sorted({c.qualname for c in holders})
            for site in literal_sites:
                yield Violation(
                    rule=self.id,
                    name=self.name,
                    path=relpath,
                    line=site.line,
                    col=site.col,
                    message=(
                        f"{fn.qualname}() roots a new literal-seeded Generator "
                        f"while caller(s) {', '.join(holder_names[:3])} already "
                        "hold a seeded stream; accept an rng/seed parameter, or "
                        "fork explicitly via a stable_*_seed helper"
                    ),
                )
