"""SC501 config-reachability: every config knob must be read somewhere.

A field on :class:`ModelConfig`/:class:`ServerSpec` (and their component
dataclasses) that nothing in ``src/`` ever reads is a dead knob: it looks
tunable, reviewers reason about it, but it cannot influence any result.
Either wire it up or delete it.

Detection is name-based and deliberately conservative: any attribute read
``<expr>.field`` anywhere in ``src/`` (outside the field's own declaration)
counts, so the rule can under-report dead knobs but will not produce false
positives from numpy-style dynamic access.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Project, Rule, Violation

#: Dataclasses whose fields constitute the experiment configuration surface.
TARGET_CLASSES = (
    "ModelConfig",
    "EmbeddingTableConfig",
    "MLPConfig",
    "ServerSpec",
    "SimdSpec",
)


class ConfigReachabilityRule(Rule):
    id = "SC501"
    name = "config-reachability"
    description = (
        "every field of the config dataclasses (ModelConfig, ServerSpec, ...) "
        "must be read somewhere in src/ — dead knobs are flagged"
    )

    target_classes: tuple[str, ...] = TARGET_CLASSES

    def check_project(self, project: Project) -> Iterator[Violation]:
        src = project.src_modules()
        if not src:
            return

        # Field declarations: AnnAssign statements directly in the class body.
        fields: dict[tuple[str, str], tuple] = {}  # (class, field) -> (module, node)
        declaration_nodes: set[int] = set()
        for module in src:
            for node in ast.walk(module.tree):
                if not (isinstance(node, ast.ClassDef) and node.name in self.target_classes):
                    continue
                for stmt in node.body:
                    if isinstance(stmt, ast.AnnAssign) and isinstance(
                        stmt.target, ast.Name
                    ):
                        field = stmt.target.id
                        if field.startswith("_"):
                            continue
                        fields[(node.name, field)] = (module, stmt)
                        declaration_nodes.add(id(stmt.target))

        if not fields:
            return

        # Attribute reads by name across all of src/ (declarations excluded).
        read_names: set[str] = set()
        for module in src:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                    read_names.add(node.attr)

        for (cls, field), (module, stmt) in sorted(fields.items()):
            if field not in read_names:
                yield self.violation(
                    module,
                    stmt,
                    f"{cls}.{field} is never read anywhere in src/ — dead "
                    "config knob; wire it into the model or remove it",
                )
