"""SC401 dtype discipline in operator hot paths (``core/operators/``).

The paper's models are fp32 end-to-end; numpy defaults to float64. An
allocator without an explicit ``dtype=`` in an operator kernel silently
doubles bandwidth and skews every byte count the characterization reports.
Flagged, inside ``core/operators/`` only:

* ``np.zeros/np.ones/np.empty/np.full`` (and their scalar-shaped forms)
  without an explicit ``dtype=`` keyword;
* explicit float64 requests in kernels: ``astype(float)``,
  ``astype(np.float64)``, ``astype("float64")`` and the same spellings as
  a ``dtype=`` keyword.

The ``*_like`` allocators inherit their prototype's dtype and are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .._astutil import call_keyword, dotted_name
from ..engine import ModuleInfo, Project, Rule, Violation

ALLOCATORS = {"zeros", "ones", "empty", "full"}

_F64_STRINGS = {"float64", "f8", "double"}


def _is_float64(node: ast.expr) -> bool:
    if isinstance(node, ast.Name) and node.id == "float":
        return True
    dotted = dotted_name(node)
    if dotted in ("np.float64", "numpy.float64"):
        return True
    return isinstance(node, ast.Constant) and node.value in _F64_STRINGS


class DtypeDisciplineRule(Rule):
    id = "SC401"
    name = "dtype-discipline"
    description = (
        "operator kernels must allocate with an explicit dtype and never "
        "request float64 (numpy's implicit default doubles every byte count)"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator[Violation]:
        if not module.is_operator_hot_path:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted and "." in dotted:
                root, _, fn = dotted.rpartition(".")
                if root in ("np", "numpy") and fn in ALLOCATORS:
                    if call_keyword(node, "dtype") is None:
                        yield self.violation(
                            module,
                            node,
                            f"np.{fn}() without dtype= allocates float64 in an "
                            "operator hot path; pass dtype=np.float32 (or the "
                            "intended integer dtype) explicitly",
                        )
                        continue
            # astype(float64-spelling) or dtype=float64-spelling anywhere.
            if isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
                if node.args and _is_float64(node.args[0]):
                    yield self.violation(
                        module,
                        node,
                        "astype() to float64 in an operator hot path; the "
                        "models are fp32 end-to-end",
                    )
                    continue
            dtype_kw = call_keyword(node, "dtype")
            if dtype_kw is not None and _is_float64(dtype_kw):
                yield self.violation(
                    module,
                    node,
                    "explicit float64 dtype in an operator hot path; the "
                    "models are fp32 end-to-end",
                )
