"""SC904 wall-clock: simulation layers must use the DES clock.

Every latency in this repo is *simulated* time on a deterministic
discrete-event clock; a single ``time.time()`` / ``perf_counter()`` /
``datetime.now()`` / ``sleep()`` in a simulation layer couples results
to the host machine and silently breaks run-to-run reproducibility (and
the bit-identity guardrail with it). Real wall-clock measurement is the
*job* of exactly two places, which are exempt:

* ``benchmarks/`` — wall-clock benchmarking is what they are for;
* ``tools/`` — developer tooling (including this checker) may time
  itself.

Test modules are also exempt. Everywhere else — ``src/`` simulation and
serving layers, ``examples/`` — wall-clock calls are banned; a
deliberate exception (e.g. the operator wall-time profiler that fig7's
measured breakdown is defined by) takes an inline
``# staticcheck: ignore[SC904]`` with a justifying comment.

Detection is import-alias aware: ``import time as t; t.sleep(...)`` and
``from time import perf_counter as pc; pc()`` are both caught.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from ..engine import ModuleInfo, Project, Rule, Violation

#: Path segments whose files may legitimately read the wall clock.
EXEMPT_SEGMENTS = {"benchmarks", "tools"}


def _is_exempt(relpath: str) -> bool:
    return bool(set(Path(relpath.replace("\\", "/")).parts) & EXEMPT_SEGMENTS)


class WallClockRule(Rule):
    id = "SC904"
    name = "wall-clock"
    description = (
        "time.time/perf_counter/sleep/datetime.now are banned outside "
        "benchmarks/ and tools/ — simulation layers use the DES clock"
    )

    def check_project(self, project: Project) -> Iterator[Violation]:
        analysis = project.analysis()
        modules = {m.relpath: m for m in project.modules}
        for relpath, fn in analysis.iter_summaries():
            module = modules.get(relpath)
            if module is None or module.is_test or _is_exempt(relpath):
                continue
            for call in fn.wall_clock:
                where = (
                    "at import time"
                    if fn.qualname == "<module>"
                    else f"in {fn.qualname}()"
                )
                yield Violation(
                    rule=self.id,
                    name=self.name,
                    path=relpath,
                    line=call.line,
                    col=call.col,
                    message=(
                        f"{call.func}() {where} reads the host wall clock; "
                        "simulation layers must derive time from the DES clock "
                        "(only benchmarks/ and tools/ may time real execution)"
                    ),
                )
