"""Batch-level input generation for whole models (the load-generator feed)."""

from __future__ import annotations

import numpy as np

from ..config.model_config import ModelConfig
from ..core.operators.sls import SparseBatch
from .dense import dense_features
from .sparse import SparseGenerator, UniformSparseGenerator


class InputGenerator:
    """Generates (dense, sparse) inputs matching a :class:`ModelConfig`.

    Args:
        config: the target model's configuration.
        sparse_generators: optional per-table generators; defaults to
            uniform IDs (the paper's low-reuse production behaviour).
        seed: RNG seed for reproducible workloads.
    """

    def __init__(
        self,
        config: ModelConfig,
        sparse_generators: list[SparseGenerator] | None = None,
        seed: int = 0,
    ) -> None:
        self.config = config
        if sparse_generators is None:
            sparse_generators = [
                UniformSparseGenerator(t.rows, t.lookups_per_sample)
                for t in config.embedding_tables
            ]
        if len(sparse_generators) != config.num_tables:
            raise ValueError(
                f"need {config.num_tables} sparse generators, got "
                f"{len(sparse_generators)}"
            )
        for gen, table in zip(sparse_generators, config.embedding_tables):
            if gen.rows > table.rows:
                raise ValueError(
                    f"generator domain {gen.rows} exceeds table rows {table.rows}"
                )
        self.sparse_generators = sparse_generators
        self.rng = np.random.default_rng(seed)

    def batch(self, batch_size: int) -> tuple[np.ndarray, list[SparseBatch]]:
        """One model-ready input batch."""
        dense = dense_features(batch_size, self.config.dense_features, self.rng)
        sparse = [g.batch(batch_size, self.rng) for g in self.sparse_generators]
        return dense, sparse


def generate_inputs(
    config: ModelConfig, batch_size: int, seed: int = 0
) -> tuple[np.ndarray, list[SparseBatch]]:
    """One-shot convenience wrapper around :class:`InputGenerator`."""
    return InputGenerator(config, seed=seed).batch(batch_size)
