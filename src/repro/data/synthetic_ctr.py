"""Synthetic CTR dataset with planted, learnable structure.

A "teacher" model defines ground truth: each sparse ID carries a hidden
affinity, dense features a hidden weight vector, and the click probability
is ``sigmoid(w . dense + sum(affinity[id]) + bias)``. A DLRM trained on
samples from this generator must learn the affinities through its
embedding tables — a real end-to-end check that the training substrate
works, and a configurable workload for training-throughput studies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config.model_config import ModelConfig
from ..core.operators.sls import SparseBatch
from .dense import dense_features
from .sparse import UniformSparseGenerator, ZipfSparseGenerator


@dataclass(frozen=True)
class CtrBatch:
    """One labelled minibatch."""

    dense: np.ndarray
    sparse: list[SparseBatch]
    labels: np.ndarray


class SyntheticCtrDataset:
    """Generates labelled CTR batches for one model configuration.

    Args:
        config: target model shape (tables, dense width).
        signal_scale: magnitude of the planted affinities; larger values
            make the task easier (more separable).
        zipf_alpha: popularity skew of the sparse IDs (0 = uniform).
        seed: generator seed (teacher parameters and streams derive from it).
    """

    def __init__(
        self,
        config: ModelConfig,
        signal_scale: float = 1.0,
        zipf_alpha: float = 0.0,
        seed: int = 0,
    ) -> None:
        if signal_scale <= 0:
            raise ValueError("signal_scale must be positive")
        self.config = config
        self.rng = np.random.default_rng(seed)
        teacher_rng = np.random.default_rng(seed + 1)
        self._dense_weights = teacher_rng.normal(
            0.0, signal_scale / np.sqrt(config.dense_features),
            size=config.dense_features,
        )
        self._affinities = [
            teacher_rng.normal(
                0.0,
                signal_scale / np.sqrt(t.lookups_per_sample),
                size=t.rows,
            )
            for t in config.embedding_tables
        ]
        self._bias = 0.0
        if zipf_alpha > 0:
            self._generators = [
                ZipfSparseGenerator(t.rows, t.lookups_per_sample, alpha=zipf_alpha)
                for t in config.embedding_tables
            ]
        else:
            self._generators = [
                UniformSparseGenerator(t.rows, t.lookups_per_sample)
                for t in config.embedding_tables
            ]

    def true_logits(self, dense: np.ndarray, sparse: list[SparseBatch]) -> np.ndarray:
        """The teacher's logits for given inputs."""
        logits = dense @ self._dense_weights + self._bias
        for affinity, sp in zip(self._affinities, sparse):
            segment = np.repeat(np.arange(sp.batch_size), sp.lengths)
            contrib = np.zeros(sp.batch_size)
            np.add.at(contrib, segment, affinity[sp.ids])
            logits = logits + contrib
        return logits

    def batch(self, batch_size: int) -> CtrBatch:
        """Draw one labelled minibatch."""
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        dense = dense_features(batch_size, self.config.dense_features, self.rng)
        sparse = [g.batch(batch_size, self.rng) for g in self._generators]
        logits = self.true_logits(dense, sparse)
        probs = 1.0 / (1.0 + np.exp(-logits))
        labels = (self.rng.random(batch_size) < probs).astype(np.float32)
        return CtrBatch(dense=dense, sparse=sparse, labels=labels)
