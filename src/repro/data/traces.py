"""Production-like embedding lookup traces (the Figure 14 substitute).

The paper instruments ten production use cases and reports, per trace, the
fraction of sparse IDs that are unique — from ~100% (random-like) down to
tens of percent (heavy reuse). The real traces are proprietary; this module
generates synthetic traces that sweep the same unique-ID axis and exercise
the identical SLS + cache-simulation code path, plus save/load helpers so a
user with real traces can drop them in.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .sparse import TemporalReuseGenerator, UniformSparseGenerator, ZipfSparseGenerator


@dataclass(frozen=True)
class EmbeddingTrace:
    """A named sequence of sparse IDs against one embedding table."""

    name: str
    table_rows: int
    ids: np.ndarray

    def __post_init__(self) -> None:
        if self.ids.ndim != 1:
            raise ValueError("trace ids must be a 1-D array")
        if self.ids.size and (self.ids.min() < 0 or self.ids.max() >= self.table_rows):
            raise ValueError("trace contains IDs outside the table")

    @property
    def length(self) -> int:
        """Number of lookups in the trace."""
        return int(self.ids.size)

    def unique_fraction(self) -> float:
        """Fraction of lookups that touch a never-seen-before ID.

        This is Figure 14's y-axis: the share of lookups that cannot hit in
        any cache (compulsory misses).
        """
        if self.ids.size == 0:
            return 0.0
        return float(np.unique(self.ids).size) / float(self.ids.size)

    def save(self, path: str | Path) -> None:
        """Persist the trace as a compressed ``.npz`` file."""
        np.savez_compressed(
            Path(path), name=np.array(self.name), table_rows=self.table_rows, ids=self.ids
        )

    @classmethod
    def load(cls, path: str | Path) -> "EmbeddingTrace":
        """Load a trace previously written by :meth:`save`."""
        with np.load(Path(path)) as data:
            return cls(
                name=str(data["name"]),
                table_rows=int(data["table_rows"]),
                ids=data["ids"].astype(np.int64),
            )


def random_trace(
    table_rows: int, length: int, rng: np.random.Generator | None = None
) -> EmbeddingTrace:
    """The "random" baseline trace of Figure 14 (uniform IDs)."""
    rng = rng or np.random.default_rng(0)
    gen = UniformSparseGenerator(table_rows, 1)
    return EmbeddingTrace(name="random", table_rows=table_rows, ids=gen.ids(length, rng))


def synthetic_production_traces(
    table_rows: int = 1_000_000,
    length: int = 50_000,
    seed: int = 2020,
) -> list[EmbeddingTrace]:
    """Ten synthetic traces spanning the paper's unique-ID range.

    Traces 1-10 interleave temporal-reuse and Zipf generators with
    increasing locality, mirroring Figure 14's spread from ~90% unique down
    to ~10% unique.
    """
    rng = np.random.default_rng(seed)
    traces: list[EmbeddingTrace] = []
    reuse_levels = [0.05, 0.15, 0.3, 0.45, 0.6, 0.7, 0.8, 0.88, 0.94, 0.97]
    for i, reuse in enumerate(reuse_levels, start=1):
        if i % 3 == 0:
            # Every third trace uses Zipf popularity skew instead of explicit
            # temporal reuse; a matching alpha produces comparable locality.
            alpha = 0.6 + reuse
            gen: object = ZipfSparseGenerator(table_rows, 1, alpha=alpha)
        else:
            gen = TemporalReuseGenerator(table_rows, 1, reuse_probability=reuse)
        ids = gen.ids(length, rng)  # type: ignore[attr-defined]
        traces.append(
            EmbeddingTrace(name=f"trace-{i}", table_rows=table_rows, ids=ids)
        )
    return traces
