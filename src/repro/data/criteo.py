"""Criteo-format click-log pipeline (the paper's public-dataset hook).

The open-source benchmark can be "instrumented with open-source data sets"
— the Criteo click logs being the canonical one (reference [3] in the
paper). This module implements the full path a user with real Criteo data
needs, plus a synthetic generator so everything is testable offline:

* the Criteo TSV schema: ``label, 13 integer features, 26 categorical
  features`` (categoricals as hex strings, any field possibly empty);
* a synthetic writer producing format-faithful files;
* a reader with the standard preprocessing: ``log(1+x)`` on dense features
  (missing → 0) and hashing of categorical tokens into each embedding
  table's domain (missing → 0);
* conversion into model-ready ``(dense, sparse, labels)`` batches for a
  :class:`~repro.config.model_config.ModelConfig` with 26 tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..config.model_config import ModelConfig
from ..core.operators.sls import SparseBatch

NUM_DENSE = 13
NUM_CATEGORICAL = 26


@dataclass(frozen=True)
class CriteoRecord:
    """One parsed click-log line."""

    label: int
    dense: tuple[int | None, ...]
    categorical: tuple[str | None, ...]


def write_synthetic_criteo(
    path: str | Path,
    num_records: int,
    seed: int = 0,
    click_rate: float = 0.25,
    missing_rate: float = 0.1,
) -> None:
    """Write a format-faithful synthetic Criteo TSV file."""
    if num_records < 1:
        raise ValueError("num_records must be positive")
    if not 0 <= missing_rate < 1:
        raise ValueError("missing_rate must be in [0, 1)")
    rng = np.random.default_rng(seed)
    lines = []
    for _ in range(num_records):
        label = "1" if rng.random() < click_rate else "0"
        dense = [
            "" if rng.random() < missing_rate else str(int(rng.integers(0, 5000)))
            for _ in range(NUM_DENSE)
        ]
        cats = [
            ""
            if rng.random() < missing_rate
            else f"{int(rng.integers(0, 1 << 32)):08x}"
            for _ in range(NUM_CATEGORICAL)
        ]
        lines.append("\t".join([label] + dense + cats))
    Path(path).write_text("\n".join(lines) + "\n")


def parse_criteo_line(line: str) -> CriteoRecord:
    """Parse one TSV line into a :class:`CriteoRecord`."""
    fields = line.rstrip("\n").split("\t")
    expected = 1 + NUM_DENSE + NUM_CATEGORICAL
    if len(fields) != expected:
        raise ValueError(
            f"Criteo line has {len(fields)} fields, expected {expected}"
        )
    label = int(fields[0])
    if label not in (0, 1):
        raise ValueError(f"label must be 0/1, got {label}")
    dense = tuple(
        int(f) if f != "" else None for f in fields[1 : 1 + NUM_DENSE]
    )
    categorical = tuple(
        f if f != "" else None for f in fields[1 + NUM_DENSE :]
    )
    return CriteoRecord(label=label, dense=dense, categorical=categorical)


def read_criteo(path: str | Path) -> list[CriteoRecord]:
    """Read an entire Criteo TSV file."""
    records = []
    with open(Path(path)) as fh:
        for line in fh:
            if line.strip():
                records.append(parse_criteo_line(line))
    return records


def _hash_token(token: str, domain: int) -> int:
    """Stable hash of a categorical token into [0, domain)."""
    # FNV-1a, stable across processes (unlike built-in hash()).
    value = 0xCBF29CE484222325
    for byte in token.encode():
        value = ((value ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value % domain


class CriteoPreprocessor:
    """Turns Criteo records into model-ready batches.

    Args:
        config: target model; must have exactly 26 embedding tables (one
            per categorical feature) and at least 13 dense features. Dense
            features beyond the 13 Criteo integers are zero-padded.
    """

    def __init__(self, config: ModelConfig) -> None:
        if config.num_tables != NUM_CATEGORICAL:
            raise ValueError(
                f"Criteo has {NUM_CATEGORICAL} categorical features; the "
                f"model has {config.num_tables} tables"
            )
        if config.dense_features < NUM_DENSE:
            raise ValueError(
                f"model needs >= {NUM_DENSE} dense features for Criteo"
            )
        self.config = config

    def dense_matrix(self, records: list[CriteoRecord]) -> np.ndarray:
        """``log(1+x)``-transformed dense features, zero for missing."""
        out = np.zeros((len(records), self.config.dense_features), dtype=np.float32)
        for i, record in enumerate(records):
            for j, value in enumerate(record.dense):
                if value is not None and value >= 0:
                    out[i, j] = np.log1p(float(value))
        return out

    def sparse_batches(self, records: list[CriteoRecord]) -> list[SparseBatch]:
        """One single-lookup SparseBatch per categorical feature."""
        batches = []
        for feature, table in enumerate(self.config.embedding_tables):
            ids = np.array(
                [
                    _hash_token(r.categorical[feature], table.rows)
                    if r.categorical[feature] is not None
                    else 0
                    for r in records
                ],
                dtype=np.int64,
            )
            lengths = np.ones(len(records), dtype=np.int64)
            batches.append(SparseBatch(ids=ids, lengths=lengths))
        return batches

    def batch(
        self, records: list[CriteoRecord]
    ) -> tuple[np.ndarray, list[SparseBatch], np.ndarray]:
        """Full model-ready batch: (dense, sparse, labels)."""
        if not records:
            raise ValueError("need at least one record")
        labels = np.array([r.label for r in records], dtype=np.float32)
        return self.dense_matrix(records), self.sparse_batches(records), labels


def criteo_model_config(
    rows_per_table: int = 100_000, embedding_dim: int = 16
) -> ModelConfig:
    """A DLRM configuration shaped for the Criteo schema (26 tables)."""
    from ..config.model_config import MLPConfig, uniform_tables

    return ModelConfig(
        name="criteo-dlrm",
        model_class="RMC1",
        dense_features=NUM_DENSE,
        bottom_mlp=MLPConfig([64, 32, embedding_dim]),
        embedding_tables=uniform_tables(
            NUM_CATEGORICAL, rows_per_table, embedding_dim, 1
        ),
        top_mlp=MLPConfig([64, 32, 1], final_activation="sigmoid"),
    )
