"""Dense-feature generation.

Dense features (e.g. user age) are continuous inputs processed by the
Bottom-MLP. For characterization purposes their *values* are irrelevant —
only their width matters — so a standard-normal generator suffices.
"""

from __future__ import annotations

import numpy as np


def dense_features(
    batch_size: int, num_features: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Generate a ``(batch_size, num_features)`` float32 dense input."""
    if batch_size < 1 or num_features < 1:
        raise ValueError("batch_size and num_features must be positive")
    rng = rng or np.random.default_rng(0)
    return rng.standard_normal((batch_size, num_features)).astype(np.float32)
