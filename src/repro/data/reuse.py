"""Reuse-distance (Mattson stack-distance) analysis of embedding traces.

The classic memory-systems tool the paper's trace release enables: for an
LRU cache, a reference hits iff its *stack distance* — the number of
distinct IDs touched since the previous reference to the same ID — is
below the cache capacity. One pass over a trace therefore yields the hit
ratio of *every* cache size simultaneously (the miss-ratio curve), which
is how capacity decisions for embedding caches / DRAM tiers should be
made rather than replaying per size.

The implementation uses a Fenwick (binary indexed) tree over reference
timestamps: O(N log N) for an N-lookup trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class _Fenwick:
    """Prefix-sum tree over trace positions."""

    def __init__(self, size: int) -> None:
        self._tree = np.zeros(size + 1, dtype=np.int64)
        self._size = size

    def add(self, index: int, delta: int) -> None:
        i = index + 1
        while i <= self._size:
            self._tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of entries at positions [0, index]."""
        i = index + 1
        total = 0
        while i > 0:
            total += int(self._tree[i])
            i -= i & (-i)
        return total


def stack_distances(ids: np.ndarray) -> np.ndarray:
    """Per-reference LRU stack distances; first touches get -1.

    ``distances[k]`` is the number of *distinct* IDs referenced strictly
    between reference ``k`` and the previous reference to the same ID.
    """
    ids = np.asarray(ids).reshape(-1)
    if ids.size == 0:
        raise ValueError("trace must contain at least one lookup")
    n = int(ids.size)
    tree = _Fenwick(n)
    last_pos: dict[int, int] = {}
    out = np.empty(n, dtype=np.int64)
    for k in range(n):
        key = int(ids[k])
        prev = last_pos.get(key)
        if prev is None:
            out[k] = -1
        else:
            # Distinct IDs since prev = live markers in (prev, k).
            out[k] = tree.prefix_sum(k - 1) - tree.prefix_sum(prev)
            tree.add(prev, -1)
        tree.add(k, +1)
        last_pos[key] = k
    return out


@dataclass(frozen=True)
class ReuseProfile:
    """Reuse statistics of one trace."""

    lookups: int
    compulsory: int
    distance_histogram: np.ndarray  # counts per stack distance

    @property
    def compulsory_fraction(self) -> float:
        """First-touch (unique-ID) fraction — Figure 14's y-axis."""
        return self.compulsory / self.lookups

    def hit_ratio(self, capacity_rows: int) -> float:
        """LRU hit ratio at a given cache capacity (in rows)."""
        if capacity_rows < 0:
            raise ValueError("capacity must be non-negative")
        if capacity_rows == 0:
            return 0.0
        hits = int(self.distance_histogram[: capacity_rows].sum())
        return hits / self.lookups

    def hit_ratio_curve(self, capacities: list[int]) -> dict[int, float]:
        """Hit ratios at several capacities from the single profile."""
        return {c: self.hit_ratio(c) for c in capacities}

    def working_set_size(self, target_hit_ratio: float) -> int | None:
        """Smallest capacity achieving ``target_hit_ratio`` (None if never).

        The achievable ceiling is ``1 - compulsory_fraction``.
        """
        if not 0.0 < target_hit_ratio <= 1.0:
            raise ValueError("target_hit_ratio must be in (0, 1]")
        cumulative = np.cumsum(self.distance_histogram) / self.lookups
        indices = np.nonzero(cumulative >= target_hit_ratio)[0]
        if indices.size == 0:
            return None
        return int(indices[0]) + 1


def reuse_profile(ids: np.ndarray) -> ReuseProfile:
    """Build the reuse profile of a trace in one pass."""
    distances = stack_distances(ids)
    compulsory = int((distances < 0).sum())
    finite = distances[distances >= 0]
    max_distance = int(finite.max()) if finite.size else 0
    histogram = np.bincount(finite, minlength=max_distance + 1)
    return ReuseProfile(
        lookups=int(distances.size),
        compulsory=compulsory,
        distance_histogram=histogram,
    )
