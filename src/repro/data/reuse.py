"""Reuse-distance (Mattson stack-distance) analysis of embedding traces.

The classic memory-systems tool the paper's trace release enables: for an
LRU cache, a reference hits iff its *stack distance* — the number of
distinct IDs touched since the previous reference to the same ID — is
below the cache capacity. One pass over a trace therefore yields the hit
ratio of *every* cache size simultaneously (the miss-ratio curve), which
is how capacity decisions for embedding caches / DRAM tiers should be
made rather than replaying per size.

Two implementations of the same exact computation:

* ``method="fenwick"`` — a Fenwick (binary indexed) tree over reference
  timestamps, O(N log N) but pure Python per lookup. Kept as the
  executable specification and used for tiny traces.
* ``method="sorting"`` — a fully vectorized O(N log² N) pass: previous
  occurrences via a stable argsort, then the left-neighbour dominance
  count (``#{j<k : sprev[j] <= sprev[k]}``) by bottom-up merge counting,
  where each doubling pass is a single ``np.searchsorted`` over all block
  pairs at once (block-offset keys keep queries inside their pair). This
  is what makes reuse profiling practical on million-lookup traces.

Both return identical integer arrays; ``method="auto"`` (the default)
picks by trace size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class _Fenwick:
    """Prefix-sum tree over trace positions."""

    def __init__(self, size: int) -> None:
        self._tree = np.zeros(size + 1, dtype=np.int64)
        self._size = size

    def add(self, index: int, delta: int) -> None:
        i = index + 1
        while i <= self._size:
            self._tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of entries at positions [0, index]."""
        i = index + 1
        total = 0
        while i > 0:
            total += int(self._tree[i])
            i -= i & (-i)
        return total


#: Below this trace length ``method="auto"`` keeps the Fenwick walk —
#: the vectorized path's argsort setup only pays off on longer traces.
_SORTING_MIN_LOOKUPS = 256


def stack_distances(ids: np.ndarray, method: str = "auto") -> np.ndarray:
    """Per-reference LRU stack distances; first touches get -1.

    ``distances[k]`` is the number of *distinct* IDs referenced strictly
    between reference ``k`` and the previous reference to the same ID.
    ``method`` selects the implementation (``"auto"``, ``"sorting"``,
    ``"fenwick"``); all produce identical arrays.
    """
    ids = np.asarray(ids).reshape(-1)
    if ids.size == 0:
        raise ValueError("trace must contain at least one lookup")
    if method not in ("auto", "sorting", "fenwick"):
        raise ValueError(f"unknown method {method!r}")
    if method == "fenwick" or (
        method == "auto" and ids.size < _SORTING_MIN_LOOKUPS
    ):
        return _stack_distances_fenwick(ids)
    return _stack_distances_sorting(ids)


def _stack_distances_fenwick(ids: np.ndarray) -> np.ndarray:
    """Reference implementation: live-marker counting on a Fenwick tree."""
    n = int(ids.size)
    tree = _Fenwick(n)
    last_pos: dict[int, int] = {}
    out = np.empty(n, dtype=np.int64)
    for k in range(n):
        key = int(ids[k])
        prev = last_pos.get(key)
        if prev is None:
            out[k] = -1
        else:
            # Distinct IDs since prev = live markers in (prev, k).
            out[k] = tree.prefix_sum(k - 1) - tree.prefix_sum(prev)
            tree.add(prev, -1)
        tree.add(k, +1)
        last_pos[key] = k
    return out


def _stack_distances_sorting(ids: np.ndarray) -> np.ndarray:
    """Vectorized implementation: argsort + bottom-up merge counting.

    With ``sprev[k]`` the previous occurrence of ``ids[k]`` (-1 for first
    touches), every j <= sprev[k] trivially has ``sprev[j] < j <= sprev[k]``,
    and the j in (sprev[k], k) with ``sprev[j] <= sprev[k]`` are exactly the
    first in-window occurrences of the window's distinct IDs, so::

        distances[k] = #{j < k : sprev[j] <= sprev[k]} - sprev[k] - 1

    The dominance count is a classic merge-count: each doubling pass
    counts, for every element of a right half-block, the left-half
    elements <= it. Adding ``pair_index * span`` (span exceeding the value
    range) to the keys makes the concatenation of all sorted left halves
    globally sorted, so every pass is one ``np.searchsorted`` call.
    """
    n = int(ids.size)
    order = np.argsort(ids, kind="stable")
    sorted_ids = ids[order]
    sprev = np.full(n, -1, dtype=np.int64)
    same = sorted_ids[1:] == sorted_ids[:-1]
    sprev[order[1:][same]] = order[:-1][same]

    vals = sprev + 1  # shift into [0, n); ties only among first touches
    pad_value = n + 1  # sorts after (and never counts <=) every real value
    span = n + 3  # > pad_value, so block keys never bleed across pairs
    m = 1 << max(1, (n - 1).bit_length())
    arr = np.full(m, pad_value, dtype=np.int64)
    arr[:n] = vals
    pos = np.arange(m, dtype=np.int64)
    counts = np.zeros(m, dtype=np.int64)
    slots = np.arange(m, dtype=np.int64)
    width = 1
    while width < m:
        pair = slots // (2 * width)
        left_sel = (slots // width) % 2 == 0
        left_keys = arr[left_sel] + pair[left_sel] * span
        right_pair = pair[~left_sel]
        right_keys = arr[~left_sel] + right_pair * span
        # Global searchsorted = per-pair rank + width per earlier pair.
        ranks = np.searchsorted(left_keys, right_keys, side="right")
        counts[pos[~left_sel]] += ranks - right_pair * width
        merge_key = pair * span + arr
        merged = np.argsort(merge_key, kind="stable")
        arr = arr[merged]
        pos = pos[merged]
        width *= 2
    rank_before = counts[:n]
    return np.where(sprev >= 0, rank_before - sprev - 1, -1)


@dataclass(frozen=True)
class ReuseProfile:
    """Reuse statistics of one trace."""

    lookups: int
    compulsory: int
    distance_histogram: np.ndarray  # counts per stack distance

    @property
    def compulsory_fraction(self) -> float:
        """First-touch (unique-ID) fraction — Figure 14's y-axis."""
        return self.compulsory / self.lookups

    def hit_ratio(self, capacity_rows: int) -> float:
        """LRU hit ratio at a given cache capacity (in rows)."""
        if capacity_rows < 0:
            raise ValueError("capacity must be non-negative")
        if capacity_rows == 0:
            return 0.0
        hits = int(self.distance_histogram[: capacity_rows].sum())
        return hits / self.lookups

    def hit_ratio_curve(self, capacities: list[int]) -> dict[int, float]:
        """Hit ratios at several capacities from the single profile."""
        return {c: self.hit_ratio(c) for c in capacities}

    def working_set_size(self, target_hit_ratio: float) -> int | None:
        """Smallest capacity achieving ``target_hit_ratio`` (None if never).

        The achievable ceiling is ``1 - compulsory_fraction``.
        """
        if not 0.0 < target_hit_ratio <= 1.0:
            raise ValueError("target_hit_ratio must be in (0, 1]")
        cumulative = np.cumsum(self.distance_histogram) / self.lookups
        indices = np.nonzero(cumulative >= target_hit_ratio)[0]
        if indices.size == 0:
            return None
        return int(indices[0]) + 1


def reuse_profile(ids: np.ndarray, method: str = "auto") -> ReuseProfile:
    """Build the reuse profile of a trace in one pass."""
    distances = stack_distances(ids, method=method)
    compulsory = int((distances < 0).sum())
    finite = distances[distances >= 0]
    max_distance = int(finite.max()) if finite.size else 0
    histogram = np.bincount(finite, minlength=max_distance + 1)
    return ReuseProfile(
        lookups=int(distances.size),
        compulsory=compulsory,
        distance_histogram=histogram,
    )
