"""Sparse-ID generators with controllable locality.

The memory behaviour of SLS is entirely determined by the distribution of
sparse IDs (Section VII / Figure 14): production traces span from nearly
random (every lookup unique, compulsory misses) to highly reusable (few
unique IDs, cache-friendly). Three generators cover that axis:

* :class:`UniformSparseGenerator` — every ID uniform over the table; the
  "random" baseline of Figure 14 (~100% unique for large tables).
* :class:`ZipfSparseGenerator` — power-law popularity, the classic skew of
  content IDs.
* :class:`TemporalReuseGenerator` — with probability ``reuse_probability``
  re-draws a recently-seen ID; directly dials the unique-ID fraction, which
  is the quantity Figure 14 reports.
"""

from __future__ import annotations

import abc

import numpy as np

from ..core.operators.sls import SparseBatch


class SparseGenerator(abc.ABC):
    """Generates batches of sparse IDs for one embedding table."""

    def __init__(self, rows: int, lookups_per_sample: int) -> None:
        if rows < 1:
            raise ValueError("rows must be positive")
        if lookups_per_sample < 1:
            raise ValueError("lookups_per_sample must be positive")
        self.rows = rows
        self.lookups_per_sample = lookups_per_sample

    @abc.abstractmethod
    def ids(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` sparse IDs in ``[0, rows)``."""

    def batch(self, batch_size: int, rng: np.random.Generator) -> SparseBatch:
        """Draw a :class:`SparseBatch` with the configured pooling factor."""
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        total = batch_size * self.lookups_per_sample
        all_ids = self.ids(total, rng)
        lengths = np.full(batch_size, self.lookups_per_sample, dtype=np.int64)
        return SparseBatch(ids=all_ids, lengths=lengths)


class UniformSparseGenerator(SparseGenerator):
    """IDs drawn uniformly at random — the compulsory-miss worst case."""

    def ids(self, count: int, rng: np.random.Generator) -> np.ndarray:
        return rng.integers(0, self.rows, size=count, dtype=np.int64)


class ZipfSparseGenerator(SparseGenerator):
    """Power-law ID popularity: rank-``r`` ID has weight ``r**-alpha``.

    ``alpha`` near 0 approaches uniform; larger values concentrate lookups
    on a small hot set, creating the cacheable traces on the right side of
    Figure 14.
    """

    def __init__(self, rows: int, lookups_per_sample: int, alpha: float = 1.0) -> None:
        super().__init__(rows, lookups_per_sample)
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        ranks = np.arange(1, rows + 1, dtype=np.float64)
        weights = ranks**-alpha
        self._cdf = np.cumsum(weights / weights.sum())

    def ids(self, count: int, rng: np.random.Generator) -> np.ndarray:
        u = rng.random(count)
        return np.searchsorted(self._cdf, u).astype(np.int64).clip(0, self.rows - 1)


class TemporalReuseGenerator(SparseGenerator):
    """Mixes fresh uniform draws with re-draws from a recent-ID history.

    With probability ``reuse_probability`` an ID is sampled from the last
    ``history`` IDs generated; otherwise it is a fresh uniform draw. For long
    sequences the unique-ID fraction approaches ``1 - reuse_probability``,
    making this the natural knob for sweeping Figure 14's x-axis.
    """

    def __init__(
        self,
        rows: int,
        lookups_per_sample: int,
        reuse_probability: float,
        history: int = 4096,
    ) -> None:
        super().__init__(rows, lookups_per_sample)
        if not 0.0 <= reuse_probability < 1.0:
            raise ValueError("reuse_probability must be in [0, 1)")
        if history < 1:
            raise ValueError("history must be positive")
        self.reuse_probability = reuse_probability
        self.history = history
        self._recent: np.ndarray | None = None

    def ids(self, count: int, rng: np.random.Generator) -> np.ndarray:
        out = np.empty(count, dtype=np.int64)
        recent: list[int] = [] if self._recent is None else list(self._recent)
        for i in range(count):
            if recent and rng.random() < self.reuse_probability:
                out[i] = recent[int(rng.integers(0, len(recent)))]
            else:
                out[i] = int(rng.integers(0, self.rows))
            recent.append(int(out[i]))
            if len(recent) > self.history:
                recent.pop(0)
        self._recent = np.asarray(recent[-self.history :], dtype=np.int64)
        return out
