"""Input and trace generation: dense features, sparse IDs, embedding traces."""

from .criteo import (
    CriteoPreprocessor,
    CriteoRecord,
    criteo_model_config,
    parse_criteo_line,
    read_criteo,
    write_synthetic_criteo,
)
from .dataset import InputGenerator, generate_inputs
from .synthetic_ctr import CtrBatch, SyntheticCtrDataset
from .dense import dense_features
from .reuse import ReuseProfile, reuse_profile, stack_distances
from .sparse import (
    SparseGenerator,
    TemporalReuseGenerator,
    UniformSparseGenerator,
    ZipfSparseGenerator,
)
from .traces import EmbeddingTrace, random_trace, synthetic_production_traces

__all__ = [
    "CriteoPreprocessor",
    "CriteoRecord",
    "criteo_model_config",
    "parse_criteo_line",
    "read_criteo",
    "write_synthetic_criteo",
    "CtrBatch",
    "SyntheticCtrDataset",
    "InputGenerator",
    "generate_inputs",
    "dense_features",
    "ReuseProfile",
    "reuse_profile",
    "stack_distances",
    "SparseGenerator",
    "TemporalReuseGenerator",
    "UniformSparseGenerator",
    "ZipfSparseGenerator",
    "EmbeddingTrace",
    "random_trace",
    "synthetic_production_traces",
]
