"""Programmatic paper-vs-measured validation report.

Runs the reproduction's headline claims against the paper's published
numbers and produces a structured report — the machine-checkable version
of EXPERIMENTS.md. Used by ``benchmarks/bench_validation_report.py`` and
available to users as::

    from repro.validation import validate, render_report
    print(render_report(validate()))

Each check carries its tolerance: "factor" checks compare ratios within a
relative band; "ordering" checks are strict booleans.
"""

from __future__ import annotations

from dataclasses import dataclass

from .analysis.tables import format_table
from .config.presets import RMC1_SMALL, RMC2_SMALL, RMC3_SMALL
from .hw.server import BROADWELL, HASWELL, SKYLAKE
from .hw.simd import packed_simd_throughput_ratio
from .hw.timing import TimingModel
from .serving.fleet import production_fleet


@dataclass(frozen=True)
class Check:
    """One validated claim."""

    claim: str
    source: str
    paper_value: float
    measured_value: float
    rel_tolerance: float

    @property
    def passed(self) -> bool:
        """Whether the measured value sits inside the tolerance band."""
        if self.paper_value == 0:
            return self.measured_value == 0
        return (
            abs(self.measured_value - self.paper_value) / abs(self.paper_value)
            <= self.rel_tolerance
        )


def _latency_ms(server, config, batch, state=None):
    tm = TimingModel(server)
    if state is None:
        return tm.model_latency(config, batch).total_seconds * 1e3
    return tm.model_latency(config, batch, state).total_seconds * 1e3


def validate() -> list[Check]:
    """Run every headline check; returns the full list (pass or fail)."""
    checks: list[Check] = []

    def add(claim, source, paper, measured, tol):
        checks.append(
            Check(
                claim=claim,
                source=source,
                paper_value=paper,
                measured_value=measured,
                rel_tolerance=tol,
            )
        )

    # --- Figure 7: batch-1 Broadwell latencies -------------------------
    add("RMC1 batch-1 latency (ms)", "Fig 7", 0.04,
        _latency_ms(BROADWELL, RMC1_SMALL, 1), 0.35)
    add("RMC2 batch-1 latency (ms)", "Fig 7", 0.30,
        _latency_ms(BROADWELL, RMC2_SMALL, 1), 0.35)
    add("RMC3 batch-1 latency (ms)", "Fig 7", 0.60,
        _latency_ms(BROADWELL, RMC3_SMALL, 1), 0.35)

    # --- Figure 7 right: operator shares --------------------------------
    tm = TimingModel(BROADWELL)
    add("RMC2 SLS time share", "Fig 7", 0.80,
        tm.model_latency(RMC2_SMALL, 1).fraction_by_op_type()["SLS"], 0.15)
    add("RMC3 FC time share", "Fig 7", 0.96,
        tm.model_latency(RMC3_SMALL, 1).fraction_by_op_type()["FC"], 0.1)

    # --- Figure 8: batch-16 server ratios --------------------------------
    for config, hsw_ratio, skl_ratio in (
        (RMC1_SMALL, 1.4, 1.5),
        (RMC2_SMALL, 1.3, 1.4),
        (RMC3_SMALL, 1.32, 1.65),
    ):
        bdw = _latency_ms(BROADWELL, config, 16)
        add(f"{config.model_class} b16 HSW/BDW", "Fig 8", hsw_ratio,
            _latency_ms(HASWELL, config, 16) / bdw, 0.30)
        add(f"{config.model_class} b16 SKL/BDW", "Fig 8", skl_ratio,
            _latency_ms(SKYLAKE, config, 16) / bdw, 0.30)

    # --- Figure 9: co-location degradation at N=8 ------------------------
    for config, factor in (
        (RMC1_SMALL, 1.3),
        (RMC2_SMALL, 2.6),
        (RMC3_SMALL, 1.6),
    ):
        alone = _latency_ms(BROADWELL, config, 32)
        state = tm.colocation_state(config, 32, 8)
        add(f"{config.model_class} N=8 co-location", "Fig 9", factor,
            _latency_ms(BROADWELL, config, 32, state) / alone, 0.25)

    state = tm.colocation_state(RMC2_SMALL, 32, 8)
    alone_ops = tm.model_latency(RMC2_SMALL, 32).seconds_by_op_type()
    loaded_ops = tm.model_latency(RMC2_SMALL, 32, state).seconds_by_op_type()
    add("RMC2 N=8 SLS degradation", "Fig 9", 3.0,
        loaded_ops["SLS"] / alone_ops["SLS"], 0.25)
    add("RMC2 N=8 FC degradation", "Fig 9", 1.6,
        loaded_ops["FC"] / alone_ops["FC"], 0.25)

    # --- Figure 1/4: fleet shares ----------------------------------------
    fleet = production_fleet()
    add("RMC1-3 share of AI cycles", "Fig 1", 0.65, fleet.rmc_core_share(), 0.05)
    add("recommendation share of AI cycles", "Fig 1", 0.79,
        fleet.recommendation_share(), 0.05)
    ops = fleet.cycles_by_operator()
    add("SLS share of AI cycles", "Fig 4", 0.15, ops["SLS"], 0.60)

    # --- Section V: SIMD scaling -----------------------------------------
    add("packed-SIMD throughput at batch 4", "Sec V", 2.9,
        packed_simd_throughput_ratio(4), 0.05)
    add("packed-SIMD throughput at batch 16", "Sec V", 14.5,
        packed_simd_throughput_ratio(16), 0.05)

    # --- Section VI: hyperthreading ---------------------------------------
    from .hw.colocation import ColocationState

    ht = ColocationState(num_jobs=1, hyperthreading=True)
    plain = tm.model_latency(RMC2_SMALL, 32).seconds_by_op_type()
    with_ht = tm.model_latency(RMC2_SMALL, 32, ht).seconds_by_op_type()
    add("hyperthreading FC degradation", "Sec VI", 1.6,
        with_ht["FC"] / plain["FC"], 0.10)
    add("hyperthreading SLS degradation", "Sec VI", 1.3,
        with_ht["SLS"] / plain["SLS"], 0.10)

    return checks


def render_report(checks: list[Check]) -> str:
    """Human-readable pass/fail table."""
    rows = [
        [
            "PASS" if c.passed else "FAIL",
            c.claim,
            c.source,
            f"{c.paper_value:g}",
            f"{c.measured_value:.3g}",
            f"±{100 * c.rel_tolerance:.0f}%",
        ]
        for c in checks
    ]
    passed = sum(c.passed for c in checks)
    table = format_table(
        ["status", "claim", "source", "paper", "measured", "tolerance"],
        rows,
        title="Validation: paper vs measured",
    )
    return f"{table}\n{passed}/{len(checks)} checks passed"
