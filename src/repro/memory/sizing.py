"""Embedding-cache capacity planning from reuse profiles.

Connects the Mattson analysis (:mod:`repro.data.reuse`) to the server
timing model: given a lookup trace and a model, compute — for each
candidate cache capacity — the LRU hit ratio, the resulting predicted
inference latency, and the bytes of cache spent per percentage point of
latency saved; then recommend the knee capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config.model_config import ModelConfig
from ..data.reuse import ReuseProfile, reuse_profile
from ..hw.server import ServerSpec
from ..hw.timing import TimingModel


@dataclass(frozen=True)
class SizingPoint:
    """One cache-capacity option."""

    capacity_rows: int
    cache_bytes: int
    hit_ratio: float
    latency_s: float
    latency_reduction: float  # vs no cache, in [0, 1)


@dataclass(frozen=True)
class SizingPlan:
    """The evaluated capacity sweep and the recommendation."""

    model_name: str
    server_name: str
    points: list[SizingPoint]
    recommended: SizingPoint | None

    def point_at(self, capacity_rows: int) -> SizingPoint:
        """The sweep point for one capacity."""
        for p in self.points:
            if p.capacity_rows == capacity_rows:
                return p
        raise KeyError(capacity_rows)


def plan_cache_size(
    server: ServerSpec,
    config: ModelConfig,
    trace_ids: np.ndarray,
    capacities: list[int],
    batch_size: int = 16,
    min_marginal_gain: float = 0.02,
    profile: ReuseProfile | None = None,
) -> SizingPlan:
    """Evaluate cache capacities against a trace and pick the knee.

    The recommended capacity is the largest one whose step up from the
    previous candidate still bought at least ``min_marginal_gain`` of
    additional latency reduction — beyond the knee, capacity is wasted on
    the trace's compulsory tail.
    """
    if not capacities:
        raise ValueError("need at least one capacity")
    if sorted(capacities) != list(capacities):
        raise ValueError("capacities must be sorted ascending")
    profile = profile or reuse_profile(trace_ids)
    timing = TimingModel(server)
    row_bytes = max(t.dim for t in config.embedding_tables) * 4
    baseline = timing.model_latency(config, batch_size).total_seconds

    points = []
    for capacity in capacities:
        hit = profile.hit_ratio(capacity)
        latency_s = timing.model_latency(
            config, batch_size, locality_hit_ratio=hit
        ).total_seconds
        points.append(
            SizingPoint(
                capacity_rows=capacity,
                cache_bytes=capacity * row_bytes,
                hit_ratio=hit,
                latency_s=latency_s,
                latency_reduction=1.0 - latency_s / baseline,
            )
        )

    recommended: SizingPoint | None = None
    previous_reduction = 0.0
    for point in points:
        if point.latency_reduction - previous_reduction >= min_marginal_gain:
            recommended = point
        previous_reduction = point.latency_reduction
    return SizingPlan(
        model_name=config.name,
        server_name=server.name,
        points=points,
        recommended=recommended,
    )
