"""DRAM + NVM tiered embedding storage (the Eisenman et al. direction).

The paper's related work highlights storing recommendation models in
non-volatile memory with a DRAM cache for embedding reads — trading DRAM
capacity (the dominant cost of 10 GB-class RMC2 models) for a slower
backing tier. This module models that system: hot rows are DRAM-resident,
cold rows live in NVM with higher read latency; the popularity profile of
the lookup trace determines the DRAM hit rate, the expected per-lookup
latency, and the capacity savings.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..config.model_config import ModelConfig

#: Exposed read latency per random row, by tier (nanoseconds). NVM read
#: latency follows published Optane-class figures (~3x DRAM effective).
DRAM_ROW_NS = 130.0
NVM_ROW_NS = 450.0


@dataclass(frozen=True)
class TieredPlacement:
    """A DRAM/NVM split for one model's embedding tables.

    Attributes:
        dram_fraction: fraction of embedding rows held in DRAM.
        dram_hit_ratio: fraction of *lookups* served by DRAM (depends on
            the trace's popularity skew, not just capacity).
        total_bytes: total embedding storage.
    """

    dram_fraction: float
    dram_hit_ratio: float
    total_bytes: int

    @property
    def dram_bytes(self) -> int:
        """DRAM capacity consumed."""
        return int(self.total_bytes * self.dram_fraction)

    @property
    def nvm_bytes(self) -> int:
        """NVM capacity consumed."""
        return self.total_bytes - self.dram_bytes

    @property
    def expected_lookup_ns(self) -> float:
        """Expected per-lookup row-read latency across the two tiers."""
        miss = 1.0 - self.dram_hit_ratio
        return self.dram_hit_ratio * DRAM_ROW_NS + miss * NVM_ROW_NS

    @property
    def slowdown_vs_dram(self) -> float:
        """Per-lookup latency relative to an all-DRAM system."""
        return self.expected_lookup_ns / DRAM_ROW_NS

    @property
    def dram_savings_fraction(self) -> float:
        """Fraction of DRAM capacity freed versus an all-DRAM system."""
        return 1.0 - self.dram_fraction


def popularity_hit_ratio(
    trace_rows: np.ndarray,
    dram_fraction: float,
    table_rows: int,
    eval_rows: np.ndarray | None = None,
) -> float:
    """DRAM hit ratio when the most popular rows are DRAM-resident.

    Ranks rows by frequency in the profiling trace and places the top
    ``dram_fraction`` of the *table* in DRAM; returns the fraction of
    lookups they capture. Uniform traces get ~``dram_fraction``; skewed
    traces get much more — the entire win of tiering.

    Args:
        trace_rows: profiling trace used to pick the hot set.
        dram_fraction: DRAM budget as a fraction of table rows.
        table_rows: table size.
        eval_rows: trace the hit ratio is measured on. Defaults to the
            profiling trace itself (optimistic); pass a held-out trace for
            an out-of-sample estimate.
    """
    if not 0.0 <= dram_fraction <= 1.0:
        raise ValueError("dram_fraction must be in [0, 1]")
    rows = np.asarray(trace_rows)
    if rows.size == 0:
        raise ValueError("trace must contain lookups")
    budget_rows = int(dram_fraction * table_rows)
    if budget_rows == 0:
        return 0.0
    counts = Counter(int(r) for r in rows)
    hot = {row for row, _ in counts.most_common(budget_rows)}
    target = rows if eval_rows is None else np.asarray(eval_rows)
    if target.size == 0:
        raise ValueError("eval trace must contain lookups")
    hits = sum(1 for r in target if int(r) in hot)
    return hits / target.size


def plan_tiering(
    config: ModelConfig,
    trace_rows: np.ndarray,
    table_rows: int,
    dram_fraction: float,
    eval_rows: np.ndarray | None = None,
) -> TieredPlacement:
    """Build a tiered placement for ``config`` given a lookup trace."""
    hit = popularity_hit_ratio(trace_rows, dram_fraction, table_rows, eval_rows)
    return TieredPlacement(
        dram_fraction=dram_fraction,
        dram_hit_ratio=hit,
        total_bytes=config.embedding_storage_bytes(),
    )


def sweep_dram_fractions(
    config: ModelConfig,
    trace_rows: np.ndarray,
    table_rows: int,
    fractions: list[float],
    eval_rows: np.ndarray | None = None,
) -> list[TieredPlacement]:
    """Tiering plans across a sweep of DRAM budgets."""
    return [
        plan_tiering(config, trace_rows, table_rows, fraction, eval_rows)
        for fraction in fractions
    ]
