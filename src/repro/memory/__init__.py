"""Memory-system studies: embedding caches, DRAM/NVM tiering, near-memory."""

from .embedding_cache import (
    CacheReplayResult,
    LfuRowCache,
    LruRowCache,
    RowCache,
    StaticHotRowCache,
    sweep_cache_sizes,
)
from .near_memory import NmpConfig, NmpSpeedupResult, nmp_speedup
from .sizing import SizingPlan, SizingPoint, plan_cache_size
from .tiering import (
    DRAM_ROW_NS,
    NVM_ROW_NS,
    TieredPlacement,
    plan_tiering,
    popularity_hit_ratio,
    sweep_dram_fractions,
)

__all__ = [
    "CacheReplayResult",
    "LfuRowCache",
    "LruRowCache",
    "RowCache",
    "StaticHotRowCache",
    "sweep_cache_sizes",
    "NmpConfig",
    "NmpSpeedupResult",
    "nmp_speedup",
    "SizingPlan",
    "SizingPoint",
    "plan_cache_size",
    "DRAM_ROW_NS",
    "NVM_ROW_NS",
    "TieredPlacement",
    "plan_tiering",
    "popularity_hit_ratio",
    "sweep_dram_fractions",
]
