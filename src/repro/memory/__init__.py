"""Memory-system studies: embedding caches, DRAM/NVM tiering, near-memory."""

from .embedding_cache import (
    CacheReplayResult,
    LfuRowCache,
    LruRowCache,
    RowCache,
    StaticHotRowCache,
    sweep_cache_sizes,
)
from .near_memory import (
    AmdahlCrossCheck,
    NearMemorySystem,
    NmpConfig,
    NmpGeometry,
    NmpReplayResult,
    NmpSpeedupResult,
    amdahl_crosscheck,
    nmp_speedup,
)
from .nmp_native import nmp_native_available
from .sizing import SizingPlan, SizingPoint, plan_cache_size
from .tiering import (
    DRAM_ROW_NS,
    NVM_ROW_NS,
    TieredPlacement,
    plan_tiering,
    popularity_hit_ratio,
    sweep_dram_fractions,
)

__all__ = [
    "CacheReplayResult",
    "LfuRowCache",
    "LruRowCache",
    "RowCache",
    "StaticHotRowCache",
    "sweep_cache_sizes",
    "AmdahlCrossCheck",
    "NearMemorySystem",
    "NmpConfig",
    "NmpGeometry",
    "NmpReplayResult",
    "NmpSpeedupResult",
    "amdahl_crosscheck",
    "nmp_native_available",
    "nmp_speedup",
    "SizingPlan",
    "SizingPoint",
    "plan_cache_size",
    "DRAM_ROW_NS",
    "NVM_ROW_NS",
    "TieredPlacement",
    "plan_tiering",
    "popularity_hit_ratio",
    "sweep_dram_fractions",
]
