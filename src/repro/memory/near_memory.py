"""Near-memory SLS execution (RecNMP): a DIMM-side memory backend.

The paper's SLS-dominated classes (RMC1/RMC2) are bound by irregular,
low-locality embedding gathers that thrash the cache hierarchy (Figures
5/14). RecNMP (Ke et al., arXiv:1912.12953) answers with DIMM-side
SparseLengthsSum: each memory rank executes its share of a pooled gather
locally and ships one pooled vector back over the bus, with a small
DIMM-side hot-entry cache catching trace-temporal reuse. This module
models that memory system end to end, at two fidelities:

* :func:`nmp_speedup` — the original Amdahl quick estimate: SLS operator
  time shrinks by a flat factor, everything else is untouched. Retained
  as the cheap what-if path and cross-checked against the full engine by
  :func:`amdahl_crosscheck`.
* :class:`NearMemorySystem` — a full trace-driven timing backend.
  Embedding rows map to channels/DIMMs/ranks by pure arithmetic
  (low-order interleave, no RNG — the memory-system sibling of
  :class:`repro.serving.domains.FleetTopology`), each rank executes its
  lookups serially while ranks run in parallel, and a per-DIMM LRU
  hot-row cache short-circuits re-referenced rows. Pooling-factor skew
  therefore shows up as *rank contention* — a pool is as slow as its
  busiest rank — not as a flat speedup.

Following the repo's two-engine pattern (cache replay, serving DES), the
per-access reference engine is the executable specification and the SoA
vectorized engine (:mod:`repro.memory.nmp_vectorized`, optional C kernel
via :mod:`repro.memory.nmp_native`) is proven bit-identical on every
observable by ``tests/test_nmp_equivalence.py``. All costs are integer
nanoseconds, which is what makes bit-identity across engines (and across
``bincount`` summation orders) trivial to guarantee.

:class:`~repro.hw.timing.TimingModel` accepts ``nmp=NmpGeometry(...)`` to
price SLS operators on this backend analytically (``nmp=None`` is the
bit-identical off-switch); the ``fignmp`` experiment
(:mod:`repro.experiments.fignmp_near_memory`) composes the engine with
the Figure 14 trace axis and projects the fleet-level win.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..config.model_config import ModelConfig
from ..core.graph import config_ops
from ..core.operators.base import OP_SLS
from ..hw.server import ServerSpec
from ..hw.timing import OP_OVERHEAD_S, TimingModel
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import NullTracer, Tracer, as_tracer
from .nmp_native import load_nmp_kernel
from .nmp_vectorized import (
    VectorizedHotRowState,
    pool_rank_occupancy_ns,
    python_hot_flags,
    rank_of_rows,
)


@dataclass(frozen=True)
class NmpConfig:
    """A near-memory SLS accelerator, as a flat Amdahl factor.

    The quick-estimate sibling of :class:`NmpGeometry`: instead of
    simulating ranks and hot rows, SLS operator time shrinks by
    ``sls_speedup`` and each invocation pays ``offload_overhead_s``.
    Derive one from a geometry with :func:`NmpConfig.from_geometry` to
    keep the two paths consistent.

    Attributes:
        sls_speedup: factor by which SLS operator time shrinks (rank-level
            parallelism + on-DIMM reduction).
        offload_overhead_s: per-SLS-invocation command/launch overhead.
    """

    sls_speedup: float = 8.0
    offload_overhead_s: float = 1e-6

    def __post_init__(self) -> None:
        if self.sls_speedup < 1.0:
            raise ValueError("sls_speedup must be >= 1")
        if self.offload_overhead_s < 0:
            raise ValueError("offload overhead must be non-negative")

    @classmethod
    def from_geometry(
        cls,
        server: ServerSpec,
        geometry: "NmpGeometry",
        config: ModelConfig,
        batch_size: int,
    ) -> "NmpConfig":
        """The Amdahl factor implied by a geometry on one model.

        ``sls_speedup`` is baseline SLS time over the geometry's
        uniform-limit gather time (every pool spread evenly over all
        ranks, zero hot-row hits); ``offload_overhead_s`` is the
        per-invocation pool-launch total. By construction
        :func:`nmp_speedup` with this config agrees with the full
        :class:`NearMemorySystem` in the uniform-locality/no-contention
        limit — :func:`amdahl_crosscheck` asserts it.
        """
        latency = TimingModel(server).model_latency(config, batch_size)
        baseline_sls_s = sum(
            op.seconds for op in latency.per_op if op.op_type == OP_SLS
        )
        gather_s = 0.0
        invocations = 0
        for spec in config_ops(config):
            if spec.op_type != OP_SLS:
                continue
            invocations += 1
            pool_gather_ns = (
                spec.lookups_per_sample
                * geometry.rank_gather_ns
                / geometry.num_ranks
            )
            gather_s += batch_size * pool_gather_ns * 1e-9
        if invocations == 0 or gather_s <= 0.0:
            return cls(sls_speedup=1.0, offload_overhead_s=0.0)
        return cls(
            sls_speedup=max(1.0, baseline_sls_s / gather_s),
            offload_overhead_s=batch_size * geometry.pool_overhead_ns * 1e-9,
        )


@dataclass(frozen=True)
class NmpSpeedupResult:
    """End-to-end effect of near-memory SLS acceleration on one model."""

    model_name: str
    server_name: str
    batch_size: int
    baseline_seconds: float
    accelerated_seconds: float
    sls_share: float

    @property
    def end_to_end_speedup(self) -> float:
        """Total-latency improvement factor."""
        return self.baseline_seconds / self.accelerated_seconds


def nmp_speedup(
    server: ServerSpec,
    config: ModelConfig,
    batch_size: int,
    nmp: NmpConfig = NmpConfig(),
) -> NmpSpeedupResult:
    """Predict end-to-end latency with near-memory SLS execution.

    The Amdahl quick-estimate path: every SLS operator shrinks by
    ``nmp.sls_speedup`` plus a per-invocation offload overhead; nothing
    else moves. Agrees with the full :class:`NearMemorySystem` in the
    uniform-locality/no-contention limit (lookups spread evenly over
    ranks, no hot-row reuse — asserted by :func:`amdahl_crosscheck`) and
    diverges outside it, in both directions:

    * **pooling-factor skew** — when lookups collide on a few ranks, the
      engine's pool critical path grows while the flat factor cannot see
      it: the quick path is *optimistic*;
    * **hot-row locality** — when the trace re-references rows, the
      per-DIMM cache serves them at ``hot_hit_ns`` and the engine beats
      the flat factor: the quick path is *pessimistic*;
    * **non-divisible pooling** — lookups-per-pool not divisible by the
      rank count leaves ceil/floor imbalance the flat factor rounds away.
    """
    latency = TimingModel(server).model_latency(config, batch_size)
    baseline = latency.total_seconds
    accelerated = 0.0
    for op in latency.per_op:
        if op.op_type == OP_SLS:
            accelerated += op.seconds / nmp.sls_speedup + nmp.offload_overhead_s
        else:
            accelerated += op.seconds
    return NmpSpeedupResult(
        model_name=config.name,
        server_name=server.name,
        batch_size=batch_size,
        baseline_seconds=baseline,
        accelerated_seconds=accelerated,
        sls_share=latency.fraction_by_op_type().get("SLS", 0.0),
    )


# ----------------------------------------------------------------- geometry


@dataclass(frozen=True)
class NmpGeometry:
    """Channel/DIMM/rank shape and service times of the NMP memory system.

    Row placement is pure arithmetic: row ``r`` lives on rank
    ``r % num_ranks``, which puts it on DIMM ``rank // ranks_per_dimm``
    and channel ``dimm // dimms_per_channel`` (low-order interleave, the
    standard DRAM address-mapping default). No RNG — a table of a given
    size always maps to the same ranks, so two runs agree byte for byte.

    Service times are integer nanoseconds, which keeps every engine
    observable an exact integer sum.

    Attributes:
        channels: memory channels per socket.
        dimms_per_channel: DIMMs on each channel.
        ranks_per_dimm: ranks on each DIMM (each executes gathers locally).
        hot_rows_per_dimm: per-DIMM LRU hot-row cache capacity in rows
            (0 disables the cache).
        rank_gather_ns: rank-local row gather + accumulate service time —
            no off-chip round trip, hence far below the host's exposed
            ``dram_random_ns``.
        hot_hit_ns: service time when the DIMM's hot-row cache holds the
            row (served from the NMP buffer device, no rank access).
        pool_overhead_ns: per-pool NMP command launch + pooled-vector
            return cost, charged once per pool on the critical path.
    """

    channels: int = 4
    dimms_per_channel: int = 2
    ranks_per_dimm: int = 2
    hot_rows_per_dimm: int = 256
    rank_gather_ns: int = 40
    hot_hit_ns: int = 10
    pool_overhead_ns: int = 80

    def __post_init__(self) -> None:
        for name in ("channels", "dimms_per_channel", "ranks_per_dimm"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be positive")
        if self.hot_rows_per_dimm < 0:
            raise ValueError("hot_rows_per_dimm must be non-negative")
        for name in ("rank_gather_ns", "hot_hit_ns", "pool_overhead_ns"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 0:
                raise ValueError(f"{name} must be a non-negative integer")

    @property
    def num_dimms(self) -> int:
        """DIMMs across every channel."""
        return self.channels * self.dimms_per_channel

    @property
    def num_ranks(self) -> int:
        """Ranks across every DIMM — the gather parallelism."""
        return self.num_dimms * self.ranks_per_dimm

    def rank_of(self, row: int) -> int:
        """Rank holding embedding row ``row``."""
        return row % self.num_ranks

    def dimm_of(self, row: int) -> int:
        """DIMM holding embedding row ``row``."""
        return self.rank_of(row) // self.ranks_per_dimm

    def channel_of(self, row: int) -> int:
        """Channel holding embedding row ``row``."""
        return self.dimm_of(row) // self.dimms_per_channel


# ------------------------------------------------------------------- result


@dataclass(frozen=True, eq=False)
class NmpReplayResult:
    """Observables of one trace replay through :class:`NearMemorySystem`.

    Every field is integer-exact and engine-invariant: the equivalence
    suite compares them record for record between the reference and
    vectorized engines.
    """

    pool_latencies_ns: np.ndarray
    per_rank_busy_ns: np.ndarray
    per_dimm_hot_hits: np.ndarray
    per_dimm_hot_misses: np.ndarray

    @property
    def num_pools(self) -> int:
        """Pooled SLS invocations replayed."""
        return int(self.pool_latencies_ns.size)

    @property
    def num_lookups(self) -> int:
        """Individual row gathers replayed."""
        return int(self.per_dimm_hot_hits.sum() + self.per_dimm_hot_misses.sum())

    @property
    def elapsed_ns(self) -> int:
        """Total simulated time: pools are serialized by the SLS barrier."""
        return int(self.pool_latencies_ns.sum())

    @property
    def elapsed_s(self) -> float:
        """Total simulated time in seconds."""
        return self.elapsed_ns * 1e-9

    @property
    def hot_hits(self) -> int:
        """Lookups served by the per-DIMM hot-row caches."""
        return int(self.per_dimm_hot_hits.sum())

    @property
    def hot_misses(self) -> int:
        """Lookups that went to a rank."""
        return int(self.per_dimm_hot_misses.sum())

    @property
    def hot_hit_ratio(self) -> float:
        """Fraction of lookups served by the hot-row caches."""
        total = self.num_lookups
        return self.hot_hits / total if total else 0.0

    @property
    def rank_utilization(self) -> float:
        """Mean rank busy time over elapsed time (1.0 = perfectly packed)."""
        elapsed_ns = self.elapsed_ns
        if elapsed_ns == 0 or self.per_rank_busy_ns.size == 0:
            return 0.0
        return float(self.per_rank_busy_ns.mean()) / elapsed_ns

    @property
    def rank_imbalance(self) -> float:
        """Busiest rank over mean rank load (1.0 = perfectly balanced)."""
        if self.per_rank_busy_ns.size == 0:
            return 1.0
        mean_ns = float(self.per_rank_busy_ns.mean())
        if mean_ns == 0.0:
            return 1.0
        return float(self.per_rank_busy_ns.max()) / mean_ns

    def digest(self) -> dict:
        """Canonical int summary for bit-identity assertions."""
        return {
            "num_pools": self.num_pools,
            "num_lookups": self.num_lookups,
            "elapsed_ns": self.elapsed_ns,
            "hot_hits": self.hot_hits,
            "hot_misses": self.hot_misses,
            "pool_latencies": self.pool_latencies_ns.tolist(),
            "per_rank_busy": self.per_rank_busy_ns.tolist(),
            "per_dimm_hits": self.per_dimm_hot_hits.tolist(),
            "per_dimm_misses": self.per_dimm_hot_misses.tolist(),
        }


# ------------------------------------------------------------------- engine


class NearMemorySystem:
    """Rank-parallel DIMM-side SLS execution with per-DIMM hot-row caches.

    Timing semantics (identical in both engines):

    * each lookup is placed on rank ``row % num_ranks``;
    * a lookup first probes its DIMM's LRU hot-row cache — a hit costs
      ``hot_hit_ns``, a miss costs ``rank_gather_ns`` and allocates the
      row (evicting the DIMM's LRU row when full);
    * within a pool, each rank executes its lookups serially and all
      ranks run in parallel, so the pool's latency is its busiest rank's
      busy time plus ``pool_overhead_ns``;
    * pools are serialized (an SLS must reduce before returning), so the
      replay's elapsed time is the sum of pool latencies.

    Hot-row cache state persists across :meth:`replay` calls (call
    :meth:`reset` between independent traces).

    Args:
        geometry: channel/DIMM/rank shape and service times.
        engine: ``"reference"`` for the per-access specification loop, or
            ``"vectorized"`` for the SoA batch engine (bit-identical).
        backend: batch-kernel selection for the vectorized engine:
            ``"auto"`` prefers the self-compiled C kernel and falls back
            to pure Python (also when ``REPRO_DISABLE_NATIVE=1``),
            ``"native"`` requires it, ``"python"`` forces the fallback.
        tracer: optional :class:`~repro.obs.tracer.Tracer`; each replay
            is recorded as a ``memory.nmp.replay`` span on the simulated
            clock. Observational only — never changes an observable.
        track: tracer track (viewer lane) the replay spans land on.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            replays increment ``memory.nmp.lookups`` /
            ``memory.nmp.hot_hits`` / ``memory.nmp.hot_misses`` counters
            and set the ``memory.nmp.rank_imbalance`` gauge.
    """

    def __init__(
        self,
        geometry: NmpGeometry = NmpGeometry(),
        engine: str = "vectorized",
        backend: str = "auto",
        tracer: "Tracer | NullTracer | None" = None,
        metrics: MetricsRegistry | None = None,
        track: int = 0,
    ) -> None:
        if engine not in ("reference", "vectorized"):
            raise ValueError(f"unknown engine {engine!r}")
        if backend not in ("auto", "native", "python"):
            raise ValueError(f"unknown backend {backend!r}")
        self.geometry = geometry
        self.engine = engine
        self.tracer = as_tracer(tracer)
        self.metrics = metrics
        self.track = track
        self._kernel = None
        if engine == "vectorized" and backend in ("auto", "native"):
            self._kernel = load_nmp_kernel()
            if backend == "native" and self._kernel is None:
                raise RuntimeError(
                    "backend='native' requested but the C kernel is "
                    "unavailable (no compiler, or REPRO_DISABLE_NATIVE=1)"
                )
        self.backend = "native" if self._kernel is not None else "python"
        self._clock_ns = 0
        self.reset()

    # ----------------------------------------------------------------- state

    def reset(self) -> None:
        """Clear hot-row cache state and the simulated clock."""
        geometry = self.geometry
        self._clock_ns = 0
        if self.engine == "reference":
            self._hot: list[OrderedDict[int, None]] = [
                OrderedDict() for _ in range(geometry.num_dimms)
            ]
        else:
            self._state = VectorizedHotRowState(
                geometry.num_dimms, geometry.hot_rows_per_dimm
            )

    def resident_hot_rows(self) -> int:
        """Rows currently held across every DIMM's hot cache."""
        if self.engine == "reference":
            return sum(len(cache) for cache in self._hot)
        return self._state.resident_rows()

    # ---------------------------------------------------------------- replay

    def _check_trace(
        self, rows: np.ndarray, lengths: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray]:
        rows = np.asarray(rows, dtype=np.int64).reshape(-1)
        if rows.size and rows.min() < 0:
            raise ValueError("row ids must be non-negative")
        if lengths is None:
            lengths = np.array([rows.size], dtype=np.int64)
        else:
            lengths = np.asarray(lengths, dtype=np.int64).reshape(-1)
            if lengths.size and lengths.min() < 0:
                raise ValueError("pool lengths must be non-negative")
            if int(lengths.sum()) != rows.size:
                raise ValueError(
                    f"pool lengths sum to {int(lengths.sum())} but the trace "
                    f"has {rows.size} lookups"
                )
        return rows, lengths

    def replay(
        self, rows: np.ndarray, lengths: np.ndarray | None = None
    ) -> NmpReplayResult:
        """Execute a lookup trace; returns engine-invariant observables.

        Args:
            rows: int64 embedding-row ids in trace order.
            lengths: lookups per pooled SLS invocation (``sum == len(rows)``);
                ``None`` treats the whole trace as one pool.
        """
        rows, lengths = self._check_trace(rows, lengths)
        if self.engine == "reference":
            result = self._replay_reference(rows, lengths)
        else:
            result = self._replay_vectorized(rows, lengths)
        self._observe(result)
        return result

    def _observe(self, result: NmpReplayResult) -> None:
        """Report a replay to the tracer/metrics (observational only)."""
        begin_ns = self._clock_ns
        self._clock_ns += result.elapsed_ns
        self.tracer.complete(
            "memory.nmp.replay",
            begin_ns * 1e-9,
            self._clock_ns * 1e-9,
            track=self.track,
            pools=result.num_pools,
            lookups=result.num_lookups,
            hot_hits=result.hot_hits,
            rank_imbalance=result.rank_imbalance,
        )
        if self.metrics is not None:
            engine = self.engine
            self.metrics.counter("memory.nmp.lookups", engine=engine).inc(
                result.num_lookups
            )
            self.metrics.counter("memory.nmp.hot_hits", engine=engine).inc(
                result.hot_hits
            )
            self.metrics.counter("memory.nmp.hot_misses", engine=engine).inc(
                result.hot_misses
            )
            self.metrics.gauge("memory.nmp.rank_imbalance", engine=engine).set(
                result.rank_imbalance
            )

    # ------------------------------------------------------------- reference

    def _replay_reference(
        self, rows: np.ndarray, lengths: np.ndarray
    ) -> NmpReplayResult:
        """Per-access specification loop: plain ints and OrderedDicts."""
        geometry = self.geometry
        num_ranks = geometry.num_ranks
        ranks_per_dimm = geometry.ranks_per_dimm
        capacity = geometry.hot_rows_per_dimm
        gather_ns = geometry.rank_gather_ns
        hit_ns = geometry.hot_hit_ns
        pool_latencies = []
        per_rank_busy = [0] * num_ranks
        per_dimm_hits = [0] * geometry.num_dimms
        per_dimm_misses = [0] * geometry.num_dimms
        cursor = 0
        row_list = rows.tolist()
        for pool_size in lengths.tolist():
            rank_load = [0] * num_ranks
            for row in row_list[cursor : cursor + pool_size]:
                rank = row % num_ranks
                dimm = rank // ranks_per_dimm
                cache = self._hot[dimm]
                if row in cache:
                    cache.move_to_end(row)
                    per_dimm_hits[dimm] += 1
                    cost_ns = hit_ns
                else:
                    per_dimm_misses[dimm] += 1
                    cost_ns = gather_ns
                    if capacity > 0:
                        if len(cache) >= capacity:
                            cache.popitem(last=False)
                        cache[row] = None
                rank_load[rank] += cost_ns
                per_rank_busy[rank] += cost_ns
            cursor += pool_size
            pool_latencies.append(max(rank_load) + geometry.pool_overhead_ns)
        return NmpReplayResult(
            pool_latencies_ns=np.asarray(pool_latencies, dtype=np.int64),
            per_rank_busy_ns=np.asarray(per_rank_busy, dtype=np.int64),
            per_dimm_hot_hits=np.asarray(per_dimm_hits, dtype=np.int64),
            per_dimm_hot_misses=np.asarray(per_dimm_misses, dtype=np.int64),
        )

    # ------------------------------------------------------------ vectorized

    def _replay_vectorized(
        self, rows: np.ndarray, lengths: np.ndarray
    ) -> NmpReplayResult:
        """SoA batch engine: sequential hot-cache kernel + array accounting."""
        geometry = self.geometry
        num_ranks = geometry.num_ranks
        if self._kernel is not None:
            # The C path also folds the pool/rank accounting into the same
            # trace walk — identical integer arithmetic, one call.
            pool_latencies, rank_busy, dimm_hits, dimm_misses = (
                self._kernel.replay(
                    rows,
                    lengths,
                    self._state.tags,
                    self._state.occupancy,
                    geometry.hot_rows_per_dimm,
                    geometry.ranks_per_dimm,
                    num_ranks,
                    geometry.rank_gather_ns,
                    geometry.hot_hit_ns,
                    geometry.pool_overhead_ns,
                )
            )
            return NmpReplayResult(
                pool_latencies_ns=pool_latencies,
                per_rank_busy_ns=rank_busy,
                per_dimm_hot_hits=dimm_hits,
                per_dimm_hot_misses=dimm_misses,
            )
        hits = python_hot_flags(
            rows, self._state, geometry.ranks_per_dimm, num_ranks
        )
        ranks = rank_of_rows(rows, num_ranks)
        dimms = ranks // geometry.ranks_per_dimm
        hit_mask = hits.astype(bool)
        cost_ns = np.where(
            hit_mask,
            np.int64(geometry.hot_hit_ns),
            np.int64(geometry.rank_gather_ns),
        )
        grid_ns = pool_rank_occupancy_ns(cost_ns, ranks, lengths, num_ranks)
        if grid_ns.shape[0]:
            pool_latencies = grid_ns.max(axis=1) + geometry.pool_overhead_ns
        else:
            pool_latencies = np.zeros(0, dtype=np.int64)
        per_dimm_hits = np.bincount(
            dimms[hit_mask], minlength=geometry.num_dimms
        ).astype(np.int64)
        per_dimm_misses = np.bincount(
            dimms[~hit_mask], minlength=geometry.num_dimms
        ).astype(np.int64)
        return NmpReplayResult(
            pool_latencies_ns=pool_latencies,
            per_rank_busy_ns=grid_ns.sum(axis=0),
            per_dimm_hot_hits=per_dimm_hits,
            per_dimm_hot_misses=per_dimm_misses,
        )


# --------------------------------------------------------- Amdahl crosscheck


@dataclass(frozen=True)
class AmdahlCrossCheck:
    """Quick-estimate vs full-engine accelerated latency on one model.

    In the uniform-locality/no-contention limit (every pool's lookups
    spread evenly over all ranks, no hot-row reuse) the three paths must
    agree; ``tests/test_nmp_equivalence.py`` asserts it. See
    :func:`nmp_speedup` for the divergence regimes outside that limit.
    """

    baseline_seconds: float
    amdahl_seconds: float
    engine_seconds: float
    model_seconds: float

    @property
    def amdahl_vs_engine_rel(self) -> float:
        """Relative gap between the Amdahl path and the full engine."""
        return abs(self.amdahl_seconds - self.engine_seconds) / self.engine_seconds

    @property
    def model_vs_engine_rel(self) -> float:
        """Relative gap between the analytic TimingModel path and the engine."""
        return abs(self.model_seconds - self.engine_seconds) / self.engine_seconds


def amdahl_crosscheck(
    server: ServerSpec,
    config: ModelConfig,
    batch_size: int,
    geometry: NmpGeometry = NmpGeometry(),
) -> AmdahlCrossCheck:
    """Compare the three NMP fidelities in the uniform limit.

    Builds a perfectly uniform trace for every SLS operator — consecutive
    never-repeating rows, so placement round-robins over ranks and the
    hot caches never hit — replays it through a real
    :class:`NearMemorySystem`, and prices the same model through (a) the
    :func:`nmp_speedup` Amdahl path with the geometry-derived
    :class:`NmpConfig` and (b) ``TimingModel(server, nmp=geometry)``.

    The small residual between the Amdahl path and the other two is the
    per-operator dispatch overhead (``OP_OVERHEAD_S``), which the flat
    factor scales down along with the operator body; it is bounded by
    ``OP_OVERHEAD_S`` per SLS operator.
    """
    baseline = TimingModel(server).model_latency(config, batch_size)
    derived = NmpConfig.from_geometry(server, geometry, config, batch_size)
    amdahl = nmp_speedup(server, config, batch_size, derived)

    system = NearMemorySystem(geometry, engine="vectorized")
    engine_seconds = 0.0
    next_row = 0
    for spec, op in zip(config_ops(config), baseline.per_op):
        if spec.op_type != OP_SLS:
            engine_seconds += op.seconds
            continue
        lookups = batch_size * spec.lookups_per_sample
        # Consecutive fresh rows: exact round-robin placement, zero reuse.
        rows = np.arange(next_row, next_row + lookups, dtype=np.int64)
        next_row += lookups
        lengths = np.full(batch_size, spec.lookups_per_sample, dtype=np.int64)
        result = system.replay(rows, lengths)
        engine_seconds += result.elapsed_s + OP_OVERHEAD_S

    model_seconds = TimingModel(server, nmp=geometry).model_latency(
        config, batch_size, sls_hit_ratio=0.0
    ).total_seconds
    return AmdahlCrossCheck(
        baseline_seconds=baseline.total_seconds,
        amdahl_seconds=amdahl.accelerated_seconds,
        engine_seconds=engine_seconds,
        model_seconds=model_seconds,
    )
