"""Near-memory processing for embedding operations.

The paper's related work cites near-memory-processing proposals that
accelerate embedding-table operations by executing the gather-and-sum
inside the memory system (TensorDIMM/RecNMP-style). This module models
the end-to-end effect: SLS time shrinks by the NMP speedup (pooling
reduces data crossing the memory bus from one row per lookup to one pooled
vector per sample), while the rest of the model is untouched — an Amdahl
analysis symmetric to the FC-accelerator study in
:mod:`repro.hw.accelerator`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.model_config import ModelConfig
from ..hw.server import ServerSpec
from ..hw.timing import TimingModel


@dataclass(frozen=True)
class NmpConfig:
    """A near-memory SLS accelerator.

    Attributes:
        sls_speedup: factor by which SLS operator time shrinks (rank-level
            parallelism + on-DIMM reduction).
        offload_overhead_s: per-SLS-invocation command/launch overhead.
    """

    sls_speedup: float = 8.0
    offload_overhead_s: float = 1e-6

    def __post_init__(self) -> None:
        if self.sls_speedup < 1.0:
            raise ValueError("sls_speedup must be >= 1")
        if self.offload_overhead_s < 0:
            raise ValueError("offload overhead must be non-negative")


@dataclass(frozen=True)
class NmpSpeedupResult:
    """End-to-end effect of near-memory SLS acceleration on one model."""

    model_name: str
    server_name: str
    batch_size: int
    baseline_seconds: float
    accelerated_seconds: float
    sls_share: float

    @property
    def end_to_end_speedup(self) -> float:
        """Total-latency improvement factor."""
        return self.baseline_seconds / self.accelerated_seconds


def nmp_speedup(
    server: ServerSpec,
    config: ModelConfig,
    batch_size: int,
    nmp: NmpConfig = NmpConfig(),
) -> NmpSpeedupResult:
    """Predict end-to-end latency with near-memory SLS execution."""
    latency = TimingModel(server).model_latency(config, batch_size)
    baseline = latency.total_seconds
    accelerated = 0.0
    for op in latency.per_op:
        if op.op_type == "SLS":
            accelerated += op.seconds / nmp.sls_speedup + nmp.offload_overhead_s
        else:
            accelerated += op.seconds
    return NmpSpeedupResult(
        model_name=config.name,
        server_name=server.name,
        batch_size=batch_size,
        baseline_seconds=baseline,
        accelerated_seconds=accelerated,
        sls_share=latency.fraction_by_op_type().get("SLS", 0.0),
    )
