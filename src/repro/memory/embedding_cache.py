"""Software-managed embedding caches.

The paper closes by pointing at the memory system: production lookup
traces have exploitable locality (Figure 14), so "intelligent caching and
prefetching" can cut SLS DRAM traffic, and its open-source trace
generators exist precisely to drive such studies. This module implements
the study: replace raw DRAM row gathers with a software-managed cache of
embedding *rows* (not lines), replay a trace, and feed the resulting hit
ratio back into the server timing model.

Policies:

* :class:`LruRowCache` — recency-based, the natural fit for temporal-reuse
  traces;
* :class:`LfuRowCache` — frequency-based, the natural fit for Zipf
  popularity skew;
* :class:`StaticHotRowCache` — a pinned hot set (e.g. the most popular IDs
  from a profiling pass), the cheapest to implement in production.
"""

from __future__ import annotations

import abc
from collections import Counter, OrderedDict
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CacheReplayResult:
    """Outcome of replaying a lookup trace through a row cache."""

    policy: str
    capacity_rows: int
    lookups: int
    hits: int

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from the cache."""
        return self.hits / self.lookups if self.lookups else 0.0


class RowCache(abc.ABC):
    """A fixed-capacity cache of embedding rows keyed by sparse ID."""

    policy_name = "abstract"

    def __init__(self, capacity_rows: int) -> None:
        if capacity_rows < 1:
            raise ValueError("cache capacity must be at least one row")
        self.capacity_rows = capacity_rows

    @abc.abstractmethod
    def access(self, row: int) -> bool:
        """Access one row; returns True on hit, inserting on miss."""

    def replay(self, rows: np.ndarray) -> CacheReplayResult:
        """Replay a trace of row IDs; returns hit statistics."""
        rows = np.asarray(rows)
        if rows.size == 0:
            raise ValueError("trace must contain at least one lookup")
        hits = 0
        for row in rows:
            if self.access(int(row)):
                hits += 1
        return CacheReplayResult(
            policy=self.policy_name,
            capacity_rows=self.capacity_rows,
            lookups=int(rows.size),
            hits=hits,
        )


class LruRowCache(RowCache):
    """Least-recently-used row cache."""

    policy_name = "LRU"

    def __init__(self, capacity_rows: int) -> None:
        super().__init__(capacity_rows)
        self._rows: OrderedDict[int, None] = OrderedDict()

    def access(self, row: int) -> bool:
        if row in self._rows:
            self._rows.move_to_end(row)
            return True
        if len(self._rows) >= self.capacity_rows:
            self._rows.popitem(last=False)
        self._rows[row] = None
        return False


class LfuRowCache(RowCache):
    """Least-frequently-used row cache (ties broken by recency)."""

    policy_name = "LFU"

    def __init__(self, capacity_rows: int) -> None:
        super().__init__(capacity_rows)
        self._counts: Counter[int] = Counter()
        self._resident: OrderedDict[int, None] = OrderedDict()

    def access(self, row: int) -> bool:
        self._counts[row] += 1
        if row in self._resident:
            self._resident.move_to_end(row)
            return True
        if len(self._resident) >= self.capacity_rows:
            # Least-frequent victim; insertion order breaks ties (oldest out).
            victim = min(self._resident, key=lambda r: self._counts[r])
            del self._resident[victim]
        self._resident[row] = None
        return False


class StaticHotRowCache(RowCache):
    """A pinned set of hot rows chosen ahead of time (no replacement)."""

    policy_name = "StaticHot"

    def __init__(self, hot_rows) -> None:
        hot = set(int(r) for r in hot_rows)
        super().__init__(max(1, len(hot)))
        self._hot = hot

    def access(self, row: int) -> bool:
        return row in self._hot

    @classmethod
    def from_profile(cls, profile_rows: np.ndarray, capacity_rows: int) -> "StaticHotRowCache":
        """Pin the ``capacity_rows`` most frequent IDs of a profiling trace."""
        if capacity_rows < 1:
            raise ValueError("capacity must be positive")
        counts = Counter(int(r) for r in np.asarray(profile_rows))
        hot = [row for row, _ in counts.most_common(capacity_rows)]
        return cls(hot)


def sweep_cache_sizes(
    policy_factory,
    rows: np.ndarray,
    capacities: list[int],
) -> list[CacheReplayResult]:
    """Replay one trace across a sweep of cache capacities."""
    results = []
    for capacity in capacities:
        cache = policy_factory(capacity)
        results.append(cache.replay(rows))
    return results
