"""Structure-of-arrays state and batch kernels for the NMP replay engine.

The reference engine in :mod:`repro.memory.near_memory` walks a lookup
trace one row at a time: place the row on its rank, probe the owning
DIMM's LRU hot-row cache, charge the rank. Perfectly clear — and far too
slow for million-lookup traces. The vectorized engine splits the same
computation into:

* **Placement + accounting** — pure integer array arithmetic
  (:func:`rank_of_rows`, :func:`pool_rank_occupancy_ns`): row→rank is a
  single modulo, per-(pool, rank) occupancy is one ``bincount``, and the
  pool critical path is a row-wise ``max``. All costs are integer
  nanoseconds, so sums are exact in any order and the two engines agree
  bit for bit.
* **Hot-row cache** — the only sequential piece. Each DIMM's cache is
  exact LRU over row ids, kept as flat tag matrices
  (:class:`VectorizedHotRowState`, mirroring
  :class:`repro.hw.vectorized.VectorizedSetAssociativeCache`): slots
  ``0..occ-1`` of a row hold the DIMM's resident rows in LRU→MRU order.
  Batches are replayed by the native C kernel
  (:mod:`repro.memory.nmp_native`) when a compiler is available, or by
  :func:`python_hot_flags` below — both implement exactly the reference
  OrderedDict semantics.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

__all__ = [
    "VectorizedHotRowState",
    "python_hot_flags",
    "rank_of_rows",
    "pool_rank_occupancy_ns",
]


class VectorizedHotRowState:
    """Per-DIMM LRU hot-row caches as flat tag matrices.

    Attributes:
        tags: ``(num_dimms, capacity)`` int64; slots ``0..occ-1`` of a row
            hold that DIMM's resident row ids in LRU→MRU order (slot 0 is
            the next victim), mirroring the reference OrderedDict's
            iteration order.
        occupancy: ``(num_dimms,)`` int64 valid-slot counts.
    """

    def __init__(self, num_dimms: int, capacity_rows: int) -> None:
        if num_dimms <= 0:
            raise ValueError("num_dimms must be positive")
        if capacity_rows < 0:
            raise ValueError("capacity_rows must be non-negative")
        self.num_dimms = num_dimms
        self.capacity_rows = capacity_rows
        # max(capacity, 1) keeps zero-capacity states addressable; the
        # kernels never write a tag when capacity_rows == 0.
        self.tags = np.zeros((num_dimms, max(capacity_rows, 1)), dtype=np.int64)
        self.occupancy = np.zeros(num_dimms, dtype=np.int64)

    def resident_rows(self) -> int:
        """Rows currently held across every DIMM's hot cache."""
        return int(self.occupancy.sum())

    def probe(self, dimm: int, row: int) -> bool:
        """Check presence without updating LRU order."""
        occupied = int(self.occupancy[dimm])
        return bool((self.tags[dimm, :occupied] == row).any())


def python_hot_flags(
    rows: np.ndarray,
    state: VectorizedHotRowState,
    ranks_per_dimm: int,
    num_ranks: int,
) -> np.ndarray:
    """Pure-Python batch kernel: LRU-probe ``rows``, returning hit bytes.

    Fallback for environments without a C compiler. Uses an ephemeral
    per-DIMM dict mirror of the SoA state (CPython dict operations beat
    per-access numpy indexing by a wide margin) and writes the state back
    when the batch completes — the same trick as
    :func:`repro.hw.vectorized.python_replay`.
    """
    capacity = state.capacity_rows
    rows = np.asarray(rows, dtype=np.int64).reshape(-1)
    hits = np.zeros(rows.size, dtype=np.uint8)
    if capacity == 0 or rows.size == 0:
        return hits
    # DIMM caches are independent (a row always lands on the same DIMM), so
    # partition the trace per DIMM up front — vectorized — and run each
    # subsequence through a minimal OrderedDict loop whose body is exactly
    # the reference engine's cache ops, stripped of the per-access rank
    # accounting (that part is array arithmetic, done by the caller).
    dimms = (rows % num_ranks) // ranks_per_dimm
    for dimm, (tag_row, occupied) in enumerate(
        zip(state.tags.tolist(), state.occupancy.tolist())
    ):
        index = np.nonzero(dimms == dimm)[0]
        if index.size == 0:
            continue
        cache = OrderedDict.fromkeys(tag_row[:occupied])
        move_to_end = cache.move_to_end
        flags = bytearray(index.size)
        for i, row in enumerate(rows[index].tolist()):
            if row in cache:
                move_to_end(row)
                flags[i] = 1
            elif len(cache) >= capacity:
                cache.popitem(last=False)
                cache[row] = None
            else:
                cache[row] = None
        hits[index] = np.frombuffer(bytes(flags), dtype=np.uint8)
        occupied = len(cache)
        state.occupancy[dimm] = occupied
        if occupied:
            state.tags[dimm, :occupied] = list(cache.keys())
    return hits


def rank_of_rows(rows: np.ndarray, num_ranks: int) -> np.ndarray:
    """Vectorized row→rank placement (low-order interleave)."""
    return np.asarray(rows, dtype=np.int64).reshape(-1) % num_ranks


def pool_rank_occupancy_ns(
    cost_ns: np.ndarray,
    ranks: np.ndarray,
    lengths: np.ndarray,
    num_ranks: int,
) -> np.ndarray:
    """Per-(pool, rank) busy nanoseconds as a ``(num_pools, num_ranks)`` grid.

    One ``bincount`` over a fused (pool, rank) key. ``bincount`` with
    weights accumulates in float64, which is exact for integer sums below
    2**53 — a 1M-lookup trace at microsecond-scale costs stays under 2**40,
    so the cast back to int64 is lossless and the result is bit-identical
    to the reference engine's serial integer accumulation.
    """
    num_pools = int(lengths.size)
    if cost_ns.size == 0:
        return np.zeros((num_pools, num_ranks), dtype=np.int64)
    pool_index = np.repeat(np.arange(num_pools, dtype=np.int64), lengths)
    key = pool_index * num_ranks + ranks
    grid = np.bincount(key, weights=cost_ns, minlength=num_pools * num_ranks)
    return grid.astype(np.int64).reshape(num_pools, num_ranks)
